"""Per-rank communication statistics.

The paper's Table III reports, per partitioning method, the maximum and
average per-process send/receive volume of one HOOI iteration.  The simulated
MPI layer records exactly that: every point-to-point message and every
collective contribution is charged to the participating ranks in *elements*
(doubles) and bytes, together with message counts and per-peer volumes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["CommStats"]


@dataclass
class CommStats:
    """Communication counters for a single rank."""

    rank: int
    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    collective_bytes: int = 0
    collective_calls: int = 0
    per_peer_sent: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    per_peer_received: Dict[int, int] = field(default_factory=lambda: defaultdict(int))

    # ------------------------------------------------------------------ #
    def record_send(self, dest: int, nbytes: int) -> None:
        self.bytes_sent += int(nbytes)
        self.messages_sent += 1
        self.per_peer_sent[dest] += int(nbytes)

    def record_receive(self, source: int, nbytes: int) -> None:
        self.bytes_received += int(nbytes)
        self.messages_received += 1
        self.per_peer_received[source] += int(nbytes)

    def record_collective(self, nbytes: int) -> None:
        self.collective_bytes += int(nbytes)
        self.collective_calls += 1

    # ------------------------------------------------------------------ #
    @property
    def total_bytes(self) -> int:
        """Total point-to-point plus collective traffic charged to this rank."""
        return self.bytes_sent + self.bytes_received + self.collective_bytes

    def volume_elements(self, element_bytes: int = 8) -> float:
        """Total traffic in elements (doubles by default) — the paper's unit."""
        return self.total_bytes / float(element_bytes)

    def reset(self) -> None:
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0
        self.collective_bytes = 0
        self.collective_calls = 0
        self.per_peer_sent.clear()
        self.per_peer_received.clear()

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict summary (useful for asserts and reports)."""
        return {
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "collective_bytes": self.collective_bytes,
            "collective_calls": self.collective_calls,
        }
