"""SPMD launcher for the simulated MPI world.

``run_spmd(program, num_ranks)`` is the ``mpiexec -n P python program.py``
analogue: it creates a :class:`~repro.simmpi.communicator.CommWorld`, spawns
one thread per rank, runs ``program(comm, *args, **kwargs)`` on each, and
returns the per-rank return values together with the world (whose stats and
clocks hold the communication volumes and simulated times of the run).

If any rank raises, all exceptions are collected and re-raised as a single
:class:`SPMDError` after the remaining ranks have been released — a hung
barrier would otherwise deadlock the process.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro.simmpi.communicator import CommWorld
from repro.simmpi.machine import BGQ_MACHINE, MachineModel

__all__ = ["SPMDError", "SPMDResult", "run_spmd"]


class SPMDError(RuntimeError):
    """Raised when one or more simulated ranks fail."""

    def __init__(self, failures: List[Tuple[int, BaseException]]) -> None:
        self.failures = failures
        summary = "; ".join(f"rank {rank}: {exc!r}" for rank, exc in failures)
        super().__init__(f"{len(failures)} rank(s) failed: {summary}")


@dataclass
class SPMDResult:
    """Per-rank return values plus the world's accounting."""

    world: CommWorld
    values: List[Any]

    @property
    def max_simulated_time(self) -> float:
        return self.world.max_clock()

    def comm_volumes_bytes(self) -> List[int]:
        return [s.total_bytes for s in self.world.stats]


def run_spmd(
    program: Callable[..., Any],
    num_ranks: int,
    *args: Any,
    machine: MachineModel = BGQ_MACHINE,
    world: Optional[CommWorld] = None,
    **kwargs: Any,
) -> SPMDResult:
    """Run ``program(comm, *args, **kwargs)`` on ``num_ranks`` simulated ranks.

    The program must be SPMD-correct: every rank calls the same collectives in
    the same order (as with real MPI).  A fresh :class:`CommWorld` is created
    unless one is supplied (supplying one allows chaining phases while keeping
    cumulative statistics).
    """
    world = world or CommWorld(num_ranks, machine=machine)
    if world.num_ranks != num_ranks:
        raise ValueError("provided world has a different number of ranks")
    results: List[Any] = [None] * num_ranks
    failures: List[Tuple[int, BaseException]] = []
    failure_lock = threading.Lock()

    def runner(rank: int) -> None:
        comm = world.communicator(rank)
        try:
            results[rank] = program(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - propagate to caller
            with failure_lock:
                failures.append((rank, exc))
            # Abort the barrier so other ranks blocked in collectives fail fast
            # instead of deadlocking.
            world._barrier.abort()

    if num_ranks == 1:
        # Run inline: cheaper and easier to debug.
        runner(0)
    else:
        threads = [
            threading.Thread(target=runner, args=(rank,), name=f"simmpi-rank-{rank}")
            for rank in range(num_ranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    if failures:
        primary = [f for f in failures if not isinstance(f[1], threading.BrokenBarrierError)]
        raise SPMDError(primary or failures)
    return SPMDResult(world=world, values=results)
