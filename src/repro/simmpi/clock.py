"""Logical (simulated) clocks for the SPMD ranks.

Every simulated rank carries a clock holding its simulated elapsed time.
Local compute advances only that rank's clock (by a time produced by the
machine model); a point-to-point receive synchronizes the receiver with the
sender's send timestamp plus the message cost; collectives synchronize all
participants to the maximum clock plus the collective cost.  This is a
Lamport-style timing simulation: it produces per-iteration times that reflect
both load imbalance (the max over ranks) and communication costs, which is all
the strong-scaling experiment needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["LogicalClock"]


@dataclass
class LogicalClock:
    """Simulated-time clock of one rank, with named accumulators."""

    rank: int
    now: float = 0.0
    categories: Dict[str, float] = field(default_factory=dict)

    def advance(self, seconds: float, category: str = "compute") -> float:
        """Advance the clock by ``seconds`` and charge it to ``category``."""
        seconds = max(float(seconds), 0.0)
        self.now += seconds
        self.categories[category] = self.categories.get(category, 0.0) + seconds
        return self.now

    def synchronize(self, target_time: float, category: str = "wait") -> float:
        """Move the clock forward to ``target_time`` (no-op if already past it)."""
        if target_time > self.now:
            self.categories[category] = (
                self.categories.get(category, 0.0) + target_time - self.now
            )
            self.now = target_time
        return self.now

    def reset(self) -> None:
        self.now = 0.0
        self.categories.clear()

    def breakdown(self) -> Dict[str, float]:
        return dict(self.categories)
