"""Simulated MPI communicator.

This is the substitution for MPI/mpi4py (not installed in this environment,
and the paper's BlueGene/Q is obviously unavailable): an SPMD runtime whose
ranks are Python threads inside one process.  The communicator exposes the
MPI-like operations the distributed HOOI needs — blocking point-to-point
send/recv with tags, barrier, broadcast, reduce, allreduce, allgather,
all-to-all (and its vector variant) — with three kinds of bookkeeping attached
to every operation:

* **payload delivery** (real data movement between the rank threads, so the
  distributed algorithms compute real numbers that are tested against the
  sequential implementation);
* **communication statistics** (bytes and message counts per rank — the
  quantities the paper's Table III reports);
* **simulated time** (logical clocks advanced with the machine model's α–β
  costs, which produce the strong-scaling numbers of Table II).

The implementation favours clarity and determinism over throughput: the
collectives are built on a shared slot table plus a reusable barrier, and
point-to-point messages go through per-destination mailboxes protected by a
condition variable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.simmpi.clock import LogicalClock
from repro.simmpi.machine import BGQ_MACHINE, MachineModel
from repro.simmpi.stats import CommStats

__all__ = ["CommWorld", "Communicator", "payload_nbytes"]

ANY_SOURCE = -1
ANY_TAG = -1


def payload_nbytes(payload: Any) -> int:
    """Approximate wire size of a payload (exact for ndarrays, heuristic otherwise)."""
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(payload, (tuple, list)):
        return sum(payload_nbytes(item) for item in payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items())
    return 64  # conservative default for small Python objects


@dataclass
class _Message:
    source: int
    tag: int
    payload: Any
    nbytes: int
    send_time: float


class CommWorld:
    """Shared state of a simulated SPMD world of ``num_ranks`` ranks."""

    def __init__(self, num_ranks: int, machine: MachineModel = BGQ_MACHINE) -> None:
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self.num_ranks = int(num_ranks)
        self.machine = machine
        self.stats = [CommStats(rank=r) for r in range(num_ranks)]
        self.clocks = [LogicalClock(rank=r) for r in range(num_ranks)]
        self._mailboxes: List[List[_Message]] = [[] for _ in range(num_ranks)]
        self._mail_cv = [threading.Condition() for _ in range(num_ranks)]
        self._barrier = threading.Barrier(num_ranks)
        self._coll_lock = threading.Lock()
        self._coll_slots: Dict[str, List[Any]] = {}
        self._coll_results: Dict[str, Any] = {}

    def communicator(self, rank: int) -> "Communicator":
        return Communicator(self, rank)

    # ------------------------------------------------------------------ #
    def reset_stats(self) -> None:
        for s in self.stats:
            s.reset()

    def reset_clocks(self) -> None:
        for c in self.clocks:
            c.reset()

    def max_clock(self) -> float:
        return max(c.now for c in self.clocks)


class Communicator:
    """Per-rank handle into a :class:`CommWorld` (the ``MPI_COMM_WORLD`` analogue)."""

    def __init__(self, world: CommWorld, rank: int) -> None:
        if not 0 <= rank < world.num_ranks:
            raise ValueError(f"rank {rank} out of range")
        self.world = world
        self.rank = int(rank)
        self._generations: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return self.world.num_ranks

    @property
    def stats(self) -> CommStats:
        return self.world.stats[self.rank]

    @property
    def clock(self) -> LogicalClock:
        return self.world.clocks[self.rank]

    @property
    def machine(self) -> MachineModel:
        return self.world.machine

    def advance_compute(self, seconds: float, category: str = "compute") -> None:
        """Charge local (modelled) compute time to this rank's simulated clock."""
        self.clock.advance(seconds, category)

    # ------------------------------------------------------------------ #
    # Point-to-point
    # ------------------------------------------------------------------ #
    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Blocking (buffered) send: deposits the message and returns."""
        if not 0 <= dest < self.size:
            raise ValueError(f"destination rank {dest} out of range")
        nbytes = payload_nbytes(payload)
        self.stats.record_send(dest, nbytes)
        message = _Message(
            source=self.rank,
            tag=int(tag),
            payload=payload,
            nbytes=nbytes,
            send_time=self.clock.now,
        )
        cv = self.world._mail_cv[dest]
        with cv:
            self.world._mailboxes[dest].append(message)
            cv.notify_all()

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive; returns the payload.

        The receiver's simulated clock is synchronized to
        ``max(own clock, sender's send time) + message cost``.
        """
        cv = self.world._mail_cv[self.rank]
        with cv:
            while True:
                box = self.world._mailboxes[self.rank]
                for i, msg in enumerate(box):
                    if (source in (ANY_SOURCE, msg.source)) and (
                        tag in (ANY_TAG, msg.tag)
                    ):
                        box.pop(i)
                        self.stats.record_receive(msg.source, msg.nbytes)
                        arrival = max(self.clock.now, msg.send_time)
                        self.clock.synchronize(arrival, category="wait")
                        self.clock.advance(
                            self.machine.message_time(msg.nbytes), category="comm"
                        )
                        return msg.payload
                cv.wait()

    def sendrecv(self, payload: Any, dest: int, source: int,
                 send_tag: int = 0, recv_tag: int = 0) -> Any:
        """Combined send + receive (deadlock-free thanks to buffered sends)."""
        self.send(payload, dest, send_tag)
        return self.recv(source, recv_tag)

    # ------------------------------------------------------------------ #
    # Collectives
    # ------------------------------------------------------------------ #
    def barrier(self) -> None:
        self._collective_op("barrier", None, 0, lambda values: None)

    # The collectives share one generic implementation.
    def _collective_op(
        self,
        kind: str,
        contribution: Any,
        nbytes: int,
        combine: Callable[[List[Any]], Any],
    ) -> Any:
        """Deposit a contribution, wait for every rank, combine, synchronize clocks.

        SPMD programs call collectives in the same order on every rank, so a
        per-rank generation counter keyed by ``kind`` yields an identical slot
        key on all ranks; the key is unique per call, which makes the cleanup
        (done by rank 0 after the exit barrier) race-free even when the same
        collective is called again immediately.
        """
        world = self.world
        generation = self._generations.get(kind, 0)
        self._generations[kind] = generation + 1
        key = f"{kind}#{generation}"
        cost = self.machine.collective_time(kind, nbytes, self.size)
        volume = self.machine.collective_volume(kind, nbytes, self.size)
        self.stats.record_collective(volume)

        with world._coll_lock:
            slots = world._coll_slots.setdefault(key, [None] * self.size)
            slots[self.rank] = (self.clock.now, contribution)
        world._barrier.wait()
        with world._coll_lock:
            entries = list(world._coll_slots[key])
        world._barrier.wait()
        if self.rank == 0:
            with world._coll_lock:
                world._coll_slots.pop(key, None)
        max_time = max(entry[0] for entry in entries)
        self.clock.synchronize(max_time, category="wait")
        self.clock.advance(cost, category="comm")
        return combine([entry[1] for entry in entries])

    def bcast(self, payload: Any, root: int = 0) -> Any:
        nbytes = payload_nbytes(payload) if self.rank == root else 0
        all_nbytes = self._collective_op(
            "bcast", nbytes, 8, lambda values: max(values)
        )
        return self._collective_op(
            "bcast", payload if self.rank == root else None, all_nbytes,
            lambda values: values[root],
        )

    def reduce(self, array: np.ndarray, root: int = 0, op: str = "sum") -> Optional[np.ndarray]:
        result = self.allreduce(array, op=op)
        return result if self.rank == root else None

    def allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        array = np.asarray(array)

        def combine(values: List[np.ndarray]) -> np.ndarray:
            stacked = [np.asarray(v) for v in values]
            if op == "sum":
                out = stacked[0].copy()
                for v in stacked[1:]:
                    out = out + v
                return out
            if op == "max":
                out = stacked[0].copy()
                for v in stacked[1:]:
                    out = np.maximum(out, v)
                return out
            if op == "min":
                out = stacked[0].copy()
                for v in stacked[1:]:
                    out = np.minimum(out, v)
                return out
            raise ValueError(f"unknown reduction op {op!r}")

        return self._collective_op("allreduce", array, array.nbytes, combine)

    def allgather(self, payload: Any) -> List[Any]:
        return self._collective_op(
            "allgather", payload, payload_nbytes(payload), lambda values: values
        )

    def gather(self, payload: Any, root: int = 0) -> Optional[List[Any]]:
        values = self._collective_op(
            "gather", payload, payload_nbytes(payload), lambda v: v
        )
        return values if self.rank == root else None

    def alltoall(self, payloads: Sequence[Any]) -> List[Any]:
        """Personalized all-to-all: ``payloads[d]`` goes to rank ``d``."""
        if len(payloads) != self.size:
            raise ValueError("alltoall needs one payload per destination rank")
        nbytes = sum(payload_nbytes(p) for p in payloads)

        def combine(values: List[Sequence[Any]]) -> List[Any]:
            return [values[src][self.rank] for src in range(self.size)]

        return self._collective_op("alltoall", list(payloads), nbytes, combine)

    def barrier_only(self) -> None:  # pragma: no cover - alias
        self.barrier()
