"""Machine performance model for the simulated cluster.

The paper's strong-scaling numbers come from an IBM BlueGene/Q: nodes with a
16-core PowerPC A2 (the paper runs 32 threads/node) connected by a 5-D torus.
We model that platform with two ingredients:

* a :class:`~repro.parallel.model.NodeModel` roofline for on-node compute
  (latency-bound TTMc, bandwidth-bound TRSVD kernels), and
* an α–β network model for communication: a message of ``m`` bytes costs
  ``α + m·β`` seconds; collectives additionally pay a ``log₂ P`` latency term
  (tree/ring algorithms).

The logical clocks of the simulated ranks are advanced with times produced by
this model; the absolute constants are documented in EXPERIMENTS.md and only
matter up to the shape of the resulting scaling curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.parallel.model import BGQ_NODE, NodeModel, PhaseWork

__all__ = ["MachineModel", "BGQ_MACHINE"]


@dataclass(frozen=True)
class MachineModel:
    """Cluster model: node roofline + α–β network."""

    node: NodeModel = BGQ_NODE
    threads_per_rank: int = 32      # the paper runs 32 threads per MPI rank
    network_latency: float = 3.0e-6     # α (seconds per message)
    network_bandwidth: float = 1.8e9    # β⁻¹ (bytes/second per link)
    collective_latency_factor: float = 1.0   # scales the log2(P) α term

    # ------------------------------------------------------------------ #
    # Compute
    # ------------------------------------------------------------------ #
    def compute_time(self, work: PhaseWork, *, threads: int | None = None) -> float:
        """On-node time of a phase executed with the rank's thread team.

        ``threads`` overrides the machine-wide ``threads_per_rank`` for one
        phase — the hybrid distributed runs charge each rank's compute at
        its *configured* team size (``HOOIOptions.num_workers`` with
        ``execution="thread"``), which is how thread-level work items feed
        the Table V per-thread roofline inside the simulated cluster.
        """
        return self.node.phase_time(work, threads or self.threads_per_rank)

    # ------------------------------------------------------------------ #
    # Point-to-point
    # ------------------------------------------------------------------ #
    def message_time(self, nbytes: int) -> float:
        """α–β cost of one point-to-point message."""
        return self.network_latency + max(int(nbytes), 0) / self.network_bandwidth

    # ------------------------------------------------------------------ #
    # Collectives
    # ------------------------------------------------------------------ #
    def collective_time(self, kind: str, nbytes: int, num_ranks: int) -> float:
        """Cost of a collective whose *per-rank contribution* is ``nbytes``.

        Standard algorithm costs (Thakur et al.): binomial tree for
        broadcast/reduce, ring / recursive doubling for the all-variants.
        ``nbytes`` is the size of one rank's send buffer (for ``allgather`` /
        ``alltoall`` that is the per-rank block; every rank therefore receives
        ``(P-1) * nbytes``).
        """
        p = max(int(num_ranks), 1)
        if p == 1:
            return 0.0
        alpha = self.network_latency * self.collective_latency_factor
        beta = 1.0 / self.network_bandwidth
        m = float(max(int(nbytes), 0))
        log_p = math.log2(p)
        if kind == "barrier":
            return log_p * alpha
        if kind in ("bcast", "reduce"):
            return log_p * (alpha + m * beta)
        if kind == "allreduce":
            return 2.0 * log_p * alpha + 2.0 * (p - 1) / p * m * beta
        if kind == "reduce_scatter":
            return log_p * alpha + (p - 1) / p * m * beta
        if kind in ("allgather", "gather", "scatter"):
            return log_p * alpha + (p - 1) * m * beta
        if kind == "alltoall":
            return (p - 1) * alpha + (p - 1) * m * beta
        raise ValueError(f"unknown collective kind {kind!r}")

    def collective_volume(self, kind: str, nbytes: int, num_ranks: int) -> int:
        """Bytes charged to each rank's communication volume for a collective."""
        p = max(int(num_ranks), 1)
        if p == 1:
            return 0
        m = int(max(int(nbytes), 0))
        if kind == "barrier":
            return 0
        if kind in ("bcast", "reduce", "gather", "scatter"):
            return m
        if kind == "allreduce":
            return 2 * m
        if kind == "reduce_scatter":
            return m
        if kind in ("allgather", "alltoall"):
            return (p - 1) * m
        raise ValueError(f"unknown collective kind {kind!r}")

    def with_overrides(self, **kwargs) -> "MachineModel":
        return replace(self, **kwargs)


#: Default machine (BlueGene/Q-like) used by the experiment harness.
BGQ_MACHINE = MachineModel()
