"""Simulated MPI: SPMD communicator, collectives, statistics and machine model."""

from repro.simmpi.clock import LogicalClock
from repro.simmpi.communicator import ANY_SOURCE, ANY_TAG, CommWorld, Communicator, payload_nbytes
from repro.simmpi.launcher import SPMDError, SPMDResult, run_spmd
from repro.simmpi.machine import BGQ_MACHINE, MachineModel
from repro.simmpi.stats import CommStats

__all__ = [
    "LogicalClock",
    "ANY_SOURCE",
    "ANY_TAG",
    "CommWorld",
    "Communicator",
    "payload_nbytes",
    "SPMDError",
    "SPMDResult",
    "run_spmd",
    "BGQ_MACHINE",
    "MachineModel",
    "CommStats",
]
