"""Tensor partitioning strategies for the distributed HOOI.

A :class:`TensorPartition` captures everything Algorithm 4 needs to know about
the data distribution:

* ``row_owner[n][i]`` — the rank that owns task ``t_i^n`` (row ``i`` of
  ``U_n`` and of ``Y_(n)``);
* ``nonzero_owner[t]`` — for fine-grain partitions, the rank that owns the
  z-task of nonzero ``t``;  coarse-grain partitions derive their (replicated)
  local tensors from the row owners instead.

Four strategies reproduce the paper's four configurations:

===========  =====================================================
fine-hp      fine-grain tasks, multilevel hypergraph partitioning
fine-rd      fine-grain tasks, uniform random assignment
coarse-hp    coarse-grain tasks, per-mode hypergraph partitioning
coarse-bl    coarse-grain tasks, contiguous block row assignment
===========  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.sparse_tensor import SparseTensor
from repro.partition.models import build_coarse_hypergraph, build_fine_hypergraph
from repro.partition.multilevel import PartitionerOptions, partition_hypergraph

__all__ = [
    "TensorPartition",
    "fine_random_partition",
    "fine_hypergraph_partition",
    "coarse_block_partition",
    "coarse_hypergraph_partition",
    "make_partition",
    "PARTITION_STRATEGIES",
]


@dataclass
class TensorPartition:
    """A task distribution of a sparse tensor over ``num_parts`` ranks."""

    kind: str                       # 'fine' or 'coarse'
    strategy: str                   # e.g. 'fine-hp'
    num_parts: int
    row_owner: List[np.ndarray]     # one array of length I_n per mode
    nonzero_owner: Optional[np.ndarray] = None   # (nnz,) for fine partitions

    def __post_init__(self) -> None:
        if self.kind not in ("fine", "coarse"):
            raise ValueError("kind must be 'fine' or 'coarse'")
        if self.kind == "fine" and self.nonzero_owner is None:
            raise ValueError("fine partitions need nonzero_owner")

    @property
    def order(self) -> int:
        return len(self.row_owner)

    def owned_rows(self, mode: int, rank: int) -> np.ndarray:
        """Row indices of ``mode`` owned by ``rank`` (sorted)."""
        return np.flatnonzero(self.row_owner[mode] == rank)

    def local_nonzero_positions(self, tensor: SparseTensor, rank: int) -> np.ndarray:
        """Positions (into the tensor's nonzero list) stored by ``rank``.

        Fine grain: the owned z-tasks.  Coarse grain: the union over modes of
        the slices whose row the rank owns (which is why coarse-grain data is
        replicated and "heavily interdependent", as the paper puts it).
        """
        if self.kind == "fine":
            return np.flatnonzero(self.nonzero_owner == rank)
        mask = np.zeros(tensor.nnz, dtype=bool)
        for mode in range(tensor.order):
            mask |= self.row_owner[mode][tensor.indices[:, mode]] == rank
        return np.flatnonzero(mask)

    def ttmc_nonzero_counts(self, tensor: SparseTensor, mode: int) -> np.ndarray:
        """Per-rank number of Kronecker contributions in the mode-``mode`` TTMc.

        This is the paper's ``W_TTMc``: fine-grain ranks process exactly their
        owned nonzeros in every mode; coarse-grain ranks process every nonzero
        of every slice they own in that mode.
        """
        if self.kind == "fine":
            return np.bincount(self.nonzero_owner, minlength=self.num_parts)
        owners = self.row_owner[mode][tensor.indices[:, mode]]
        return np.bincount(owners, minlength=self.num_parts)

    def trsvd_row_counts(self, tensor: SparseTensor, mode: int) -> np.ndarray:
        """Per-rank number of rows multiplied in the TRSVD MxV/MTxV.

        Coarse grain: the rank's owned non-empty rows.  Fine grain: the number
        of distinct mode-``mode`` indices among its nonzeros (each yields a
        partial row that participates in the local multiplies — the redundancy
        the paper equates with the hypergraph cut).
        """
        counts = np.zeros(self.num_parts, dtype=np.int64)
        if self.kind == "coarse":
            nonempty = tensor.nonempty_rows(mode)
            owners = self.row_owner[mode][nonempty]
            counts += np.bincount(owners, minlength=self.num_parts)
            return counts
        idx = tensor.indices[:, mode].astype(np.int64)
        pairs = np.unique(
            self.nonzero_owner.astype(np.int64) * np.int64(tensor.shape[mode]) + idx
        )
        owners = (pairs // np.int64(tensor.shape[mode])).astype(np.int64)
        counts += np.bincount(owners, minlength=self.num_parts)
        return counts


# --------------------------------------------------------------------------- #
# Row-owner helpers
# --------------------------------------------------------------------------- #
def _random_row_owners(
    tensor: SparseTensor, num_parts: int, rng: np.random.Generator
) -> List[np.ndarray]:
    return [
        rng.integers(0, num_parts, size=size).astype(np.int64)
        for size in tensor.shape
    ]


def _block_row_owners(tensor: SparseTensor, num_parts: int) -> List[np.ndarray]:
    owners = []
    for size in tensor.shape:
        block = -(-size // num_parts)
        owner = np.minimum(np.arange(size, dtype=np.int64) // block, num_parts - 1)
        owners.append(owner)
    return owners


def _majority_row_owners(
    tensor: SparseTensor,
    nonzero_owner: np.ndarray,
    num_parts: int,
    rng: np.random.Generator,
) -> List[np.ndarray]:
    """Assign each row to the rank holding most of its nonzeros.

    Rows with no nonzeros are dealt round-robin.  This mirrors how the
    fine-grain hypergraph model's row (net) ownership follows the partition
    that minimizes the cut.
    """
    owners: List[np.ndarray] = []
    for mode, size in enumerate(tensor.shape):
        idx = tensor.indices[:, mode].astype(np.int64)
        counts = np.zeros((size, num_parts), dtype=np.int64) if size * num_parts <= 5_000_000 else None
        owner = np.empty(size, dtype=np.int64)
        if counts is not None:
            np.add.at(counts, (idx, nonzero_owner), 1)
            owner = np.argmax(counts, axis=1).astype(np.int64)
            empty = counts.sum(axis=1) == 0
        else:
            # Memory-frugal path for very large mode sizes: majority via sort.
            keys = idx * np.int64(num_parts) + nonzero_owner
            uniq, freq = np.unique(keys, return_counts=True)
            rows_of_pair = uniq // np.int64(num_parts)
            parts_of_pair = uniq % np.int64(num_parts)
            order = np.lexsort((-freq, rows_of_pair))
            rows_sorted = rows_of_pair[order]
            first = np.concatenate(([True], rows_sorted[1:] != rows_sorted[:-1]))
            owner[:] = -1
            owner[rows_sorted[first]] = parts_of_pair[order][first]
            empty = owner < 0
        if np.any(empty):
            owner[empty] = rng.integers(0, num_parts, size=int(empty.sum()))
        owners.append(owner)
    return owners


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
def fine_random_partition(
    tensor: SparseTensor, num_parts: int, *, seed: int = 0, **_: object
) -> TensorPartition:
    """The paper's ``fine-rd``: nonzeros and rows assigned uniformly at random."""
    rng = np.random.default_rng(seed)
    nonzero_owner = rng.integers(0, num_parts, size=tensor.nnz).astype(np.int64)
    row_owner = _random_row_owners(tensor, num_parts, rng)
    return TensorPartition(
        kind="fine",
        strategy="fine-rd",
        num_parts=num_parts,
        row_owner=row_owner,
        nonzero_owner=nonzero_owner,
    )


def fine_hypergraph_partition(
    tensor: SparseTensor,
    num_parts: int,
    *,
    seed: int = 0,
    ranks: Optional[Sequence[int]] = None,
    options: Optional[PartitionerOptions] = None,
    **_: object,
) -> TensorPartition:
    """The paper's ``fine-hp``: multilevel hypergraph partition of the z-tasks."""
    rng = np.random.default_rng(seed)
    hg, _index = build_fine_hypergraph(tensor, ranks=ranks)
    options = options or PartitionerOptions(seed=seed)
    nonzero_owner = partition_hypergraph(hg, num_parts, options=options)
    row_owner = _majority_row_owners(tensor, nonzero_owner, num_parts, rng)
    return TensorPartition(
        kind="fine",
        strategy="fine-hp",
        num_parts=num_parts,
        row_owner=row_owner,
        nonzero_owner=nonzero_owner.astype(np.int64),
    )


def coarse_block_partition(
    tensor: SparseTensor, num_parts: int, **_: object
) -> TensorPartition:
    """The paper's ``coarse-bl``: contiguous blocks of rows in every mode."""
    return TensorPartition(
        kind="coarse",
        strategy="coarse-bl",
        num_parts=num_parts,
        row_owner=_block_row_owners(tensor, num_parts),
    )


def coarse_hypergraph_partition(
    tensor: SparseTensor,
    num_parts: int,
    *,
    seed: int = 0,
    ranks: Optional[Sequence[int]] = None,
    options: Optional[PartitionerOptions] = None,
    **_: object,
) -> TensorPartition:
    """The paper's ``coarse-hp``: per-mode hypergraph partition of the slices."""
    row_owner: List[np.ndarray] = []
    for mode in range(tensor.order):
        hg = build_coarse_hypergraph(tensor, mode, ranks=ranks)
        mode_options = options or PartitionerOptions(seed=seed + mode)
        row_owner.append(
            partition_hypergraph(hg, num_parts, options=mode_options).astype(np.int64)
        )
    return TensorPartition(
        kind="coarse",
        strategy="coarse-hp",
        num_parts=num_parts,
        row_owner=row_owner,
    )


PARTITION_STRATEGIES = {
    "fine-hp": fine_hypergraph_partition,
    "fine-rd": fine_random_partition,
    "coarse-hp": coarse_hypergraph_partition,
    "coarse-bl": coarse_block_partition,
}


def make_partition(
    tensor: SparseTensor, num_parts: int, strategy: str, **kwargs
) -> TensorPartition:
    """Build a partition by strategy name (``fine-hp``, ``fine-rd``, ``coarse-hp``,
    ``coarse-bl``)."""
    try:
        factory = PARTITION_STRATEGIES[strategy]
    except KeyError as exc:
        raise ValueError(
            f"unknown partition strategy {strategy!r}; expected one of "
            f"{sorted(PARTITION_STRATEGIES)}"
        ) from exc
    return factory(tensor, num_parts, **kwargs)
