"""Partition quality metrics.

The two quantities the paper cares about are (i) the connectivity-1 cutsize of
the hypergraph partition, which equals the total communication volume of one
HOOI iteration (and the amount of redundant TRSVD work in the fine-grain
case), and (ii) the load balance of the per-part vertex weights (the TTMc
work).  Both are computed here with vectorized NumPy, plus the usual
maximum/average summaries the paper's Table III reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.partition.hypergraph import Hypergraph

__all__ = [
    "PartitionQuality",
    "part_weights",
    "load_imbalance",
    "connectivity_cutsize",
    "cut_nets",
    "evaluate_partition",
    "max_avg",
]


@dataclass(frozen=True)
class PartitionQuality:
    """Summary of a K-way partition of a hypergraph."""

    num_parts: int
    cutsize: int                # connectivity-1 cutsize (total comm. volume)
    num_cut_nets: int
    part_weights: np.ndarray
    imbalance: float            # max weight / average weight - 1

    @property
    def max_part_weight(self) -> int:
        return int(self.part_weights.max()) if self.part_weights.size else 0

    @property
    def avg_part_weight(self) -> float:
        return float(self.part_weights.mean()) if self.part_weights.size else 0.0


def part_weights(hg: Hypergraph, parts: np.ndarray, num_parts: int) -> np.ndarray:
    """Total vertex weight assigned to each part."""
    parts = np.asarray(parts, dtype=np.int64)
    return np.bincount(parts, weights=hg.vertex_weights, minlength=num_parts).astype(
        np.int64
    )


def load_imbalance(weights: np.ndarray) -> float:
    """``max / mean - 1`` of the per-part weights (0 means perfectly balanced)."""
    weights = np.asarray(weights, dtype=np.float64)
    if weights.size == 0 or weights.mean() == 0:
        return 0.0
    return float(weights.max() / weights.mean() - 1.0)


def _net_part_connectivity(hg: Hypergraph, parts: np.ndarray, num_parts: int) -> np.ndarray:
    """Number of distinct parts each net touches (its connectivity λ)."""
    parts = np.asarray(parts, dtype=np.int64)
    net_of_pin = hg.net_of_pins()
    pin_parts = parts[hg.pins]
    # Count distinct (net, part) pairs per net.
    keys = net_of_pin * np.int64(num_parts) + pin_parts
    uniq = np.unique(keys)
    nets_of_uniq = uniq // np.int64(num_parts)
    return np.bincount(nets_of_uniq, minlength=hg.num_nets)


def connectivity_cutsize(hg: Hypergraph, parts: np.ndarray, num_parts: int) -> int:
    """Connectivity-1 cutsize ``Σ_e cost(e) * (λ(e) - 1)``.

    This is the objective PaToH minimizes and, per the paper's model, the
    total send volume of one HOOI iteration for the corresponding task
    distribution.
    """
    lam = _net_part_connectivity(hg, parts, num_parts)
    lam = np.maximum(lam, 1)
    return int(np.sum(hg.net_costs * (lam - 1)))


def cut_nets(hg: Hypergraph, parts: np.ndarray, num_parts: int) -> int:
    """Number of nets spanning more than one part."""
    lam = _net_part_connectivity(hg, parts, num_parts)
    return int(np.sum(lam > 1))


def evaluate_partition(
    hg: Hypergraph, parts: np.ndarray, num_parts: int
) -> PartitionQuality:
    """Compute the full quality summary for a partition vector."""
    parts = np.asarray(parts, dtype=np.int64)
    if parts.shape != (hg.num_vertices,):
        raise ValueError("parts must assign every vertex")
    if parts.size and (parts.min() < 0 or parts.max() >= num_parts):
        raise ValueError("part ids out of range")
    weights = part_weights(hg, parts, num_parts)
    return PartitionQuality(
        num_parts=num_parts,
        cutsize=connectivity_cutsize(hg, parts, num_parts),
        num_cut_nets=cut_nets(hg, parts, num_parts),
        part_weights=weights,
        imbalance=load_imbalance(weights),
    )


def max_avg(values: np.ndarray) -> Tuple[float, float]:
    """``(max, average)`` pair used throughout the Table III reproduction."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 0.0, 0.0
    return float(values.max()), float(values.mean())
