"""Hypergraph data structure.

The paper models the computational tasks of the distributed HOOI and their
data dependencies as a hypergraph (Section III-B, following Kaya & Uçar's
SC'15 CP-ALS work [16]): vertices are tasks, nets (hyperedges) connect the
tasks that share a data item, and the connectivity-1 cutsize of a K-way
partition equals the communication volume of one iteration.  PaToH plays the
partitioner role in the paper; :mod:`repro.partition.multilevel` plays it
here.

Storage is CSR-like on both sides (nets → pins and vertices → nets) so the
partitioners and metrics can be written with vectorized NumPy operations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["Hypergraph"]


class Hypergraph:
    """An undirected hypergraph with vertex weights and net costs.

    Parameters
    ----------
    num_vertices:
        Number of vertices (tasks).
    net_pins:
        Sequence of pin lists — ``net_pins[e]`` is an iterable of vertex ids
        connected by net ``e`` — **or** a pre-built ``(net_ptr, pins)`` CSR
        pair (both int64 ndarrays).
    vertex_weights:
        Optional per-vertex weights (default all ones).
    net_costs:
        Optional per-net costs (default all ones).
    """

    def __init__(
        self,
        num_vertices: int,
        net_pins,
        *,
        vertex_weights: Optional[np.ndarray] = None,
        net_costs: Optional[np.ndarray] = None,
    ) -> None:
        self.num_vertices = int(num_vertices)
        if self.num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")

        if isinstance(net_pins, tuple) and len(net_pins) == 2:
            net_ptr, pins = net_pins
            self.net_ptr = np.asarray(net_ptr, dtype=np.int64)
            self.pins = np.asarray(pins, dtype=np.int64)
        else:
            lists = [np.asarray(list(p), dtype=np.int64) for p in net_pins]
            sizes = np.array([p.shape[0] for p in lists], dtype=np.int64)
            self.net_ptr = np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
            self.pins = (
                np.concatenate(lists) if lists else np.empty(0, dtype=np.int64)
            )
        if self.net_ptr.ndim != 1 or self.net_ptr[0] != 0:
            raise ValueError("net_ptr must be a 1-D array starting at 0")
        if np.any(np.diff(self.net_ptr) < 0):
            raise ValueError("net_ptr must be non-decreasing")
        if self.pins.shape[0] != self.net_ptr[-1]:
            raise ValueError("pins length does not match net_ptr")
        if self.pins.size and (self.pins.min() < 0 or self.pins.max() >= self.num_vertices):
            raise ValueError("pin vertex id out of range")

        self.num_nets = int(self.net_ptr.shape[0] - 1)

        if vertex_weights is None:
            self.vertex_weights = np.ones(self.num_vertices, dtype=np.int64)
        else:
            self.vertex_weights = np.asarray(vertex_weights, dtype=np.int64)
            if self.vertex_weights.shape != (self.num_vertices,):
                raise ValueError("vertex_weights must have one entry per vertex")
        if net_costs is None:
            self.net_costs = np.ones(self.num_nets, dtype=np.int64)
        else:
            self.net_costs = np.asarray(net_costs, dtype=np.int64)
            if self.net_costs.shape != (self.num_nets,):
                raise ValueError("net_costs must have one entry per net")

        self._vertex_ptr: Optional[np.ndarray] = None
        self._vertex_nets: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    @property
    def num_pins(self) -> int:
        return int(self.pins.shape[0])

    @property
    def total_vertex_weight(self) -> int:
        return int(self.vertex_weights.sum())

    def net_sizes(self) -> np.ndarray:
        return np.diff(self.net_ptr)

    def net(self, e: int) -> np.ndarray:
        """Pins of net ``e``."""
        return self.pins[self.net_ptr[e]: self.net_ptr[e + 1]]

    def net_of_pins(self) -> np.ndarray:
        """For every pin position, the id of its net (length ``num_pins``)."""
        return np.repeat(np.arange(self.num_nets, dtype=np.int64), self.net_sizes())

    # ------------------------------------------------------------------ #
    def _build_vertex_adjacency(self) -> None:
        if self._vertex_ptr is not None:
            return
        net_of_pin = self.net_of_pins()
        order = np.argsort(self.pins, kind="stable")
        sorted_vertices = self.pins[order]
        self._vertex_nets = net_of_pin[order]
        counts = np.bincount(sorted_vertices, minlength=self.num_vertices)
        self._vertex_ptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)

    @property
    def vertex_ptr(self) -> np.ndarray:
        """CSR pointer of the vertex → nets adjacency."""
        self._build_vertex_adjacency()
        return self._vertex_ptr

    @property
    def vertex_nets(self) -> np.ndarray:
        """CSR indices of the vertex → nets adjacency."""
        self._build_vertex_adjacency()
        return self._vertex_nets

    def nets_of_vertex(self, v: int) -> np.ndarray:
        self._build_vertex_adjacency()
        return self._vertex_nets[self._vertex_ptr[v]: self._vertex_ptr[v + 1]]

    def vertex_degrees(self) -> np.ndarray:
        """Number of nets incident to each vertex."""
        return np.diff(self.vertex_ptr)

    # ------------------------------------------------------------------ #
    def restrict_to_vertices(
        self, vertex_ids: np.ndarray
    ) -> Tuple["Hypergraph", np.ndarray]:
        """Induced sub-hypergraph on ``vertex_ids``.

        Nets are restricted to the selected vertices; nets that end up with
        fewer than two pins are dropped (they can never be cut).  Returns the
        sub-hypergraph and the array mapping new vertex ids to the original
        ones (``vertex_ids`` itself, for convenience).
        """
        vertex_ids = np.asarray(vertex_ids, dtype=np.int64)
        remap = -np.ones(self.num_vertices, dtype=np.int64)
        remap[vertex_ids] = np.arange(vertex_ids.shape[0], dtype=np.int64)

        net_of_pin = self.net_of_pins()
        keep_pin = remap[self.pins] >= 0
        kept_nets = net_of_pin[keep_pin]
        kept_pins = remap[self.pins[keep_pin]]
        # Count surviving pins per net; keep nets with >= 2 pins.
        pin_counts = np.bincount(kept_nets, minlength=self.num_nets)
        keep_net = pin_counts >= 2
        net_remap = -np.ones(self.num_nets, dtype=np.int64)
        net_remap[keep_net] = np.arange(int(keep_net.sum()), dtype=np.int64)
        select = keep_net[kept_nets]
        new_net_of_pin = net_remap[kept_nets[select]]
        new_pins = kept_pins[select]
        order = np.argsort(new_net_of_pin, kind="stable")
        new_net_of_pin = new_net_of_pin[order]
        new_pins = new_pins[order]
        new_counts = np.bincount(new_net_of_pin, minlength=int(keep_net.sum()))
        new_ptr = np.concatenate(([0], np.cumsum(new_counts))).astype(np.int64)
        sub = Hypergraph(
            vertex_ids.shape[0],
            (new_ptr, new_pins),
            vertex_weights=self.vertex_weights[vertex_ids],
            net_costs=self.net_costs[keep_net],
        )
        return sub, vertex_ids

    def contract(self, cluster_of: np.ndarray) -> "Hypergraph":
        """Coarsen the hypergraph by merging vertices with the same cluster id.

        ``cluster_of`` maps each vertex to a cluster id in
        ``0..num_clusters-1``.  Vertex weights are summed; duplicate pins
        within a net collapse; nets reduced to a single pin are dropped;
        identical nets are merged with their costs added (PaToH's "identical
        net" optimization, which keeps coarse levels small).
        """
        cluster_of = np.asarray(cluster_of, dtype=np.int64)
        if cluster_of.shape != (self.num_vertices,):
            raise ValueError("cluster_of must map every vertex")
        num_clusters = int(cluster_of.max()) + 1 if cluster_of.size else 0
        weights = np.bincount(
            cluster_of, weights=self.vertex_weights, minlength=num_clusters
        ).astype(np.int64)

        net_of_pin = self.net_of_pins()
        coarse_pins = cluster_of[self.pins]
        # Deduplicate (net, coarse vertex) pairs.
        keys = net_of_pin * np.int64(max(num_clusters, 1)) + coarse_pins
        uniq_keys, first_pos = np.unique(keys, return_index=True)
        dedup_nets = net_of_pin[first_pos]
        dedup_pins = coarse_pins[first_pos]
        counts = np.bincount(dedup_nets, minlength=self.num_nets)
        keep_net = counts >= 2

        # Merge identical nets: hash each surviving net's sorted pin list.
        order = np.lexsort((dedup_pins, dedup_nets))
        dedup_nets = dedup_nets[order]
        dedup_pins = dedup_pins[order]
        keep_mask = keep_net[dedup_nets]
        dedup_nets = dedup_nets[keep_mask]
        dedup_pins = dedup_pins[keep_mask]
        kept_net_ids = np.flatnonzero(keep_net)
        if kept_net_ids.size == 0:
            return Hypergraph(
                num_clusters,
                (np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64)),
                vertex_weights=weights,
                net_costs=np.empty(0, dtype=np.int64),
            )
        # Detect identical nets with a vectorized content hash: nets with the
        # same (size, hash) are merged and their costs added (PaToH's
        # identical-net optimization).  Collisions are astronomically unlikely
        # (two independent 64-bit mixes) and would only affect partition
        # quality, never correctness of the downstream algorithms.
        net_remap = -np.ones(self.num_nets, dtype=np.int64)
        net_remap[kept_net_ids] = np.arange(kept_net_ids.shape[0])
        local_net = net_remap[dedup_nets]
        local_counts = np.bincount(local_net, minlength=kept_net_ids.shape[0])
        local_ptr = np.concatenate(([0], np.cumsum(local_counts))).astype(np.int64)
        mix1 = (dedup_pins.astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15))
        mix1 = (mix1 ^ (mix1 >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        mix1 = mix1 ^ (mix1 >> np.uint64(27))
        mix2 = (dedup_pins.astype(np.uint64) * np.uint64(0xC2B2AE3D27D4EB4F)) ^ np.uint64(0x165667B19E3779F9)
        mix2 = mix2 ^ (mix2 >> np.uint64(29))
        hash1 = np.zeros(kept_net_ids.shape[0], dtype=np.uint64)
        hash2 = np.zeros(kept_net_ids.shape[0], dtype=np.uint64)
        np.add.at(hash1, local_net, mix1)
        np.add.at(hash2, local_net, mix2)
        kept_costs = self.net_costs[kept_net_ids]
        signature = np.stack(
            [local_counts.astype(np.uint64), hash1, hash2], axis=1
        )
        _, rep_index, group_of = np.unique(
            signature, axis=0, return_index=True, return_inverse=True
        )
        merged_costs = np.zeros(rep_index.shape[0], dtype=np.int64)
        np.add.at(merged_costs, group_of.ravel(), kept_costs)
        # Gather the pins of each representative net.
        rep_sizes = local_counts[rep_index]
        rep_starts = local_ptr[rep_index]
        ends = np.cumsum(rep_sizes)
        begins = ends - rep_sizes
        offsets = np.repeat(rep_starts - begins, rep_sizes)
        final_pins = dedup_pins[np.arange(int(rep_sizes.sum()), dtype=np.int64) + offsets]
        final_ptr = np.concatenate(([0], ends)).astype(np.int64)
        return Hypergraph(
            num_clusters,
            (final_ptr, final_pins),
            vertex_weights=weights,
            net_costs=merged_costs,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Hypergraph(V={self.num_vertices}, E={self.num_nets}, "
            f"pins={self.num_pins})"
        )
