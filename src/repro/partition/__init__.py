"""Hypergraph models and partitioners for the distributed HOOI task decompositions."""

from repro.partition.hypergraph import Hypergraph
from repro.partition.metrics import (
    PartitionQuality,
    connectivity_cutsize,
    cut_nets,
    evaluate_partition,
    load_imbalance,
    max_avg,
    part_weights,
)
from repro.partition.models import (
    FineModelIndex,
    build_coarse_hypergraph,
    build_fine_hypergraph,
)
from repro.partition.multilevel import (
    PartitionerOptions,
    multilevel_bisect,
    partition_hypergraph,
)
from repro.partition.strategies import (
    PARTITION_STRATEGIES,
    TensorPartition,
    coarse_block_partition,
    coarse_hypergraph_partition,
    fine_hypergraph_partition,
    fine_random_partition,
    make_partition,
)

__all__ = [
    "Hypergraph",
    "PartitionQuality",
    "connectivity_cutsize",
    "cut_nets",
    "evaluate_partition",
    "load_imbalance",
    "max_avg",
    "part_weights",
    "FineModelIndex",
    "build_coarse_hypergraph",
    "build_fine_hypergraph",
    "PartitionerOptions",
    "multilevel_bisect",
    "partition_hypergraph",
    "PARTITION_STRATEGIES",
    "TensorPartition",
    "coarse_block_partition",
    "coarse_hypergraph_partition",
    "fine_hypergraph_partition",
    "fine_random_partition",
    "make_partition",
]
