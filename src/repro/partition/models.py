"""Hypergraph models of the HOOI task decompositions.

Following Section III-B of the paper (and the SC'15 CP-ALS work it adopts the
models from), two hypergraphs are built from a sparse tensor:

* **Fine-grain model** — one vertex per nonzero (the z-task that computes the
  nonzero's Kronecker contribution in every mode) and one net per tensor index
  ``(mode n, row i)``, connecting all nonzeros whose mode-``n`` index is ``i``.
  A net cut between λ parts forces λ−1 partial results / factor-row transfers
  for that row per iteration, so the connectivity-1 cutsize is the
  communication volume (and the redundant TRSVD row count).
* **Coarse-grain model** (per mode ``n``) — one vertex per mode-``n`` index
  (the coarse task ``t_i^n``, weighted by the number of nonzeros of the slice
  ``X(i_n = i)``, i.e. its TTMc work) and one net per index of every *other*
  mode, connecting the mode-``n`` slices that need that factor row.

Net costs default to 1 (a unit of communication per cut index per iteration);
passing the decomposition ranks scales each net by ``R_m`` of its mode, which
weights factor-row traffic more faithfully.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.sparse_tensor import SparseTensor
from repro.partition.hypergraph import Hypergraph
from repro.util.validation import check_axis

__all__ = ["build_fine_hypergraph", "build_coarse_hypergraph", "FineModelIndex"]


class FineModelIndex:
    """Bookkeeping that maps fine-model nets back to (mode, tensor index).

    ``net_mode[e]`` and ``net_index[e]`` identify the tensor row a net stands
    for; ``first_net_of_mode[n]`` gives the net-id offset of mode ``n``'s
    block of nets.
    """

    def __init__(self, net_mode: np.ndarray, net_index: np.ndarray,
                 first_net_of_mode: np.ndarray) -> None:
        self.net_mode = net_mode
        self.net_index = net_index
        self.first_net_of_mode = first_net_of_mode

    def net_for(self, mode: int, nonempty_rank: int) -> int:
        """Net id of the ``nonempty_rank``-th non-empty row of ``mode``."""
        return int(self.first_net_of_mode[mode] + nonempty_rank)


def build_fine_hypergraph(
    tensor: SparseTensor,
    *,
    ranks: Optional[Sequence[int]] = None,
) -> Tuple[Hypergraph, FineModelIndex]:
    """Build the fine-grain hypergraph of a sparse tensor.

    Vertices are the nonzeros (unit weight — every z-task performs the same
    amount of TTMc work, which is why the paper's fine-grain partitions are
    perfectly TTMc-balanced).  Nets are the non-empty ``(mode, index)`` pairs.
    """
    nnz = tensor.nnz
    pins_parts = []
    ptr_parts = [np.zeros(1, dtype=np.int64)]
    net_modes = []
    net_indices = []
    net_costs = []
    first_net_of_mode = np.zeros(tensor.order, dtype=np.int64)
    net_counter = 0
    pin_offset = 0
    for mode in range(tensor.order):
        first_net_of_mode[mode] = net_counter
        if nnz == 0:
            continue
        idx = tensor.indices[:, mode]
        order = np.argsort(idx, kind="stable").astype(np.int64)
        sorted_idx = idx[order]
        boundary = np.empty(nnz, dtype=bool)
        boundary[0] = True
        np.not_equal(sorted_idx[1:], sorted_idx[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary).astype(np.int64)
        rows = sorted_idx[boundary]
        # This mode contributes one net per non-empty row; the pins are the
        # row-grouped nonzero permutation (identical to the symbolic TTMc
        # structure), so the CSR can be emitted directly.
        pins_parts.append(order)
        ends = np.concatenate([starts[1:], [nnz]]).astype(np.int64)
        ptr_parts.append(ends + pin_offset)
        cost = 1 if ranks is None else int(ranks[mode])
        net_modes.append(np.full(rows.shape[0], mode, dtype=np.int64))
        net_indices.append(rows.astype(np.int64))
        net_costs.append(np.full(rows.shape[0], cost, dtype=np.int64))
        net_counter += int(rows.shape[0])
        pin_offset += nnz
    if nnz == 0:
        hg = Hypergraph(0, (np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64)))
        index = FineModelIndex(
            net_mode=np.empty(0, dtype=np.int64),
            net_index=np.empty(0, dtype=np.int64),
            first_net_of_mode=first_net_of_mode,
        )
        return hg, index
    net_ptr = np.concatenate(ptr_parts)
    pins = np.concatenate(pins_parts)
    hg = Hypergraph(
        nnz,
        (net_ptr, pins),
        vertex_weights=np.ones(nnz, dtype=np.int64),
        net_costs=np.concatenate(net_costs),
    )
    index = FineModelIndex(
        net_mode=np.concatenate(net_modes),
        net_index=np.concatenate(net_indices),
        first_net_of_mode=first_net_of_mode,
    )
    return hg, index


def build_coarse_hypergraph(
    tensor: SparseTensor,
    mode: int,
    *,
    ranks: Optional[Sequence[int]] = None,
) -> Hypergraph:
    """Build the coarse-grain hypergraph for one mode.

    Vertices are the mode-``mode`` indices ``0..I_n-1`` (weight = slice
    nonzero count; empty slices get weight 0 and are effectively free to
    place).  For every other mode ``m`` and index ``j`` with at least two
    distinct mode-``mode`` slices touching it, a net connects those slices.
    """
    mode = check_axis(mode, tensor.order)
    n_rows = tensor.shape[mode]
    weights = tensor.mode_counts(mode).astype(np.int64)
    pins_parts = []
    sizes_parts = []
    costs_parts = []
    row_idx = tensor.indices[:, mode].astype(np.int64)
    for other in range(tensor.order):
        if other == mode:
            continue
        other_idx = tensor.indices[:, other].astype(np.int64)
        # Distinct (other index, row) pairs, sorted by the other index: the
        # pins of the net for other-index ``j`` are the distinct mode rows
        # that co-occur with ``j`` in some nonzero.
        keys = other_idx * np.int64(n_rows) + row_idx
        uniq = np.unique(keys)
        if uniq.size == 0:
            continue
        net_of_pair = uniq // np.int64(n_rows)
        pin_of_pair = uniq % np.int64(n_rows)
        boundary = np.empty(net_of_pair.shape, dtype=bool)
        boundary[0] = True
        np.not_equal(net_of_pair[1:], net_of_pair[:-1], out=boundary[1:])
        group_id = np.cumsum(boundary) - 1
        group_sizes = np.bincount(group_id)
        keep_pair = group_sizes[group_id] >= 2
        kept_sizes = group_sizes[group_sizes >= 2]
        if kept_sizes.size == 0:
            continue
        pins_parts.append(pin_of_pair[keep_pair])
        sizes_parts.append(kept_sizes.astype(np.int64))
        cost = 1 if ranks is None else int(ranks[other])
        costs_parts.append(np.full(kept_sizes.shape[0], cost, dtype=np.int64))
    if not pins_parts:
        return Hypergraph(
            n_rows,
            (np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64)),
            vertex_weights=weights,
            net_costs=np.empty(0, dtype=np.int64),
        )
    sizes = np.concatenate(sizes_parts)
    net_ptr = np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
    return Hypergraph(
        n_rows,
        (net_ptr, np.concatenate(pins_parts)),
        vertex_weights=weights,
        net_costs=np.concatenate(costs_parts),
    )
