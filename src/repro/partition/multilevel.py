"""Multilevel K-way hypergraph partitioner (the PaToH substitute).

The paper delegates partitioning to PaToH; this module provides a from-scratch
multilevel partitioner with the same interface contract: given a hypergraph
with vertex weights and net costs, produce a K-way partition that (i) keeps
part weights within a balance tolerance and (ii) has low connectivity-1
cutsize.  Structure:

* **Coarsening** — agglomerative clustering: every vertex nominates its
  "strongest" small net and vertices nominating the same net are merged (with
  a cluster-size cap to protect balance), a vectorized variant of PaToH's
  absorption clustering.  Levels are built until the hypergraph is small or
  the reduction stalls.
* **Initial partitioning** — greedy growth bisection on the coarsest level
  (BFS over nets from a random seed vertex until half the weight is absorbed),
  best of several random seeds.
* **Refinement** — boundary Fisduccia–Mattheyses-style passes: gains are
  computed vectorized for all boundary vertices, candidate moves are applied
  in gain order with an exact re-check against the current pin counts and the
  balance constraint.
* **K-way** — recursive bisection with proportional target weights, so any
  number of parts (not just powers of two) is supported.

The goal is not to match PaToH's cut quality bit-for-bit but to provide the
qualitative behaviour the paper relies on: hypergraph-informed partitions with
dramatically lower communication volume than random or block partitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.partition.hypergraph import Hypergraph
from repro.partition.metrics import connectivity_cutsize, part_weights

__all__ = ["PartitionerOptions", "multilevel_bisect", "partition_hypergraph"]


@dataclass(frozen=True)
class PartitionerOptions:
    """Tuning knobs of the multilevel partitioner."""

    epsilon: float = 0.10           # allowed imbalance (max/avg - 1)
    coarsen_until: int = 160        # stop coarsening below this many vertices
    max_levels: int = 25
    min_reduction: float = 0.92     # stop if a level shrinks less than this factor
    refine_passes: int = 6
    initial_trials: int = 8
    seed: int = 0


# --------------------------------------------------------------------------- #
# Coarsening
# --------------------------------------------------------------------------- #
def _coarsen_once(
    hg: Hypergraph, rng: np.random.Generator, max_cluster_weight: float
) -> Tuple[Hypergraph, np.ndarray]:
    """One level of agglomerative (net-nomination) coarsening.

    Each vertex nominates its smallest incident net (small nets indicate
    strong connections); vertices nominating the same net are clustered
    together, greedily splitting a group when its weight would exceed
    ``max_cluster_weight``.  Isolated vertices stay singletons.
    """
    num_v = hg.num_vertices
    sizes = hg.net_sizes()
    # Nominate, for every vertex, the incident net with the fewest pins
    # (ties broken by net id).  Vectorized over the vertex->net CSR.
    vptr, vnets = hg.vertex_ptr, hg.vertex_nets
    nomination = -np.ones(num_v, dtype=np.int64)
    if vnets.size:
        net_size_of_adj = sizes[vnets]
        # For each vertex pick the position of the minimal net size.
        # Work per vertex segment with np.minimum.reduceat.
        degrees = np.diff(vptr)
        nonzero_deg = np.flatnonzero(degrees > 0)
        if nonzero_deg.size:
            starts = vptr[nonzero_deg]
            seg_min = np.minimum.reduceat(net_size_of_adj, starts)
            # Find, within each segment, the first net matching the minimum.
            # Build a mask and use argmax over segments.
            for_vertex = np.repeat(nonzero_deg, degrees[nonzero_deg])
            is_min = net_size_of_adj == np.repeat(seg_min, degrees[nonzero_deg])
            # position of first True per segment
            pin_positions = np.arange(vnets.shape[0], dtype=np.int64)
            candidate_pos = np.where(is_min, pin_positions, np.iinfo(np.int64).max)
            first_min = np.minimum.reduceat(candidate_pos, starts)
            nomination[nonzero_deg] = vnets[first_min]

    order = rng.permutation(num_v)
    cluster_of = -np.ones(num_v, dtype=np.int64)
    cluster_weight: List[int] = []
    cluster_for_net: dict = {}
    weights = hg.vertex_weights
    next_cluster = 0
    for v in order:
        net = nomination[v]
        wv = int(weights[v])
        if net >= 0 and net in cluster_for_net:
            c = cluster_for_net[net]
            if cluster_weight[c] + wv <= max_cluster_weight:
                cluster_of[v] = c
                cluster_weight[c] += wv
                continue
        cluster_of[v] = next_cluster
        cluster_weight.append(wv)
        if net >= 0:
            cluster_for_net[net] = next_cluster
        next_cluster += 1
    coarse = hg.contract(cluster_of)
    return coarse, cluster_of


# --------------------------------------------------------------------------- #
# Initial bisection
# --------------------------------------------------------------------------- #
def _greedy_growth_bisection(
    hg: Hypergraph,
    target0: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Grow part 0 from a random seed vertex until it reaches ``target0`` weight."""
    num_v = hg.num_vertices
    parts = np.ones(num_v, dtype=np.int64)
    if num_v == 0:
        return parts
    weights = hg.vertex_weights
    vptr, vnets = hg.vertex_ptr, hg.vertex_nets
    nptr, pins = hg.net_ptr, hg.pins
    in_front = np.zeros(num_v, dtype=bool)
    seed = int(rng.integers(num_v))
    frontier = [seed]
    in_front[seed] = True
    weight0 = 0.0
    while frontier and weight0 < target0:
        v = frontier.pop()
        if parts[v] == 0:
            continue
        parts[v] = 0
        weight0 += weights[v]
        for e in vnets[vptr[v]: vptr[v + 1]]:
            for u in pins[nptr[e]: nptr[e + 1]]:
                if parts[u] == 1 and not in_front[u]:
                    in_front[u] = True
                    frontier.append(u)
        if not frontier and weight0 < target0:
            remaining = np.flatnonzero(parts == 1)
            if remaining.size == 0:
                break
            nxt = int(remaining[rng.integers(remaining.size)])
            frontier.append(nxt)
            in_front[nxt] = True
    return parts


def _bisection_gains(
    hg: Hypergraph, parts: np.ndarray, pins_in_part: np.ndarray
) -> np.ndarray:
    """FM gain of moving each vertex to the other side (vectorized).

    ``pins_in_part`` is ``(num_nets, 2)`` with the pin counts per side.  For a
    vertex in part ``p`` and net ``e``:  +cost if it is the only pin of ``e``
    in ``p`` (the net becomes uncut), −cost if the other side currently has no
    pin (the net becomes cut).
    """
    vptr, vnets = hg.vertex_ptr, hg.vertex_nets
    my_part = parts[np.repeat(np.arange(hg.num_vertices), np.diff(vptr))]
    my_count = pins_in_part[vnets, my_part]
    other_count = pins_in_part[vnets, 1 - my_part]
    costs = hg.net_costs[vnets].astype(np.float64)
    contrib = np.where(my_count == 1, costs, 0.0) - np.where(other_count == 0, costs, 0.0)
    gains = np.zeros(hg.num_vertices, dtype=np.float64)
    np.add.at(gains, np.repeat(np.arange(hg.num_vertices), np.diff(vptr)), contrib)
    return gains


def _refine_bisection(
    hg: Hypergraph,
    parts: np.ndarray,
    targets: Tuple[float, float],
    epsilon: float,
    passes: int,
) -> np.ndarray:
    """Boundary FM-style refinement of a bisection (in place, returns parts)."""
    weights = hg.vertex_weights.astype(np.float64)
    nptr, pins = hg.net_ptr, hg.pins
    net_of_pin = hg.net_of_pins()
    max_weight = (
        targets[0] * (1.0 + epsilon),
        targets[1] * (1.0 + epsilon),
    )
    for _ in range(max(passes, 1)):
        pins_in_part = np.zeros((hg.num_nets, 2), dtype=np.int64)
        np.add.at(pins_in_part, (net_of_pin, parts[pins]), 1)
        side_weight = np.array(
            [weights[parts == 0].sum(), weights[parts == 1].sum()]
        )
        gains = _bisection_gains(hg, parts, pins_in_part)
        candidates = np.flatnonzero(gains > 0)
        if candidates.size == 0:
            # Allow zero-gain rebalancing moves if a side is overweight.
            if side_weight[0] > max_weight[0] or side_weight[1] > max_weight[1]:
                candidates = np.flatnonzero(gains >= 0)
            if candidates.size == 0:
                break
        order = candidates[np.argsort(-gains[candidates], kind="stable")]
        moved_any = False
        vptr, vnets = hg.vertex_ptr, hg.vertex_nets
        costs = hg.net_costs
        for v in order:
            src = int(parts[v])
            dst = 1 - src
            if side_weight[dst] + weights[v] > max_weight[dst]:
                continue
            # Exact gain re-check against current counts.
            nets_v = vnets[vptr[v]: vptr[v + 1]]
            my = pins_in_part[nets_v, src]
            other = pins_in_part[nets_v, dst]
            gain = float(
                np.sum(np.where(my == 1, costs[nets_v], 0))
                - np.sum(np.where(other == 0, costs[nets_v], 0))
            )
            overweight = side_weight[src] > max_weight[src]
            if gain < 0 or (gain == 0 and not overweight):
                continue
            parts[v] = dst
            side_weight[src] -= weights[v]
            side_weight[dst] += weights[v]
            pins_in_part[nets_v, src] -= 1
            pins_in_part[nets_v, dst] += 1
            moved_any = True
        if not moved_any:
            break
    return parts


# --------------------------------------------------------------------------- #
# Multilevel bisection and recursive K-way
# --------------------------------------------------------------------------- #
def multilevel_bisect(
    hg: Hypergraph,
    *,
    target_fraction: float = 0.5,
    options: Optional[PartitionerOptions] = None,
) -> np.ndarray:
    """Bisect ``hg`` into parts {0, 1} with part 0 receiving ``target_fraction``
    of the total vertex weight (within the balance tolerance)."""
    options = options or PartitionerOptions()
    rng = np.random.default_rng(options.seed)
    total_weight = float(hg.total_vertex_weight)
    targets = (total_weight * target_fraction, total_weight * (1.0 - target_fraction))

    # ---- coarsening phase
    levels: List[Tuple[Hypergraph, np.ndarray]] = []   # (fine hg, cluster_of)
    current = hg
    max_cluster_weight = max(total_weight / max(options.coarsen_until, 1), 1.0) * 2.0
    for _ in range(options.max_levels):
        if current.num_vertices <= options.coarsen_until or current.num_nets == 0:
            break
        coarse, cluster_of = _coarsen_once(current, rng, max_cluster_weight)
        if coarse.num_vertices >= current.num_vertices * options.min_reduction:
            break
        levels.append((current, cluster_of))
        current = coarse

    # ---- initial partitioning on the coarsest hypergraph
    best_parts: Optional[np.ndarray] = None
    best_cut = np.inf
    for _ in range(max(options.initial_trials, 1)):
        parts = _greedy_growth_bisection(current, targets[0], rng)
        parts = _refine_bisection(
            current, parts, targets, options.epsilon, options.refine_passes
        )
        cut = connectivity_cutsize(current, parts, 2)
        weights = part_weights(current, parts, 2).astype(np.float64)
        balanced = (
            weights[0] <= targets[0] * (1 + options.epsilon)
            and weights[1] <= targets[1] * (1 + options.epsilon)
        )
        score = cut + (0 if balanced else total_weight)
        if score < best_cut:
            best_cut = score
            best_parts = parts.copy()
    parts = best_parts if best_parts is not None else np.zeros(
        current.num_vertices, dtype=np.int64
    )

    # ---- uncoarsening + refinement
    for fine, cluster_of in reversed(levels):
        parts = parts[cluster_of]
        parts = _refine_bisection(
            fine, parts, targets, options.epsilon, options.refine_passes
        )
    return parts


def partition_hypergraph(
    hg: Hypergraph,
    num_parts: int,
    *,
    options: Optional[PartitionerOptions] = None,
) -> np.ndarray:
    """K-way partition by recursive multilevel bisection.

    Returns an array of part ids in ``0..num_parts-1`` for every vertex.
    """
    options = options or PartitionerOptions()
    num_parts = int(num_parts)
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    parts = np.zeros(hg.num_vertices, dtype=np.int64)
    if num_parts == 1 or hg.num_vertices == 0:
        return parts

    # Recursive bisection multiplies the imbalance of every level, so each
    # bisection gets the per-level tolerance (1 + eps)^(1/levels) - 1 to keep
    # the final K-way imbalance within the requested epsilon.
    levels_deep = max(int(np.ceil(np.log2(num_parts))), 1)
    level_epsilon = (1.0 + options.epsilon) ** (1.0 / levels_deep) - 1.0

    def recurse(sub: Hypergraph, vertex_ids: np.ndarray, k: int, first_part: int,
                depth: int) -> None:
        if k == 1:
            parts[vertex_ids] = first_part
            return
        k_left = k // 2
        k_right = k - k_left
        frac = k_left / k
        sub_options = PartitionerOptions(
            epsilon=level_epsilon,
            coarsen_until=options.coarsen_until,
            max_levels=options.max_levels,
            min_reduction=options.min_reduction,
            refine_passes=options.refine_passes,
            initial_trials=options.initial_trials,
            seed=options.seed + depth * 1009 + first_part,
        )
        bisection = multilevel_bisect(sub, target_fraction=frac, options=sub_options)
        left_ids = vertex_ids[bisection == 0]
        right_ids = vertex_ids[bisection == 1]
        if left_ids.size == 0 or right_ids.size == 0:
            # Degenerate split (e.g. a single huge vertex): fall back to a
            # weight-balanced round-robin so recursion always terminates.
            order = np.argsort(-sub.vertex_weights, kind="stable")
            assign = np.zeros(sub.num_vertices, dtype=np.int64)
            running = np.zeros(2)
            split_targets = np.array([frac, 1 - frac]) * sub.vertex_weights.sum()
            for v in order:
                side = int(np.argmin(running / np.maximum(split_targets, 1e-9)))
                assign[v] = side
                running[side] += sub.vertex_weights[v]
            left_ids = vertex_ids[assign == 0]
            right_ids = vertex_ids[assign == 1]
            bisection = assign
        left_sub, _ = sub.restrict_to_vertices(np.flatnonzero(bisection == 0))
        right_sub, _ = sub.restrict_to_vertices(np.flatnonzero(bisection == 1))
        recurse(left_sub, left_ids, k_left, first_part, depth + 1)
        recurse(right_sub, right_ids, k_right, first_part + k_left, depth + 1)

    recurse(hg, np.arange(hg.num_vertices, dtype=np.int64), num_parts, 0, 0)
    return parts
