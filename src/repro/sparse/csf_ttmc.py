"""Fiber-vectorized TTMc kernels over CSF trees.

The COO kernel (:func:`repro.core.ttmc.ttmc_matricized`) expands, for every
nonzero, the full ``(N−1)``-way Kronecker row of width ``∏_{t≠n} R_t`` before
reducing by output row — ``O(nnz · ∏R)`` multiply work no matter how much
structure the tensor has.  On a CSF tree the same sum factors over the fiber
hierarchy:

* **pullup** (towards the root): the partial product of the levels *below*
  a node is shared by everything above it, so each level is one batched
  gather + row-wise Kronecker + one segment reduction over the fiber
  extents (``np.add.reduceat(contrib, fptr[level - 1][:-1])``).  The widths
  grow level by level while the node counts shrink — the expansion to the
  full ``∏R`` width happens over *merged fibers*, not raw nonzeros;
* **pushdown** (from the root): the partial product of the levels *above*
  the target is the same for every node of a subtree, so it is built once
  per node by expanding the parent level (``np.repeat`` over child counts)
  and Kronecker-multiplying the level's own factor rows.

The target mode's level splits the tree: ``Y_(n)`` rows are the kron of each
target node's pushdown and pullup vectors, segment-summed by target index.
With the target at the root (a :func:`~repro.sparse.csf.rooted_mode_order`
tree) the pushdown vanishes and the output rows are exactly the sorted,
unique root fibers — the layout the threaded backend exploits: contiguous
*root-fiber slabs* map to disjoint output rows, so workers write lock-free
(``make_chunks`` schedules over root fibers, mirroring the paper's row
decomposition).

There is no per-nonzero (or per-fiber) Python loop anywhere: every level is
a constant number of NumPy calls.  Results match ``ttmc_matricized`` in
shape, column order (mode-ascending, first mode fastest) and dtype promotion
to 1e-10 — the tree only reassociates the floating-point sums.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.kron import batch_kron_rows, kron_dtype, kron_row_length
from repro.core.ttmc import _factor_widths
from repro.sparse.csf import CSFTensor
from repro.util.validation import check_axis, check_same_order

__all__ = ["csf_ttmc_compact", "csf_ttmc_matricized"]


def _csf_dtype(
    csf: CSFTensor, factors: Sequence[Optional[np.ndarray]], mode: int
) -> np.dtype:
    """Promoted compute dtype — the COO kernel's rule applied to the tree."""
    operands = [csf.values] + [f for t, f in enumerate(factors) if t != mode]
    return kron_dtype(*[np.asarray(a) for a in operands if a is not None])


def _cast_factors(
    csf: CSFTensor, factors: Sequence[Optional[np.ndarray]], mode: int, dtype
) -> List[Optional[np.ndarray]]:
    return [
        None if t == mode else np.asarray(factors[t], dtype=dtype)
        for t in range(csf.order)
    ]


def _level_ranges(csf: CSFTensor, start: int, stop: int) -> List[Tuple[int, int]]:
    """Node ranges of every level covered by root fibers ``[start, stop)``.

    Children of contiguous parents are contiguous (the tree is built from a
    lexicographic sort), so a root-fiber slab owns one contiguous node range
    per level — the property that makes slab workers independent.
    """
    ranges = [(start, stop)]
    for level in range(1, csf.order):
        lo, hi = ranges[-1]
        ranges.append(
            (int(csf.fptr[level - 1][lo]), int(csf.fptr[level - 1][hi]))
        )
    return ranges


def _leaf_values(
    csf: CSFTensor, lo: int, hi: int, dtype: np.dtype, workspace
) -> np.ndarray:
    """The ``(hi - lo, 1)`` leaf-level partial products (the values).

    When the tree's values already have the compute dtype this is a zero-copy
    view; a dtype-policy cast (float32 engine over float64 values) draws its
    destination from ``workspace`` so steady-state sweeps do not reallocate
    the cast buffer every call.
    """
    values = csf.values[lo:hi]
    if values.dtype == dtype:
        return values.reshape(-1, 1)
    if workspace is None:
        return np.ascontiguousarray(values, dtype=dtype).reshape(-1, 1)
    below = workspace.take((hi - lo, 1), dtype, tag=f"{csf._token}-vals")
    below[:, 0] = values
    return below


def _pullup(
    csf: CSFTensor,
    factor_arrays: Sequence[Optional[np.ndarray]],
    dtype: np.dtype,
    target_level: int,
    ranges: Sequence[Tuple[int, int]],
    workspace,
    table=None,
) -> np.ndarray:
    """Bottom-up partial products: one row per node at ``target_level``.

    Row ``p`` holds ``Σ_{z ∈ subtree(p)} vals[z] · kron(U rows of the levels
    below ``target_level``)`` with deeper levels varying fastest.  Buffers
    draw from ``workspace`` (tagged per tree/level, so repeated sweeps reuse
    them); pass ``None`` from concurrent workers.  ``table`` (a
    :class:`repro.kernels.KernelTable`) swaps each level's
    gather/kron/``reduceat`` triple for the fused compiled walk over the
    fiber extents — same numerics, no per-level contribution temporary.
    """
    lo, hi = ranges[csf.order - 1]
    below = _leaf_values(csf, lo, hi, dtype, workspace)
    for level in range(csf.order - 1, target_level, -1):
        lo, hi = ranges[level]
        parent_lo, parent_hi = ranges[level - 1]
        mode_here = csf.mode_order[level]
        factor = factor_arrays[mode_here]
        width = below.shape[1] * factor.shape[1]
        reduced = (
            workspace.take(
                (parent_hi - parent_lo, width), dtype,
                tag=f"{csf._token}-below-{target_level}-{level}",
            )
            if workspace is not None
            else np.empty((parent_hi - parent_lo, width), dtype=dtype)
        )
        if table is not None:
            table.csf_pullup_level(
                below, factor, csf.fids[level], csf.fptr[level - 1],
                lo, parent_lo, parent_hi, reduced,
            )
        else:
            factor_rows = factor[csf.fids[level][lo:hi]]
            scratch = (
                workspace.take(
                    (hi - lo, width), dtype,
                    tag=f"{csf._token}-kron-{target_level}-{level}",
                )
                if workspace is not None
                else None
            )
            # Deeper levels stay fastest: kron_rows([below, factor_rows]).
            contrib = batch_kron_rows([below, factor_rows], out=scratch)
            segments = csf.fptr[level - 1][parent_lo:parent_hi] - lo
            np.add.reduceat(contrib, segments, axis=0, out=reduced)
        below = reduced
    return below


def _pushdown(
    csf: CSFTensor,
    factor_arrays: Sequence[Optional[np.ndarray]],
    target_level: int,
    workspace=None,
    table=None,
) -> np.ndarray:
    """Top-down ancestor products: one row per node at ``target_level``.

    Row ``p`` holds ``kron(U rows of p's ancestors at levels
    0..target_level−1)`` with deeper levels varying fastest.  ``table``
    fuses each level's parent expansion (``np.repeat``) and Kronecker
    refinement into one compiled pass; its per-level outputs draw from
    ``workspace`` like the pullup buffers do.
    """
    root_factor = factor_arrays[csf.mode_order[0]]
    dtype = root_factor.dtype
    if workspace is not None:
        above = workspace.take(
            (csf.num_fibers(0), root_factor.shape[1]), dtype,
            tag=f"{csf._token}-above-{target_level}-0",
        )
        np.take(root_factor, csf.fids[0], axis=0, out=above)
    else:
        above = root_factor[csf.fids[0]]
    for level in range(1, target_level + 1):
        if table is not None:
            refine = level < target_level
            width = above.shape[1] * (
                factor_arrays[csf.mode_order[level]].shape[1] if refine else 1
            )
            expanded = (
                workspace.take(
                    (csf.num_fibers(level), width), dtype,
                    tag=f"{csf._token}-above-{target_level}-{level}",
                )
                if workspace is not None
                else np.empty((csf.num_fibers(level), width), dtype=dtype)
            )
            if refine:
                table.csf_pushdown_level(
                    above, factor_arrays[csf.mode_order[level]],
                    csf.fids[level], csf.fptr[level - 1], expanded,
                )
            else:
                table.csf_pushdown_expand(above, csf.fptr[level - 1], expanded)
            above = expanded
        else:
            above = np.repeat(above, np.diff(csf.fptr[level - 1]), axis=0)
            if level < target_level:
                mode_here = csf.mode_order[level]
                factor_rows = factor_arrays[mode_here][csf.fids[level]]
                above = batch_kron_rows([factor_rows, above])
    return above


def _tree_axis_modes(csf: CSFTensor, target_level: int) -> List[int]:
    """Tree-layout kron axes (slowest to fastest), as tensor mode indices."""
    return [
        csf.mode_order[level]
        for level in range(csf.order)
        if level != target_level
    ]


def _columns_permuted(csf: CSFTensor, target_level: int) -> bool:
    """Whether tree layout differs from the engine's mode-ascending layout."""
    axis_modes = _tree_axis_modes(csf, target_level)
    return axis_modes != sorted(axis_modes, reverse=True)


def _to_engine_columns(
    block: np.ndarray,
    csf: CSFTensor,
    factor_arrays: Sequence[Optional[np.ndarray]],
    target_level: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Permute tree-layout columns to the engine's mode-ascending layout.

    Tree layout orders the kron axes by level (deeper fastest); the engine's
    matricization orders them by mode index (smaller modes fastest).  Both
    are fixed interleavings, so one transpose of the reshaped width axis —
    applied once to the assembled block, not per fiber — converts between
    them.  When the layouts already agree, ``block`` itself is returned and
    ``out`` is ignored; otherwise the permutation lands in ``out`` when
    given (a pooled buffer or an output slice), or in a fresh array.
    """
    axis_modes = _tree_axis_modes(csf, target_level)
    desired = sorted(axis_modes, reverse=True)  # engine: smallest mode fastest
    if axis_modes == desired:
        return block
    widths = [factor_arrays[m].shape[1] for m in axis_modes]
    reshaped = block.reshape([block.shape[0]] + widths)
    axes = [0] + [1 + axis_modes.index(m) for m in desired]
    transposed = reshaped.transpose(axes)
    if out is None or not out.flags.c_contiguous:
        result = np.ascontiguousarray(transposed).reshape(block.shape[0], -1)
        if out is None:
            return result
        out[...] = result
        return out
    # Contiguous destination: reshape is a view, so the transpose is copied
    # straight into it with no intermediate.
    np.copyto(
        out.reshape(
            [block.shape[0]] + [widths[axis_modes.index(m)] for m in desired]
        ),
        transposed,
    )
    return out


def csf_ttmc_compact(
    csf: CSFTensor,
    factors: Sequence[Optional[np.ndarray]],
    mode: int,
    *,
    workspace=None,
    config=None,
    kernel: str = "numpy",
) -> Tuple[np.ndarray, np.ndarray]:
    """Compact mode-``n`` TTMc: ``(rows, block)`` over the non-empty rows.

    ``rows`` is the sorted array ``J_n`` of mode-``n`` indices with at least
    one nonzero and ``block[p]`` is ``Y_(n)(rows[p], :)`` — the same numbers
    :func:`repro.core.ttmc.ttmc_matricized` scatters into the full
    ``(I_n, ∏R_t)`` matrix, without materializing the empty rows (the form
    the distributed driver's row-block seam consumes).

    ``config`` (a :class:`~repro.parallel.parallel_for.ParallelConfig`)
    parallelizes the sweep over root-fiber slabs when the target mode is the
    tree's root: each worker owns a contiguous slab of root fibers, whose
    subtree is a contiguous node range at every level and whose output rows
    are disjoint from every other slab's.  Deep target levels always run the
    single-threaded pushdown/pullup pass (their nodes do not partition by
    output row), so a shared tree still composes with the threaded driver —
    it just serves deep modes sequentially.

    ``kernel`` selects the inner-loop tier: ``"numpy"`` is the vectorized
    gather/kron/``reduceat`` pipeline documented above, ``"numba"`` walks the
    same fiber extents with the fused compiled loops of
    :mod:`repro.kernels` — one pass per level, no contribution temporaries,
    identical numerics (the summation order per output entry is unchanged).
    """
    from repro.kernels import kernel_table

    mode = check_axis(mode, csf.order)
    check_same_order(csf.order, factors, "factors")
    widths = _factor_widths(factors, csf.shape, mode)
    width = kron_row_length(widths)
    target_level = csf.level_of(mode)
    dtype = _csf_dtype(csf, factors, mode)

    if csf.nnz == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty((0, width), dtype=dtype),
        )

    factor_arrays = _cast_factors(csf, factors, mode, dtype)
    table = kernel_table(kernel)
    num_roots = csf.num_fibers(0)
    use_threads = (
        config is not None
        and config.num_threads > 1
        and target_level == 0
        and num_roots > 1
    )
    if use_threads:
        from repro.parallel.parallel_for import parallel_for

        rows = csf.fids[0]
        block = (
            workspace.take((num_roots, width), dtype, tag=f"{csf._token}-compact")
            if workspace is not None
            else np.empty((num_roots, width), dtype=dtype)
        )

        def body(start: int, stop: int) -> None:
            # Workers allocate privately: the pool is not thread-safe.
            slab = _pullup(
                csf, factor_arrays, dtype, 0,
                _level_ranges(csf, start, stop), None, table,
            )
            # The column permutation lands directly in the worker's output
            # slice; when the layouts agree, the slab is copied as-is.
            part = block[start:stop]
            result = _to_engine_columns(slab, csf, factor_arrays, 0, out=part)
            if result is not part:
                part[...] = result

        parallel_for(body, num_roots, config)
        return rows, block

    def _cols_out(num_rows: int) -> Optional[np.ndarray]:
        """Pooled destination for the column permutation (None = allocate)."""
        if workspace is None or not _columns_permuted(csf, target_level):
            return None
        return workspace.take(
            (num_rows, width), dtype, tag=f"{csf._token}-cols-{target_level}"
        )

    ranges = _level_ranges(csf, 0, num_roots)
    below = _pullup(
        csf, factor_arrays, dtype, target_level, ranges, workspace, table
    )
    if target_level == 0:
        return csf.fids[0], _to_engine_columns(
            below, csf, factor_arrays, 0, out=_cols_out(num_roots)
        )

    above = _pushdown(csf, factor_arrays, target_level, workspace, table)
    perm, rows, boundaries = csf.target_grouping(target_level)
    # Group the narrow pullup/pushdown vectors by target index *before* the
    # full-width expansion: gathering two width-R^k blocks is much cheaper
    # than gathering the expanded ∏R-wide rows.  The two full-width buffers
    # (the expanded node rows and the per-row sums) draw from the pool like
    # the pullup levels do, so deep-target sweeps also stop allocating once
    # the pool is warm.
    block = (
        workspace.take(
            (rows.shape[0], width), dtype,
            tag=f"{csf._token}-deep-out-{target_level}",
        )
        if workspace is not None
        else np.empty((rows.shape[0], width), dtype=dtype)
    )
    if table is not None:
        # Fused gather + kron + segment-sum straight into the output block:
        # the ∏R-wide per-node expansion never materializes.
        table.csf_target_accumulate(
            below, above, perm, boundaries, perm.shape[0], block
        )
    else:
        scratch = (
            workspace.take(
                (perm.shape[0], width), dtype,
                tag=f"{csf._token}-deep-kron-{target_level}",
            )
            if workspace is not None
            else None
        )
        y_nodes = batch_kron_rows([below[perm], above[perm]], out=scratch)
        np.add.reduceat(y_nodes, boundaries, axis=0, out=block)
    return rows, _to_engine_columns(
        block, csf, factor_arrays, target_level, out=_cols_out(rows.shape[0])
    )


def csf_ttmc_matricized(
    csf: CSFTensor,
    factors: Sequence[Optional[np.ndarray]],
    mode: int,
    *,
    out: Optional[np.ndarray] = None,
    workspace=None,
    zero: str = "full",
    config=None,
    kernel: str = "numpy",
) -> np.ndarray:
    """Mode-``n`` matricized TTMc ``Y_(n)`` served from a CSF tree.

    Matches :func:`repro.core.ttmc.ttmc_matricized` in shape, column order
    and dtype promotion (to reassociation-level rounding).  ``out``/``zero``
    follow the same contract: every ``J_n`` row is *assigned*, so
    ``zero="none"`` suffices whenever the caller keeps the empty rows zero
    (the engine's pooled per-mode buffers do); ``"touched"`` behaves the
    same here, ``"full"`` (default) memsets the whole buffer first.
    ``kernel`` is forwarded to :func:`csf_ttmc_compact`.
    """
    mode = check_axis(mode, csf.order)
    if zero not in ("full", "touched", "none"):
        raise ValueError(f"unknown zero policy {zero!r}")
    rows, block = csf_ttmc_compact(
        csf, factors, mode, workspace=workspace, config=config, kernel=kernel
    )
    n_rows = csf.shape[mode]
    width = block.shape[1]
    dtype = block.dtype
    if out is None:
        out = np.zeros((n_rows, width), dtype=dtype)
    else:
        if out.shape != (n_rows, width) or out.dtype != dtype:
            raise ValueError(
                f"out has shape {out.shape} / dtype {out.dtype}, expected "
                f"{(n_rows, width)} / {dtype}"
            )
        if zero == "full":
            out[:] = 0.0
    if rows.shape[0]:
        out[rows] = block
    return out
