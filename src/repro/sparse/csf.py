"""Compressed Sparse Fiber (CSF) storage for N-mode sparse tensors.

The COO layout every kernel in :mod:`repro.core` consumes stores one full
index tuple per nonzero, so a TTMc walks ``nnz × order`` indices and re-sorts
(or replays a precomputed sort of) the nonzeros on every call.  Real tensors
are *fibered*: many nonzeros share index prefixes (all ratings of one user,
all bookmarks of one day).  The CSF format — introduced by Smith & Karypis
for SPLATT — stores each shared prefix exactly once as a tree:

* level ``ℓ`` of the tree corresponds to mode ``mode_order[ℓ]``;
* ``fids[ℓ]`` holds the mode index of every node (fiber) at that level;
* ``fptr[ℓ]`` is a CSR-style pointer array: node ``p`` at level ``ℓ`` owns
  the contiguous child range ``fids[ℓ+1][fptr[ℓ][p]:fptr[ℓ][p+1]]``;
* the last level's nodes are the nonzeros themselves, with ``values``
  aligned to them in lexicographic order.

Two structural wins follow.  Memory: a mode index shared by ``k`` nonzeros is
stored once instead of ``k`` times (``memory_bytes`` quantifies it against
:meth:`repro.core.sparse_tensor.SparseTensor.memory_bytes`).  Compute: a TTMc
becomes a depth-first sweep over contiguous fiber segments — factor rows of
the upper levels are gathered once per *fiber* instead of once per *nonzero*,
and partial products are merged with segment reductions over the fiber
extents (:mod:`repro.sparse.csf_ttmc`).

The mode ordering is configurable.  The default heuristic is
*shortest-mode-first* (:func:`default_mode_order`): small modes at the top
maximize prefix sharing near the root, which is where a merged fiber saves
the widest partial products.  :func:`rooted_mode_order` pins one mode at the
root (the layout that serves that mode's TTMc with no scatter conflicts), and
:class:`CSFTensorSet` packages the two policies the engine chooses between —
one rooted tree per mode, or a single shared tree reused for every mode.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.sparse_tensor import SparseTensor
from repro.util.validation import check_axis

__all__ = [
    "CSFTensor",
    "CSFTensorSet",
    "csf_levels_from_sorted",
    "default_mode_order",
    "rooted_mode_order",
    "memory_report",
]

#: On-disk manifest filenames of the memory-mapped layouts.
_CSF_MANIFEST = "csf-manifest.json"
_SET_MANIFEST = "csf-set-manifest.json"


def csf_levels_from_sorted(
    sorted_indices: np.ndarray, mode_order: Sequence[int]
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Build the ``fids``/``fptr`` level arrays of a lexsorted index block.

    ``sorted_indices`` must already be sorted lexicographically by
    ``mode_order`` (primary key first) — the constructor sorts and calls
    this; the streaming layer calls it directly on blocks it keeps sorted
    incrementally, so a spliced tree is bit-identical to a rebuilt one.
    """
    mode_order = tuple(int(m) for m in mode_order)
    order = len(mode_order)
    nnz = int(sorted_indices.shape[0])
    if nnz == 0:
        return (
            [np.empty(0, dtype=np.int64) for _ in range(order)],
            [np.zeros(1, dtype=np.int64) for _ in range(order - 1)],
        )

    # A node starts at nonzero position t iff the index prefix up to its
    # level changes there; the change flags accumulate (a level-ℓ break
    # is also a break at every deeper level), so one boolean array
    # OR-folded level by level yields every level's fiber starts.
    change = np.zeros(nnz, dtype=bool)
    change[0] = True
    starts: List[np.ndarray] = []
    for level in range(order - 1):
        column = sorted_indices[:, mode_order[level]]
        change[1:] |= column[1:] != column[:-1]
        starts.append(np.flatnonzero(change).astype(np.int64))

    fids = [
        sorted_indices[starts[level], mode_order[level]]
        for level in range(order - 1)
    ]
    fids.append(np.ascontiguousarray(sorted_indices[:, mode_order[-1]]))
    starts.append(np.arange(nnz, dtype=np.int64))  # leaves = nonzeros

    # fptr[ℓ][p] = position of the first level-(ℓ+1) node inside fiber p.
    # Every level-ℓ start is also a level-(ℓ+1) start, so the pointer is
    # one vectorized searchsorted per level.
    fptr = []
    for level in range(order - 1):
        bounds = np.concatenate([starts[level], [nnz]])
        fptr.append(
            np.searchsorted(starts[level + 1], bounds).astype(np.int64)
        )
    return fids, fptr


def default_mode_order(shape: Sequence[int]) -> Tuple[int, ...]:
    """Shortest-mode-first ordering (ties broken by mode index).

    Placing the smallest modes at the top of the tree concentrates prefix
    sharing where fibers are widest: with few distinct root indices, each
    root fiber merges many nonzeros, and the expensive upper-level partial
    products are computed once per merged fiber.
    """
    return tuple(sorted(range(len(shape)), key=lambda m: (int(shape[m]), m)))


def rooted_mode_order(shape: Sequence[int], root_mode: int) -> Tuple[int, ...]:
    """Mode ordering with ``root_mode`` first and the rest shortest-first.

    A tree rooted at mode ``n`` serves the mode-``n`` TTMc with its output
    rows exactly the (sorted, unique) root fibers — no two subtrees write
    the same row, which is what makes the root-slab thread decomposition
    lock-free.
    """
    root_mode = check_axis(root_mode, len(shape))
    rest = [m for m in default_mode_order(shape) if m != root_mode]
    return (root_mode,) + tuple(rest)


class CSFTensor:
    """A sparse tensor compressed as a fiber tree.

    Parameters
    ----------
    tensor:
        The COO :class:`~repro.core.sparse_tensor.SparseTensor` to compress.
        Duplicate coordinates are preserved (two identical tuples become two
        sibling leaves); deduplicate first if that is not intended.
    mode_order:
        Tree level ``ℓ`` stores mode ``mode_order[ℓ]``.  Defaults to
        :func:`default_mode_order` (shortest-mode-first).

    Attributes
    ----------
    fids:
        ``order`` arrays; ``fids[ℓ][p]`` is the mode-``mode_order[ℓ]`` index
        of node ``p`` at level ``ℓ``.  ``fids[order - 1]`` has one entry per
        nonzero; ``fids[0]`` is sorted and duplicate-free.
    fptr:
        ``order - 1`` pointer arrays; node ``p`` at level ``ℓ`` owns children
        ``fptr[ℓ][p]:fptr[ℓ][p + 1]`` at level ``ℓ + 1``.
    values:
        Nonzero values aligned with ``fids[order - 1]`` (lexicographic order
        of the permuted index tuples).
    """

    __slots__ = (
        "shape",
        "mode_order",
        "fids",
        "fptr",
        "values",
        "_token",
        "_groupings",
    )

    def __init__(
        self,
        tensor: SparseTensor,
        *,
        mode_order: Optional[Sequence[int]] = None,
    ) -> None:
        if mode_order is None:
            mode_order = default_mode_order(tensor.shape)
        mode_order = tuple(int(m) for m in mode_order)
        if sorted(mode_order) != list(range(tensor.order)):
            raise ValueError(
                f"mode_order must be a permutation of 0..{tensor.order - 1}, "
                f"got {mode_order}"
            )
        self.shape: Tuple[int, ...] = tensor.shape
        self.mode_order = mode_order
        # Workspace-pool tag prefix.  Deliberately *not* unique per instance:
        # the kernels fully overwrite every tagged buffer before reading it,
        # so trees with the same mode order can share scratch — which is what
        # lets a shared WorkspacePool stay at zero steady-state allocations
        # across engine runs (each run rebuilds its CSFTensorSet).
        self._token = "csf-" + ".".join(str(m) for m in mode_order)
        # Lazily-built output groupings for serving a deep level's TTMc
        # (level -> (perm, rows, boundaries)); symbolic, reused across calls.
        self._groupings: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

        order = tensor.order
        nnz = tensor.nnz
        if nnz == 0:
            self.fids = [np.empty(0, dtype=np.int64) for _ in range(order)]
            self.fptr = [np.zeros(1, dtype=np.int64) for _ in range(order - 1)]
            self.values = tensor.values.copy()
            return

        # Lexicographic sort by (mode_order[0], mode_order[1], ...): lexsort
        # treats its *last* key as primary, so feed the levels in reverse.
        perm = np.lexsort(
            tuple(tensor.indices[:, m] for m in reversed(mode_order))
        ).astype(np.int64)
        sorted_indices = tensor.indices[perm]
        self.values = tensor.values[perm]
        self.fids, self.fptr = csf_levels_from_sorted(sorted_indices, mode_order)

    @classmethod
    def from_arrays(
        cls,
        shape: Sequence[int],
        mode_order: Sequence[int],
        fids: Sequence[np.ndarray],
        fptr: Sequence[np.ndarray],
        values: np.ndarray,
    ) -> "CSFTensor":
        """Reassemble a tree from its level arrays — no sort, no copies.

        The worker side of the shared-memory process pool: the driver
        serializes a built tree's ``fids``/``fptr``/``values`` into arena
        segments, and each worker reconstructs the identical tree over its
        zero-copy views once per attach.  The arrays are trusted to be a
        consistent CSF (they came out of the constructor on the driver
        side); only the level-array counts are checked.
        """
        shape = tuple(int(s) for s in shape)
        mode_order = tuple(int(m) for m in mode_order)
        if sorted(mode_order) != list(range(len(shape))):
            raise ValueError(
                f"mode_order must be a permutation of 0..{len(shape) - 1}, "
                f"got {mode_order}"
            )
        if len(fids) != len(shape) or len(fptr) != len(shape) - 1:
            raise ValueError(
                f"expected {len(shape)} fids arrays and {len(shape) - 1} fptr "
                f"arrays, got {len(fids)} / {len(fptr)}"
            )
        obj = cls.__new__(cls)
        obj.shape = shape
        obj.mode_order = mode_order
        obj._token = "csf-" + ".".join(str(m) for m in mode_order)
        obj._groupings = {}
        obj.fids = list(fids)
        obj.fptr = list(fptr)
        obj.values = values
        return obj

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def order(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    def num_fibers(self, level: int) -> int:
        """Number of nodes (fibers) at the given tree level."""
        return int(self.fids[check_axis(level, self.order)].shape[0])

    def level_of(self, mode: int) -> int:
        """Tree level storing the given tensor mode."""
        return self.mode_order.index(check_axis(mode, self.order))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fibers = "/".join(str(self.num_fibers(level)) for level in range(self.order))
        return (
            f"CSFTensor(shape={self.shape}, mode_order={self.mode_order}, "
            f"fibers={fibers})"
        )

    # ------------------------------------------------------------------ #
    # Memory accounting
    # ------------------------------------------------------------------ #
    def memory_bytes(self) -> int:
        """Bytes held by the level arrays and values.

        The COO counterpart is
        :meth:`repro.core.sparse_tensor.SparseTensor.memory_bytes`; the ratio
        of the two is the structural compression the fiber tree achieves
        (every shared prefix stored once, at the cost of the ``fptr``
        pointers).
        """
        total = self.values.nbytes
        total += sum(int(a.nbytes) for a in self.fids)
        total += sum(int(a.nbytes) for a in self.fptr)
        return int(total)

    def resident_bytes(self) -> int:
        """Bytes of the level arrays actually resident in process memory.

        Same measure as :meth:`memory_bytes` but excluding memory-mapped
        arrays (a :meth:`from_mmap` tree's levels are pager-backed views of
        the on-disk ``.npy`` files, not heap allocations) — the accounting
        the out-of-core acceptance gate asserts against its RSS cap.
        """
        total = 0
        for array in [self.values, *self.fids, *self.fptr]:
            if not isinstance(array, np.memmap):
                total += int(array.nbytes)
        return total

    # ------------------------------------------------------------------ #
    # Memory-mapped persistence (the out-of-core storage seam)
    # ------------------------------------------------------------------ #
    def to_mmap(self, directory: Union[str, Path]) -> Path:
        """Write the level arrays as ``.npy`` files plus a manifest.

        The inverse, :meth:`from_mmap`, reassembles the identical tree over
        ``np.load(..., mmap_mode=...)`` views, so a TTMc sweep streams the
        level arrays through the page cache instead of holding them on the
        heap — tensors whose trees exceed RAM still decompose
        (:mod:`repro.streaming.out_of_core`).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        np.save(directory / "values.npy", self.values)
        for level, array in enumerate(self.fids):
            np.save(directory / f"fids{level}.npy", array)
        for level, array in enumerate(self.fptr):
            np.save(directory / f"fptr{level}.npy", array)
        manifest = {
            "schema": "repro-csf-mmap/1",
            "shape": [int(s) for s in self.shape],
            "mode_order": [int(m) for m in self.mode_order],
            "nnz": self.nnz,
            "dtype": self.values.dtype.str,
        }
        (directory / _CSF_MANIFEST).write_text(
            json.dumps(manifest, indent=2), encoding="utf-8"
        )
        return directory

    @classmethod
    def from_mmap(
        cls, directory: Union[str, Path], *, mmap_mode: str = "r"
    ) -> "CSFTensor":
        """Reassemble a :meth:`to_mmap` tree over memory-mapped level arrays."""
        directory = Path(directory)
        manifest_path = directory / _CSF_MANIFEST
        if not manifest_path.is_file():
            raise FileNotFoundError(
                f"{directory} holds no memory-mapped CSF tree (missing "
                f"{_CSF_MANIFEST}) — write one with CSFTensor.to_mmap first"
            )
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        if manifest.get("schema") != "repro-csf-mmap/1":
            raise ValueError(
                f"unsupported CSF mmap schema {manifest.get('schema')!r} "
                f"in {manifest_path}"
            )
        order = len(manifest["shape"])
        load = lambda name: np.load(directory / name, mmap_mode=mmap_mode)  # noqa: E731
        return cls.from_arrays(
            manifest["shape"],
            manifest["mode_order"],
            [load(f"fids{level}.npy") for level in range(order)],
            [load(f"fptr{level}.npy") for level in range(order - 1)],
            load("values.npy"),
        )

    # ------------------------------------------------------------------ #
    # Structural queries used by the TTMc kernels
    # ------------------------------------------------------------------ #
    def target_grouping(
        self, level: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Row grouping of a level's nodes for serving that level's TTMc.

        Returns ``(perm, rows, boundaries)``: ``perm`` reorders the level's
        nodes so equal ``fids`` are contiguous, ``rows`` are the distinct
        (sorted) mode indices and ``boundaries`` are the group starts inside
        the permuted order — ready for one ``np.add.reduceat``.  Level 0
        needs no grouping (its fibers are already unique and sorted); deeper
        levels cache theirs here, built once per tree.
        """
        level = check_axis(level, self.order)
        cached = self._groupings.get(level)
        if cached is not None:
            return cached
        fids = self.fids[level]
        perm = np.argsort(fids, kind="stable").astype(np.int64)
        sorted_fids = fids[perm]
        if sorted_fids.shape[0] == 0:
            grouping = (
                perm,
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        else:
            boundary = np.empty(sorted_fids.shape, dtype=bool)
            boundary[0] = True
            np.not_equal(sorted_fids[1:], sorted_fids[:-1], out=boundary[1:])
            grouping = (
                perm,
                sorted_fids[boundary],
                np.flatnonzero(boundary).astype(np.int64),
            )
        self._groupings[level] = grouping
        return grouping

    def target_rows(self, mode: int) -> np.ndarray:
        """Sorted mode indices owning at least one nonzero (``J_n``)."""
        level = self.level_of(mode)
        if level == 0:
            return self.fids[0]
        return self.target_grouping(level)[1]

    def node_spans(self, level: int) -> np.ndarray:
        """Number of nonzeros under each node of the given level."""
        level = check_axis(level, self.order)
        if self.nnz == 0:
            return np.empty(0, dtype=np.int64)
        starts = np.arange(self.nnz, dtype=np.int64)  # leaves = nonzeros
        for lower in range(self.order - 2, level - 1, -1):
            starts = starts[self.fptr[lower][:-1]]
        return np.diff(np.concatenate([starts, [self.nnz]]))

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_coo(self) -> SparseTensor:
        """Expand the tree back to COO (exact round-trip, duplicates kept)."""
        nnz = self.nnz
        indices = np.empty((nnz, self.order), dtype=np.int64)
        if nnz:
            # Nonzero start of every node, composed bottom-up through fptr.
            starts = np.arange(nnz, dtype=np.int64)
            level_starts: List[np.ndarray] = [None] * self.order
            level_starts[self.order - 1] = starts
            for level in range(self.order - 2, -1, -1):
                level_starts[level] = level_starts[level + 1][self.fptr[level][:-1]]
            for level in range(self.order):
                spans = np.diff(
                    np.concatenate([level_starts[level], [nnz]])
                )
                indices[:, self.mode_order[level]] = np.repeat(
                    self.fids[level], spans
                )
        return SparseTensor(
            indices, self.values, self.shape, copy=False
        )


class CSFTensorSet:
    """The trees one tensor carries: one rooted tree per mode, or one shared.

    ``per_mode`` builds, for every mode ``n``, a tree rooted at ``n``
    (:func:`rooted_mode_order`) — each TTMc is then a pure pullup with its
    output rows the unique root fibers, the fastest layout at ``order``×
    the index memory.  ``shared`` builds a single shortest-mode-first tree
    reused for every mode — minimal memory, with deep target modes served
    through the pushdown/pullup pass of
    :func:`repro.sparse.csf_ttmc.csf_ttmc_compact`.
    """

    def __init__(self, trees: Dict[int, CSFTensor], *, shared: bool) -> None:
        self._trees = trees
        self.shared = shared

    @classmethod
    def per_mode(
        cls, tensor: SparseTensor, *, num_threads: int = 1
    ) -> "CSFTensorSet":
        """One rooted tree per mode, built with up to one task per mode.

        The builds are independent full lexsorts of the nonzeros, so the
        threaded backend overlaps them exactly like the per-mode symbolic
        step (``parallel_symbolic``).
        """

        def build(mode: int) -> CSFTensor:
            return CSFTensor(
                tensor, mode_order=rooted_mode_order(tensor.shape, mode)
            )

        modes = range(tensor.order)
        if num_threads <= 1 or tensor.order == 1:
            trees = {mode: build(mode) for mode in modes}
        else:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(
                max_workers=min(num_threads, tensor.order)
            ) as pool:
                futures = {mode: pool.submit(build, mode) for mode in modes}
                trees = {mode: fut.result() for mode, fut in futures.items()}
        return cls(trees, shared=False)

    @classmethod
    def shared_tree(
        cls, tensor: SparseTensor, *, mode_order: Optional[Sequence[int]] = None
    ) -> "CSFTensorSet":
        tree = CSFTensor(tensor, mode_order=mode_order)
        return cls({mode: tree for mode in range(tensor.order)}, shared=True)

    def tree_for(self, mode: int) -> CSFTensor:
        return self._trees[mode]

    @property
    def trees(self) -> List[CSFTensor]:
        """The distinct trees in the set (one when shared)."""
        seen: List[CSFTensor] = []
        for tree in self._trees.values():
            if all(tree is not other for other in seen):
                seen.append(tree)
        return seen

    def memory_bytes(self) -> int:
        return sum(tree.memory_bytes() for tree in self.trees)

    def resident_bytes(self) -> int:
        """Heap-resident bytes of the set (memmap-backed levels excluded)."""
        return sum(tree.resident_bytes() for tree in self.trees)

    # ------------------------------------------------------------------ #
    # Memory-mapped persistence
    # ------------------------------------------------------------------ #
    @staticmethod
    def write_mmap_manifest(
        directory: Union[str, Path], *, shared: bool, modes: Sequence[int]
    ) -> Path:
        """Write the set-level manifest binding per-tree directories.

        Exposed separately from :meth:`to_mmap` so the out-of-core builder
        can write trees one at a time (holding a single tree in RAM) and
        still produce a layout :meth:`from_mmap` loads.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "schema": "repro-csf-set-mmap/1",
            "shared": bool(shared),
            "modes": [int(m) for m in modes],
        }
        path = directory / _SET_MANIFEST
        path.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
        return path

    @staticmethod
    def tree_directory(directory: Union[str, Path], mode: int, *, shared: bool) -> Path:
        """Per-tree subdirectory of a mmap set layout."""
        directory = Path(directory)
        return directory / ("shared" if shared else f"mode-{int(mode)}")

    def to_mmap(self, directory: Union[str, Path]) -> Path:
        """Write every distinct tree under ``directory`` plus a set manifest."""
        directory = Path(directory)
        modes = sorted(self._trees)
        if self.shared:
            self.tree_for(modes[0]).to_mmap(
                self.tree_directory(directory, modes[0], shared=True)
            )
        else:
            for mode in modes:
                self.tree_for(mode).to_mmap(
                    self.tree_directory(directory, mode, shared=False)
                )
        self.write_mmap_manifest(directory, shared=self.shared, modes=modes)
        return directory

    @classmethod
    def from_mmap(
        cls, directory: Union[str, Path], *, mmap_mode: str = "r"
    ) -> "CSFTensorSet":
        """Load a :meth:`to_mmap` layout back as a set of memmap-backed trees."""
        directory = Path(directory)
        manifest_path = directory / _SET_MANIFEST
        if not manifest_path.is_file():
            raise FileNotFoundError(
                f"{directory} holds no memory-mapped CSF set (missing "
                f"{_SET_MANIFEST}) — write one with CSFTensorSet.to_mmap or "
                "repro.streaming.build_out_of_core"
            )
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        if manifest.get("schema") != "repro-csf-set-mmap/1":
            raise ValueError(
                f"unsupported CSF set mmap schema {manifest.get('schema')!r} "
                f"in {manifest_path}"
            )
        shared = bool(manifest["shared"])
        modes = [int(m) for m in manifest["modes"]]
        if shared:
            tree = CSFTensor.from_mmap(
                cls.tree_directory(directory, modes[0], shared=True),
                mmap_mode=mmap_mode,
            )
            return cls({mode: tree for mode in modes}, shared=True)
        return cls(
            {
                mode: CSFTensor.from_mmap(
                    cls.tree_directory(directory, mode, shared=False),
                    mmap_mode=mmap_mode,
                )
                for mode in modes
            },
            shared=False,
        )


def memory_report(tensor: SparseTensor, csf) -> Dict[str, float]:
    """COO-vs-CSF footprint summary for benchmark output.

    ``csf`` is a :class:`CSFTensor` or :class:`CSFTensorSet`.  Returns the
    byte counts plus ``ratio`` (CSF bytes / COO bytes — below 1 means the
    fiber tree is smaller).
    """
    coo_bytes = tensor.memory_bytes()
    csf_bytes = int(csf.memory_bytes())
    return {
        "coo_bytes": int(coo_bytes),
        "csf_bytes": csf_bytes,
        "ratio": csf_bytes / coo_bytes if coo_bytes else float("nan"),
        "nnz": tensor.nnz,
    }
