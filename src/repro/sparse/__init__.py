"""Compressed sparse tensor storage formats.

The COO container (:class:`repro.core.sparse_tensor.SparseTensor`) is the
interchange format every loader produces and every kernel accepts; this
package holds the *compressed* formats the engine can execute on instead —
currently the Compressed Sparse Fiber tree (:mod:`repro.sparse.csf`) with its
fiber-vectorized TTMc kernels (:mod:`repro.sparse.csf_ttmc`), selected via
``HOOIOptions.tensor_format = "csf"``.
"""

from repro.sparse.csf import (
    CSFTensor,
    CSFTensorSet,
    default_mode_order,
    memory_report,
    rooted_mode_order,
)
from repro.sparse.csf_ttmc import csf_ttmc_compact, csf_ttmc_matricized

__all__ = [
    "CSFTensor",
    "CSFTensorSet",
    "default_mode_order",
    "rooted_mode_order",
    "memory_report",
    "csf_ttmc_compact",
    "csf_ttmc_matricized",
]
