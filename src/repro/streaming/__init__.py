"""Streaming Tucker: incremental ingestion, warm-start HOOI, out-of-core CSF.

The dynamic-tensor subsystem (ROADMAP: "Incremental and streaming Tucker
for dynamic tensors").  Three layers:

* **Ingestion** — :class:`DeltaBatch` / :func:`apply_delta` /
  :class:`StreamingTensor`: append batches of nonzeros into a tensor whose
  merged COO log and CSF fiber tree are maintained incrementally and stay
  bit-identical to one-shot construction.
* **Warm-start HOOI** — :func:`streaming_hooi` / :class:`StreamingSession`:
  re-enter the HOOI engine seeded from the previous factors (padded or
  truncated when a mode grows) with a sweep budget scaled to the delta,
  instead of cold-restarting after every append.
* **Out-of-core** — :func:`build_out_of_core` / :class:`OutOfCoreTensor` /
  :func:`out_of_core_hooi`: spool a ``.tns`` stream into memory-mapped CSF
  trees and run HOOI with the level arrays paged from disk, so tensors
  whose in-memory footprint exceeds RAM still decompose.
"""

from repro.streaming.delta import DeltaBatch, apply_delta
from repro.streaming.out_of_core import (
    OutOfCoreTensor,
    build_out_of_core,
    out_of_core_hooi,
)
from repro.streaming.tensor import AppendStats, StreamingTensor
from repro.streaming.warmstart import (
    StreamingSession,
    adaptive_sweep_budget,
    conform_factors,
    streaming_hooi,
)

__all__ = [
    "AppendStats",
    "DeltaBatch",
    "OutOfCoreTensor",
    "StreamingSession",
    "StreamingTensor",
    "adaptive_sweep_budget",
    "apply_delta",
    "build_out_of_core",
    "conform_factors",
    "out_of_core_hooi",
    "streaming_hooi",
]
