"""Out-of-core Tucker: memory-mapped CSF trees, streamed construction.

The in-memory pipeline holds the COO log plus every CSF tree on the heap —
for a tensor near (or past) RAM, that is the thing that breaks first, not
the factor matrices (which are ``shape[n] × R_n``, tiny by comparison).
This module splits storage from compute:

* :func:`build_out_of_core` compresses a tensor (a ``.tns`` path streamed
  through the chunked reader, a :class:`SparseTensor`, or a
  :class:`~repro.streaming.tensor.StreamingTensor`) into memory-mapped CSF
  trees on disk, building and releasing **one tree at a time** so the build
  itself never holds more than the COO plus a single tree.
* :class:`OutOfCoreTensor` is the duck-typed tensor handle the HOOI engine
  accepts: shape / nnz / norm come from a manifest, the level arrays are
  ``np.memmap`` views paged in on demand.
* :func:`out_of_core_hooi` runs the standard engine over the handle with a
  CSF backend whose trees are the pre-built memory-mapped set — per-mode
  TTMc streams the level arrays through the page cache, and
  ``resident_bytes()`` (which excludes memmaps) is what the acceptance gate
  holds under the configured cap.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.core.hooi import HOOIOptions, HOOIResult
from repro.core.sparse_tensor import SparseTensor, resolve_dtype
from repro.sparse.csf import CSFTensor, CSFTensorSet, rooted_mode_order
from repro.streaming.tensor import StreamingTensor
from repro.streaming.warmstart import _resolve_options

__all__ = ["OutOfCoreTensor", "build_out_of_core", "out_of_core_hooi"]

_OOC_MANIFEST = "ooc-manifest.json"


class OutOfCoreTensor:
    """Handle over a :func:`build_out_of_core` directory.

    Quacks like the engine's tensor (``shape``, ``order``, ``nnz``,
    ``dtype``, ``norm()``) without holding any nonzero on the heap: scalar
    metadata comes from the manifest, and :meth:`trees` lazily loads the
    memory-mapped :class:`~repro.sparse.csf.CSFTensorSet`.
    """

    def __init__(self, directory: Union[str, Path], *, mmap_mode: str = "r") -> None:
        directory = Path(directory)
        manifest_path = directory / _OOC_MANIFEST
        if not manifest_path.is_file():
            raise FileNotFoundError(
                f"{directory} holds no out-of-core tensor (missing "
                f"{_OOC_MANIFEST}) — build one with "
                "repro.streaming.build_out_of_core first"
            )
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        if manifest.get("schema") != "repro-ooc-tensor/1":
            raise ValueError(
                f"unsupported out-of-core schema {manifest.get('schema')!r} "
                f"in {manifest_path}"
            )
        self.directory = directory
        self.mmap_mode = mmap_mode
        self.shape = tuple(int(s) for s in manifest["shape"])
        self.trees_policy = str(manifest["trees"])
        self._nnz = int(manifest["nnz"])
        self._norm = float(manifest["norm"])
        self._dtype = np.dtype(manifest["dtype"])
        self._trees: Optional[CSFTensorSet] = None

    @property
    def order(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    def norm(self) -> float:
        """Frobenius norm, computed once at build time."""
        return self._norm

    def trees(self) -> CSFTensorSet:
        """The memory-mapped tree set (loaded on first call)."""
        if self._trees is None:
            self._trees = CSFTensorSet.from_mmap(
                self.directory, mmap_mode=self.mmap_mode
            )
        return self._trees

    def resident_bytes(self) -> int:
        """Heap-resident bytes of the loaded trees (0 before loading;
        memmap-backed level arrays never count)."""
        return 0 if self._trees is None else self._trees.resident_bytes()

    def in_memory_footprint(self) -> int:
        """Bytes the equivalent in-memory pipeline would hold on the heap:
        the COO arrays plus every CSF level array."""
        coo = self._nnz * (self.order * 8 + self._dtype.itemsize)
        return int(coo) + int(self.trees().memory_bytes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OutOfCoreTensor(shape={self.shape}, nnz={self._nnz}, "
            f"trees={self.trees_policy!r}, dir={str(self.directory)!r})"
        )


def build_out_of_core(
    source,
    directory: Union[str, Path],
    *,
    trees: str = "per-mode",
    shape: Optional[Sequence[int]] = None,
    chunk_nnz: Optional[int] = None,
    dtype=None,
) -> OutOfCoreTensor:
    """Compress ``source`` into memory-mapped CSF trees under ``directory``.

    ``source`` is a ``.tns`` path (streamed through the chunked reader), a
    :class:`SparseTensor`, or a :class:`StreamingTensor`.  With
    ``trees="per-mode"`` one rooted tree per mode is built, written with
    :meth:`CSFTensor.to_mmap` and *released* before the next build starts —
    peak heap is the COO plus one tree, not the ``order + 1`` structures the
    in-memory pipeline keeps.  ``trees="shared"`` writes a single
    shortest-mode-first tree.
    """
    if trees not in ("per-mode", "shared"):
        raise ValueError(
            f"unknown tree policy {trees!r}: expected 'per-mode' or 'shared'"
        )
    if isinstance(source, StreamingTensor):
        tensor = source.tensor
    elif isinstance(source, SparseTensor):
        tensor = source
    else:
        from repro.data.io import DEFAULT_CHUNK_NNZ, read_tns

        tensor = read_tns(
            source,
            shape=shape,
            chunk_nnz=DEFAULT_CHUNK_NNZ if chunk_nnz is None else chunk_nnz,
        )
    if dtype is not None:
        tensor = tensor.astype(resolve_dtype(dtype))

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    modes = list(range(tensor.order))
    if trees == "per-mode":
        for mode in modes:
            tree = CSFTensor(
                tensor, mode_order=rooted_mode_order(tensor.shape, mode)
            )
            tree.to_mmap(
                CSFTensorSet.tree_directory(directory, mode, shared=False)
            )
            del tree  # one tree on the heap at a time
    else:
        tree = CSFTensor(tensor)
        tree.to_mmap(
            CSFTensorSet.tree_directory(directory, modes[0], shared=True)
        )
        del tree
    CSFTensorSet.write_mmap_manifest(
        directory, shared=(trees == "shared"), modes=modes
    )
    manifest = {
        "schema": "repro-ooc-tensor/1",
        "shape": [int(s) for s in tensor.shape],
        "nnz": tensor.nnz,
        "dtype": tensor.dtype.str,
        "norm": tensor.norm(),
        "trees": trees,
    }
    (directory / _OOC_MANIFEST).write_text(
        json.dumps(manifest, indent=2), encoding="utf-8"
    )
    return OutOfCoreTensor(directory)


def out_of_core_hooi(
    source,
    ranks,
    options=None,
    *,
    workspace=None,
    callback: Optional[Callable[[int, float], None]] = None,
    cancel_check: Optional[Callable[[], None]] = None,
    **option_kwargs,
) -> HOOIResult:
    """HOOI over an out-of-core tensor, level arrays paged from disk.

    ``source`` is an :class:`OutOfCoreTensor` or a built directory.  The
    run is the standard engine with a CSF backend whose tree set is the
    pre-built memory-mapped one; the restrictions follow from what the
    handle can serve — sequential execution (the thread/process backends
    rebuild their own trees from a COO tensor), CSF tensor format, and a
    non-HOSVD initializer (HOSVD needs a matricization of the full tensor).
    """
    from repro.engine.backend import CSFBackend
    from repro.engine.driver import HOOIEngine

    handle = source if isinstance(source, OutOfCoreTensor) else OutOfCoreTensor(source)
    base = _resolve_options(options, option_kwargs)
    base.setdefault("tensor_format", "csf")
    opts = HOOIOptions.from_dict(base)
    if opts.tensor_format != "csf":
        raise ValueError(
            f"out-of-core HOOI runs on tensor_format='csf' (the stored trees "
            f"ARE the format), got {opts.tensor_format!r}"
        )
    if opts.execution != "sequential":
        raise ValueError(
            f"out-of-core HOOI supports execution='sequential' only: the "
            f"{opts.execution!r} backend rebuilds its trees from an "
            "in-memory COO tensor, defeating the point — drop the "
            "execution override or decompose in memory"
        )
    if isinstance(opts.init, str) and opts.init == "hosvd":
        raise ValueError(
            "init='hosvd' needs a matricization of the full tensor, which "
            "an out-of-core handle cannot serve — use init='random' or "
            "pass explicit factor matrices (e.g. a warm start)"
        )
    if resolve_dtype(opts.dtype) != handle.dtype:
        raise ValueError(
            f"options request dtype={opts.dtype!r} but the stored trees "
            f"hold {handle.dtype.name} — rebuild with build_out_of_core("
            f"..., dtype={opts.dtype!r}) or match the options dtype"
        )
    tree_set = handle.trees()
    backend = CSFBackend(
        trees="shared" if tree_set.shared else "per-mode", tensors=tree_set
    )
    engine = HOOIEngine(handle, ranks, opts, backend=backend, workspace=workspace)
    return engine.run(callback=callback, cancel_check=cancel_check)
