"""Dynamic COO + CSF tensor maintained under appends.

:class:`StreamingTensor` holds the merged nonzeros *sorted by the CSF tree
order* and folds each :class:`~repro.streaming.delta.DeltaBatch` in with a
sorted merge: one ``searchsorted`` against the cached linear keys classifies
every batch entry as an update of an existing coordinate or a brand-new one,
a vectorized splice opens gaps for the new coordinates, and a single
``np.add.at`` folds the batch values in their original order.  Because
``np.add.at`` applies its updates sequentially in index-array order, the
fold each merged coordinate sees is *exactly* the left-fold the one-shot
constructor performs on the concatenated entries — appending any split of
the same entries, in any batch sizes, yields bit-identical COO and CSF
forms (the hypothesis property pinning this subsystem).

CSF maintenance is incremental too.  The stored order is the tree's
lexicographic order, so the level arrays never need a re-sort: after a
merge, only the *root-fiber slabs* that received new coordinates change
structurally.  :meth:`append` re-scans just those slabs
(:func:`repro.sparse.csf.csf_levels_from_sorted` on each touched run) and
splices the untouched runs' level arrays through unchanged, falling back to
a full scan rebuild when the touched fraction passes ``churn_threshold``.
Value-only batches (no new coordinates) update the shared values array in
place and leave the tree untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.sparse_tensor import (
    DeltaFingerprint,
    SparseTensor,
    fingerprint_with_delta,
    resolve_dtype,
)
from repro.sparse.csf import CSFTensor, csf_levels_from_sorted, default_mode_order
from repro.streaming.delta import DeltaBatch, _colmajor_sort

__all__ = ["AppendStats", "StreamingTensor"]

#: Above this many alternating touched/untouched root runs the Python-level
#: splice loop costs more than the vectorized full scan it avoids.
_MAX_SLAB_RUNS = 1024


@dataclass(frozen=True)
class AppendStats:
    """What one :meth:`StreamingTensor.append` did.

    ``csf_action`` is one of ``"deferred"`` (no tree built yet), ``"in-place"``
    (value-only update, tree structure untouched), ``"merged"`` (touched
    root slabs re-scanned, the rest spliced through) or ``"rebuilt"`` (full
    scan past the churn threshold).  ``touched_fraction`` is the churn the
    threshold was compared against — nonzeros under structurally-touched
    roots plus batch entries, over the merged total.
    """

    batch_nnz: int
    new_coords: int
    updated_coords: int
    csf_action: str
    touched_fraction: float


def _tree_strides(
    shape: Sequence[int], mode_order: Sequence[int]
) -> Optional[np.ndarray]:
    """Per-mode strides whose dot with an index tuple sorts like the tree.

    ``mode_order[0]`` is the most significant digit, the leaf mode the
    least, so ascending keys are exactly the tree's lexicographic order.
    Returns ``None`` when the key space exceeds int64 (the merge then falls
    back to a stable re-sort instead of key arithmetic).
    """
    total = 1
    for s in shape:
        total *= int(s)
    if total >= 2**63:
        return None
    strides = np.zeros(len(shape), dtype=np.int64)
    acc = 1
    for level in range(len(mode_order) - 1, -1, -1):
        strides[mode_order[level]] = acc
        acc *= int(shape[mode_order[level]])
    return strides


class StreamingTensor:
    """An append-only sparse tensor with incrementally-maintained CSF.

    Parameters
    ----------
    initial:
        Optional :class:`SparseTensor` seeding the stream (applied as a
        first batch, raw entries in storage order).
    shape:
        Optional starting shape; appends grow it to cover their extents
        (explicitly via :meth:`grow_to` as well).
    mode_order:
        Pin the maintained tree's level order.  Default: shortest-mode-first
        (:func:`repro.sparse.csf.default_mode_order`), recomputed when the
        shape grows — a changed default triggers one full re-sort.
    churn_threshold:
        Fraction of nonzeros under structurally-touched root fibers above
        which :meth:`append` rebuilds the tree with a full scan instead of
        splicing slabs (default ``0.25``).
    dtype:
        Storage dtype; defaults to the first entries' supported float dtype.
    keep_log:
        Retain the raw appended batches (for replay in tests).
    """

    def __init__(
        self,
        initial: Optional[SparseTensor] = None,
        *,
        shape: Optional[Sequence[int]] = None,
        mode_order: Optional[Sequence[int]] = None,
        churn_threshold: float = 0.25,
        dtype=None,
        keep_log: bool = False,
    ) -> None:
        if not 0.0 < float(churn_threshold) <= 1.0:
            raise ValueError(
                f"churn_threshold must be in (0, 1], got {churn_threshold}"
            )
        self.churn_threshold = float(churn_threshold)
        self._pinned_order = (
            tuple(int(m) for m in mode_order) if mode_order is not None else None
        )
        self._dtype = resolve_dtype(dtype) if dtype is not None else None
        self._keep_log = bool(keep_log)
        self.log: List[DeltaBatch] = []

        self._shape: Optional[Tuple[int, ...]] = (
            tuple(int(s) for s in shape) if shape is not None else None
        )
        self._mode_order: Optional[Tuple[int, ...]] = None
        self._indices: Optional[np.ndarray] = None  # sorted by tree order
        self._values: Optional[np.ndarray] = None
        self._keys: Optional[np.ndarray] = None  # tree-order linear keys
        self._keys_valid = False
        self._csf: Optional[CSFTensor] = None
        self._fp: Optional[DeltaFingerprint] = None

        self.batches_applied = 0
        self.csf_rebuilds = 0
        self.csf_slab_merges = 0
        self.log_nnz = 0

        if self._shape is not None:
            self._establish(len(self._shape))
        if initial is not None:
            self.append(DeltaBatch.from_tensor(initial))
            if self._shape is not None and len(self._shape) == initial.order:
                self.grow_to(
                    tuple(
                        max(int(a), int(b))
                        for a, b in zip(self._shape, initial.shape)
                    )
                )

    # ------------------------------------------------------------------ #
    # Establishment and shape growth
    # ------------------------------------------------------------------ #
    def _establish(self, order: int) -> None:
        if self._shape is None:
            self._shape = (1,) * order
        if len(self._shape) != order:
            raise ValueError(
                f"batch has {order} modes but the stream has "
                f"{len(self._shape)}"
            )
        if self._mode_order is None:
            if self._pinned_order is not None:
                if sorted(self._pinned_order) != list(range(order)):
                    raise ValueError(
                        f"mode_order must be a permutation of 0..{order - 1}, "
                        f"got {self._pinned_order}"
                    )
                self._mode_order = self._pinned_order
            else:
                self._mode_order = default_mode_order(self._shape)
        if self._indices is None:
            dtype = self._dtype if self._dtype is not None else np.float64
            self._indices = np.empty((0, order), dtype=np.int64)
            self._values = np.empty(0, dtype=dtype)
            self._keys = np.empty(0, dtype=np.int64)
            self._keys_valid = True
            self._fp = DeltaFingerprint.empty(self._shape, dtype)

    def grow_to(self, shape: Sequence[int]) -> None:
        """Grow the logical shape (never shrinks).

        Growth never reorders the stored entries — lexicographic order is
        shape-independent — but it invalidates the linear keys (the strides
        change) and, when the mode order is not pinned, may change the
        default tree order, which costs one full re-sort and tree rebuild.
        """
        if self._shape is None:
            self._shape = tuple(int(s) for s in shape)
            return
        shape = tuple(int(s) for s in shape)
        if len(shape) != len(self._shape):
            raise ValueError(
                f"shape has {len(shape)} modes but the stream has "
                f"{len(self._shape)}"
            )
        if any(n < o for n, o in zip(shape, self._shape)):
            raise ValueError(
                f"cannot shrink shape {self._shape} to {shape}"
            )
        if shape == self._shape:
            return
        self._shape = shape
        self._keys_valid = False
        self._fp = DeltaFingerprint(
            shape=shape,
            dtype=self._fp.dtype,
            count=self._fp.count,
            lanes=self._fp.lanes,
        ) if self._fp is not None else None
        if self._pinned_order is None and self._mode_order is not None:
            new_order = default_mode_order(shape)
            if new_order != self._mode_order:
                self._resort(new_order)

    def _resort(self, mode_order: Tuple[int, ...]) -> None:
        self._mode_order = mode_order
        if self._indices is not None and self._indices.shape[0]:
            perm = np.lexsort(
                tuple(self._indices[:, m] for m in reversed(mode_order))
            ).astype(np.int64)
            self._indices = self._indices[perm]
            self._values = self._values[perm]
        self._keys_valid = False
        self._csf = None

    def _refresh_keys(self) -> None:
        strides = _tree_strides(self._shape, self._mode_order)
        if strides is None:
            self._keys = None
        else:
            self._keys = self._indices @ strides
        self._keys_valid = True

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        if self._shape is None:
            raise ValueError("empty streaming tensor with no shape information")
        return self._shape

    @property
    def order(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return 0 if self._values is None else int(self._values.shape[0])

    @property
    def dtype(self) -> np.dtype:
        if self._values is not None:
            return self._values.dtype
        return self._dtype if self._dtype is not None else np.dtype(np.float64)

    @property
    def mode_order(self) -> Tuple[int, ...]:
        if self._mode_order is None:
            raise ValueError("mode order is established by the first append")
        return self._mode_order

    def norm(self) -> float:
        return 0.0 if self._values is None else float(np.linalg.norm(self._values))

    # ------------------------------------------------------------------ #
    # Append
    # ------------------------------------------------------------------ #
    def append(self, batch) -> AppendStats:
        """Fold a batch in; returns what happened (see :class:`AppendStats`)."""
        batch = DeltaBatch.coerce(batch)
        if self._indices is None:
            if self._dtype is None:
                self._dtype = resolve_dtype(batch.dtype)
            self._establish(batch.order)
        if batch.order != self.order:
            raise ValueError(
                f"batch has {batch.order} modes but the stream has {self.order}"
            )
        self.batches_applied += 1
        self.log_nnz += batch.nnz
        if self._keep_log:
            self.log.append(batch)
        bidx = batch.indices
        bvals = batch.values.astype(self._values.dtype, copy=False)
        self._fp = fingerprint_with_delta(self._fp, bidx, bvals)
        if batch.nnz == 0:
            return AppendStats(0, 0, 0, self._csf_action_idle(), 0.0)

        new_shape = tuple(
            max(int(s), int(e)) for s, e in zip(self._shape, batch.extents())
        )
        if new_shape != self._shape:
            self.grow_to(new_shape)
        if not self._keys_valid:
            self._refresh_keys()
        if self._keys is None:
            return self._append_fallback(bidx, bvals)
        return self._append_sorted_merge(bidx, bvals)

    def _csf_action_idle(self) -> str:
        return "deferred" if self._csf is None else "in-place"

    def _append_sorted_merge(
        self, bidx: np.ndarray, bvals: np.ndarray
    ) -> AppendStats:
        strides = _tree_strides(self._shape, self._mode_order)
        bkeys = bidx @ strides
        n_old = self.nnz
        pos = np.searchsorted(self._keys, bkeys)
        if n_old:
            exists = (pos < n_old) & (
                self._keys[np.minimum(pos, n_old - 1)] == bkeys
            )
        else:
            exists = np.zeros(bkeys.shape, dtype=bool)
        updated = int(np.unique(bkeys[exists]).shape[0])

        if exists.all():
            # Value-only batch: fold into the shared values array; the tree
            # (which aliases it) needs no structural work at all.
            np.add.at(self._values, pos, bvals)
            return AppendStats(
                int(bvals.shape[0]), 0, updated, self._csf_action_idle(), 0.0
            )

        new_mask = ~exists
        filtered = np.flatnonzero(new_mask)
        ukeys_new, first = np.unique(bkeys[filtered], return_index=True)
        rep = filtered[first]  # first occurrence, in batch order
        n_new = int(ukeys_new.shape[0])
        n_merged = n_old + n_new

        ins = np.searchsorted(self._keys, ukeys_new)
        shift = np.cumsum(np.bincount(ins, minlength=n_old + 1))
        pos_old = np.arange(n_old, dtype=np.int64) + shift[:n_old]
        pos_new = ins + np.arange(n_new, dtype=np.int64)

        merged_keys = np.empty(n_merged, dtype=np.int64)
        merged_keys[pos_old] = self._keys
        merged_keys[pos_new] = ukeys_new
        merged_idx = np.empty((n_merged, self.order), dtype=np.int64)
        merged_idx[pos_old] = self._indices
        merged_idx[pos_new] = bidx[rep]
        merged_vals = np.zeros(n_merged, dtype=self._values.dtype)
        merged_vals[pos_old] = self._values

        # One sequential fold in original batch order: np.add.at applies its
        # updates in index-array order, so every coordinate sees exactly the
        # left-fold the one-shot constructor would perform — the bit-identity
        # contract of the streaming layer.
        entry_pos = np.searchsorted(merged_keys, bkeys)
        np.add.at(merged_vals, entry_pos, bvals)

        old_indices = self._indices
        old_csf = self._csf
        self._indices = merged_idx
        self._values = merged_vals
        self._keys = merged_keys

        action = "deferred"
        touched_fraction = 0.0
        if old_csf is not None:
            action, touched_fraction = self._update_csf(
                old_csf, old_indices, bidx[rep], pos_new
            )
        return AppendStats(
            int(bvals.shape[0]), n_new, updated, action, touched_fraction
        )

    def _append_fallback(self, bidx: np.ndarray, bvals: np.ndarray) -> AppendStats:
        """Merge without linear keys (key space past int64): stable re-sort.

        Old entries are placed before the batch, so the stable lexsort keeps
        every duplicate group in concatenation order and the grouped fold
        matches the one-shot left-fold exactly.
        """
        n_old = self.nnz
        indices = np.concatenate([self._indices, bidx], axis=0)
        values = np.concatenate([self._values, bvals])
        perm = np.lexsort(
            tuple(indices[:, m] for m in reversed(self._mode_order))
        ).astype(np.int64)
        sorted_idx = indices[perm]
        uniq_mask = np.empty(perm.shape, dtype=bool)
        uniq_mask[0] = True
        np.any(sorted_idx[1:] != sorted_idx[:-1], axis=1, out=uniq_mask[1:])
        group_ids = np.cumsum(uniq_mask) - 1
        summed = np.zeros(int(group_ids[-1]) + 1, dtype=values.dtype)
        np.add.at(summed, group_ids, values[perm])
        n_merged = int(summed.shape[0])
        self._indices = sorted_idx[uniq_mask]
        self._values = summed
        self._keys = None
        action = "deferred"
        if self._csf is not None:
            self._rebuild_csf()
            action = "rebuilt"
        return AppendStats(
            int(bvals.shape[0]),
            n_merged - n_old,
            int(bvals.shape[0]) - (n_merged - n_old),
            action,
            1.0,
        )

    # ------------------------------------------------------------------ #
    # CSF maintenance
    # ------------------------------------------------------------------ #
    def _rebuild_csf(self) -> None:
        fids, fptr = csf_levels_from_sorted(self._indices, self._mode_order)
        self._csf = CSFTensor.from_arrays(
            self._shape, self._mode_order, fids, fptr, self._values
        )
        self.csf_rebuilds += 1

    def _update_csf(
        self,
        old_csf: CSFTensor,
        old_indices: np.ndarray,
        new_coords: np.ndarray,
        pos_new: np.ndarray,
    ) -> Tuple[str, float]:
        order = self.order
        root = self._mode_order[0]
        n_merged = int(self._values.shape[0])

        if order == 1 or old_indices.shape[0] == 0:
            self._rebuild_csf()
            return "rebuilt", 1.0

        # Nonzero span of every old root fiber, composed through fptr.
        old_root_starts = old_csf.fptr[0]
        for level in range(1, order - 1):
            old_root_starts = old_csf.fptr[level][old_root_starts]
        old_fids0 = old_csf.fids[0]

        touched_roots = np.unique(new_coords[:, root])
        old_touched = np.searchsorted(old_fids0, touched_roots)
        old_hit = (old_touched < old_fids0.shape[0]) & (
            old_fids0[np.minimum(old_touched, old_fids0.shape[0] - 1)]
            == touched_roots
        )
        touched_old_nnz = int(
            np.sum(
                old_root_starts[old_touched[old_hit] + 1]
                - old_root_starts[old_touched[old_hit]]
            )
        )
        touched_fraction = (
            touched_old_nnz + int(pos_new.shape[0])
        ) / n_merged

        if touched_fraction > self.churn_threshold:
            self._rebuild_csf()
            return "rebuilt", touched_fraction

        # Root runs of the merged order: maximal stretches of roots that are
        # all touched (re-scan) or all untouched (splice the old slabs).
        merged_roots = self._indices[:, root]
        root_change = np.empty(n_merged, dtype=bool)
        root_change[0] = True
        np.not_equal(merged_roots[1:], merged_roots[:-1], out=root_change[1:])
        root_starts = np.flatnonzero(root_change).astype(np.int64)
        root_vals = merged_roots[root_starts]
        touched_mask = np.isin(root_vals, touched_roots)
        run_break = np.empty(touched_mask.shape, dtype=bool)
        run_break[0] = True
        np.not_equal(touched_mask[1:], touched_mask[:-1], out=run_break[1:])
        run_firsts = np.flatnonzero(run_break)
        if run_firsts.shape[0] > _MAX_SLAB_RUNS:
            self._rebuild_csf()
            return "rebuilt", touched_fraction

        root_bounds = np.concatenate([root_starts, [n_merged]])
        fids_chunks: List[List[np.ndarray]] = [[] for _ in range(order - 1)]
        count_chunks: List[List[np.ndarray]] = [[] for _ in range(order - 1)]
        for r, first in enumerate(run_firsts):
            last = (
                run_firsts[r + 1]
                if r + 1 < run_firsts.shape[0]
                else root_vals.shape[0]
            )
            lo_nnz = int(root_bounds[first])
            hi_nnz = int(root_bounds[last])
            if touched_mask[first]:
                slab_fids, slab_fptr = csf_levels_from_sorted(
                    self._indices[lo_nnz:hi_nnz], self._mode_order
                )
                for level in range(order - 1):
                    fids_chunks[level].append(slab_fids[level])
                    count_chunks[level].append(np.diff(slab_fptr[level]))
            else:
                # Consecutive untouched merged roots are consecutive in the
                # old tree (any old root between them would appear between
                # them in the merged order too), so the old level arrays
                # splice through as contiguous slices.
                a = int(np.searchsorted(old_fids0, root_vals[first]))
                b = a + (last - first)
                lo, hi = a, b
                for level in range(order - 1):
                    fids_chunks[level].append(old_csf.fids[level][lo:hi])
                    count_chunks[level].append(
                        np.diff(old_csf.fptr[level][lo : hi + 1])
                    )
                    lo = int(old_csf.fptr[level][lo])
                    hi = int(old_csf.fptr[level][hi])

        fids: List[np.ndarray] = []
        fptr: List[np.ndarray] = []
        for level in range(order - 1):
            fids.append(np.concatenate(fids_chunks[level]))
            counts = np.concatenate(count_chunks[level])
            pointers = np.zeros(counts.shape[0] + 1, dtype=np.int64)
            np.cumsum(counts, out=pointers[1:])
            fptr.append(pointers)
        fids.append(
            np.ascontiguousarray(self._indices[:, self._mode_order[-1]])
        )
        self._csf = CSFTensor.from_arrays(
            self._shape, self._mode_order, fids, fptr, self._values
        )
        self.csf_slab_merges += 1
        return "merged", touched_fraction

    # ------------------------------------------------------------------ #
    # Views and conversions
    # ------------------------------------------------------------------ #
    @property
    def tensor(self) -> SparseTensor:
        """The merged tensor, in the one-shot constructor's canonical order.

        Entries are re-sorted to the column-major comparator so the result
        is bit-identical to ``SparseTensor(all_entries, ..., sum_duplicates=
        True)`` over the concatenation of every appended batch.
        """
        shape = self.shape  # raises when never established
        if self.nnz == 0:
            return SparseTensor.empty(shape, dtype=self.dtype)
        perm = _colmajor_sort(self._indices)
        return SparseTensor(
            self._indices[perm], self._values[perm], shape, copy=False
        )

    def to_coo(self) -> SparseTensor:
        return self.tensor

    def to_csf(self) -> CSFTensor:
        """The maintained fiber tree (built on first call, spliced after).

        The returned tree aliases the stream's value array; treat it as
        read-only and re-call after every :meth:`append` (value-only appends
        mutate it in place, structural ones replace it).
        """
        self.shape  # raises when never established
        if self._csf is None:
            fids, fptr = csf_levels_from_sorted(self._indices, self._mode_order)
            self._csf = CSFTensor.from_arrays(
                self._shape, self._mode_order, fids, fptr, self._values
            )
        return self._csf

    def fingerprint(self) -> str:
        """Canonical content hash of the merged tensor (same as
        :meth:`SparseTensor.fingerprint` of :attr:`tensor`)."""
        return self.tensor.fingerprint()

    def delta_fingerprint(self) -> DeltaFingerprint:
        """The O(batch)-maintained identity of the *appended entry multiset*.

        Note this hashes the raw appended entries (duplicates included), not
        the merged result — it is invariant under how the same entries were
        split into batches, which is the property the streaming cache needs.
        """
        if self._fp is None:
            raise ValueError("empty streaming tensor with no shape information")
        return self._fp

    def memory_bytes(self) -> int:
        total = 0 if self._indices is None else int(
            self._indices.nbytes + self._values.nbytes
        )
        if self._keys is not None:
            total += int(self._keys.nbytes)
        if self._csf is not None:
            # Values are shared with the COO log; count the level arrays only.
            total += self._csf.memory_bytes() - int(self._csf.values.nbytes)
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self._shape is None:
            return "StreamingTensor(<empty>)"
        return (
            f"StreamingTensor(shape={self._shape}, nnz={self.nnz}, "
            f"batches={self.batches_applied})"
        )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_tns(
        cls,
        path,
        *,
        shape: Optional[Sequence[int]] = None,
        chunk_nnz: Optional[int] = None,
        **kwargs,
    ) -> "StreamingTensor":
        """Stream a ``.tns`` file into a tensor, one chunk per append.

        Chunks are appended raw (``merge_duplicates=False``) so duplicates
        spanning chunk boundaries fold exactly as the one-shot reader folds
        them: the result's :attr:`tensor` is bit-identical to
        ``read_tns(path, ...)``.  Shape precedence matches the reader too —
        explicit ``shape``, else a ``# shape:`` header, else max index + 1.
        """
        from repro.data.io import DEFAULT_CHUNK_NNZ, iter_tns_chunks

        reader = iter_tns_chunks(
            path,
            chunk_nnz=DEFAULT_CHUNK_NNZ if chunk_nnz is None else chunk_nnz,
        )
        stream = cls(shape=shape, **kwargs)
        for chunk_indices, chunk_values in reader:
            stream.append(
                DeltaBatch(
                    chunk_indices,
                    chunk_values,
                    copy=False,
                    merge_duplicates=False,
                )
            )
        if stream._indices is None:
            header = reader.header_shape
            if shape is None and header is None:
                raise ValueError("empty .tns file with no shape information")
            final = tuple(shape) if shape is not None else tuple(header)
            stream._shape = tuple(int(s) for s in final)
            stream._establish(len(stream._shape))
        elif shape is None and reader.header_shape is not None:
            stream.grow_to(
                tuple(
                    max(int(a), int(b))
                    for a, b in zip(stream.shape, reader.header_shape)
                )
            )
        return stream
