"""Warm-started incremental HOOI over a streaming tensor.

Cold HOOI spends most of its sweeps rediscovering the dominant subspaces of
a tensor that, under streaming appends, barely moved.  The warm-start layer
re-enters the engine seeded from the previous run's factor matrices: the
factors conform to the (possibly grown) shape and (possibly clipped) ranks
(:func:`conform_factors`), the options' ``init`` field carries them in —
:func:`repro.core.hosvd.initialize_factors` already accepts explicit
matrices — and the sweep budget scales with how much of the tensor actually
changed (:func:`adaptive_sweep_budget`).  :class:`StreamingSession` strings
the per-batch runs together, tracking the total sweeps spent so the
benchmark gate can compare against cold restarts.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.core.hooi import HOOIOptions, HOOIResult, hooi
from repro.core.sparse_tensor import SparseTensor
from repro.streaming.tensor import StreamingTensor
from repro.util.linalg import random_orthonormal
from repro.util.validation import check_rank_vector

__all__ = [
    "adaptive_sweep_budget",
    "conform_factors",
    "streaming_hooi",
    "StreamingSession",
]


def conform_factors(
    factors: Sequence[np.ndarray],
    shape: Sequence[int],
    ranks: Union[int, Sequence[int]],
) -> List[np.ndarray]:
    """Fit previous factor matrices to a (grown) shape and rank vector.

    A factor already matching ``(shape[n], ranks[n])`` passes through as a
    copy.  When a mode grew (new rows) or the rank changed, the target is
    seeded with a deterministic orthonormal matrix and the overlapping
    ``[:rows, :cols]`` block of the previous factor is copied in — new rows
    start from fresh directions, retained rows keep their learned subspace.
    Truncation keeps the leading columns (the dominant directions, since
    HOOI orders singular vectors by singular value).
    """
    shape = tuple(int(s) for s in shape)
    ranks = check_rank_vector(ranks, shape)
    if len(factors) != len(shape):
        raise ValueError(
            f"{len(factors)} factors for an order-{len(shape)} tensor"
        )
    out: List[np.ndarray] = []
    for n, factor in enumerate(factors):
        factor = np.asarray(factor, dtype=np.float64)
        if factor.ndim != 2:
            raise ValueError(f"factor {n} is not a matrix")
        target = (shape[n], ranks[n])
        if factor.shape == target:
            out.append(factor.copy())
            continue
        if factor.shape[0] > shape[n]:
            raise ValueError(
                f"factor {n} has {factor.shape[0]} rows but mode {n} has "
                f"size {shape[n]} — streaming shapes only grow"
            )
        seeded = random_orthonormal(shape[n], ranks[n], seed=n)
        rows = min(factor.shape[0], shape[n])
        cols = min(factor.shape[1], ranks[n])
        seeded[:rows, :cols] = factor[:rows, :cols]
        out.append(seeded)
    return out


def adaptive_sweep_budget(
    delta_nnz: int,
    total_nnz: int,
    *,
    base_sweeps: int,
    min_sweeps: int = 1,
) -> int:
    """Sweeps to grant an incremental run that changed ``delta_nnz`` entries.

    Scales the cold budget by the square root of the changed fraction —
    perturbation theory puts the subspace rotation at the order of the
    relative perturbation, and each HOOI sweep contracts the error
    multiplicatively, so the sweeps needed grow sublinearly in the drift.
    Clamped to ``[min_sweeps, base_sweeps]``; a degenerate total (empty
    tensor) gets the full budget.
    """
    base_sweeps = int(base_sweeps)
    min_sweeps = max(1, int(min_sweeps))
    if total_nnz <= 0:
        return max(base_sweeps, min_sweeps)
    fraction = min(1.0, max(0.0, float(delta_nnz) / float(total_nnz)))
    budget = int(math.ceil(base_sweeps * math.sqrt(fraction)))
    return max(min_sweeps, min(base_sweeps, budget))


def _resolve_options(options, option_kwargs) -> dict:
    if isinstance(options, HOOIOptions):
        base = options.to_dict()
    elif options is None:
        base = {}
    elif isinstance(options, dict):
        base = dict(options)
    else:
        raise TypeError(
            f"options must be an HOOIOptions or a dict, got "
            f"{type(options).__name__}"
        )
    base.update(option_kwargs)
    return base


def streaming_hooi(
    source,
    ranks: Union[int, Sequence[int]],
    options=None,
    *,
    resume_factors: Optional[Sequence[np.ndarray]] = None,
    delta_fraction: Optional[float] = None,
    min_sweeps: int = 1,
    workspace=None,
    callback: Optional[Callable[[int, float], None]] = None,
    cancel_check: Optional[Callable[[], None]] = None,
    **option_kwargs,
) -> HOOIResult:
    """One warm-started HOOI run over a streaming (or plain COO) tensor.

    ``source`` is a :class:`StreamingTensor` or a :class:`SparseTensor`.
    ``resume_factors`` seed the sweep (conformed via
    :func:`conform_factors`); ``delta_fraction`` — fraction of nonzeros the
    last appends changed — shrinks ``max_iterations`` through
    :func:`adaptive_sweep_budget` (only when resuming; a cold run keeps the
    full budget).
    """
    tensor = source.tensor if isinstance(source, StreamingTensor) else source
    if not isinstance(tensor, SparseTensor):
        raise TypeError(
            "source must be a StreamingTensor or SparseTensor, got "
            f"{type(source).__name__}"
        )
    opts = HOOIOptions.from_dict(_resolve_options(options, option_kwargs))
    if resume_factors is not None:
        conformed = conform_factors(resume_factors, tensor.shape, ranks)
        sweeps = opts.max_iterations
        if delta_fraction is not None:
            sweeps = adaptive_sweep_budget(
                int(round(delta_fraction * tensor.nnz)),
                tensor.nnz,
                base_sweeps=opts.max_iterations,
                min_sweeps=min_sweeps,
            )
        opts = dataclasses.replace(
            opts, init=conformed, max_iterations=sweeps
        )
    return hooi(
        tensor,
        ranks,
        opts,
        callback=callback,
        workspace=workspace,
        cancel_check=cancel_check,
    )


class StreamingSession:
    """Per-batch warm-started decomposition over a :class:`StreamingTensor`.

    Each :meth:`update` optionally appends a batch, then runs HOOI seeded
    from the previous update's factors with a sweep budget scaled to the
    batch size.  ``total_sweeps`` accumulates the sweeps actually spent —
    the quantity the warm-start acceptance benchmark compares against a
    cold restart per batch.
    """

    def __init__(
        self,
        stream: StreamingTensor,
        ranks: Union[int, Sequence[int]],
        *,
        options=None,
        workspace=None,
        adaptive: bool = True,
        min_sweeps: int = 1,
        **option_kwargs,
    ) -> None:
        self.stream = stream
        self.ranks = ranks
        self.options = HOOIOptions.from_dict(
            _resolve_options(options, option_kwargs)
        )
        self.workspace = workspace
        self.adaptive = bool(adaptive)
        self.min_sweeps = int(min_sweeps)
        self.total_sweeps = 0
        self.updates = 0
        self.last_result: Optional[HOOIResult] = None
        self._factors: Optional[List[np.ndarray]] = None

    @property
    def factors(self) -> Optional[List[np.ndarray]]:
        """Factors of the latest run (``None`` before the first update)."""
        return self._factors

    def update(self, batch=None) -> HOOIResult:
        """Append ``batch`` (if given) and re-decompose from the last factors."""
        delta_fraction: Optional[float] = None
        if batch is not None:
            stats = self.stream.append(batch)
            if self.adaptive and self.stream.nnz:
                delta_fraction = min(
                    1.0, stats.batch_nnz / self.stream.nnz
                )
        result = streaming_hooi(
            self.stream,
            self.ranks,
            self.options,
            resume_factors=self._factors,
            delta_fraction=delta_fraction if self._factors is not None else None,
            min_sweeps=self.min_sweeps,
            workspace=self.workspace,
        )
        self._factors = [f.copy() for f in result.decomposition.factors]
        self.total_sweeps += result.iterations
        self.updates += 1
        self.last_result = result
        return result
