"""Append batches for dynamic tensors.

A :class:`DeltaBatch` is a bag of ``(index tuple, value)`` entries with no
shape of its own — the receiving :class:`~repro.streaming.tensor.StreamingTensor`
grows its shape to cover the batch extents.  Batch construction applies the
same duplicate semantics the COO container pinned in its constructor
(:meth:`repro.core.sparse_tensor.SparseTensor._sum_duplicates_inplace`):
stable sort by the column-major comparator, then a sequential left-fold of
equal coordinates in storage order.  That exactness matters because the
streaming layer's headline property is *bit-identity* with one-shot
construction — any split of the same entries into batches must fold to the
same IEEE values, not merely close ones.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.sparse_tensor import (
    SparseTensor,
    as_supported_float,
    resolve_dtype,
)

__all__ = ["DeltaBatch", "apply_delta"]


def _colmajor_sort(indices: np.ndarray) -> np.ndarray:
    """Stable permutation sorting index tuples like their column-major keys.

    ``np.lexsort`` treats its *last* key as primary, so feeding the columns
    first-to-last sorts by ``(col N-1, ..., col 0)`` — exactly the order of
    the column-major linear indices :meth:`SparseTensor.linear_indices`
    produces, without forming the (overflow-prone) products.
    """
    return np.lexsort(
        tuple(indices[:, c] for c in range(indices.shape[1]))
    ).astype(np.int64)


class DeltaBatch:
    """A batch of nonzero entries to append to a streaming tensor.

    Parameters
    ----------
    indices:
        Integer array of shape ``(nnz, order)``, 0-based.  Negative indices
        are rejected; there is no upper bound — the receiving tensor grows.
    values:
        Real array of shape ``(nnz,)``.
    dtype:
        Optional storage dtype (``float32``/``float64``); by default a
        supported float dtype of the input is kept and the rest promoted to
        ``float64``, matching the COO container's rule.
    copy:
        Copy the inputs (default).  ``copy=False`` trusts the caller not to
        mutate the arrays afterwards (the chunked ``.tns`` reader hands over
        freshly-built arrays, for example).
    merge_duplicates:
        Merge duplicate coordinates within the batch by summing (default),
        with the PR 5 left-fold semantics.  Pass ``False`` to keep raw
        entries — required when replaying a file whose duplicate handling
        must match :func:`repro.data.io.read_tns` bit-for-bit, because the
        one-shot reader folds *all* duplicates in file order rather than
        per-chunk first.
    """

    __slots__ = ("indices", "values")

    def __init__(
        self,
        indices: np.ndarray,
        values: np.ndarray,
        *,
        dtype=None,
        copy: bool = True,
        merge_duplicates: bool = True,
    ) -> None:
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values)
        if dtype is not None:
            values = values.astype(resolve_dtype(dtype), copy=False)
        else:
            values = as_supported_float(values)
        if copy:
            indices = indices.copy()
            values = values.copy()
        if indices.ndim != 2:
            if indices.size == 0:
                indices = indices.reshape(0, 1)
            else:
                raise ValueError("indices must be a 2-D array of shape (nnz, order)")
        if values.ndim != 1 or values.shape[0] != indices.shape[0]:
            raise ValueError("values must be 1-D with one entry per nonzero")
        if indices.shape[0] and (indices.min(axis=0) < 0).any():
            raise ValueError("negative indices are not allowed")
        self.indices = indices
        self.values = values
        if merge_duplicates and self.nnz:
            self._merge_duplicates()

    def _merge_duplicates(self) -> None:
        # The COO container's dedup verbatim, with the lexsort comparator
        # standing in for linear keys (a batch has no shape to form them).
        order = _colmajor_sort(self.indices)
        sorted_idx = self.indices[order]
        uniq_mask = np.empty(order.shape, dtype=bool)
        uniq_mask[0] = True
        np.any(sorted_idx[1:] != sorted_idx[:-1], axis=1, out=uniq_mask[1:])
        group_ids = np.cumsum(uniq_mask) - 1
        summed = np.zeros(int(group_ids[-1]) + 1, dtype=self.values.dtype)
        np.add.at(summed, group_ids, self.values[order])
        self.indices = self.indices[order[uniq_mask]]
        self.values = summed

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    @property
    def order(self) -> int:
        return int(self.indices.shape[1])

    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    def extents(self) -> Tuple[int, ...]:
        """Minimal shape covering the batch (``max index + 1`` per mode)."""
        if self.nnz == 0:
            return (0,) * self.order
        return tuple(int(m) + 1 for m in self.indices.max(axis=0))

    def fingerprint(self) -> str:
        """Content hash of the batch (canonical over entry order).

        Entries are sorted by the column-major comparator before hashing,
        so two batches holding the same entries in different storage order
        fingerprint identically — the delta half of the serving cache key
        ``(base fingerprint, batch fingerprint)``.
        """
        digest = hashlib.sha256()
        digest.update(b"repro-delta-batch/1")
        digest.update(np.asarray([self.order], dtype=np.int64).tobytes())
        digest.update(self.values.dtype.str.encode("ascii"))
        if self.nnz:
            perm = _colmajor_sort(self.indices)
            digest.update(np.ascontiguousarray(self.indices[perm]).tobytes())
            digest.update(np.ascontiguousarray(self.values[perm]).tobytes())
        return digest.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeltaBatch(nnz={self.nnz}, order={self.order}, dtype={self.dtype})"

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_tensor(cls, tensor: SparseTensor, *, copy: bool = True) -> "DeltaBatch":
        """Wrap a COO tensor's stored entries as a batch (shape dropped)."""
        return cls(
            tensor.indices, tensor.values, copy=copy, merge_duplicates=False
        )

    @classmethod
    def coerce(cls, obj) -> "DeltaBatch":
        """Accept a :class:`DeltaBatch`, a :class:`SparseTensor`, or an
        ``(indices, values)`` pair, normalizing to a batch."""
        if isinstance(obj, cls):
            return obj
        if isinstance(obj, SparseTensor):
            return cls.from_tensor(obj)
        if isinstance(obj, (tuple, list)) and len(obj) == 2:
            return cls(obj[0], obj[1])
        raise TypeError(
            "expected a DeltaBatch, SparseTensor or (indices, values) pair, "
            f"got {type(obj).__name__}"
        )


def apply_delta(
    tensor: SparseTensor,
    batch,
    *,
    shape: Optional[Sequence[int]] = None,
) -> SparseTensor:
    """One-shot append: the tensor holding ``tensor``'s and ``batch``'s entries.

    The reference semantics the incremental
    :meth:`~repro.streaming.tensor.StreamingTensor.append` must reproduce
    bit-for-bit: concatenate the entries (base first, batch in its stored
    order), grow the shape to the elementwise max of the base shape, the
    batch extents and an optional explicit ``shape``, and merge duplicates
    with the constructor's left-fold.  Values fold in the base storage
    dtype.  Also the eager path :meth:`DecompositionService.submit_delta`
    runs to materialize the updated tensor it decomposes.
    """
    batch = DeltaBatch.coerce(batch)
    if batch.order != tensor.order:
        raise ValueError(
            f"batch has {batch.order} modes but the tensor has {tensor.order}"
        )
    new_shape = tuple(
        max(int(s), int(e)) for s, e in zip(tensor.shape, batch.extents())
    )
    if shape is not None:
        if len(shape) != tensor.order:
            raise ValueError(
                f"shape has {len(shape)} modes but the tensor has {tensor.order}"
            )
        new_shape = tuple(
            max(int(s), int(e)) for s, e in zip(shape, new_shape)
        )
    indices = np.concatenate([tensor.indices, batch.indices], axis=0)
    values = np.concatenate(
        [tensor.values, batch.values.astype(tensor.dtype, copy=False)]
    )
    return SparseTensor(
        indices, values, new_shape, copy=False, sum_duplicates=True
    )
