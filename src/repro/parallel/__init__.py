"""Shared-memory parallel HOOI (the paper's Algorithm 3) and the node model.

Two shared-memory execution substrates live here: worker *threads*
(:mod:`repro.parallel.parallel_for`, GIL-bound — faithful work decomposition)
and worker *processes* over zero-copy shared memory
(:mod:`repro.parallel.process_pool` + :mod:`repro.parallel.shm` — true
multicore execution of the same row-parallel decomposition).
"""

from repro.parallel.parallel_for import ChunkSchedule, ParallelConfig, make_chunks, parallel_for
from repro.parallel.shared_dimtree import parallel_edge_update
from repro.parallel.shared_ttmc import parallel_ttmc_matricized, ttmc_row_block
from repro.parallel.shm import ShmArena, ShmArraySpec, ShmView
from repro.parallel.process_pool import (
    HOOIProcessPool,
    ProcessConfig,
    WorkerCrashError,
)
from repro.parallel.model import BGQ_NODE, NodeModel, PhaseWork
from repro.parallel.work import (
    core_phase_work,
    kron_width,
    trsvd_phase_work,
    trsvd_row_work,
    ttmc_phase_work,
)
from repro.parallel.shared_hooi import SharedHOOIReport, predict_iteration_time, shared_hooi

__all__ = [
    "ChunkSchedule",
    "ParallelConfig",
    "make_chunks",
    "parallel_for",
    "parallel_edge_update",
    "parallel_ttmc_matricized",
    "ttmc_row_block",
    "ShmArena",
    "ShmArraySpec",
    "ShmView",
    "HOOIProcessPool",
    "ProcessConfig",
    "WorkerCrashError",
    "BGQ_NODE",
    "NodeModel",
    "PhaseWork",
    "core_phase_work",
    "kron_width",
    "trsvd_phase_work",
    "trsvd_row_work",
    "ttmc_phase_work",
    "SharedHOOIReport",
    "predict_iteration_time",
    "shared_hooi",
]
