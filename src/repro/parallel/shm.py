"""Named shared-memory arena: zero-copy NumPy arrays across processes.

The process-parallel HOOI backend needs the big, read-mostly operands — the
tensor's ``indices``/``values``, the per-mode symbolic structures, the factor
matrices and the matricized ``Y_(n)`` output buffers — visible to every
worker process *without* serialization.  :class:`ShmArena` owns a set of
``multiprocessing.shared_memory`` segments, each backing exactly one ndarray,
keyed by a logical name; :meth:`ShmArena.specs` is a picklable description a
worker turns back into ndarray views with :class:`ShmView`.  Workers write
row-disjoint slices of the output arrays, so the arena needs no locking.

Lifecycle
---------
The creating process is the owner: it calls :meth:`ShmArena.close` (release
this process's views, best effort) and :meth:`ShmArena.unlink` (destroy the
segments).  Both are idempotent, and a ``weakref.finalize`` hook unlinks the
segments even if the owner forgets or dies by exception, so a crashed run
cannot leak ``/dev/shm`` entries.  ndarray views handed out earlier stay
valid after ``unlink`` — POSIX keeps the pages alive until the last mapping
goes away — which lets a HOOI result outlive its worker pool.

Attach-side tracking
--------------------
``multiprocessing.resource_tracker`` assumes whoever opens a segment owns
it; a worker that merely attaches would re-register the segment and emit
"leaked shared_memory" warnings at exit (and, under ``spawn``, attempt a
second unlink).  :func:`attach_segment` therefore detaches the tracker on
attach — via ``track=False`` where available (Python >= 3.13), falling back
to ``resource_tracker.unregister`` — leaving exactly one owner: the arena.
"""

from __future__ import annotations

import os
import secrets
import time
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.resilience.faults import maybe_fail

__all__ = [
    "ShmArraySpec",
    "ShmArena",
    "ShmView",
    "attach_segment",
    "cleanup_orphans",
]

#: Where POSIX shared memory appears as files (Linux); the orphan janitor
#: scans this directory.
SHM_DIR = "/dev/shm"

#: The arena's segment-name prefix (``<prefix>-<hex8>-<n>``); the janitor
#: only ever considers entries carrying it, so it cannot touch segments
#: created by anything other than this library.
SHM_PREFIX = "rpshm"


@dataclass(frozen=True)
class ShmArraySpec:
    """Picklable description of one shared ndarray (the attach recipe)."""

    key: str
    segment: str
    shape: Tuple[int, ...]
    dtype: str


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without taking tracker ownership."""
    maybe_fail("shm.attach")
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    # Python < 3.13: SharedMemory registers with the resource tracker
    # unconditionally.  Unregistering after the fact is wrong under ``fork``
    # (the child shares the owner's tracker, so it would strip the owner's
    # own registration) and merely noisy under ``spawn``; suppressing the
    # registration during attach is exactly what ``track=False`` does.
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _teardown_segments(segments: Dict[str, shared_memory.SharedMemory]) -> None:
    """Unlink + close every segment (idempotent; tolerate live views)."""
    for shm in list(segments.values()):
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass
        try:
            shm.close()
        except (BufferError, OSError):
            # An ndarray view is still exported somewhere; the mapping stays
            # alive until it is garbage collected, but the segment itself is
            # already unlinked, so nothing leaks.
            pass
    segments.clear()


class ShmArena:
    """Owner of a set of named shared-memory segments mapped to ndarrays.

    Segment names share a random per-arena ``token`` prefix so tests (and
    humans) can spot this arena's entries in ``/dev/shm``.
    """

    def __init__(self, prefix: str = SHM_PREFIX) -> None:
        self.token = f"{prefix}-{secrets.token_hex(4)}"
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._arrays: Dict[str, np.ndarray] = {}
        self._specs: Dict[str, ShmArraySpec] = {}
        self._count = 0
        # Crash-safe teardown: unlink at garbage collection / interpreter
        # exit even when close()/unlink() were never called.
        self._finalizer = weakref.finalize(self, _teardown_segments, self._segments)

    # -- creation -------------------------------------------------------- #
    def create(self, key: str, shape, dtype) -> np.ndarray:
        """Allocate a new shared ndarray (contents unspecified)."""
        if key in self._specs:
            raise ValueError(f"arena already holds an array named {key!r}")
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        nbytes = max(int(np.prod(shape, dtype=np.int64)) * dtype.itemsize, 1)
        segment = f"{self.token}-{self._count}"
        self._count += 1
        shm = shared_memory.SharedMemory(create=True, name=segment, size=nbytes)
        self._segments[key] = shm
        self._specs[key] = ShmArraySpec(
            key=key, segment=segment, shape=shape, dtype=dtype.str
        )
        array = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        self._arrays[key] = array
        return array

    def put(self, key: str, array) -> np.ndarray:
        """Copy ``array`` into a new shared segment and return the view."""
        array = np.asarray(array)
        out = self.create(key, array.shape, array.dtype)
        out[...] = array
        return out

    def zeros(self, key: str, shape, dtype) -> np.ndarray:
        """Allocate a new zero-filled shared ndarray."""
        out = self.create(key, shape, dtype)
        out[...] = 0
        return out

    # -- access ---------------------------------------------------------- #
    def __getitem__(self, key: str) -> np.ndarray:
        return self._arrays[key]

    def __contains__(self, key: str) -> bool:
        return key in self._specs

    @property
    def specs(self) -> Tuple[ShmArraySpec, ...]:
        """Picklable attach recipe for every array in creation order."""
        return tuple(self._specs.values())

    @property
    def segment_names(self) -> Tuple[str, ...]:
        """OS-level segment names (``/dev/shm`` entries on Linux)."""
        return tuple(spec.segment for spec in self._specs.values())

    def nbytes(self) -> int:
        return sum(shm.size for shm in self._segments.values())

    # -- lifecycle ------------------------------------------------------- #
    def close(self) -> None:
        """Release this process's views (best effort, idempotent).

        Views that escaped to callers keep their mapping alive; that is
        fine — :meth:`unlink` is what prevents leaks.
        """
        self._arrays.clear()
        for shm in self._segments.values():
            try:
                shm.close()
            except (BufferError, OSError):
                pass

    def unlink(self) -> None:
        """Destroy the segments (idempotent; safe to call more than once)."""
        self._arrays.clear()
        self._finalizer()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShmArena(token={self.token!r}, arrays={len(self._specs)}, "
            f"bytes={self.nbytes()})"
        )


class ShmView:
    """Attach-side counterpart of :class:`ShmArena` (used by workers)."""

    def __init__(self, specs: Iterable[ShmArraySpec]) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._arrays: Dict[str, np.ndarray] = {}
        try:
            for spec in specs:
                shm = attach_segment(spec.segment)
                self._segments[spec.key] = shm
                self._arrays[spec.key] = np.ndarray(
                    spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf
                )
        except BaseException:
            self.close()
            raise

    def __getitem__(self, key: str) -> np.ndarray:
        return self._arrays[key]

    def __contains__(self, key: str) -> bool:
        return key in self._arrays

    def close(self) -> None:
        """Detach the views (idempotent; never unlinks — not the owner)."""
        self._arrays.clear()
        for shm in self._segments.values():
            try:
                shm.close()
            except (BufferError, OSError):
                pass
        self._segments.clear()


def cleanup_orphans(
    *,
    max_age_seconds: float = 3600.0,
    dry_run: bool = False,
    prefix: str = SHM_PREFIX,
    shm_dir: str = SHM_DIR,
) -> List[str]:
    """Unlink stale repro-owned ``/dev/shm`` segments; return their names.

    The arena's ``weakref.finalize`` teardown covers every in-process death,
    but nothing in-process can cover ``SIGKILL`` / ``os._exit`` of the
    *owner* — those leave named segments behind until reboot.  This janitor
    scans ``shm_dir`` for entries carrying the library's segment prefix that
    are older than ``max_age_seconds`` and unlinks them.

    The age gate is what makes a sweep safe to run next to live services:
    a healthy arena's segments are created and destroyed within one run,
    so anything prefix-matched *and* old is an orphan of a dead owner — and
    the default hour is far beyond any sane run's lifetime.  Segments
    belonging to other software are never considered (prefix match).
    ``dry_run=True`` reports what would be removed without touching
    anything.  Missing ``shm_dir`` (non-Linux) is a no-op.

    Wired as an opt-in startup sweep in
    :class:`repro.serving.pool_manager.HOOIPoolManager` (``cleanup_orphans=
    True``); also callable directly from operational tooling.
    """
    if max_age_seconds < 0:
        raise ValueError(
            f"max_age_seconds must be >= 0, got {max_age_seconds}"
        )
    try:
        entries = os.listdir(shm_dir)
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return []
    now = time.time()
    removed: List[str] = []
    needle = f"{prefix}-"
    for name in entries:
        if not name.startswith(needle):
            continue
        path = os.path.join(shm_dir, name)
        try:
            age = now - os.stat(path).st_mtime
        except OSError:
            continue  # vanished between listdir and stat — someone beat us
        if age < max_age_seconds:
            continue
        if not dry_run:
            try:
                os.unlink(path)
            except OSError:
                continue
        removed.append(name)
    return removed
