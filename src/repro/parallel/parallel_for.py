"""A parallel-for abstraction over a pool of worker threads.

The paper's shared-memory algorithm distributes the rows of ``Y_(n)`` to
OpenMP threads with dynamic scheduling.  This module provides the equivalent
primitive for Python: a chunked parallel loop with static, dynamic or guided
scheduling executed on a reusable thread pool.  The work items handed to the
pool here are NumPy-heavy (gathers, batched Kronecker products, GEMMs), which
release the GIL inside BLAS/ufunc inner loops, so real overlap is possible;
regardless of achieved speedup the *decomposition* of work is identical to the
paper's, which is what the correctness tests and the work/communication
accounting rely on.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

__all__ = ["ChunkSchedule", "make_chunks", "parallel_for", "ParallelConfig"]


@dataclass(frozen=True)
class ParallelConfig:
    """Threading configuration shared by the parallel HOOI components."""

    num_threads: int = 1
    schedule: str = "dynamic"
    chunk_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        if self.schedule not in ("static", "dynamic", "guided"):
            raise ValueError(f"unknown schedule {self.schedule!r}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 when given")


@dataclass(frozen=True)
class ChunkSchedule:
    """A concrete list of ``(start, stop)`` chunks over ``num_items`` items."""

    num_items: int
    chunks: Tuple[Tuple[int, int], ...]

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self.chunks)

    def __len__(self) -> int:
        return len(self.chunks)


def make_chunks(
    num_items: int,
    num_threads: int,
    *,
    schedule: str = "dynamic",
    chunk_size: Optional[int] = None,
) -> ChunkSchedule:
    """Split ``range(num_items)`` into chunks according to an OpenMP-like schedule.

    * ``static``: one contiguous chunk per thread (ceil division).
    * ``dynamic``: fixed-size chunks (default: enough for ~4 chunks per
      thread) that workers grab on demand.
    * ``guided``: geometrically decreasing chunk sizes (half of the remaining
      work divided by the thread count, never below ``chunk_size`` or 1).
    """
    num_items = int(num_items)
    num_threads = max(int(num_threads), 1)
    if num_items <= 0:
        return ChunkSchedule(num_items=0, chunks=())
    chunks: List[Tuple[int, int]] = []
    if schedule == "static":
        per = -(-num_items // num_threads)
        for start in range(0, num_items, per):
            chunks.append((start, min(start + per, num_items)))
    elif schedule == "dynamic":
        if chunk_size is None:
            chunk_size = max(1, -(-num_items // (4 * num_threads)))
        for start in range(0, num_items, chunk_size):
            chunks.append((start, min(start + chunk_size, num_items)))
    elif schedule == "guided":
        minimum = chunk_size or 1
        start = 0
        while start < num_items:
            remaining = num_items - start
            size = max(minimum, remaining // (2 * num_threads))
            size = min(size, remaining)
            chunks.append((start, start + size))
            start += size
    else:
        raise ValueError(f"unknown schedule {schedule!r}")
    return ChunkSchedule(num_items=num_items, chunks=tuple(chunks))


def parallel_for(
    body: Callable[[int, int], None],
    num_items: int,
    config: ParallelConfig,
) -> None:
    """Execute ``body(start, stop)`` over chunks of ``range(num_items)`` in parallel.

    With ``num_threads == 1`` the chunks are executed inline (no pool), which
    keeps single-thread baselines free of threading overhead.  With more
    threads, dynamic/guided schedules are served from a shared iterator that
    workers drain (the Python analogue of ``schedule(dynamic)``), while the
    static schedule pre-assigns chunk ``i`` to thread ``i``.
    """
    schedule = make_chunks(
        num_items,
        config.num_threads,
        schedule=config.schedule,
        chunk_size=config.chunk_size,
    )
    if len(schedule) == 0:
        return
    if config.num_threads == 1 or len(schedule) == 1:
        for start, stop in schedule:
            body(start, stop)
        return

    if config.schedule == "static":
        assignments: List[List[Tuple[int, int]]] = [[] for _ in range(config.num_threads)]
        for i, chunk in enumerate(schedule):
            assignments[i % config.num_threads].append(chunk)

        def worker_static(chunk_list: List[Tuple[int, int]]) -> None:
            for start, stop in chunk_list:
                body(start, stop)

        with ThreadPoolExecutor(max_workers=config.num_threads) as pool:
            futures = [pool.submit(worker_static, a) for a in assignments if a]
            for fut in futures:
                fut.result()
        return

    queue = iter(schedule)
    lock = threading.Lock()

    def worker_dynamic() -> None:
        while True:
            with lock:
                chunk = next(queue, None)
            if chunk is None:
                return
            body(chunk[0], chunk[1])

    with ThreadPoolExecutor(max_workers=config.num_threads) as pool:
        futures = [pool.submit(worker_dynamic) for _ in range(config.num_threads)]
        for fut in futures:
            fut.result()
