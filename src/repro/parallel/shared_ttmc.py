"""Shared-memory parallel numeric TTMc (Algorithm 3, lines 5-8).

The symbolic step guarantees that each non-empty row ``i ∈ J_n`` of ``Y_(n)``
is updated only from its own update list ``ul_n(i)``, so rows can be computed
fully independently — the paper's lock-free decomposition.  Here a chunk of
rows is one task: the worker gathers the chunk's nonzeros, performs the
batched Kronecker products and segment-sums them into the rows it owns.  No
two workers ever touch the same output row, so no locks are needed, exactly as
in the paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.kron import batch_kron_rows, kron_row_length
from repro.core.sparse_tensor import SparseTensor
from repro.core.symbolic import ModeSymbolic, symbolic_ttmc
from repro.core.ttmc import default_block_size, gather_ranges, ttmc_dtype
from repro.parallel.parallel_for import ParallelConfig, parallel_for
from repro.util.validation import check_axis, check_same_order

__all__ = ["ttmc_row_block", "parallel_ttmc_row_block", "parallel_ttmc_matricized"]


def ttmc_row_block(
    tensor: SparseTensor,
    factors: Sequence[Optional[np.ndarray]],
    mode: int,
    symbolic: ModeSymbolic,
    row_positions: np.ndarray,
    *,
    block_nnz: Optional[int] = None,
    kernel: str = "numpy",
) -> np.ndarray:
    """Compute a compact block of TTMc rows.

    ``row_positions`` indexes into ``symbolic.rows`` (i.e. positions of
    non-empty rows, not tensor indices); the result has shape
    ``(len(row_positions), prod R_t)`` with row ``p`` holding
    ``Y_(n)(symbolic.rows[row_positions[p]], :)``.  ``kernel`` selects the
    inner-loop tier (``"numpy"`` or the fused compiled ``"numba"`` loops of
    :mod:`repro.kernels`); either way each output row is written by exactly
    this call — the lock-free property the thread / process / distributed
    layers compose over is untouched.
    """
    from repro.kernels import kernel_table

    mode = check_axis(mode, tensor.order)
    check_same_order(tensor.order, factors, "factors")
    row_positions = np.asarray(row_positions, dtype=np.int64)
    widths = [
        np.asarray(factors[t]).shape[1] for t in range(tensor.order) if t != mode
    ]
    width = kron_row_length(widths)
    dtype = ttmc_dtype(tensor, factors, mode)
    out = np.zeros((row_positions.shape[0], width), dtype=dtype)
    if row_positions.shape[0] == 0:
        return out

    counts = symbolic.rowptr[row_positions + 1] - symbolic.rowptr[row_positions]
    positions = gather_ranges(symbolic.perm, symbolic.rowptr[row_positions], counts)

    table = kernel_table(kernel)
    if table is not None:
        from repro.core.ttmc import _compiled_factor_args

        rowptr = np.zeros(row_positions.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=rowptr[1:])
        factor_list, cols = _compiled_factor_args(
            tensor, factors, mode, dtype, table
        )
        table.coo_row_block_ttmc(
            tensor.indices,
            tensor.values,
            factor_list,
            cols,
            rowptr,
            np.ascontiguousarray(positions, dtype=np.int64),
            np.arange(row_positions.shape[0], dtype=np.int64),
            out,
        )
        return out

    # local (block-relative) output row of every gathered nonzero
    local_rows = np.repeat(np.arange(row_positions.shape[0], dtype=np.int64), counts)
    if positions.shape[0] == 0:
        return out

    if block_nnz is None:
        block_nnz = default_block_size(width, itemsize=dtype.itemsize)
    factor_arrays = [
        None if t == mode else np.asarray(factors[t], dtype=dtype)
        for t in range(tensor.order)
    ]
    for start in range(0, positions.shape[0], block_nnz):
        chunk = positions[start:start + block_nnz]
        chunk_rows = local_rows[start:start + chunk.shape[0]]
        idx = tensor.indices[chunk]
        blocks = [
            factor_arrays[t][idx[:, t]] for t in range(tensor.order) if t != mode
        ]
        kron = batch_kron_rows(blocks)
        kron *= tensor.values[chunk][:, None]
        boundaries = np.flatnonzero(
            np.concatenate(([True], chunk_rows[1:] != chunk_rows[:-1]))
        )
        sums = np.add.reduceat(kron, boundaries, axis=0)
        out[chunk_rows[boundaries]] += sums
    return out


def parallel_ttmc_row_block(
    tensor: SparseTensor,
    factors: Sequence[Optional[np.ndarray]],
    mode: int,
    symbolic: ModeSymbolic,
    row_positions: np.ndarray,
    *,
    config: Optional[ParallelConfig] = None,
    block_nnz: Optional[int] = None,
    kernel: str = "numpy",
) -> np.ndarray:
    """Thread-parallel :func:`ttmc_row_block` (same contract, chunked rows).

    Contiguous chunks of ``row_positions`` are distributed over worker
    threads with the configured schedule; each worker computes its chunk via
    :func:`ttmc_row_block` and writes the corresponding disjoint slice of the
    shared output — the paper's lock-free row decomposition applied to a
    compact row *block* instead of the full ``Y_(n)``.  This is what a hybrid
    distributed rank runs: its local update lists, split over the rank's
    nested thread team.
    """
    config = config or ParallelConfig()
    row_positions = np.asarray(row_positions, dtype=np.int64)
    widths = [
        np.asarray(factors[t]).shape[1] for t in range(tensor.order) if t != mode
    ]
    width = kron_row_length(widths)
    dtype = ttmc_dtype(tensor, factors, mode)
    out = np.zeros((row_positions.shape[0], width), dtype=dtype)
    if row_positions.shape[0] == 0:
        return out

    def body(start: int, stop: int) -> None:
        out[start:stop] = ttmc_row_block(
            tensor,
            factors,
            mode,
            symbolic,
            row_positions[start:stop],
            block_nnz=block_nnz,
            kernel=kernel,
        )

    parallel_for(body, row_positions.shape[0], config)
    return out


def parallel_ttmc_matricized(
    tensor: SparseTensor,
    factors: Sequence[Optional[np.ndarray]],
    mode: int,
    *,
    symbolic: Optional[ModeSymbolic] = None,
    config: Optional[ParallelConfig] = None,
    out: Optional[np.ndarray] = None,
    block_nnz: Optional[int] = None,
    zero: str = "full",
    kernel: str = "numpy",
) -> np.ndarray:
    """Shared-memory parallel ``Y_(n) = (X ×_{-n} Uᵀ)_(n)``.

    The non-empty rows ``J_n`` are chunked according to ``config`` and each
    chunk is computed by :func:`ttmc_row_block` on a worker thread; workers
    write disjoint row slices of the shared output, so the loop is lock-free.

    ``zero`` controls how much of a caller-provided ``out`` is cleared:
    every ``J_n`` row is *assigned* (not accumulated) here, so ``"none"`` is
    sufficient whenever the caller guarantees the empty rows are already
    zero (the engine's per-mode pooled buffers are); ``"touched"`` re-zeroes
    the ``J_n`` rows, ``"full"`` (default) memsets the whole buffer.
    """
    mode = check_axis(mode, tensor.order)
    config = config or ParallelConfig()
    if zero not in ("full", "touched", "none"):
        raise ValueError(f"unknown zero policy {zero!r}")
    if symbolic is None:
        symbolic = symbolic_ttmc(tensor, mode)
    widths = [
        np.asarray(factors[t]).shape[1] for t in range(tensor.order) if t != mode
    ]
    width = kron_row_length(widths)
    n_rows = tensor.shape[mode]
    dtype = ttmc_dtype(tensor, factors, mode)
    if out is None:
        out = np.zeros((n_rows, width), dtype=dtype)
    else:
        if out.shape != (n_rows, width) or out.dtype != dtype:
            raise ValueError(
                f"out has shape {out.shape} / dtype {out.dtype}, expected "
                f"{(n_rows, width)} / {dtype}"
            )
        if zero == "full":
            out[:] = 0.0
        elif zero == "touched" and symbolic.num_rows:
            out[symbolic.rows] = 0.0
    if symbolic.num_rows == 0:
        return out

    def body(start: int, stop: int) -> None:
        row_positions = np.arange(start, stop, dtype=np.int64)
        block = ttmc_row_block(
            tensor, factors, mode, symbolic, row_positions,
            block_nnz=block_nnz, kernel=kernel,
        )
        out[symbolic.rows[start:stop]] = block

    parallel_for(body, symbolic.num_rows, config)
    return out
