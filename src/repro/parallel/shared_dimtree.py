"""Row-parallel numeric phase for dimension-tree edges.

Refining a tree edge writes one payload row per child fiber, and every child
fiber aggregates a disjoint set of parent fibers (the symbolic
:class:`~repro.core.subset_ttmc.FiberGrouping` guarantees it).  Child fibers
can therefore be distributed over worker threads exactly like the rows of
``Y_(n)`` in the per-mode algorithm: a contiguous range of fibers is one
task, each worker segment-sums into the rows it owns, and no two workers
ever touch the same output row — the paper's lock-free decomposition applied
to every node of the tree instead of only the leaves.

The same decomposition serves two callers: the single-node threaded dimtree
backend (one tree over the whole tensor) and the *hybrid* distributed ranks
(one rank-local tree per simulated MPI rank, each refined by the rank's own
nested thread team — the paper's MPI+OpenMP configuration).  Nothing here is
shared between trees, so concurrent rank threads each driving their own
:func:`parallel_edge_update` never interfere.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.subset_ttmc import FiberGrouping, edge_update_groups
from repro.parallel.parallel_for import ParallelConfig, parallel_for

__all__ = ["parallel_edge_update"]


def parallel_edge_update(
    grouping: FiberGrouping,
    parent_payload: np.ndarray,
    parent_index_cols: np.ndarray,
    sibling_cols: Sequence[int],
    sibling_factors: Sequence[np.ndarray],
    lo_width: int,
    hi_width: int,
    out: np.ndarray,
    config: Optional[ParallelConfig] = None,
    *,
    block_nnz: Optional[int] = None,
) -> np.ndarray:
    """Fill a tree node's payload with the configured thread schedule.

    Chunks ``grouping``'s groups according to ``config`` and runs
    :func:`~repro.core.subset_ttmc.edge_update_groups` on each chunk's slice
    of ``out`` concurrently.  Workers allocate their scratch privately
    (no shared workspace pool — it is not thread-safe).
    """
    config = config or ParallelConfig()
    if out.shape[0] != grouping.num_groups:
        raise ValueError(
            f"out has {out.shape[0]} rows but the grouping has "
            f"{grouping.num_groups} groups"
        )

    def body(start: int, stop: int) -> None:
        edge_update_groups(
            grouping,
            start,
            stop,
            parent_payload,
            parent_index_cols,
            sibling_cols,
            sibling_factors,
            lo_width,
            hi_width,
            out[start:stop],
            block_nnz=block_nnz,
            workspace=None,
        )

    parallel_for(body, grouping.num_groups, config)
    return out
