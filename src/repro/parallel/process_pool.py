"""Persistent multiprocess worker pool for true-multicore HOOI.

The threaded backend decomposes the TTMc exactly as the paper's Algorithm 3,
but CPython's GIL serializes the hot gather / ``batch_kron_rows`` /
``np.add.reduceat`` work, so threads measure *decomposition*, not speedup.
This module provides the same row-parallel, lock-free execution on worker
*processes* with zero-copy shared memory:

* All big operands live in a :class:`~repro.parallel.shm.ShmArena` — the
  tensor's ``indices``/``values``, every mode's symbolic update lists (or the
  dimension tree's fiber groupings, or the CSF trees' per-level
  ``fids``/``fptr`` arrays), the factor matrices, and the ``Y_(n)`` output
  buffers (or tree-node payloads).  Workers attach views once at pool
  startup and reuse them across every mode and iteration.
* Numeric work is dispatched as tiny ``(mode, row_chunk)`` /
  ``(node, fiber_chunk)`` descriptors over the same static/dynamic/guided
  :func:`~repro.parallel.parallel_for.make_chunks` schedules the threaded
  backend uses.  Each chunk's rows are written by exactly one worker into a
  row-disjoint slice of the shared output — no locks, and no result pickling.
* Factor refreshes are *broadcast by memory*: after each TRSVD the driver
  writes the new ``U_n`` into its shared segment (:meth:`write_factor`); the
  queue hand-off of the next task batch orders the write before any read, so
  workers always compute with current factors.  For the dimension tree the
  driver's version counters decide which nodes went stale; workers stay
  stateless and simply execute the edge chunks they are handed.

The pool is bound to one engine run (fixed tensor, ranks and dtype) and must
be closed with :meth:`close` — idempotent, crash-safe (the arena unlinks its
segments even on abnormal teardown), and automatically invoked by the
engine's ``finalize`` hook.
"""

from __future__ import annotations

import os
import queue as queue_module
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing as mp

import numpy as np

from repro.core.symbolic import ModeSymbolic
from repro.core.subset_ttmc import FiberGrouping, edge_update_groups, subset_widths
from repro.core.kron import kron_row_length
from repro.parallel.parallel_for import make_chunks
from repro.parallel.shm import ShmArena, ShmView
from repro.resilience.faults import maybe_fail

__all__ = [
    "ProcessConfig",
    "WorkerCrashError",
    "HOOIProcessPool",
    "PersistentWorkerCrew",
    "BatchJobSpec",
    "default_start_method",
]

#: Environment variable overriding the multiprocessing start method.
START_METHOD_ENV = "REPRO_PROCESS_START_METHOD"


def default_start_method() -> str:
    """``fork`` where available (cheap startup), else ``spawn``.

    Overridable via ``REPRO_PROCESS_START_METHOD`` for debugging — ``spawn``
    gives workers a pristine interpreter at the cost of re-importing NumPy.
    """
    override = os.environ.get(START_METHOD_ENV)
    if override:
        return override
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


@dataclass(frozen=True)
class ProcessConfig:
    """Configuration of the process pool (mirrors :class:`ParallelConfig`)."""

    num_workers: int = 1
    schedule: str = "dynamic"
    chunk_size: Optional[int] = None
    start_method: Optional[str] = None
    startup_timeout: float = 120.0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.schedule not in ("static", "dynamic", "guided"):
            raise ValueError(f"unknown schedule {self.schedule!r}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 when given")


class WorkerCrashError(RuntimeError):
    """A worker process died while (or before) executing dispatched work."""


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
class _JobProgram:
    """One job's views of the shared operands (``prefix`` namespaces a batch).

    A single-job pool builds exactly one program with an empty prefix; a
    batched generation (:meth:`HOOIProcessPool.for_per_mode_batch`) builds
    one program per member job, each reading its own ``<job>:``-prefixed
    segments of the shared arena.
    """

    def __init__(self, view: ShmView, meta: dict, prefix: str = "") -> None:
        self.view = view
        self.prefix = prefix
        self.shape = tuple(meta["shape"])
        self.dtype = np.dtype(meta["dtype"])
        self.block_nnz = meta["block_nnz"]
        # Workers JIT-compile lazily on first task (numba's cache=True makes
        # every worker after the first a disk-cache hit).
        self.kernel = meta.get("kernel", "numpy")
        order = len(self.shape)
        self.factors: List[np.ndarray] = [
            view[f"{prefix}factor{n}"] for n in range(order)
        ]
        self.strategy = meta["strategy"]
        if self.strategy == "per-mode":
            from repro.core.sparse_tensor import SparseTensor

            self.tensor = SparseTensor(
                view[f"{prefix}indices"], view[f"{prefix}values"],
                self.shape, copy=False,
            )
            self.symbolic: Dict[int, ModeSymbolic] = {
                n: ModeSymbolic(
                    mode=n,
                    rows=view[f"{prefix}sym-rows{n}"],
                    perm=view[f"{prefix}sym-perm{n}"],
                    rowptr=view[f"{prefix}sym-rowptr{n}"],
                )
                for n in range(order)
            }
            self.outs: Dict[int, np.ndarray] = {
                n: view[f"{prefix}out{n}"] for n in range(order)
            }
        elif self.strategy == "csf":
            from repro.sparse.csf import CSFTensor

            # One rooted tree per mode, rebuilt over zero-copy views of the
            # driver's serialized level arrays — no re-sort on attach.
            self.csf_trees: Dict[int, CSFTensor] = {}
            for entry in meta["csf"]:
                n = int(entry["mode"])
                self.csf_trees[n] = CSFTensor.from_arrays(
                    self.shape,
                    entry["mode_order"],
                    [view[f"{prefix}csf{n}-fids{lvl}"] for lvl in range(order)],
                    [
                        view[f"{prefix}csf{n}-fptr{lvl}"]
                        for lvl in range(order - 1)
                    ],
                    view[f"{prefix}csf{n}-values"],
                )
            self.outs = {n: view[f"{prefix}out{n}"] for n in range(order)}
        elif self.strategy == "dimtree":
            root_id = meta["root_id"]
            self.edges: Dict[int, dict] = {e["node"]: e for e in meta["edges"]}
            self.groupings: Dict[int, FiberGrouping] = {
                nid: FiberGrouping(
                    indices=view[f"grp-idx{nid}"],
                    perm=view[f"grp-perm{nid}"],
                    segptr=view[f"grp-segptr{nid}"],
                    contiguous=bool(edge.get("contiguous", False)),
                )
                for nid, edge in self.edges.items()
            }
            self.payloads: Dict[int, np.ndarray] = {root_id: view[f"payload{root_id}"]}
            self.index_cols: Dict[int, np.ndarray] = {root_id: view["indices"]}
            for nid, grouping in self.groupings.items():
                self.payloads[nid] = view[f"payload{nid}"]
                self.index_cols[nid] = grouping.indices
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown job strategy {self.strategy!r}")

    def ttmc_rows(self, mode: int, start: int, stop: int) -> None:
        """Compute rows ``start:stop`` of ``J_mode`` into the shared output."""
        from repro.parallel.shared_ttmc import ttmc_row_block

        symbolic = self.symbolic[mode]
        block = ttmc_row_block(
            self.tensor,
            self.factors,
            mode,
            symbolic,
            np.arange(start, stop, dtype=np.int64),
            block_nnz=self.block_nnz,
            kernel=self.kernel,
        )
        self.outs[mode][symbolic.rows[start:stop]] = block

    def csf_slab(self, mode: int, start: int, stop: int) -> None:
        """Pull up root-fiber slab ``[start, stop)`` of one rooted tree.

        The same body the threaded CSF backend runs per slab
        (:func:`repro.sparse.csf_ttmc.csf_ttmc_compact`): a pure pullup over
        the slab's contiguous node ranges, column-permuted into engine
        layout, assigned to the slab's (unique, sorted) root-fiber rows of
        the shared output — row-disjoint across slabs, so no locks.
        """
        from repro.kernels import kernel_table
        from repro.sparse.csf_ttmc import (
            _level_ranges,
            _pullup,
            _to_engine_columns,
        )

        csf = self.csf_trees[mode]
        factor_arrays = [
            None if t == mode else self.factors[t]
            for t in range(len(self.shape))
        ]
        table = kernel_table(self.kernel)
        slab = _pullup(
            csf, factor_arrays, self.dtype, 0,
            _level_ranges(csf, start, stop), None, table,
        )
        block = _to_engine_columns(slab, csf, factor_arrays, 0)
        self.outs[mode][csf.fids[0][start:stop]] = block

    def edge_groups(self, node_id: int, start: int, stop: int) -> None:
        """Refine fiber groups ``start:stop`` of one dimension-tree edge."""
        edge = self.edges[node_id]
        edge_update_groups(
            self.groupings[node_id],
            start,
            stop,
            self.payloads[edge["parent"]],
            self.index_cols[edge["parent"]],
            edge["sibling_cols"],
            [self.factors[m] for m in edge["sibling_modes"]],
            edge["lo_width"],
            edge["hi_width"],
            self.payloads[node_id][start:stop],
            block_nnz=self.block_nnz,
        )


class _WorkerState:
    """Per-worker dispatch over the generation's job programs.

    A plain (single-job) generation holds exactly one program under the key
    ``None``; a batched generation holds one program per member job, keyed
    by the job's id.  Chunk descriptors carry the job key, so the shared
    work queue serves every member of the generation uniformly.
    """

    def __init__(self, view: ShmView, meta: dict) -> None:
        self.view = view
        if meta["strategy"] == "batch":
            self.programs: Dict[Optional[str], _JobProgram] = {
                job["job"]: _JobProgram(view, job, prefix=f"{job['job']}:")
                for job in meta["jobs"]
            }
        else:
            self.programs = {None: _JobProgram(view, meta)}

    def close(self) -> None:
        self.view.close()


def _generation_loop(worker_id: int, state: _WorkerState, task_q, done_q) -> None:
    """Drain chunk descriptors for one attached generation.

    Returns (with the views closed) when the sentinel ``None`` arrives —
    the end of the generation for a persistent worker, the end of life for
    a single-generation worker.
    """
    try:
        while True:
            task = task_q.get()
            if task is None:
                return
            kind, task_id, job = task[0], task[1], task[2]
            try:
                program = state.programs[job]
                if kind == "ttmc":
                    program.ttmc_rows(task[3], task[4], task[5])
                elif kind == "csf":
                    program.csf_slab(task[3], task[4], task[5])
                elif kind == "edge":
                    program.edge_groups(task[3], task[4], task[5])
                else:
                    raise ValueError(f"unknown task kind {kind!r}")
                error = None
            except BaseException as exc:
                error = f"{type(exc).__name__}: {exc}"
            # Fault point "worker.ack": firing here (action="exit") kills the
            # worker after it did the work but before the driver hears back —
            # the scripted equivalent of a mid-task SIGKILL.
            maybe_fail("worker.ack")
            done_q.put((task_id, worker_id, error))
    finally:
        state.close()


def _worker_main(worker_id: int, specs, meta, task_q, done_q, ctrl_q=None) -> None:
    """Worker entry point.

    Without ``ctrl_q`` (a pool-owned worker) the worker attaches the given
    arena once, serves exactly one generation and exits — the original
    single-run protocol.  With ``ctrl_q`` (a :class:`PersistentWorkerCrew`
    worker) the process is long-lived: it blocks on its private control
    queue for ``("__attach__", specs, meta)`` commands, serves the
    generation until the shared work queue delivers the detach sentinel,
    acks ``"__detached__"``, and loops — amortizing process spawn and
    interpreter/NumPy import across every job a service ever runs.
    """
    if ctrl_q is None:
        try:
            state = _WorkerState(ShmView(specs), meta)
        except BaseException as exc:
            done_q.put(("__ready__", worker_id, f"{type(exc).__name__}: {exc}"))
            return
        done_q.put(("__ready__", worker_id, None))
        _generation_loop(worker_id, state, task_q, done_q)
        return
    while True:
        command = ctrl_q.get()
        if command is None or command[0] == "__stop__":
            return
        if command[0] != "__attach__":  # pragma: no cover - defensive
            continue
        _, gen_specs, gen_meta = command
        try:
            state = _WorkerState(ShmView(gen_specs), gen_meta)
        except BaseException as exc:
            done_q.put(("__ready__", worker_id, f"{type(exc).__name__}: {exc}"))
            continue
        done_q.put(("__ready__", worker_id, None))
        _generation_loop(worker_id, state, task_q, done_q)
        done_q.put(("__detached__", worker_id, None))


# --------------------------------------------------------------------------- #
# Driver side
# --------------------------------------------------------------------------- #
def _resolve_config(config, crew) -> ProcessConfig:
    """The pool config, defaulted (and size-checked later) against a crew."""
    if config is not None:
        return config
    if crew is not None:
        return ProcessConfig(num_workers=crew.num_workers)
    return ProcessConfig()


def _validate_per_mode_ranks(tensor, ranks: Sequence[int]) -> List[int]:
    """Widths of every mode's ``Y_(n)``, rejecting shrinking TRSVD ranks."""
    order = tensor.order
    widths = [
        kron_row_length([ranks[t] for t in range(order) if t != n])
        for n in range(order)
    ]
    for n in range(order):
        if ranks[n] > min(tensor.shape[n], widths[n]):
            raise ValueError(
                f"rank {ranks[n]} of mode {n} exceeds min(I_n, W_n) = "
                f"{min(tensor.shape[n], widths[n])}; the TRSVD would "
                "return fewer columns and the process backend needs "
                "fixed factor shapes"
            )
    return widths


def _put_per_mode_job(
    arena: ShmArena,
    tensor,
    symbolic: Dict[int, ModeSymbolic],
    factors: Sequence[np.ndarray],
    ranks: Sequence[int],
    dtype,
    *,
    block_nnz: Optional[int],
    kernel: str,
    prefix: str,
) -> dict:
    """Place one per-mode job's operands into the arena; return its meta.

    ``prefix`` namespaces the segment keys (empty for a single-job pool,
    ``"<job>:"`` for batch members), matching what :class:`_JobProgram`
    reads back on the worker side.
    """
    dtype = np.dtype(dtype)
    ranks = [int(r) for r in ranks]
    widths = _validate_per_mode_ranks(tensor, ranks)
    order = tensor.order
    arena.put(f"{prefix}indices", tensor.indices)
    arena.put(f"{prefix}values", np.asarray(tensor.values, dtype=dtype))
    for n in range(order):
        arena.put(f"{prefix}factor{n}", np.asarray(factors[n], dtype=dtype))
        sym = symbolic[n]
        arena.put(f"{prefix}sym-rows{n}", sym.rows)
        arena.put(f"{prefix}sym-perm{n}", sym.perm)
        arena.put(f"{prefix}sym-rowptr{n}", sym.rowptr)
        arena.zeros(f"{prefix}out{n}", (tensor.shape[n], widths[n]), dtype)
    return {
        "strategy": "per-mode",
        "shape": tuple(int(s) for s in tensor.shape),
        "ranks": tuple(ranks),
        "dtype": dtype.str,
        "block_nnz": block_nnz,
        "kernel": kernel,
    }


def _put_csf_job(
    arena: ShmArena,
    trees,
    tensor,
    factors: Sequence[np.ndarray],
    ranks: Sequence[int],
    dtype,
    *,
    block_nnz: Optional[int],
    kernel: str,
    prefix: str,
) -> Tuple[dict, Dict[int, int]]:
    """Place one CSF job's rooted trees into the arena; return (meta, roots).

    ``trees`` is a :class:`~repro.sparse.csf.CSFTensorSet` with one tree
    rooted at every mode (the lock-free layout: a root-fiber slab's output
    rows are exactly its unique, sorted root fibers).  Each tree's per-level
    ``fids``/``fptr`` arrays and its lexicographically sorted values are
    serialized once; workers rebuild zero-copy trees from the views.
    ``roots`` maps each mode to its root-fiber count — the quantity slab
    chunks are scheduled over.
    """
    dtype = np.dtype(dtype)
    ranks = [int(r) for r in ranks]
    widths = _validate_per_mode_ranks(tensor, ranks)
    order = tensor.order
    entries: List[dict] = []
    roots: Dict[int, int] = {}
    for n in range(order):
        csf = trees.tree_for(n)
        if csf.level_of(n) != 0:
            raise ValueError(
                f"the process pool needs a tree rooted at its target mode, "
                f"but mode {n}'s tree is rooted at mode {csf.mode_order[0]}; "
                "build the set with CSFTensorSet.per_mode"
            )
        for lvl in range(order):
            arena.put(f"{prefix}csf{n}-fids{lvl}", csf.fids[lvl])
        for lvl in range(order - 1):
            arena.put(f"{prefix}csf{n}-fptr{lvl}", csf.fptr[lvl])
        arena.put(f"{prefix}csf{n}-values", np.asarray(csf.values, dtype=dtype))
        arena.zeros(f"{prefix}out{n}", (tensor.shape[n], widths[n]), dtype)
        entries.append(
            {"mode": n, "mode_order": tuple(int(m) for m in csf.mode_order)}
        )
        roots[n] = csf.num_fibers(0)
    for n in range(order):
        arena.put(f"{prefix}factor{n}", np.asarray(factors[n], dtype=dtype))
    meta = {
        "strategy": "csf",
        "shape": tuple(int(s) for s in tensor.shape),
        "ranks": tuple(ranks),
        "dtype": dtype.str,
        "block_nnz": block_nnz,
        "kernel": kernel,
        "csf": entries,
    }
    return meta, roots


class PersistentWorkerCrew:
    """Long-lived worker processes serving many pool generations.

    A plain :class:`HOOIProcessPool` spawns its workers at construction and
    kills them at :meth:`~HOOIProcessPool.close` — the right lifecycle for a
    one-shot ``hooi(...)`` call, and exactly the wrong one for a service
    handling a stream of requests, where process spawn + NumPy import costs
    dominate small jobs.  A crew decouples the two lifetimes: the processes
    are spawned once (here) and each :class:`HOOIProcessPool` built with
    ``crew=`` merely *attaches* them to its shared arena (one
    ``("__attach__", specs, meta)`` command per worker over its private
    control queue) and *detaches* them on close (the shared-queue sentinel
    trick: one ``None`` per worker — a worker that took one is back on its
    control queue and cannot take a second), leaving the processes alive for
    the next generation.

    The crew is not usable concurrently: at most one generation may be
    attached at a time (the serving layer's admission batching exists to
    pack many small jobs into one generation rather than to multiplex
    generations).  A crew whose worker died — or that timed out detaching —
    is *broken*: :attr:`alive` turns false and the owner is expected to
    :meth:`close` it and build a fresh one (the serving layer's
    crash-retry path).
    """

    def __init__(
        self,
        num_workers: int = 1,
        *,
        start_method: Optional[str] = None,
        startup_timeout: float = 120.0,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.startup_timeout = startup_timeout
        self.generations = 0
        self._closed = False
        self._broken = False
        ctx = mp.get_context(start_method or default_start_method())
        self.task_q = ctx.Queue()
        self.done_q = ctx.Queue()
        self.ctrl_qs = [ctx.Queue() for _ in range(num_workers)]
        self.workers: List[mp.process.BaseProcess] = []
        try:
            for worker_id in range(num_workers):
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        worker_id, None, None,
                        self.task_q, self.done_q, self.ctrl_qs[worker_id],
                    ),
                    name=f"repro-crew-worker-{worker_id}",
                    daemon=True,
                )
                proc.start()
                self.workers.append(proc)
        except BaseException:
            self.close()
            raise

    @property
    def alive(self) -> bool:
        """Whether the crew can serve another generation."""
        return (
            not self._closed
            and not self._broken
            and all(w.is_alive() for w in self.workers)
        )

    def mark_broken(self) -> None:
        """Retire the crew (a worker died or a detach timed out)."""
        self._broken = True

    def attach(self, specs, meta: dict) -> None:
        """Broadcast a generation's attach command to every worker."""
        if not self.alive:
            raise WorkerCrashError(
                "the worker crew is closed, broken or has dead workers; "
                "build a fresh crew"
            )
        for ctrl_q in self.ctrl_qs:
            ctrl_q.put(("__attach__", specs, meta))
        self.generations += 1

    def close(self) -> None:
        """Stop and reap the worker processes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for ctrl_q in self.ctrl_qs:
            try:
                ctrl_q.put(("__stop__",))
            except (OSError, ValueError):  # pragma: no cover - defensive
                pass
        # A worker mid-generation is blocked on the shared task queue, not
        # its control queue; feed it a detach sentinel so it can exit.
        for _ in self.workers:
            try:
                self.task_q.put(None)
            except (OSError, ValueError):  # pragma: no cover - defensive
                break
        for worker in self.workers:
            worker.join(timeout=2.0)
        for worker in self.workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=1.0)
            if worker.is_alive():  # pragma: no cover - last resort
                worker.kill()
                worker.join(timeout=1.0)
        queues = [self.task_q, self.done_q, *self.ctrl_qs]
        for q in queues:
            try:
                q.cancel_join_thread()
                q.close()
            except (OSError, ValueError):  # pragma: no cover - defensive
                pass

    def __enter__(self) -> "PersistentWorkerCrew":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "closed" if self._closed
            else ("broken" if not self.alive else "live")
        )
        return (
            f"PersistentWorkerCrew(workers={self.num_workers}, "
            f"generations={self.generations}, {state})"
        )


@dataclass(frozen=True)
class BatchJobSpec:
    """One member of a batched per-mode pool generation.

    ``job`` is the caller-chosen key every pool call uses to address this
    member (``pool.ttmc(mode, job=...)``); it doubles as the arena
    namespace prefix, so it must be unique within the batch.  ``tensor``
    must already carry the job's value dtype (the engine's dtype policy is
    applied before the arena is built) and ``factors`` are the job's
    initial factor matrices.

    ``tensor_format`` picks the member's arena layout: ``"coo"`` (default)
    packs the COO indices plus ``symbolic`` per-mode update lists,
    ``"csf"`` packs the level arrays of ``trees`` (a
    :class:`~repro.sparse.csf.CSFTensorSet` built per-mode) instead —
    ``symbolic`` may then be empty.  Members of one batch can mix formats.
    """

    job: str
    tensor: object
    symbolic: Dict[int, ModeSymbolic]
    factors: Sequence[np.ndarray]
    ranks: Sequence[int]
    block_nnz: Optional[int] = None
    kernel: str = "numpy"
    tensor_format: str = "coo"
    trees: object = None


class HOOIProcessPool:
    """A pool of worker processes attached to one shared arena.

    Build one with :meth:`for_per_mode` (row-parallel COO ``Y_(n)`` TTMc),
    :meth:`for_csf` (root-fiber-slab pullups over shared CSF level arrays),
    :meth:`for_dimtree` (fiber-parallel dimension-tree edge updates) or
    :meth:`for_per_mode_batch` (several jobs — COO and CSF members alike —
    sharing one generation), drive it with :meth:`ttmc` /
    :meth:`dimtree_edge` / :meth:`write_factor`, and release it with
    :meth:`close` (or use it as a context manager).

    Workers either belong to the pool (spawned here, killed on close — the
    one-shot ``hooi(...)`` lifecycle) or to a caller-owned
    :class:`PersistentWorkerCrew` passed as ``crew=`` (attached on
    construction, detached — but kept alive — on close; the serving
    lifecycle).  ``mode_rows`` is keyed ``(job, mode)`` with ``job=None``
    for single-job pools.
    """

    def __init__(self, *, arena: ShmArena, meta: dict, mode_rows: Dict,
                 node_groups: Dict[int, int], config: ProcessConfig,
                 crew: Optional[PersistentWorkerCrew] = None) -> None:
        self._arena = arena
        self._meta = meta
        self._mode_rows = mode_rows
        self._node_groups = node_groups
        self.config = config
        self._crew = crew
        self._closed = False
        self._broken = False
        self._detach_needed = False
        self._task_counter = 0
        # TTMc task kind per job key: CSF members dispatch root-fiber slabs
        # ("csf"), COO members dispatch symbolic row chunks ("ttmc").
        if meta["strategy"] == "batch":
            self._ttmc_kinds = {
                j["job"]: ("csf" if j["strategy"] == "csf" else "ttmc")
                for j in meta["jobs"]
            }
        else:
            self._ttmc_kinds = {
                None: "csf" if meta["strategy"] == "csf" else "ttmc"
            }
        self.workers: List[mp.process.BaseProcess] = []
        try:
            if crew is not None:
                if crew.num_workers != config.num_workers:
                    raise ValueError(
                        f"the crew has {crew.num_workers} workers but the "
                        f"pool config asks for {config.num_workers}; size "
                        "the ProcessConfig from crew.num_workers"
                    )
                self._task_q = crew.task_q
                self._done_q = crew.done_q
                self.workers = crew.workers
                crew.attach(arena.specs, meta)
                self._detach_needed = True
                try:
                    self._wait_ready()
                except BaseException:
                    # A partial attach leaves workers split between the
                    # control and generation loops; a detach broadcast could
                    # poison a later generation, so retire the crew instead.
                    crew.mark_broken()
                    self._detach_needed = False
                    raise
                return
            ctx = mp.get_context(config.start_method or default_start_method())
            self._task_q = ctx.Queue()
            self._done_q = ctx.Queue()
            for worker_id in range(config.num_workers):
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        worker_id, arena.specs, meta,
                        self._task_q, self._done_q, None,
                    ),
                    name=f"repro-hooi-worker-{worker_id}",
                    daemon=True,
                )
                proc.start()
                self.workers.append(proc)
            self._wait_ready()
        except BaseException:
            self.close()
            raise

    # -- constructors ---------------------------------------------------- #
    @classmethod
    def for_per_mode(
        cls,
        tensor,
        symbolic: Dict[int, ModeSymbolic],
        factors: Sequence[np.ndarray],
        ranks: Sequence[int],
        dtype,
        *,
        config: Optional[ProcessConfig] = None,
        block_nnz: Optional[int] = None,
        kernel: str = "numpy",
        crew: Optional[PersistentWorkerCrew] = None,
    ) -> "HOOIProcessPool":
        """Pool executing the per-mode row-parallel TTMc (Algorithm 3).

        ``kernel`` selects the inner-loop tier each worker runs
        (``"numpy"`` or the compiled ``"numba"`` loops); it rides along in
        the pool metadata, so workers resolve their own dispatch table after
        attaching shared memory.  ``crew`` runs the generation on an
        existing :class:`PersistentWorkerCrew` instead of spawning workers.
        """
        config = _resolve_config(config, crew)
        dtype = np.dtype(dtype)
        ranks = [int(r) for r in ranks]
        order = tensor.order
        arena = ShmArena()
        try:
            meta = _put_per_mode_job(
                arena, tensor, symbolic, factors, ranks, dtype,
                block_nnz=block_nnz, kernel=kernel, prefix="",
            )
            mode_rows = {
                (None, n): symbolic[n].num_rows for n in range(order)
            }
            return cls(
                arena=arena, meta=meta, mode_rows=mode_rows,
                node_groups={}, config=config, crew=crew,
            )
        except BaseException:
            arena.unlink()
            raise

    @classmethod
    def for_per_mode_batch(
        cls,
        specs: Sequence[BatchJobSpec],
        dtype,
        *,
        config: Optional[ProcessConfig] = None,
        crew: Optional[PersistentWorkerCrew] = None,
    ) -> "HOOIProcessPool":
        """Pool packing several small per-mode jobs into ONE generation.

        Every member's operands land in the same arena under a
        ``<job>:``-prefixed namespace and all workers attach them in a
        single ``__attach__`` cycle — the admission batching the serving
        layer uses so a stream of small tensors costs one attach/detach per
        *batch* instead of one per job.  Drive members independently with
        ``ttmc(mode, job=...)`` / ``write_factor(mode, U, job=...)``; the
        pool itself stays single-consumer (members run one at a time).

        ``dtype`` is the default value dtype; a member whose tensor already
        carries a (supported) different dtype keeps its own — members of one
        batch need not share a precision policy.
        """
        specs = list(specs)
        if not specs:
            raise ValueError("a batch generation needs at least one job")
        keys = [spec.job for spec in specs]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate job keys in batch: {sorted(keys)}")
        config = _resolve_config(config, crew)
        arena = ShmArena()
        try:
            jobs_meta = []
            mode_rows: Dict = {}
            for spec in specs:
                job_dtype = np.dtype(getattr(spec.tensor, "dtype", dtype))
                fmt = getattr(spec, "tensor_format", "coo") or "coo"
                if fmt == "csf":
                    if spec.trees is None:
                        raise ValueError(
                            f"batch member {spec.job!r} asks for "
                            "tensor_format='csf' but carries no CSFTensorSet "
                            "in spec.trees"
                        )
                    job_meta, roots = _put_csf_job(
                        arena, spec.trees, spec.tensor, spec.factors,
                        [int(r) for r in spec.ranks], job_dtype,
                        block_nnz=spec.block_nnz, kernel=spec.kernel,
                        prefix=f"{spec.job}:",
                    )
                    for n, num_roots in roots.items():
                        mode_rows[(spec.job, n)] = num_roots
                else:
                    job_meta = _put_per_mode_job(
                        arena, spec.tensor, spec.symbolic, spec.factors,
                        [int(r) for r in spec.ranks], job_dtype,
                        block_nnz=spec.block_nnz, kernel=spec.kernel,
                        prefix=f"{spec.job}:",
                    )
                    for n in range(spec.tensor.order):
                        mode_rows[(spec.job, n)] = spec.symbolic[n].num_rows
                job_meta["job"] = spec.job
                jobs_meta.append(job_meta)
            meta = {"strategy": "batch", "jobs": jobs_meta}
            return cls(
                arena=arena, meta=meta, mode_rows=mode_rows,
                node_groups={}, config=config, crew=crew,
            )
        except BaseException:
            arena.unlink()
            raise

    @classmethod
    def for_csf(
        cls,
        trees,
        tensor,
        factors: Sequence[np.ndarray],
        ranks: Sequence[int],
        dtype,
        *,
        config: Optional[ProcessConfig] = None,
        block_nnz: Optional[int] = None,
        kernel: str = "numpy",
        crew: Optional[PersistentWorkerCrew] = None,
    ) -> "HOOIProcessPool":
        """Pool executing root-fiber-slab CSF pullups (per-mode rooted trees).

        ``trees`` is a :class:`~repro.sparse.csf.CSFTensorSet` built with
        ``per_mode`` — one tree rooted at every mode, the layout whose TTMc
        is a pure pullup with its output rows the unique, sorted root
        fibers.  The per-level ``fids``/``fptr`` arrays and the sorted
        values of every tree go into the arena once; workers rebuild
        zero-copy :class:`~repro.sparse.csf.CSFTensor` views on attach, and
        each TTMc dispatches contiguous root-fiber slabs whose subtree is a
        contiguous node range at every level and whose output rows are
        disjoint from every other slab's — the same lock-free write
        discipline as the COO row chunks, over 0.7× the index bytes.
        """
        config = _resolve_config(config, crew)
        arena = ShmArena()
        try:
            meta, roots = _put_csf_job(
                arena, trees, tensor, factors, [int(r) for r in ranks],
                np.dtype(dtype), block_nnz=block_nnz, kernel=kernel,
                prefix="",
            )
            mode_rows = {(None, n): roots[n] for n in range(tensor.order)}
            return cls(
                arena=arena, meta=meta, mode_rows=mode_rows,
                node_groups={}, config=config, crew=crew,
            )
        except BaseException:
            arena.unlink()
            raise

    @classmethod
    def for_dimtree(
        cls,
        tree,
        tensor,
        factors: Sequence[np.ndarray],
        ranks: Sequence[int],
        dtype,
        *,
        config: Optional[ProcessConfig] = None,
        block_nnz: Optional[int] = None,
        crew: Optional[PersistentWorkerCrew] = None,
    ) -> "HOOIProcessPool":
        """Pool executing fiber-parallel dimension-tree edge updates.

        ``tree`` is a built :class:`~repro.engine.dimtree.DimensionTree`;
        its symbolic fiber groupings and every node payload are placed in
        shared memory, so the driver's tree and the workers operate on the
        same buffers (the driver keeps the version counters and decides
        *which* edges are stale; workers execute the chunks).  The root's
        index matrix and values are taken from the *tree* (not the raw
        tensor): a CSF-sourced tree's groupings reference the
        lexicographically sorted row order, and its contiguous groupings
        carry their flag into the workers so the sliced edge-update fast
        path applies there too.  For a COO-sourced tree those arrays are the
        tensor's own, so nothing changes.
        """
        config = _resolve_config(config, crew)
        dtype = np.dtype(dtype)
        ranks = [int(r) for r in ranks]
        _validate_per_mode_ranks(tensor, ranks)
        arena = ShmArena()
        try:
            arena.put("indices", np.ascontiguousarray(tree.root.index_cols))
            root_id = int(tree.root.node_id)
            arena.put(
                f"payload{root_id}",
                np.asarray(tree.root_values, dtype=dtype).reshape(-1, 1),
            )
            edges: List[dict] = []
            node_groups: Dict[int, int] = {}
            for node in tree.nodes:
                if node is tree.root:
                    continue
                parent = node.parent
                lo_width, hi_width = subset_widths(ranks, parent.lo, parent.hi)
                sib_width = kron_row_length(
                    [ranks[m] for m in node.sibling_modes]
                )
                child_width = lo_width * hi_width * sib_width
                nid = int(node.node_id)
                arena.put(f"grp-idx{nid}", node.grouping.indices)
                arena.put(f"grp-perm{nid}", node.grouping.perm)
                arena.put(f"grp-segptr{nid}", node.grouping.segptr)
                arena.zeros(f"payload{nid}", (node.num_fibers, child_width), dtype)
                edges.append({
                    "node": nid,
                    "parent": int(parent.node_id),
                    "sibling_modes": tuple(int(m) for m in node.sibling_modes),
                    "sibling_cols": tuple(int(c) for c in node.sibling_cols),
                    "lo_width": int(lo_width),
                    "hi_width": int(hi_width),
                    "contiguous": bool(node.grouping.contiguous),
                })
                node_groups[nid] = node.num_fibers
            for n in range(tensor.order):
                arena.put(f"factor{n}", np.asarray(factors[n], dtype=dtype))
            meta = {
                "strategy": "dimtree",
                "shape": tuple(int(s) for s in tensor.shape),
                "ranks": tuple(ranks),
                "dtype": dtype.str,
                "block_nnz": block_nnz,
                "root_id": root_id,
                "edges": edges,
            }
            return cls(
                arena=arena, meta=meta, mode_rows={},
                node_groups=node_groups, config=config, crew=crew,
            )
        except BaseException:
            arena.unlink()
            raise

    # -- dispatch -------------------------------------------------------- #
    def _check_usable(self) -> None:
        if self._closed:
            raise RuntimeError("the process pool is closed")
        if self._broken:
            raise WorkerCrashError(
                "the process pool is broken (a worker died or a task failed); "
                "close() it and build a new pool"
            )
        dead = [w for w in self.workers if not w.is_alive()]
        if dead:
            self._broken = True
            raise WorkerCrashError(
                f"{len(dead)} worker process(es) died "
                f"(exit codes {[w.exitcode for w in dead]})"
            )

    def _wait_ready(self) -> None:
        deadline = time.monotonic() + self.config.startup_timeout
        ready = 0
        while ready < len(self.workers):
            try:
                tag, worker_id, error = self._done_q.get(timeout=0.2)
            except queue_module.Empty:
                if any(not w.is_alive() for w in self.workers):
                    raise WorkerCrashError(
                        "a worker process died during startup"
                    ) from None
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        "worker processes did not report ready within "
                        f"{self.config.startup_timeout:.0f}s"
                    )
                continue
            if tag != "__ready__":  # pragma: no cover - defensive
                continue
            if error is not None:
                raise RuntimeError(
                    f"worker {worker_id} failed to attach shared memory: {error}"
                )
            ready += 1

    def _dispatch(self, tasks: List[Tuple]) -> None:
        """Enqueue a batch of chunk descriptors and wait for all acks."""
        self._check_usable()
        maybe_fail("pool.dispatch")
        pending = set()
        for task in tasks:
            task_id = self._task_counter
            self._task_counter += 1
            self._task_q.put((task[0], task_id) + tuple(task[1:]))
            pending.add(task_id)
        errors: List[str] = []
        while pending:
            try:
                task_id, _worker_id, error = self._done_q.get(timeout=0.2)
            except queue_module.Empty:
                if any(not w.is_alive() for w in self.workers):
                    self._broken = True
                    dead = [w for w in self.workers if not w.is_alive()]
                    raise WorkerCrashError(
                        f"{len(dead)} worker process(es) died mid-batch "
                        f"(exit codes {[w.exitcode for w in dead]})"
                    ) from None
                continue
            pending.discard(task_id)
            if error is not None:
                errors.append(error)
        if errors:
            self._broken = True
            raise RuntimeError(f"worker task failed: {errors[0]}")

    def _chunks(self, num_items: int):
        return make_chunks(
            num_items,
            self.config.num_workers,
            schedule=self.config.schedule,
            chunk_size=self.config.chunk_size,
        )

    # -- public operations ----------------------------------------------- #
    @staticmethod
    def _prefix(job: Optional[str]) -> str:
        return f"{job}:" if job is not None else ""

    def ttmc(self, mode: int, *, job: Optional[str] = None) -> np.ndarray:
        """Row-parallel ``Y_(mode)`` into (and returning) the shared buffer.

        ``job`` addresses one member of a batched generation
        (:meth:`for_per_mode_batch`); single-job pools omit it.  The chunks
        cover symbolic output rows for COO members and root-fiber slabs for
        CSF members — either way each chunk writes a disjoint row set.
        """
        self._check_usable()
        out = self._arena[f"{self._prefix(job)}out{mode}"]
        num_rows = self._mode_rows[(job, mode)]
        kind = self._ttmc_kinds[job]
        if num_rows:
            self._dispatch(
                [
                    (kind, job, mode, start, stop)
                    for start, stop in self._chunks(num_rows)
                ]
            )
        return out

    def dimtree_edge(self, node_id: int) -> np.ndarray:
        """Fiber-parallel refinement of one tree edge; returns the payload."""
        self._check_usable()
        payload = self._arena[f"payload{int(node_id)}"]
        num_groups = self._node_groups[int(node_id)]
        if num_groups:
            self._dispatch(
                [
                    ("edge", None, int(node_id), start, stop)
                    for start, stop in self._chunks(num_groups)
                ]
            )
        return payload

    def node_payload(self, node_id: int) -> np.ndarray:
        """The shared payload buffer of a dimension-tree node."""
        return self._arena[f"payload{int(node_id)}"]

    def write_factor(
        self, mode: int, array: np.ndarray, *, job: Optional[str] = None
    ) -> None:
        """Broadcast a refreshed factor by writing its shared segment.

        The write happens-before the next task dispatch (queue hand-off), so
        workers never read a half-updated factor.
        """
        if self._closed:
            raise RuntimeError("the process pool is closed")
        segment = self._arena[f"{self._prefix(job)}factor{mode}"]
        array = np.asarray(array, dtype=segment.dtype)
        if array.shape != segment.shape:
            raise ValueError(
                f"factor for mode {mode} has shape {array.shape}, but the "
                f"shared segment is {segment.shape}: the process backend "
                "requires fixed factor shapes across iterations"
            )
        segment[...] = array

    @property
    def segment_names(self) -> Tuple[str, ...]:
        """OS names of the arena's segments (for leak checks in tests)."""
        return self._arena.segment_names

    # -- lifecycle ------------------------------------------------------- #
    def _close_crew_generation(self) -> None:
        """Detach the crew's workers from this arena (keep them alive).

        One ``None`` sentinel per worker ends the generation loop; each
        worker closes its views and acks ``"__detached__"``.  Waiting for
        every ack before unlinking the arena guarantees no worker still
        holds a mapping when the segments are destroyed — the no-leaked-
        ``/dev/shm`` property the service's teardown test pins down.  A
        dead or unresponsive worker makes a deterministic detach
        impossible, so the crew is retired instead (its own ``close`` reaps
        the processes).
        """
        crew = self._crew
        if not self._detach_needed:
            return
        self._detach_needed = False
        if any(not w.is_alive() for w in crew.workers):
            crew.mark_broken()
            return
        for _ in crew.workers:
            self._task_q.put(None)
        remaining = len(crew.workers)
        deadline = time.monotonic() + 10.0
        while remaining:
            try:
                tag, _worker_id, _error = self._done_q.get(timeout=0.2)
            except queue_module.Empty:
                if (
                    time.monotonic() > deadline
                    or any(not w.is_alive() for w in crew.workers)
                ):
                    crew.mark_broken()
                    return
                continue
            if tag == "__detached__":
                remaining -= 1
            # Anything else is a stale ack of a batch that died mid-flight;
            # drain and drop it so the next generation starts clean.

    def close(self) -> None:
        """Stop the workers and destroy the shared segments (idempotent).

        Crew-backed pools *detach* the workers instead of stopping them —
        the generation ends, the processes live on for the next one.
        """
        if self._closed:
            self._arena.unlink()
            return
        self._closed = True
        if self._crew is not None:
            try:
                self._close_crew_generation()
            finally:
                self._arena.close()
                self._arena.unlink()
            return
        for _ in self.workers:
            try:
                self._task_q.put(None)
            except (OSError, ValueError):
                break
        for worker in self.workers:
            worker.join(timeout=2.0)
        for worker in self.workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=1.0)
            if worker.is_alive():  # pragma: no cover - last resort
                worker.kill()
                worker.join(timeout=1.0)
        for q in (getattr(self, "_task_q", None), getattr(self, "_done_q", None)):
            if q is None:
                continue
            try:
                q.cancel_join_thread()
                q.close()
            except (OSError, ValueError):
                pass
        self._arena.close()
        self._arena.unlink()

    def __enter__(self) -> "HOOIProcessPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else ("broken" if self._broken else "live")
        return (
            f"HOOIProcessPool(workers={len(self.workers)}, "
            f"strategy={self._meta['strategy']!r}, {state})"
        )
