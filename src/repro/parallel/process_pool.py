"""Persistent multiprocess worker pool for true-multicore HOOI.

The threaded backend decomposes the TTMc exactly as the paper's Algorithm 3,
but CPython's GIL serializes the hot gather / ``batch_kron_rows`` /
``np.add.reduceat`` work, so threads measure *decomposition*, not speedup.
This module provides the same row-parallel, lock-free execution on worker
*processes* with zero-copy shared memory:

* All big operands live in a :class:`~repro.parallel.shm.ShmArena` — the
  tensor's ``indices``/``values``, every mode's symbolic update lists (or the
  dimension tree's fiber groupings), the factor matrices, and the ``Y_(n)``
  output buffers (or tree-node payloads).  Workers attach views once at pool
  startup and reuse them across every mode and iteration.
* Numeric work is dispatched as tiny ``(mode, row_chunk)`` /
  ``(node, fiber_chunk)`` descriptors over the same static/dynamic/guided
  :func:`~repro.parallel.parallel_for.make_chunks` schedules the threaded
  backend uses.  Each chunk's rows are written by exactly one worker into a
  row-disjoint slice of the shared output — no locks, and no result pickling.
* Factor refreshes are *broadcast by memory*: after each TRSVD the driver
  writes the new ``U_n`` into its shared segment (:meth:`write_factor`); the
  queue hand-off of the next task batch orders the write before any read, so
  workers always compute with current factors.  For the dimension tree the
  driver's version counters decide which nodes went stale; workers stay
  stateless and simply execute the edge chunks they are handed.

The pool is bound to one engine run (fixed tensor, ranks and dtype) and must
be closed with :meth:`close` — idempotent, crash-safe (the arena unlinks its
segments even on abnormal teardown), and automatically invoked by the
engine's ``finalize`` hook.
"""

from __future__ import annotations

import os
import queue as queue_module
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing as mp

import numpy as np

from repro.core.symbolic import ModeSymbolic
from repro.core.subset_ttmc import FiberGrouping, edge_update_groups, subset_widths
from repro.core.kron import kron_row_length
from repro.parallel.parallel_for import make_chunks
from repro.parallel.shm import ShmArena, ShmView

__all__ = [
    "ProcessConfig",
    "WorkerCrashError",
    "HOOIProcessPool",
    "default_start_method",
]

#: Environment variable overriding the multiprocessing start method.
START_METHOD_ENV = "REPRO_PROCESS_START_METHOD"


def default_start_method() -> str:
    """``fork`` where available (cheap startup), else ``spawn``.

    Overridable via ``REPRO_PROCESS_START_METHOD`` for debugging — ``spawn``
    gives workers a pristine interpreter at the cost of re-importing NumPy.
    """
    override = os.environ.get(START_METHOD_ENV)
    if override:
        return override
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


@dataclass(frozen=True)
class ProcessConfig:
    """Configuration of the process pool (mirrors :class:`ParallelConfig`)."""

    num_workers: int = 1
    schedule: str = "dynamic"
    chunk_size: Optional[int] = None
    start_method: Optional[str] = None
    startup_timeout: float = 120.0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.schedule not in ("static", "dynamic", "guided"):
            raise ValueError(f"unknown schedule {self.schedule!r}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 when given")


class WorkerCrashError(RuntimeError):
    """A worker process died while (or before) executing dispatched work."""


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
class _WorkerState:
    """Per-worker views of the shared operands, built once at startup."""

    def __init__(self, view: ShmView, meta: dict) -> None:
        self.view = view
        self.shape = tuple(meta["shape"])
        self.dtype = np.dtype(meta["dtype"])
        self.block_nnz = meta["block_nnz"]
        # Workers JIT-compile lazily on first task (numba's cache=True makes
        # every worker after the first a disk-cache hit).
        self.kernel = meta.get("kernel", "numpy")
        order = len(self.shape)
        self.factors: List[np.ndarray] = [view[f"factor{n}"] for n in range(order)]
        self.strategy = meta["strategy"]
        if self.strategy == "per-mode":
            from repro.core.sparse_tensor import SparseTensor

            self.tensor = SparseTensor(
                view["indices"], view["values"], self.shape, copy=False
            )
            self.symbolic: Dict[int, ModeSymbolic] = {
                n: ModeSymbolic(
                    mode=n,
                    rows=view[f"sym-rows{n}"],
                    perm=view[f"sym-perm{n}"],
                    rowptr=view[f"sym-rowptr{n}"],
                )
                for n in range(order)
            }
            self.outs: Dict[int, np.ndarray] = {
                n: view[f"out{n}"] for n in range(order)
            }
        else:
            root_id = meta["root_id"]
            self.edges: Dict[int, dict] = {e["node"]: e for e in meta["edges"]}
            self.groupings: Dict[int, FiberGrouping] = {
                nid: FiberGrouping(
                    indices=view[f"grp-idx{nid}"],
                    perm=view[f"grp-perm{nid}"],
                    segptr=view[f"grp-segptr{nid}"],
                )
                for nid in self.edges
            }
            self.payloads: Dict[int, np.ndarray] = {root_id: view[f"payload{root_id}"]}
            self.index_cols: Dict[int, np.ndarray] = {root_id: view["indices"]}
            for nid, grouping in self.groupings.items():
                self.payloads[nid] = view[f"payload{nid}"]
                self.index_cols[nid] = grouping.indices

    def ttmc_rows(self, mode: int, start: int, stop: int) -> None:
        """Compute rows ``start:stop`` of ``J_mode`` into the shared output."""
        from repro.parallel.shared_ttmc import ttmc_row_block

        symbolic = self.symbolic[mode]
        block = ttmc_row_block(
            self.tensor,
            self.factors,
            mode,
            symbolic,
            np.arange(start, stop, dtype=np.int64),
            block_nnz=self.block_nnz,
            kernel=self.kernel,
        )
        self.outs[mode][symbolic.rows[start:stop]] = block

    def edge_groups(self, node_id: int, start: int, stop: int) -> None:
        """Refine fiber groups ``start:stop`` of one dimension-tree edge."""
        edge = self.edges[node_id]
        edge_update_groups(
            self.groupings[node_id],
            start,
            stop,
            self.payloads[edge["parent"]],
            self.index_cols[edge["parent"]],
            edge["sibling_cols"],
            [self.factors[m] for m in edge["sibling_modes"]],
            edge["lo_width"],
            edge["hi_width"],
            self.payloads[node_id][start:stop],
            block_nnz=self.block_nnz,
        )


def _worker_main(worker_id: int, specs, meta: dict, task_q, done_q) -> None:
    """Worker loop: attach shared views once, then drain chunk descriptors."""
    try:
        view = ShmView(specs)
        state = _WorkerState(view, meta)
    except BaseException as exc:
        done_q.put(("__ready__", worker_id, f"{type(exc).__name__}: {exc}"))
        return
    done_q.put(("__ready__", worker_id, None))
    try:
        while True:
            task = task_q.get()
            if task is None:
                return
            kind, task_id = task[0], task[1]
            try:
                if kind == "ttmc":
                    state.ttmc_rows(task[2], task[3], task[4])
                elif kind == "edge":
                    state.edge_groups(task[2], task[3], task[4])
                else:
                    raise ValueError(f"unknown task kind {kind!r}")
                error = None
            except BaseException as exc:
                error = f"{type(exc).__name__}: {exc}"
            done_q.put((task_id, worker_id, error))
    finally:
        view.close()


# --------------------------------------------------------------------------- #
# Driver side
# --------------------------------------------------------------------------- #
class HOOIProcessPool:
    """A persistent pool of worker processes attached to one shared arena.

    Build one with :meth:`for_per_mode` (row-parallel ``Y_(n)`` TTMc) or
    :meth:`for_dimtree` (fiber-parallel dimension-tree edge updates), drive
    it with :meth:`ttmc` / :meth:`dimtree_edge` / :meth:`write_factor`, and
    release it with :meth:`close` (or use it as a context manager).
    """

    def __init__(self, *, arena: ShmArena, meta: dict, mode_rows: Dict[int, int],
                 node_groups: Dict[int, int], config: ProcessConfig) -> None:
        self._arena = arena
        self._meta = meta
        self._mode_rows = mode_rows
        self._node_groups = node_groups
        self.config = config
        self._closed = False
        self._broken = False
        self._task_counter = 0
        self.workers: List[mp.process.BaseProcess] = []
        try:
            ctx = mp.get_context(config.start_method or default_start_method())
            self._task_q = ctx.Queue()
            self._done_q = ctx.Queue()
            for worker_id in range(config.num_workers):
                proc = ctx.Process(
                    target=_worker_main,
                    args=(worker_id, arena.specs, meta, self._task_q, self._done_q),
                    name=f"repro-hooi-worker-{worker_id}",
                    daemon=True,
                )
                proc.start()
                self.workers.append(proc)
            self._wait_ready()
        except BaseException:
            self.close()
            raise

    # -- constructors ---------------------------------------------------- #
    @classmethod
    def for_per_mode(
        cls,
        tensor,
        symbolic: Dict[int, ModeSymbolic],
        factors: Sequence[np.ndarray],
        ranks: Sequence[int],
        dtype,
        *,
        config: Optional[ProcessConfig] = None,
        block_nnz: Optional[int] = None,
        kernel: str = "numpy",
    ) -> "HOOIProcessPool":
        """Pool executing the per-mode row-parallel TTMc (Algorithm 3).

        ``kernel`` selects the inner-loop tier each worker runs
        (``"numpy"`` or the compiled ``"numba"`` loops); it rides along in
        the pool metadata, so workers resolve their own dispatch table after
        attaching shared memory.
        """
        config = config or ProcessConfig()
        dtype = np.dtype(dtype)
        ranks = [int(r) for r in ranks]
        order = tensor.order
        widths = [
            kron_row_length([ranks[t] for t in range(order) if t != n])
            for n in range(order)
        ]
        for n in range(order):
            if ranks[n] > min(tensor.shape[n], widths[n]):
                raise ValueError(
                    f"rank {ranks[n]} of mode {n} exceeds min(I_n, W_n) = "
                    f"{min(tensor.shape[n], widths[n])}; the TRSVD would "
                    "return fewer columns and the process backend needs "
                    "fixed factor shapes"
                )
        arena = ShmArena()
        try:
            arena.put("indices", tensor.indices)
            arena.put("values", np.asarray(tensor.values, dtype=dtype))
            mode_rows: Dict[int, int] = {}
            for n in range(order):
                arena.put(f"factor{n}", np.asarray(factors[n], dtype=dtype))
                sym = symbolic[n]
                arena.put(f"sym-rows{n}", sym.rows)
                arena.put(f"sym-perm{n}", sym.perm)
                arena.put(f"sym-rowptr{n}", sym.rowptr)
                arena.zeros(f"out{n}", (tensor.shape[n], widths[n]), dtype)
                mode_rows[n] = sym.num_rows
            meta = {
                "strategy": "per-mode",
                "shape": tuple(int(s) for s in tensor.shape),
                "ranks": tuple(ranks),
                "dtype": dtype.str,
                "block_nnz": block_nnz,
                "kernel": kernel,
            }
            return cls(
                arena=arena, meta=meta, mode_rows=mode_rows,
                node_groups={}, config=config,
            )
        except BaseException:
            arena.unlink()
            raise

    @classmethod
    def for_dimtree(
        cls,
        tree,
        tensor,
        factors: Sequence[np.ndarray],
        ranks: Sequence[int],
        dtype,
        *,
        config: Optional[ProcessConfig] = None,
        block_nnz: Optional[int] = None,
    ) -> "HOOIProcessPool":
        """Pool executing fiber-parallel dimension-tree edge updates.

        ``tree`` is a built :class:`~repro.engine.dimtree.DimensionTree`;
        its symbolic fiber groupings and every node payload are placed in
        shared memory, so the driver's tree and the workers operate on the
        same buffers (the driver keeps the version counters and decides
        *which* edges are stale; workers execute the chunks).
        """
        config = config or ProcessConfig()
        dtype = np.dtype(dtype)
        ranks = [int(r) for r in ranks]
        order = tensor.order
        for n in range(order):
            width = kron_row_length([ranks[t] for t in range(order) if t != n])
            if ranks[n] > min(tensor.shape[n], width):
                raise ValueError(
                    f"rank {ranks[n]} of mode {n} exceeds min(I_n, W_n) = "
                    f"{min(tensor.shape[n], width)}; the TRSVD would "
                    "return fewer columns and the process backend needs "
                    "fixed factor shapes"
                )
        arena = ShmArena()
        try:
            arena.put("indices", tensor.indices)
            root_id = int(tree.root.node_id)
            arena.put(
                f"payload{root_id}",
                np.asarray(tensor.values, dtype=dtype).reshape(-1, 1),
            )
            edges: List[dict] = []
            node_groups: Dict[int, int] = {}
            for node in tree.nodes:
                if node is tree.root:
                    continue
                parent = node.parent
                lo_width, hi_width = subset_widths(ranks, parent.lo, parent.hi)
                sib_width = kron_row_length(
                    [ranks[m] for m in node.sibling_modes]
                )
                child_width = lo_width * hi_width * sib_width
                nid = int(node.node_id)
                arena.put(f"grp-idx{nid}", node.grouping.indices)
                arena.put(f"grp-perm{nid}", node.grouping.perm)
                arena.put(f"grp-segptr{nid}", node.grouping.segptr)
                arena.zeros(f"payload{nid}", (node.num_fibers, child_width), dtype)
                edges.append({
                    "node": nid,
                    "parent": int(parent.node_id),
                    "sibling_modes": tuple(int(m) for m in node.sibling_modes),
                    "sibling_cols": tuple(int(c) for c in node.sibling_cols),
                    "lo_width": int(lo_width),
                    "hi_width": int(hi_width),
                })
                node_groups[nid] = node.num_fibers
            for n in range(tensor.order):
                arena.put(f"factor{n}", np.asarray(factors[n], dtype=dtype))
            meta = {
                "strategy": "dimtree",
                "shape": tuple(int(s) for s in tensor.shape),
                "ranks": tuple(ranks),
                "dtype": dtype.str,
                "block_nnz": block_nnz,
                "root_id": root_id,
                "edges": edges,
            }
            return cls(
                arena=arena, meta=meta, mode_rows={},
                node_groups=node_groups, config=config,
            )
        except BaseException:
            arena.unlink()
            raise

    # -- dispatch -------------------------------------------------------- #
    def _check_usable(self) -> None:
        if self._closed:
            raise RuntimeError("the process pool is closed")
        if self._broken:
            raise WorkerCrashError(
                "the process pool is broken (a worker died or a task failed); "
                "close() it and build a new pool"
            )
        dead = [w for w in self.workers if not w.is_alive()]
        if dead:
            self._broken = True
            raise WorkerCrashError(
                f"{len(dead)} worker process(es) died "
                f"(exit codes {[w.exitcode for w in dead]})"
            )

    def _wait_ready(self) -> None:
        deadline = time.monotonic() + self.config.startup_timeout
        ready = 0
        while ready < len(self.workers):
            try:
                tag, worker_id, error = self._done_q.get(timeout=0.2)
            except queue_module.Empty:
                if any(not w.is_alive() for w in self.workers):
                    raise WorkerCrashError(
                        "a worker process died during startup"
                    ) from None
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        "worker processes did not report ready within "
                        f"{self.config.startup_timeout:.0f}s"
                    )
                continue
            if tag != "__ready__":  # pragma: no cover - defensive
                continue
            if error is not None:
                raise RuntimeError(
                    f"worker {worker_id} failed to attach shared memory: {error}"
                )
            ready += 1

    def _dispatch(self, tasks: List[Tuple]) -> None:
        """Enqueue a batch of chunk descriptors and wait for all acks."""
        self._check_usable()
        pending = set()
        for task in tasks:
            task_id = self._task_counter
            self._task_counter += 1
            self._task_q.put((task[0], task_id) + tuple(task[1:]))
            pending.add(task_id)
        errors: List[str] = []
        while pending:
            try:
                task_id, _worker_id, error = self._done_q.get(timeout=0.2)
            except queue_module.Empty:
                if any(not w.is_alive() for w in self.workers):
                    self._broken = True
                    dead = [w for w in self.workers if not w.is_alive()]
                    raise WorkerCrashError(
                        f"{len(dead)} worker process(es) died mid-batch "
                        f"(exit codes {[w.exitcode for w in dead]})"
                    ) from None
                continue
            pending.discard(task_id)
            if error is not None:
                errors.append(error)
        if errors:
            self._broken = True
            raise RuntimeError(f"worker task failed: {errors[0]}")

    def _chunks(self, num_items: int):
        return make_chunks(
            num_items,
            self.config.num_workers,
            schedule=self.config.schedule,
            chunk_size=self.config.chunk_size,
        )

    # -- public operations ----------------------------------------------- #
    def ttmc(self, mode: int) -> np.ndarray:
        """Row-parallel ``Y_(mode)`` into (and returning) the shared buffer."""
        self._check_usable()
        out = self._arena[f"out{mode}"]
        num_rows = self._mode_rows[mode]
        if num_rows:
            self._dispatch(
                [("ttmc", mode, start, stop) for start, stop in self._chunks(num_rows)]
            )
        return out

    def dimtree_edge(self, node_id: int) -> np.ndarray:
        """Fiber-parallel refinement of one tree edge; returns the payload."""
        self._check_usable()
        payload = self._arena[f"payload{int(node_id)}"]
        num_groups = self._node_groups[int(node_id)]
        if num_groups:
            self._dispatch(
                [
                    ("edge", int(node_id), start, stop)
                    for start, stop in self._chunks(num_groups)
                ]
            )
        return payload

    def node_payload(self, node_id: int) -> np.ndarray:
        """The shared payload buffer of a dimension-tree node."""
        return self._arena[f"payload{int(node_id)}"]

    def write_factor(self, mode: int, array: np.ndarray) -> None:
        """Broadcast a refreshed factor by writing its shared segment.

        The write happens-before the next task dispatch (queue hand-off), so
        workers never read a half-updated factor.
        """
        if self._closed:
            raise RuntimeError("the process pool is closed")
        segment = self._arena[f"factor{mode}"]
        array = np.asarray(array, dtype=segment.dtype)
        if array.shape != segment.shape:
            raise ValueError(
                f"factor for mode {mode} has shape {array.shape}, but the "
                f"shared segment is {segment.shape}: the process backend "
                "requires fixed factor shapes across iterations"
            )
        segment[...] = array

    @property
    def segment_names(self) -> Tuple[str, ...]:
        """OS names of the arena's segments (for leak checks in tests)."""
        return self._arena.segment_names

    # -- lifecycle ------------------------------------------------------- #
    def close(self) -> None:
        """Stop the workers and destroy the shared segments (idempotent)."""
        if self._closed:
            self._arena.unlink()
            return
        self._closed = True
        for _ in self.workers:
            try:
                self._task_q.put(None)
            except (OSError, ValueError):
                break
        for worker in self.workers:
            worker.join(timeout=2.0)
        for worker in self.workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=1.0)
            if worker.is_alive():  # pragma: no cover - last resort
                worker.kill()
                worker.join(timeout=1.0)
        for q in (getattr(self, "_task_q", None), getattr(self, "_done_q", None)):
            if q is None:
                continue
            try:
                q.cancel_join_thread()
                q.close()
            except (OSError, ValueError):
                pass
        self._arena.close()
        self._arena.unlink()

    def __enter__(self) -> "HOOIProcessPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else ("broken" if self._broken else "live")
        return (
            f"HOOIProcessPool(workers={len(self.workers)}, "
            f"strategy={self._meta['strategy']!r}, {state})"
        )
