"""Work accounting for the HOOI phases.

Translates a tensor / rank configuration (and, for the distributed case, a
per-rank slice of it) into :class:`~repro.parallel.model.PhaseWork`
descriptors for the three phases the paper times: TTMc, TRSVD and the core
tensor formation.  These counts drive both the machine-model timings
(Tables II and V) and the per-rank work statistics (Table III).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.ttmc import ttmc_flops
from repro.parallel.model import PhaseWork

__all__ = [
    "kron_width",
    "ttmc_phase_work",
    "trsvd_phase_work",
    "core_phase_work",
    "trsvd_row_work",
]

_BYTES = 8  # double precision


def kron_width(ranks: Sequence[int], mode: int) -> int:
    """``prod_{t != mode} R_t`` — the number of columns of ``Y_(mode)``."""
    width = 1
    for t, r in enumerate(ranks):
        if t != mode:
            width *= int(r)
    return width


def ttmc_phase_work(
    nnz: int, order: int, ranks: Sequence[int], mode: int
) -> PhaseWork:
    """Work of the mode-``mode`` nonzero-based TTMc over ``nnz`` nonzeros.

    Each nonzero gathers ``order - 1`` factor rows at irregular addresses
    (the latency-bound accesses the paper highlights) plus its target output
    row, and performs the incremental Kronecker product and accumulation.
    """
    width = kron_width(ranks, mode)
    flops = float(ttmc_flops(nnz, ranks, mode))
    # Irregular traffic per nonzero: one gather per other-mode factor row plus
    # the read-modify-write of the width-long output row in cache-line (8
    # double) granularity.  This is what makes the TTMc latency-bound and is
    # the dominant cost on the paper's in-order cores.
    random_accesses = float(nnz) * (float(order - 1) + width / 8.0)
    streamed = float(nnz) * width * _BYTES  # writing/accumulating the kron rows
    return PhaseWork(flops=flops, random_accesses=random_accesses, streamed_bytes=streamed)


def trsvd_row_work(rows: int, ranks: Sequence[int], mode: int) -> float:
    """The paper's ``W_TRSVD`` measure: matrix rows handled by a rank.

    In both the coarse and fine grain algorithms the TRSVD's per-rank cost is
    proportional to the number of rows of ``Y_(mode)`` it multiplies in the
    MxV / MTxV kernels (redundant rows included for the fine-grain case), so
    the paper reports the row count itself; we do the same.
    """
    return float(rows)


def trsvd_phase_work(
    rows: int,
    ranks: Sequence[int],
    mode: int,
    *,
    solver_iterations: int = 5,
    lanczos_vectors: int | None = None,
) -> PhaseWork:
    """Work of the TRSVD step on a matrix with ``rows`` local rows.

    One Lanczos step costs one MxV plus one MTxV, i.e. ``2 * rows * width``
    multiply-adds streaming the whole matrix twice; ``solver_iterations``
    restarts of ``lanczos_vectors`` steps (default ``2 R_n + 4``) reproduce
    the iteration counts reported in the paper (< 5 restarts).
    """
    width = kron_width(ranks, mode)
    if lanczos_vectors is None:
        lanczos_vectors = 2 * int(ranks[mode]) + 4
    steps = max(int(solver_iterations), 1) * int(lanczos_vectors)
    flops = 4.0 * rows * width * steps          # MxV + MTxV, 2 flops per entry each
    streamed = 2.0 * rows * width * _BYTES * steps
    return PhaseWork(flops=flops, random_accesses=float(rows) * steps,
                     streamed_bytes=streamed)


def core_phase_work(rows_last_mode: int, ranks: Sequence[int]) -> PhaseWork:
    """Work of forming the core tensor ``G = U_Nᵀ Y_(N)`` (a small GEMM)."""
    last = len(ranks) - 1
    width = kron_width(ranks, last)
    flops = 2.0 * rows_last_mode * int(ranks[last]) * width
    streamed = (rows_last_mode * width + rows_last_mode * int(ranks[last])) * _BYTES
    return PhaseWork(flops=flops, random_accesses=0.0, streamed_bytes=streamed)
