"""Roofline-style node performance model.

The paper's shared-memory discussion (Section V-B) explains Table V in terms
of two regimes: the TTMc is *memory-latency bound* (every nonzero gathers
factor rows at irregular addresses, so multithreading hides latency well —
even superlinearly with 2 hardware threads per core on the BlueGene/Q A2),
while the TRSVD's dense MxV / MTxV are *memory-bandwidth bound* (once the node
bandwidth is saturated, extra threads do not help).

The model here captures exactly that: a phase is described by its flop count,
the number of irregular (latency-bound) memory accesses and the number of
streamed bytes; its execution time with ``p`` threads is the max of the three
rooflines.  The same node model feeds the distributed machine model
(:mod:`repro.simmpi.machine`), which adds the network.

The default constants are calibrated to an IBM BlueGene/Q node (16 × PowerPC
A2 @ 1.6 GHz, 16 GB RAM); they only need to be *plausible*, since the
reproduction targets the shape of the scaling curves, not absolute seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

__all__ = ["NodeModel", "PhaseWork", "BGQ_NODE"]


@dataclass(frozen=True)
class PhaseWork:
    """Work descriptor of one computational phase on one node / rank."""

    flops: float = 0.0
    random_accesses: float = 0.0   # irregular (cache-missing) loads
    streamed_bytes: float = 0.0    # sequential reads+writes of dense data

    def __add__(self, other: "PhaseWork") -> "PhaseWork":
        return PhaseWork(
            flops=self.flops + other.flops,
            random_accesses=self.random_accesses + other.random_accesses,
            streamed_bytes=self.streamed_bytes + other.streamed_bytes,
        )

    def scaled(self, factor: float) -> "PhaseWork":
        return PhaseWork(
            flops=self.flops * factor,
            random_accesses=self.random_accesses * factor,
            streamed_bytes=self.streamed_bytes * factor,
        )


@dataclass(frozen=True)
class NodeModel:
    """Single-node roofline model.

    Parameters
    ----------
    cores:
        Physical cores per node.
    smt:
        Hardware threads per core that can usefully overlap memory and
        arithmetic (the paper uses 2 of the A2's 4).
    flops_per_core:
        Sustained flop/s of one core on the dense kernels used here.
    memory_bandwidth:
        Node-aggregate sustained memory bandwidth (bytes/s).
    memory_latency:
        Average latency of an irregular access that misses cache (seconds).
    latency_overlap_per_thread:
        How many outstanding irregular accesses a single thread keeps in
        flight; total overlap is ``threads * latency_overlap_per_thread``
        capped at ``cores * smt * latency_overlap_per_thread``.
    thread_overhead:
        Fixed per-parallel-region overhead (seconds) — fork/join cost.
    """

    cores: int = 16
    smt: int = 2
    flops_per_core: float = 1.6e9
    memory_bandwidth: float = 28e9
    memory_latency: float = 85e-9
    latency_overlap_per_thread: float = 1.0
    thread_overhead: float = 5e-6

    # ------------------------------------------------------------------ #
    def compute_threads(self, threads: int) -> float:
        """Threads that contribute arithmetic throughput (capped at core count)."""
        return float(min(max(threads, 1), self.cores))

    def latency_threads(self, threads: int) -> float:
        """Threads that contribute latency hiding (capped at cores × smt)."""
        return float(min(max(threads, 1), self.cores * self.smt))

    def bandwidth_fraction(self, threads: int) -> float:
        """Fraction of the node bandwidth reachable with ``threads`` threads.

        A single thread cannot saturate the memory system; saturation is
        reached at roughly a quarter of the cores (a common rule of thumb that
        also matches the paper's observation that TRSVD stops scaling early).
        """
        threads = max(threads, 1)
        saturation_threads = max(self.cores // 4, 1)
        return min(1.0, threads / saturation_threads)

    # ------------------------------------------------------------------ #
    def phase_time(self, work: PhaseWork, threads: int) -> float:
        """Predicted execution time of a phase with ``threads`` threads."""
        threads = max(int(threads), 1)
        compute = work.flops / (self.flops_per_core * self.compute_threads(threads))
        latency = (
            work.random_accesses
            * self.memory_latency
            / (self.latency_threads(threads) * self.latency_overlap_per_thread)
        )
        bandwidth = work.streamed_bytes / (
            self.memory_bandwidth * self.bandwidth_fraction(threads)
        )
        return max(compute, latency, bandwidth) + self.thread_overhead

    def breakdown(self, work: PhaseWork, threads: int) -> Dict[str, float]:
        """Individual roofline terms (useful in tests and reports)."""
        threads = max(int(threads), 1)
        return {
            "compute": work.flops / (self.flops_per_core * self.compute_threads(threads)),
            "latency": work.random_accesses
            * self.memory_latency
            / (self.latency_threads(threads) * self.latency_overlap_per_thread),
            "bandwidth": work.streamed_bytes
            / (self.memory_bandwidth * self.bandwidth_fraction(threads)),
        }

    def with_overrides(self, **kwargs) -> "NodeModel":
        return replace(self, **kwargs)


#: Default node model used by the experiments (BlueGene/Q-like).
BGQ_NODE = NodeModel()
