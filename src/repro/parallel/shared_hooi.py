"""Shared-memory parallel HOOI (Algorithm 3 of the paper).

The driver mirrors :func:`repro.core.hooi.hooi` but parallelizes the two
expensive per-mode steps:

* the symbolic TTMc of each mode is built concurrently (one task per mode,
  Algorithm 3 lines 1-2);
* the numeric TTMc distributes the non-empty rows ``J_n`` over worker threads
  with the configured schedule (lines 5-8) — lock-free because each row is
  written by exactly one worker;
* the TRSVD's MxV/MTxV products operate on the dense ``Y_(n)`` with BLAS2
  kernels (line 9);
* the core tensor is a single GEMM on the last mode's TTMc result (line 10).

Both this driver and the sequential one run the *same* iteration loop —
:class:`repro.engine.driver.HOOIEngine` — differing only in the
:class:`~repro.engine.backend.ExecutionBackend` plugged in, so the results
are numerically identical by construction.

In addition to running the computation, the driver can *predict* the
per-iteration time for an arbitrary thread count through the node roofline
model (:mod:`repro.parallel.model`); the thread-scaling experiment (paper
Table V) reports both the measured and the modelled numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.hooi import HOOIOptions, HOOIResult
from repro.core.sparse_tensor import SparseTensor
from repro.engine.dimtree import resolve_ttmc_backend
from repro.engine.driver import HOOIEngine
from repro.parallel.model import NodeModel, BGQ_NODE
from repro.parallel.parallel_for import ParallelConfig
from repro.parallel.work import (
    core_phase_work,
    trsvd_phase_work,
    ttmc_phase_work,
)
from repro.util.validation import check_rank_vector

__all__ = ["shared_hooi", "predict_iteration_time", "SharedHOOIReport"]


@dataclass
class SharedHOOIReport:
    """Result of a shared-memory HOOI run plus the model prediction."""

    result: HOOIResult
    measured_seconds_per_iteration: float
    modelled_seconds_per_iteration: float
    num_threads: int


def shared_hooi(
    tensor: SparseTensor,
    ranks: Sequence[int] | int,
    options: Optional[HOOIOptions] = None,
    *,
    config: Optional[ParallelConfig] = None,
    node_model: NodeModel = BGQ_NODE,
    callback: Optional[Callable[[int, float], None]] = None,
    workspace=None,
) -> SharedHOOIReport:
    """Run Algorithm 3 with the given thread configuration.

    Returns both the numerical result (identical, up to sign conventions of
    singular vectors, to the sequential driver) and measured / modelled
    per-iteration times for the scaling experiments.  ``callback(iteration,
    fit)`` is invoked after each tracked iteration, exactly as in the
    sequential driver.
    """
    config = config or ParallelConfig()
    options = options or HOOIOptions()
    engine = HOOIEngine(
        tensor,
        ranks,
        options,
        backend=resolve_ttmc_backend(options, config),
        workspace=workspace,
    )
    result = engine.run(callback=callback)
    measured = (
        float(np.mean(engine.iteration_seconds)) if engine.iteration_seconds else 0.0
    )
    modelled = predict_iteration_time(
        tensor, ranks, config.num_threads, node_model=node_model
    )
    return SharedHOOIReport(
        result=result,
        measured_seconds_per_iteration=measured,
        modelled_seconds_per_iteration=modelled,
        num_threads=config.num_threads,
    )


def predict_iteration_time(
    tensor: SparseTensor,
    ranks: Sequence[int] | int,
    num_threads: int,
    *,
    node_model: NodeModel = BGQ_NODE,
    trsvd_iterations: int = 5,
) -> float:
    """Model the time of one HOOI iteration on a single node with ``num_threads``.

    Sums, over the modes, the roofline times of the TTMc (latency-bound) and
    TRSVD (bandwidth-bound) phases plus the final core-tensor GEMM — the
    decomposition the paper uses to explain its Table V.
    """
    ranks = check_rank_vector(ranks, tensor.shape)
    total = 0.0
    for mode in range(tensor.order):
        rows = int(tensor.nonempty_rows(mode).shape[0])
        ttmc_work = ttmc_phase_work(tensor.nnz, tensor.order, ranks, mode)
        trsvd_work = trsvd_phase_work(
            rows, ranks, mode, solver_iterations=trsvd_iterations
        )
        total += node_model.phase_time(ttmc_work, num_threads)
        total += node_model.phase_time(trsvd_work, num_threads)
    rows_last = int(tensor.nonempty_rows(tensor.order - 1).shape[0])
    total += node_model.phase_time(core_phase_work(rows_last, ranks), num_threads)
    return total
