"""Shared-memory parallel HOOI (Algorithm 3 of the paper).

The driver mirrors :func:`repro.core.hooi.hooi` but parallelizes the two
expensive per-mode steps:

* the symbolic TTMc of each mode is built concurrently (one task per mode,
  Algorithm 3 lines 1-2);
* the numeric TTMc distributes the non-empty rows ``J_n`` over worker threads
  with the configured schedule (lines 5-8) — lock-free because each row is
  written by exactly one worker;
* the TRSVD's MxV/MTxV products operate on the dense ``Y_(n)`` with BLAS2
  kernels (line 9);
* the core tensor is a single GEMM on the last mode's TTMc result (line 10).

In addition to running the computation, the driver can *predict* the
per-iteration time for an arbitrary thread count through the node roofline
model (:mod:`repro.parallel.model`); the thread-scaling experiment (paper
Table V) reports both the measured and the modelled numbers.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.hooi import HOOIOptions, HOOIResult
from repro.core.hosvd import initialize_factors
from repro.core.sparse_tensor import SparseTensor
from repro.core.symbolic import ModeSymbolic, symbolic_ttmc
from repro.core.trsvd import truncated_svd
from repro.core.tucker import TuckerTensor, core_from_ttmc
from repro.parallel.model import NodeModel, PhaseWork, BGQ_NODE
from repro.parallel.parallel_for import ParallelConfig
from repro.parallel.shared_ttmc import parallel_ttmc_matricized
from repro.parallel.work import (
    core_phase_work,
    trsvd_phase_work,
    ttmc_phase_work,
)
from repro.util.timing import TimingBreakdown
from repro.util.validation import check_rank_vector

__all__ = ["shared_hooi", "predict_iteration_time", "SharedHOOIReport"]


@dataclass
class SharedHOOIReport:
    """Result of a shared-memory HOOI run plus the model prediction."""

    result: HOOIResult
    measured_seconds_per_iteration: float
    modelled_seconds_per_iteration: float
    num_threads: int


def _parallel_symbolic(
    tensor: SparseTensor, num_threads: int
) -> Dict[int, ModeSymbolic]:
    """Build the symbolic data of every mode, one task per mode (parfor n)."""
    modes = list(range(tensor.order))
    if num_threads <= 1 or len(modes) == 1:
        return {mode: symbolic_ttmc(tensor, mode) for mode in modes}
    with ThreadPoolExecutor(max_workers=min(num_threads, len(modes))) as pool:
        futures = {mode: pool.submit(symbolic_ttmc, tensor, mode) for mode in modes}
        return {mode: fut.result() for mode, fut in futures.items()}


def shared_hooi(
    tensor: SparseTensor,
    ranks: Sequence[int] | int,
    options: Optional[HOOIOptions] = None,
    *,
    config: Optional[ParallelConfig] = None,
    node_model: NodeModel = BGQ_NODE,
) -> SharedHOOIReport:
    """Run Algorithm 3 with the given thread configuration.

    Returns both the numerical result (identical, up to sign conventions of
    singular vectors, to the sequential driver) and measured / modelled
    per-iteration times for the scaling experiments.
    """
    options = options or HOOIOptions()
    config = config or ParallelConfig()
    ranks = check_rank_vector(ranks, tensor.shape)
    timings = TimingBreakdown()

    with timings.time("init"):
        factors = initialize_factors(
            tensor, ranks, init=options.init, seed=options.seed
        )
    with timings.time("symbolic"):
        symbolic = _parallel_symbolic(tensor, config.num_threads)

    norm_x = tensor.norm()
    fit_history: List[float] = []
    trsvd_stats = []
    converged = False
    core = np.zeros(ranks, dtype=np.float64)
    iterations_run = 0
    iteration_seconds: List[float] = []

    for iteration in range(options.max_iterations):
        iterations_run = iteration + 1
        iter_timer = TimingBreakdown()
        last_ttmc: Optional[np.ndarray] = None
        for mode in range(tensor.order):
            with timings.time("ttmc"), iter_timer.time("ttmc"):
                y_mat = parallel_ttmc_matricized(
                    tensor,
                    factors,
                    mode,
                    symbolic=symbolic[mode],
                    config=config,
                    block_nnz=options.block_nnz,
                )
            with timings.time("trsvd"), iter_timer.time("trsvd"):
                result = truncated_svd(
                    y_mat,
                    ranks[mode],
                    method=options.trsvd_method,
                    **(
                        {"tol": options.trsvd_tol, "seed": options.seed}
                        if options.trsvd_method == "lanczos"
                        else {}
                    ),
                )
            factors[mode] = result.left
            trsvd_stats.append(result)
            if mode == tensor.order - 1:
                last_ttmc = y_mat
        with timings.time("core"), iter_timer.time("core"):
            core = core_from_ttmc(last_ttmc, factors[-1], ranks)
        iteration_seconds.append(iter_timer.total())

        if options.track_fit:
            core_norm = float(np.linalg.norm(core.ravel()))
            residual_sq = max(norm_x**2 - core_norm**2, 0.0)
            fit = 1.0 - float(np.sqrt(residual_sq)) / norm_x if norm_x else 1.0
            fit_history.append(fit)
            if iteration > 0 and abs(fit_history[-1] - fit_history[-2]) < options.tolerance:
                converged = True
                break

    decomposition = TuckerTensor(core=core, factors=list(factors))
    hooi_result = HOOIResult(
        decomposition=decomposition,
        fit_history=fit_history,
        iterations=iterations_run,
        converged=converged,
        timings=timings,
        trsvd_stats=trsvd_stats,
    )
    measured = float(np.mean(iteration_seconds)) if iteration_seconds else 0.0
    modelled = predict_iteration_time(
        tensor, ranks, config.num_threads, node_model=node_model
    )
    return SharedHOOIReport(
        result=hooi_result,
        measured_seconds_per_iteration=measured,
        modelled_seconds_per_iteration=modelled,
        num_threads=config.num_threads,
    )


def predict_iteration_time(
    tensor: SparseTensor,
    ranks: Sequence[int] | int,
    num_threads: int,
    *,
    node_model: NodeModel = BGQ_NODE,
    trsvd_iterations: int = 5,
) -> float:
    """Model the time of one HOOI iteration on a single node with ``num_threads``.

    Sums, over the modes, the roofline times of the TTMc (latency-bound) and
    TRSVD (bandwidth-bound) phases plus the final core-tensor GEMM — the
    decomposition the paper uses to explain its Table V.
    """
    ranks = check_rank_vector(ranks, tensor.shape)
    total = 0.0
    for mode in range(tensor.order):
        rows = int(tensor.nonempty_rows(mode).shape[0])
        ttmc_work = ttmc_phase_work(tensor.nnz, tensor.order, ranks, mode)
        trsvd_work = trsvd_phase_work(
            rows, ranks, mode, solver_iterations=trsvd_iterations
        )
        total += node_model.phase_time(ttmc_work, num_threads)
        total += node_model.phase_time(trsvd_work, num_threads)
    rows_last = int(tensor.nonempty_rows(tensor.order - 1).shape[0])
    total += node_model.phase_time(core_phase_work(rows_last, ranks), num_threads)
    return total
