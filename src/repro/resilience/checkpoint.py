"""Sweep-boundary checkpointing of HOOI state: snapshot, verify, resume.

A long multi-sweep HOOI run on a large sparse tensor is exactly the workload
where a fault at sweep ``N`` is most expensive: everything up to sweep
``N−1`` is recomputable but *was already computed*.  The state that fully
determines the rest of the run is small — the factor matrices, the core,
the fit history, the sweep counter — because the TTMc/TRSVD of sweep ``N``
depends only on the tensor (immutable) and the factors at the end of sweep
``N−1``, and every stochastic ingredient (init, randomized TRSVD) is
re-seeded per call from ``HOOIOptions.seed``.  Snapshotting at sweep
boundaries therefore makes a resumed run reproduce the uninterrupted one
**exactly** (bitwise where representable; asserted to 1e-10 in the test
suite across the sequential/thread/process backends).

File format
-----------
One ``.npz`` per checkpoint: the factor matrices, the core, the fit
history, the (legacy global) NumPy RNG keys, and a JSON ``meta`` record
(sweep counter, shape/ranks/dtype, the full options dict and its
fingerprint, schema version) — plus a sha256 **content digest** over all of
it.  :func:`load_checkpoint` recomputes the digest and refuses a file whose
bytes do not match (:class:`CheckpointCorruptError`): a torn or bit-rotted
checkpoint must never silently seed a resumed run.

Writes are atomic: serialize to ``<path>.tmp-<pid>``, flush + fsync, then
``os.replace`` onto the final name — a crash mid-write leaves the previous
good checkpoint in place, never a half-written one.

Use
---
Drivers build a :class:`Checkpointer` (usually from
``HOOIOptions.checkpoint_dir`` / ``checkpoint_interval``) and hand it to
:meth:`repro.engine.driver.HOOIEngine.run` via ``checkpoint=``; resuming
passes a :class:`CheckpointState` (or a path, or ``"auto"``) through
``resume=`` on :func:`repro.core.hooi.hooi` / :func:`repro.decompose`.
The serving layer wires both automatically (``DecompositionService(
checkpoint_dir=...)``): a crash-retried job restarts from its last good
sweep instead of sweep 0.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "CheckpointState",
    "CheckpointError",
    "CheckpointCorruptError",
    "Checkpointer",
    "save_checkpoint",
    "load_checkpoint",
    "resolve_resume",
    "RESUME_COMPAT_EXCLUDE",
]

#: Schema tag written into every checkpoint's meta record.
CHECKPOINT_SCHEMA = "hooi-checkpoint/1"

#: Option fields a resumed run may legitimately change.  Everything else
#: shapes the per-sweep numerics (kernels, formats, solver, precision,
#: seed), and resuming across such a change would *not* reproduce the
#: uninterrupted run — :func:`check_resume_compatible` rejects it.  Run
#: length / convergence knobs, checkpoint placement and the execution
#: model (parity across backends is 1e-10 by the conformance matrix) are
#: safe to vary — resuming a crashed process-pool run on the sequential
#: backend is precisely the degradation story.
RESUME_COMPAT_EXCLUDE = frozenset(
    {
        "max_iterations",
        "tolerance",
        "track_fit",
        "checkpoint_dir",
        "checkpoint_interval",
        "fallback",
        "execution",
        "num_workers",
        "block_nnz",
    }
)


class CheckpointError(RuntimeError):
    """Base class of checkpoint load/save failures."""


class CheckpointCorruptError(CheckpointError):
    """The checkpoint's content digest does not match its payload."""


@dataclass
class CheckpointState:
    """One sweep boundary's complete resumable state."""

    factors: List[np.ndarray]
    core: np.ndarray
    fit_history: List[float]
    completed_sweeps: int
    shape: Tuple[int, ...]
    ranks: Tuple[int, ...]
    dtype: str
    options: Dict[str, object] = field(default_factory=dict)
    options_fingerprint: str = ""
    rng_state: Optional[dict] = None


def _digest(arrays: Dict[str, np.ndarray], meta_json: str) -> str:
    """Canonical sha256 over the payload (arrays in sorted key order)."""
    h = hashlib.sha256()
    for key in sorted(arrays):
        arr = np.ascontiguousarray(arrays[key])
        h.update(key.encode("utf-8"))
        h.update(str(arr.dtype.str).encode("utf-8"))
        h.update(str(arr.shape).encode("utf-8"))
        h.update(arr.tobytes())
    h.update(meta_json.encode("utf-8"))
    return h.hexdigest()


def _capture_rng_state() -> dict:
    """The legacy global NumPy RNG state, JSON-ready (keys stored aside).

    Nothing in the engine draws from the global stream today (init and the
    randomized TRSVD re-seed per call), but snapshotting it is cheap and
    future-proofs the exact-resume guarantee against a kernel that does.
    """
    kind, keys, pos, has_gauss, cached = np.random.get_state()
    return {
        "kind": str(kind),
        "pos": int(pos),
        "has_gauss": int(has_gauss),
        "cached_gaussian": float(cached),
        "keys": np.asarray(keys, dtype=np.uint32),
    }


def restore_rng_state(state: Optional[dict]) -> None:
    """Reinstall a captured global RNG state (no-op for ``None``)."""
    if not state:
        return
    np.random.set_state(
        (
            state["kind"],
            np.asarray(state["keys"], dtype=np.uint32),
            int(state["pos"]),
            int(state["has_gauss"]),
            float(state["cached_gaussian"]),
        )
    )


def save_checkpoint(path: Union[str, Path], state: CheckpointState) -> Path:
    """Atomically write a verified checkpoint file and return its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays: Dict[str, np.ndarray] = {
        f"factor{n}": np.ascontiguousarray(f)
        for n, f in enumerate(state.factors)
    }
    arrays["core"] = np.ascontiguousarray(state.core)
    arrays["fit_history"] = np.asarray(state.fit_history, dtype=np.float64)
    rng = state.rng_state
    meta = {
        "schema": CHECKPOINT_SCHEMA,
        "completed_sweeps": int(state.completed_sweeps),
        "order": len(state.factors),
        "shape": [int(s) for s in state.shape],
        "ranks": [int(r) for r in state.ranks],
        "dtype": str(state.dtype),
        "options": state.options,
        "options_fingerprint": state.options_fingerprint,
        "rng": None,
    }
    if rng is not None:
        arrays["rng_keys"] = np.asarray(rng["keys"], dtype=np.uint32)
        meta["rng"] = {
            k: rng[k] for k in ("kind", "pos", "has_gauss", "cached_gaussian")
        }
    meta_json = json.dumps(meta, sort_keys=True, separators=(",", ":"))
    digest = _digest(arrays, meta_json)

    fd, tmp_name = tempfile.mkstemp(
        prefix=f"{path.name}.tmp-{os.getpid()}-", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(
                handle,
                __meta__=np.frombuffer(
                    meta_json.encode("utf-8"), dtype=np.uint8
                ),
                __sha256__=np.frombuffer(
                    digest.encode("ascii"), dtype=np.uint8
                ),
                **arrays,
            )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_checkpoint(path: Union[str, Path]) -> CheckpointState:
    """Read and integrity-check a checkpoint file.

    Raises :class:`FileNotFoundError` when absent, :class:`CheckpointError`
    on a malformed file, :class:`CheckpointCorruptError` when the stored
    digest does not match the recomputed one.
    """
    path = Path(path)
    with np.load(path) as payload:
        names = set(payload.files)
        if "__meta__" not in names or "__sha256__" not in names:
            raise CheckpointError(
                f"{path} is not a HOOI checkpoint (missing meta/digest "
                "records)"
            )
        meta_json = bytes(payload["__meta__"]).decode("utf-8")
        stored_digest = bytes(payload["__sha256__"]).decode("ascii")
        arrays = {
            name: payload[name]
            for name in names
            if name not in ("__meta__", "__sha256__")
        }
    if _digest(arrays, meta_json) != stored_digest:
        raise CheckpointCorruptError(
            f"checkpoint {path} failed its content-hash integrity check: "
            "the file was truncated or corrupted — delete it (a resumed run "
            "must never start from damaged state; the run can still restart "
            "from sweep 0)"
        )
    meta = json.loads(meta_json)
    if meta.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"checkpoint {path} has schema {meta.get('schema')!r}; this "
            f"build reads {CHECKPOINT_SCHEMA!r}"
        )
    rng = None
    if meta.get("rng") is not None:
        rng = dict(meta["rng"])
        rng["keys"] = arrays["rng_keys"]
    return CheckpointState(
        factors=[arrays[f"factor{n}"] for n in range(int(meta["order"]))],
        core=arrays["core"],
        fit_history=[float(v) for v in arrays["fit_history"]],
        completed_sweeps=int(meta["completed_sweeps"]),
        shape=tuple(meta["shape"]),
        ranks=tuple(meta["ranks"]),
        dtype=str(meta["dtype"]),
        options=dict(meta.get("options") or {}),
        options_fingerprint=str(meta.get("options_fingerprint", "")),
        rng_state=rng,
    )


def check_resume_compatible(state: CheckpointState, eng) -> None:
    """Reject a resume that would not reproduce the uninterrupted run.

    Structural identity (shape, ranks, dtype) is checked hard; option
    fields outside :data:`RESUME_COMPAT_EXCLUDE` must match the checkpoint's
    recorded options — the error names each mismatched field so the caller
    can see exactly which knob diverged.
    """
    if tuple(state.shape) != tuple(eng.shape):
        raise ValueError(
            f"cannot resume: checkpoint holds a tensor of shape "
            f"{tuple(state.shape)} but the run's tensor is {eng.shape}"
        )
    if tuple(state.ranks) != tuple(eng.ranks):
        raise ValueError(
            f"cannot resume: checkpoint was taken at ranks "
            f"{tuple(state.ranks)} but the run asks for {tuple(eng.ranks)}"
        )
    if np.dtype(state.dtype) != np.dtype(eng.dtype):
        raise ValueError(
            f"cannot resume: checkpoint dtype {state.dtype} != run dtype "
            f"{np.dtype(eng.dtype).name} (the precision policy shapes every "
            "sweep's numerics)"
        )
    if not state.options:
        return
    try:
        current = eng.options.to_dict()
    except ValueError:
        # Array-init options have no serializable form; structural checks
        # above are all a checkpoint can verify against them.
        return
    # Checkpoints written by older builds may record None spellings for the
    # optional axis fields; the running engine's options are validated (so
    # always concrete).  Normalize both sides to the same spelling before
    # comparing — None-vs-concrete for the same configuration is not a real
    # mismatch.
    from repro.core.hooi import normalize_axis_fields

    recorded = normalize_axis_fields(state.options)
    current = normalize_axis_fields(current)
    mismatched = sorted(
        key
        for key in current
        if key not in RESUME_COMPAT_EXCLUDE
        and key in recorded
        and recorded[key] != current[key]
    )
    if mismatched:
        raise ValueError(
            "cannot resume: option(s) "
            + ", ".join(
                f"{key}={current[key]!r} (checkpoint: {recorded[key]!r})"
                for key in mismatched
            )
            + " differ from the checkpointed run, so the resumed sweeps "
            "would not reproduce the uninterrupted run — match the options "
            "or restart from sweep 0 (run-length/backend knobs "
            f"{sorted(RESUME_COMPAT_EXCLUDE)} may vary freely)"
        )


class Checkpointer:
    """Writes one rolling checkpoint file at configured sweep boundaries.

    The engine calls :meth:`on_sweep` after every completed sweep; the
    checkpointer snapshots every ``interval``-th one (always including the
    very first, so a crash during a long first stretch still has something
    to resume from).  ``saves`` counts actual writes; :meth:`load` /
    :meth:`discard` manage the rolling file.
    """

    #: File name of the rolling checkpoint inside ``directory``.
    FILENAME = "hooi.ckpt.npz"

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        interval: int = 1,
        filename: Optional[str] = None,
    ) -> None:
        if int(interval) < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.directory = Path(directory)
        self.interval = int(interval)
        self.path = self.directory / (filename or self.FILENAME)
        self.saves = 0

    def on_sweep(
        self,
        eng,
        sweep: int,
        core: np.ndarray,
        fit_history: Sequence[float],
    ) -> Optional[Path]:
        """Engine hook: snapshot the state of a just-completed sweep."""
        if sweep % self.interval != 0 and sweep != 1:
            return None
        try:
            options = eng.options.to_dict()
            fingerprint = eng.options.options_fingerprint()
        except ValueError:
            options, fingerprint = {}, ""
        state = CheckpointState(
            factors=list(eng.factors),
            core=np.asarray(core),
            fit_history=list(fit_history),
            completed_sweeps=int(sweep),
            shape=tuple(eng.shape),
            ranks=tuple(eng.ranks),
            dtype=np.dtype(eng.dtype).name,
            options=options,
            options_fingerprint=fingerprint,
            rng_state=_capture_rng_state(),
        )
        out = save_checkpoint(self.path, state)
        self.saves += 1
        return out

    def load(self) -> Optional[CheckpointState]:
        """The last good checkpoint, or ``None`` when none exists."""
        if not self.path.exists():
            return None
        return load_checkpoint(self.path)

    def discard(self) -> None:
        """Remove the rolling checkpoint (a completed run needs none)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


def resolve_resume(
    resume: Union[None, str, Path, CheckpointState, bool],
    checkpointer: Optional[Checkpointer] = None,
) -> Optional[CheckpointState]:
    """Normalize the public ``resume=`` argument into a loaded state.

    ``None``/``False`` → no resume.  A :class:`CheckpointState` passes
    through.  A path loads that file.  ``True`` / ``"auto"`` loads the
    checkpointer's rolling file when it exists (silently fresh-starting
    otherwise — the serving retry path's idiom, where attempt 1 may have
    died before its first sweep completed).
    """
    if resume is None or resume is False:
        return None
    if isinstance(resume, CheckpointState):
        return resume
    if resume is True or resume == "auto":
        if checkpointer is None:
            raise ValueError(
                "resume='auto' needs a checkpoint location: set "
                "HOOIOptions.checkpoint_dir (or pass an explicit checkpoint "
                "path / CheckpointState instead)"
            )
        return checkpointer.load()
    return load_checkpoint(Path(resume))
