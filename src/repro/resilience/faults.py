"""Deterministic fault injection: scriptable crashes, errors and stalls.

Crash-path tests used to hand-roll their faults — a ``SIGKILL`` here, a
monkeypatched executor there — which makes each failure scenario bespoke and
none of them composable.  This module turns faults into *data*: a
:class:`FaultPlan` names **injection points** (stable string identifiers
compiled into the production code paths) and attaches a :class:`FaultSpec`
to each — raise this exception on the Nth hit, hard-exit the process, or
stall for a bit.  The plan is seeded and counted, so a scenario replays
identically on every run and on every interpreter.

Injection points wired into the codebase
----------------------------------------
==================== ====================================================
``shm.attach``       :func:`repro.parallel.shm.attach_segment` — every
                     shared-memory segment attach (drivers *and* workers;
                     use ``after=`` to fail partway through an attach
                     sequence, the partial-attach scenario).
``worker.ack``       the worker task loop, just before a completed task is
                     acked (``action="exit"`` here is a mid-task worker
                     crash, the scripted equivalent of a ``SIGKILL``).
``pool.dispatch``    :meth:`repro.parallel.process_pool.HOOIProcessPool.
                     _dispatch` — driver-side, before a task batch is
                     enqueued.
``trsvd``            :func:`repro.core.trsvd.truncated_svd` — the factor
                     update of every mode of every sweep.
``serving.run_direct`` / ``serving.run_batch``
                     the serving executor's two run paths, before any work
                     starts.
==================== ====================================================

Activation
----------
Programmatic (same process)::

    from repro.resilience import FaultPlan, FaultSpec, install_faults, clear_faults
    install_faults(FaultPlan([FaultSpec("pool.dispatch", action="error",
                                        error="WorkerCrashError", times=-1)]))
    ...
    clear_faults()

or via the environment — ``REPRO_FAULTS`` holds the plan's JSON
(:meth:`FaultPlan.to_json`), read once at import time.  The environment
route is how faults reach *worker processes*: both ``fork`` and ``spawn``
children inherit the variable, and each process keeps its own hit counters
(documented, deterministic — a plan that fails the 3rd attach fails the 3rd
attach *per process*).

Overhead
--------
When no plan is installed, every injection point is a single module-global
``None`` check (:func:`maybe_fail`) — no dictionary lookups, no locks, no
environment reads after import.  Production code pays nothing for being
injectable.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from dataclasses import dataclass, field, fields
from typing import Dict, Optional, Sequence, Tuple

__all__ = [
    "FAULT_ENV",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "install_faults",
    "clear_faults",
    "active_injector",
    "maybe_fail",
    "INJECTION_POINTS",
]

#: Environment variable holding a JSON-encoded :class:`FaultPlan`.
FAULT_ENV = "REPRO_FAULTS"

#: The injection points compiled into the codebase (see the module
#: docstring).  Plans may only target these — a typo'd point name would
#: otherwise silently never fire, the worst failure mode a fault harness
#: can have.
INJECTION_POINTS = (
    "shm.attach",
    "worker.ack",
    "pool.dispatch",
    "trsvd",
    "serving.run_direct",
    "serving.run_batch",
)

#: Actions a spec may take when it fires.
FAULT_ACTIONS = ("error", "exit", "delay")


class InjectedFault(RuntimeError):
    """Default exception raised by ``action="error"`` specs."""


#: Exception names a spec may raise.  Validation checks the *name* only;
#: the class is resolved at fire time (:func:`_resolve_error`) so that
#: env-activated plans can be armed while :mod:`repro.parallel` is still
#: mid-import (this module is imported from its hot paths).
_ERROR_NAMES = (
    "InjectedFault",
    "RuntimeError",
    "OSError",
    "MemoryError",
    "TimeoutError",
    "ValueError",
    "WorkerCrashError",
)


def _resolve_error(name: str) -> type:
    if name == "WorkerCrashError":
        from repro.parallel.process_pool import WorkerCrashError

        return WorkerCrashError
    return {
        "InjectedFault": InjectedFault,
        "RuntimeError": RuntimeError,
        "OSError": OSError,
        "MemoryError": MemoryError,
        "TimeoutError": TimeoutError,
        "ValueError": ValueError,
    }[name]


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault at one injection point.

    The spec fires on hits ``after < hit <= after + times`` of its point
    (``times=-1`` fires forever once reached), optionally thinned by a
    seeded ``probability`` draw — every knob is deterministic, so a failing
    chaos scenario replays exactly.

    ``action``:

    * ``"error"`` — raise ``error`` (a class name from the registry:
      ``InjectedFault``, ``RuntimeError``, ``OSError``, ``MemoryError``,
      ``TimeoutError``, ``ValueError``, ``WorkerCrashError``).
    * ``"exit"`` — ``os._exit(exit_code)``: an un-catchable process death,
      the scripted stand-in for ``SIGKILL`` (only meaningful at points that
      execute inside worker processes).
    * ``"delay"`` — sleep ``delay`` seconds, then continue normally (models
      a stall / slow disk / scheduling hiccup).
    """

    point: str
    action: str = "error"
    times: int = 1
    after: int = 0
    probability: float = 1.0
    delay: float = 0.0
    error: str = "InjectedFault"
    message: str = "injected fault"
    exit_code: int = 23

    def __post_init__(self) -> None:
        if self.point not in INJECTION_POINTS:
            raise ValueError(
                f"unknown injection point {self.point!r}: the compiled-in "
                f"points are {INJECTION_POINTS} (a misspelled point would "
                "silently never fire)"
            )
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}: expected one of "
                f"{FAULT_ACTIONS}"
            )
        if self.action == "error" and self.error not in _ERROR_NAMES:
            raise ValueError(
                f"unknown error class {self.error!r}: expected one of "
                f"{sorted(_ERROR_NAMES)}"
            )
        if self.times < -1 or self.times == 0:
            raise ValueError(
                f"times must be -1 (unlimited) or >= 1, got {self.times}"
            )
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"probability must be in (0, 1], got {self.probability}"
            )

    def to_dict(self) -> dict:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable set of :class:`FaultSpec` entries."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        object.__setattr__(self, "specs", tuple(specs))
        object.__setattr__(self, "seed", int(seed))

    def to_json(self) -> str:
        """The plan as JSON — the ``REPRO_FAULTS`` wire format."""
        return json.dumps(
            {
                "schema": "fault-plan/1",
                "seed": self.seed,
                "faults": [spec.to_dict() for spec in self.specs],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        data = json.loads(payload)
        if not isinstance(data, dict) or "faults" not in data:
            raise ValueError(
                "a fault plan is a JSON object with a 'faults' list "
                "(and an optional 'seed'); see FaultPlan.to_json()"
            )
        known = {spec.name for spec in fields(FaultSpec)}
        specs = []
        for entry in data["faults"]:
            unknown = sorted(set(entry) - known)
            if unknown:
                raise ValueError(
                    f"unknown FaultSpec key(s) {unknown}: valid keys are "
                    f"{sorted(known)}"
                )
            specs.append(FaultSpec(**entry))
        return cls(specs, seed=int(data.get("seed", 0)))


class _ArmedSpec:
    """Mutable firing state of one spec (hit counter + seeded RNG)."""

    def __init__(self, spec: FaultSpec, seed: int, index: int) -> None:
        self.spec = spec
        self.hits = 0
        self.fired = 0
        # Each spec draws from its own deterministic stream, so reordering
        # unrelated specs in a plan never changes another spec's decisions.
        self.rng = random.Random(f"{seed}:{index}:{spec.point}")

    def fire(self) -> None:
        spec = self.spec
        self.hits += 1
        if self.hits <= spec.after:
            return
        if spec.times != -1 and self.fired >= spec.times:
            return
        if spec.probability < 1.0 and self.rng.random() >= spec.probability:
            return
        self.fired += 1
        if spec.action == "delay":
            time.sleep(spec.delay)
            return
        if spec.action == "exit":
            os._exit(spec.exit_code)
        raise _resolve_error(spec.error)(
            f"{spec.message} [fault point={spec.point!r} hit={self.hits}]"
        )


class FaultInjector:
    """Armed form of a :class:`FaultPlan` (per-process counters, thread-safe)."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._by_point: Dict[str, list] = {}
        for index, spec in enumerate(plan.specs):
            self._by_point.setdefault(spec.point, []).append(
                _ArmedSpec(spec, plan.seed, index)
            )

    def fire(self, point: str) -> None:
        """Hit an injection point; may raise, exit or stall per the plan."""
        armed = self._by_point.get(point)
        if not armed:
            return
        with self._lock:
            for entry in armed:
                entry.fire()

    def counters(self) -> Dict[str, Tuple[int, int]]:
        """Per-point ``(hits, fired)`` totals (for assertions in tests)."""
        out: Dict[str, Tuple[int, int]] = {}
        for point, armed in self._by_point.items():
            out[point] = (
                sum(e.hits for e in armed),
                sum(e.fired for e in armed),
            )
        return out


# -- module-global activation ---------------------------------------------- #
_active: Optional[FaultInjector] = None


def install_faults(plan: FaultPlan) -> FaultInjector:
    """Arm a plan in this process (replacing any active one)."""
    global _active
    _active = FaultInjector(plan)
    return _active


def clear_faults() -> None:
    """Disarm fault injection in this process."""
    global _active
    _active = None


def active_injector() -> Optional[FaultInjector]:
    """The armed injector, or ``None`` when injection is disabled."""
    return _active


def maybe_fail(point: str) -> None:
    """The injection-point hook compiled into production code.

    A single global ``None`` check when no plan is armed — the zero-overhead
    guarantee that lets injection points live in hot paths.
    """
    if _active is not None:
        _active.fire(point)


def _load_env_plan() -> None:
    payload = os.environ.get(FAULT_ENV)
    if not payload:
        return
    # A malformed plan must fail loudly: a chaos run whose faults silently
    # never arm reads as "everything survived", the opposite of the truth.
    install_faults(FaultPlan.from_json(payload))


_load_env_plan()
