"""Fault tolerance: checkpoint/resume, graceful degradation, fault injection.

Three cooperating pieces, each usable on its own:

* :mod:`repro.resilience.checkpoint` — sweep-boundary snapshots of HOOI
  state with atomic writes and content-hash verified resume
  (``HOOIOptions.checkpoint_dir`` / ``resume=`` on the drivers).
* :mod:`repro.resilience.degrade` — the ordered fallback ladder
  (process → thread → sequential; numba → numpy; csf → coo) and the
  circuit breaker that guards the serving process pool.
* :mod:`repro.resilience.retry` — the deterministic bounded-backoff retry
  policy shared by the serving layer.
* :mod:`repro.resilience.faults` — the seeded fault-injection harness
  (``REPRO_FAULTS``) that makes crash scenarios scriptable data.

See README "Fault tolerance & graceful degradation".
"""

from repro.resilience.checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointState,
    Checkpointer,
    load_checkpoint,
    resolve_resume,
    save_checkpoint,
)
from repro.resilience.degrade import (
    FALLBACK_POLICIES,
    CircuitBreaker,
    CircuitOpenError,
    DegradationLadder,
    FallbackStep,
)
from repro.resilience.faults import (
    FAULT_ENV,
    INJECTION_POINTS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_injector,
    clear_faults,
    install_faults,
    maybe_fail,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointState",
    "Checkpointer",
    "load_checkpoint",
    "resolve_resume",
    "save_checkpoint",
    "FALLBACK_POLICIES",
    "CircuitBreaker",
    "CircuitOpenError",
    "DegradationLadder",
    "FallbackStep",
    "FAULT_ENV",
    "INJECTION_POINTS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_injector",
    "clear_faults",
    "install_faults",
    "maybe_fail",
    "RetryPolicy",
]
