"""The retry policy: bounded attempts with deterministic backoff.

PR 7's serving layer hand-rolled its crash-retry rule as a bare
``attempts <= max_retries`` comparison inline in ``service.py``; this
module centralizes it so the serving layer, the degradation ladder and the
tests all reason about one object.  The policy is deliberately
deterministic — the backoff schedule is a pure function of the attempt
number (capped exponential, no jitter), because the test suite replays
crash scenarios and a randomized schedule would make wall-clock assertions
flaky.  The pool itself is single-consumer, so the thundering-herd problem
jitter exists to solve does not arise here.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with capped-exponential, deterministic backoff.

    ``max_retries`` counts *re*-tries: a job always gets attempt 1, then up
    to ``max_retries`` further attempts.  ``delay(attempt)`` is the pause
    before re-running attempt ``attempt`` (so ``delay(2)`` is the first
    backoff): ``min(base_delay * multiplier**(attempt - 2), max_delay)``.
    The serving defaults keep the first retry immediate
    (``base_delay=0``) — a crashed crew is already being rebuilt, which is
    backoff enough.
    """

    max_retries: int = 1
    base_delay: float = 0.0
    multiplier: float = 2.0
    max_delay: float = 5.0

    def __post_init__(self) -> None:
        if int(self.max_retries) < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")

    def should_retry(self, attempts: int) -> bool:
        """Whether a job that has made ``attempts`` attempts may go again."""
        return attempts <= self.max_retries

    def delay(self, attempt: int) -> float:
        """Seconds to wait before running attempt ``attempt`` (>= 2)."""
        if attempt <= 1 or self.base_delay == 0.0:
            return 0.0
        return min(
            self.base_delay * self.multiplier ** (attempt - 2), self.max_delay
        )
