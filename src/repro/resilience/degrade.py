"""Graceful degradation: the fallback ladder and the pool circuit breaker.

A persistently broken execution tier — a poisoned worker crew, an
shm-starved host, a fleet node without numba — should cost a job *speed*,
not *success*.  This module defines the policy half of that story:

* :class:`DegradationLadder` — the ordered, deterministic sequence of
  configuration rungs a job steps down when its current tier keeps
  failing: ``process → thread → sequential`` execution first (the crash
  domain), then ``numba → numpy`` kernel, then ``csf → coo`` format.
  Since csf composes with process execution, the execution axis descends
  fully before the format axis is touched — a CSF job no longer has to
  give up its compressed layout just to leave a broken process pool, and
  every intermediate rung of the descent (e.g. ``thread × numba × csf``,
  ``sequential × numpy × csf``) is itself a valid configuration.  Every
  rung is a tier the conformance matrix proves numerically
  interchangeable (1e-10 parity), which is what makes silent substitution
  *sound* — only wall-clock changes.
* :class:`CircuitBreaker` — the classic closed / open / half-open state
  machine guarding the process pool: after ``failure_threshold``
  consecutive failures the breaker opens and :class:`CircuitOpenError`
  short-circuits acquisition for ``cooldown`` seconds (jobs degrade
  immediately instead of burning retries against a broken pool); after
  the cooldown one probe is admitted (half-open) and its outcome closes
  or re-opens the circuit.

The mechanism half — who consults these — lives in
:mod:`repro.serving.pool_manager` (breaker around ``acquire()``) and
:mod:`repro.serving.service` (ladder application on retry exhaustion,
per-tier ``fallbacks`` metrics).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "FallbackStep",
    "DegradationLadder",
    "CircuitBreaker",
    "CircuitOpenError",
    "FALLBACK_POLICIES",
]

#: Values of ``HOOIOptions.fallback``: ``"ladder"`` (degrade through the
#: rungs below) or ``"none"`` (fail the job once retries are exhausted —
#: the pre-resilience behavior, for callers that prefer a loud failure
#: over a slow success).
FALLBACK_POLICIES = ("ladder", "none")

#: Rung order per axis: each maps a value to the next one down.
_EXECUTION_DOWN = {"process": "thread", "thread": "sequential"}
_KERNEL_DOWN = {"numba": "numpy"}
_FORMAT_DOWN = {"csf": "coo"}


@dataclass(frozen=True)
class FallbackStep:
    """One rung descent: which option field changes, from what, to what.

    ``tier`` is the destination value — the key under which the serving
    metrics count this fallback (``fallbacks["thread"]`` etc.).
    """

    field: str
    from_value: str
    to_value: str

    @property
    def tier(self) -> str:
        return self.to_value

    def describe(self) -> str:
        return f"{self.field}: {self.from_value} -> {self.to_value}"


class DegradationLadder:
    """The ordered fallback policy consulted when a tier keeps failing.

    Execution degrades first — crashes live in the process tier, and
    ``thread``/``sequential`` share the driver's address space so a broken
    pool cannot hurt them.  The kernel rung handles a missing/broken numba
    install; the format rung handles CSF build failures.  Axes degrade
    independently and one rung at a time: each call to :meth:`next_step`
    proposes exactly one change, so the caller can attribute every
    fallback to the failure that caused it.  Single-axis steps require
    every intermediate configuration to be valid — which holds because the
    option matrix has no composition holes along these axes (csf composes
    with every execution value; ``tests/test_conformance_matrix.py``
    walks the full descent and asserts both validity and 1e-10 parity per
    rung).
    """

    def __init__(
        self,
        *,
        execution: Dict[str, str] = _EXECUTION_DOWN,
        kernel: Dict[str, str] = _KERNEL_DOWN,
        tensor_format: Dict[str, str] = _FORMAT_DOWN,
    ) -> None:
        self._axes: Tuple[Tuple[str, Dict[str, str]], ...] = (
            ("execution", dict(execution)),
            ("kernel", dict(kernel)),
            ("tensor_format", dict(tensor_format)),
        )

    def next_step(
        self,
        *,
        execution: str,
        kernel: str = "numpy",
        tensor_format: str = "coo",
    ) -> Optional[FallbackStep]:
        """The next rung down from the given configuration, or ``None``.

        ``None`` means the configuration is already at the bottom of every
        axis — there is nothing left to degrade to, and the failure must
        surface.
        """
        current = {
            "execution": execution,
            "kernel": kernel,
            "tensor_format": tensor_format,
        }
        for field_name, down in self._axes:
            value = current[field_name]
            if value in down:
                return FallbackStep(field_name, value, down[value])
        return None

    def steps_from(
        self,
        *,
        execution: str,
        kernel: str = "numpy",
        tensor_format: str = "coo",
    ) -> Tuple[FallbackStep, ...]:
        """Every rung below the given configuration, in descent order."""
        out = []
        current = {
            "execution": execution,
            "kernel": kernel,
            "tensor_format": tensor_format,
        }
        while True:
            step = self.next_step(**current)
            if step is None:
                return tuple(out)
            out.append(step)
            current[step.field] = step.to_value


class CircuitOpenError(RuntimeError):
    """Raised on acquisition while the breaker is open (cooling down)."""


class CircuitBreaker:
    """Consecutive-failure breaker with a cooldown and a half-open probe.

    States:

    * ``closed`` — healthy; failures are counted, ``failure_threshold``
      consecutive ones trip the breaker.
    * ``open`` — tripped; :meth:`before_call` raises
      :class:`CircuitOpenError` until ``cooldown`` seconds have passed.
    * ``half-open`` — cooldown elapsed; exactly one caller is admitted as
      a probe.  Its success closes the circuit, its failure re-opens it
      (and restarts the cooldown).

    Thread-safe; the clock is injectable for deterministic tests.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if int(failure_threshold) < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.failure_threshold = int(failure_threshold)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_out = False
        self.trips = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"`` (clock-aware)."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._state == "open" and (
            self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = "half-open"
            self._probe_out = False
        return self._state

    def before_call(self) -> None:
        """Gate an attempt: raise :class:`CircuitOpenError` when open.

        In the half-open state exactly one caller passes (the probe);
        concurrent callers are rejected as if the breaker were open.
        """
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return
            if state == "half-open" and not self._probe_out:
                self._probe_out = True
                return
            remaining = max(
                0.0, self.cooldown - (self._clock() - self._opened_at)
            )
            raise CircuitOpenError(
                f"process-pool circuit breaker is {state} after "
                f"{self._consecutive_failures} consecutive failure(s); "
                f"next probe in {remaining:.1f}s — degrade the job or "
                "wait out the cooldown"
            )

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._consecutive_failures = 0
            self._probe_out = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            state = self._state_locked()
            if state == "half-open" or (
                state == "closed"
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = "open"
                self._opened_at = self._clock()
                self._probe_out = False
                self.trips += 1
