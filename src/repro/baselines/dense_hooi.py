"""Dense Tucker baselines: HOSVD, ST-HOSVD and dense HOOI.

These are the algorithms dense-Tucker codes (e.g. the distributed dense code
of Austin et al. that the paper cites as related work) build on.  They operate
on dense ndarrays and use the Gram-matrix eigen-decomposition for the factor
updates — exactly the approach the paper argues is impractical for sparse
tensors with multi-million-row matricizations, which is why they are kept here
as baselines and correctness oracles rather than as the main path.

The dense HOOI drives the same engine loop as the sparse drivers
(:class:`~repro.engine.driver.HOOIEngine`); only the TTMc (a dense TTM chain)
and the factor update (Gram eigenvectors instead of a matrix-free TRSVD) are
swapped via :class:`DenseGramBackend`.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.dense import dense_ttm, dense_ttm_chain, tensor_norm, unfold
from repro.core.hooi import HOOIOptions
from repro.core.tucker import TuckerTensor
from repro.engine.backend import ExecutionBackend
from repro.engine.driver import HOOIEngine
from repro.util.linalg import gram_leading_eigvecs
from repro.util.validation import check_rank_vector

__all__ = ["dense_hosvd", "dense_st_hosvd", "dense_hooi", "DenseGramBackend"]


def dense_hosvd(tensor: np.ndarray, ranks: Sequence[int] | int) -> TuckerTensor:
    """Classical (truncated) HOSVD of a dense tensor."""
    tensor = np.asarray(tensor, dtype=np.float64)
    ranks = check_rank_vector(ranks, tensor.shape)
    factors: List[np.ndarray] = []
    for mode, rank in enumerate(ranks):
        factors.append(gram_leading_eigvecs(unfold(tensor, mode), rank))
    core = dense_ttm_chain(tensor, factors, transpose=True)
    return TuckerTensor(core=core, factors=factors)


def dense_st_hosvd(tensor: np.ndarray, ranks: Sequence[int] | int) -> TuckerTensor:
    """Sequentially-truncated HOSVD: truncate after every mode.

    Cheaper than HOSVD because later modes operate on the already-compressed
    tensor; this is the initialization dense Tucker codes favour.
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    ranks = check_rank_vector(ranks, tensor.shape)
    factors: List[np.ndarray] = []
    current = tensor
    for mode, rank in enumerate(ranks):
        factor = gram_leading_eigvecs(unfold(current, mode), rank)
        factors.append(factor)
        current = dense_ttm(current, factor, mode, transpose=True)
    return TuckerTensor(core=current, factors=factors)


class DenseGramBackend(ExecutionBackend):
    """Dense-tensor execution with Gram-based factor updates.

    ``init`` selects the initialization (``"sthosvd"`` or ``"hosvd"``); the
    engine's ``HOOIOptions.init`` is not consulted, since the dense code has
    its own initializers.  Likewise ``HOOIOptions.trsvd_method`` is ignored:
    the Gram eigen-update *is* this baseline's identity (the approach the
    paper argues against for sparse data) — use the sparse drivers to compare
    TRSVD solvers.
    """

    name = "dense-gram"

    def __init__(self, init: str = "sthosvd") -> None:
        if init not in ("sthosvd", "hosvd"):
            raise ValueError(f"unknown init {init!r}")
        self.init = init

    def prepare_tensor(self, eng) -> None:
        eng.tensor = np.asarray(eng.tensor, dtype=eng.dtype)

    def tensor_norm(self, eng) -> float:
        return tensor_norm(eng.tensor)

    def initial_factors(self, eng) -> List[np.ndarray]:
        if self.init == "sthosvd":
            model = dense_st_hosvd(eng.tensor, eng.ranks)
        else:
            model = dense_hosvd(eng.tensor, eng.ranks)
        return [f.copy() for f in model.factors]

    def prepare(self, eng) -> None:
        pass  # no symbolic structure on dense data

    def compute_ttmc(self, eng, mode: int) -> np.ndarray:
        partial = dense_ttm_chain(eng.tensor, eng.factors, skip=mode, transpose=True)
        return unfold(partial, mode)

    def update_factor(self, eng, mode: int, y_mat: np.ndarray):
        factor = gram_leading_eigvecs(y_mat, eng.ranks[mode])
        return np.asarray(factor, dtype=eng.dtype), None


def dense_hooi(
    tensor: np.ndarray,
    ranks: Sequence[int] | int,
    *,
    max_iterations: int = 10,
    tolerance: float = 1e-7,
    init: str = "sthosvd",
) -> TuckerTensor:
    """Dense HOOI (Algorithm 1 on a dense tensor, Gram-based factor updates)."""
    options = HOOIOptions(
        max_iterations=max_iterations, tolerance=tolerance, track_fit=True
    )
    engine = HOOIEngine(
        np.asarray(tensor, dtype=np.float64),
        ranks,
        options,
        backend=DenseGramBackend(init=init),
    )
    return engine.run().decomposition
