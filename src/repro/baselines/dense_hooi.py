"""Dense Tucker baselines: HOSVD, ST-HOSVD and dense HOOI.

These are the algorithms dense-Tucker codes (e.g. the distributed dense code
of Austin et al. that the paper cites as related work) build on.  They operate
on dense ndarrays and use the Gram-matrix eigen-decomposition for the factor
updates — exactly the approach the paper argues is impractical for sparse
tensors with multi-million-row matricizations, which is why they are kept here
as baselines and correctness oracles rather than as the main path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.dense import dense_ttm, dense_ttm_chain, tensor_norm, unfold
from repro.core.tucker import TuckerTensor
from repro.util.linalg import gram_leading_eigvecs
from repro.util.validation import check_rank_vector

__all__ = ["dense_hosvd", "dense_st_hosvd", "dense_hooi"]


def dense_hosvd(tensor: np.ndarray, ranks: Sequence[int] | int) -> TuckerTensor:
    """Classical (truncated) HOSVD of a dense tensor."""
    tensor = np.asarray(tensor, dtype=np.float64)
    ranks = check_rank_vector(ranks, tensor.shape)
    factors: List[np.ndarray] = []
    for mode, rank in enumerate(ranks):
        factors.append(gram_leading_eigvecs(unfold(tensor, mode), rank))
    core = dense_ttm_chain(tensor, factors, transpose=True)
    return TuckerTensor(core=core, factors=factors)


def dense_st_hosvd(tensor: np.ndarray, ranks: Sequence[int] | int) -> TuckerTensor:
    """Sequentially-truncated HOSVD: truncate after every mode.

    Cheaper than HOSVD because later modes operate on the already-compressed
    tensor; this is the initialization dense Tucker codes favour.
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    ranks = check_rank_vector(ranks, tensor.shape)
    factors: List[np.ndarray] = []
    current = tensor
    for mode, rank in enumerate(ranks):
        factor = gram_leading_eigvecs(unfold(current, mode), rank)
        factors.append(factor)
        current = dense_ttm(current, factor, mode, transpose=True)
    return TuckerTensor(core=current, factors=factors)


def dense_hooi(
    tensor: np.ndarray,
    ranks: Sequence[int] | int,
    *,
    max_iterations: int = 10,
    tolerance: float = 1e-7,
    init: str = "sthosvd",
) -> TuckerTensor:
    """Dense HOOI (Algorithm 1 on a dense tensor, Gram-based factor updates)."""
    tensor = np.asarray(tensor, dtype=np.float64)
    ranks = check_rank_vector(ranks, tensor.shape)
    if init == "sthosvd":
        factors = [f.copy() for f in dense_st_hosvd(tensor, ranks).factors]
    elif init == "hosvd":
        factors = [f.copy() for f in dense_hosvd(tensor, ranks).factors]
    else:
        raise ValueError(f"unknown init {init!r}")

    norm_x = tensor_norm(tensor)
    previous_fit = -np.inf
    core = np.zeros(ranks)
    for _ in range(max_iterations):
        for mode in range(tensor.ndim):
            partial = dense_ttm_chain(tensor, factors, skip=mode, transpose=True)
            factors[mode] = gram_leading_eigvecs(unfold(partial, mode), ranks[mode])
        core = dense_ttm_chain(tensor, factors, transpose=True)
        core_norm = tensor_norm(core)
        residual = np.sqrt(max(norm_x**2 - core_norm**2, 0.0))
        fit = 1.0 - residual / norm_x if norm_x else 1.0
        if abs(fit - previous_fit) < tolerance:
            break
        previous_fit = fit
    return TuckerTensor(core=core, factors=factors)
