"""MET-style memory-efficient Tucker baseline.

Section V of the paper compares the single-core performance of HyperTensor's
nonzero-based, symbolically-preprocessed HOOI against MET (Kolda & Sun's
Memory-Efficient Tucker from the Matlab Tensor Toolbox): on a random
10K×10K×10K tensor with 1M nonzeros and 5 iterations, MET takes 87.2 s versus
11.3 s for the paper's code.

This module implements the comparison point: a HOOI whose TTMc is evaluated
the conventional way — as a chain of sparse TTM products, one mode at a time,
materializing the semi-sparse intermediate after every multiplication and
merging duplicate fibers (the memory-saving trick MET schedules around), with
no symbolic preprocessing reused across iterations.  The numerics are
identical to :func:`repro.core.hooi.hooi` — both plug into the same
:class:`~repro.engine.driver.HOOIEngine` loop and drive the same TRSVD — so
the benchmark isolates the cost of the TTMc evaluation strategy, which is
exactly what the paper's comparison highlights.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.hooi import HOOIOptions, HOOIResult
from repro.core.sparse_tensor import SparseTensor
from repro.core.ttm import sparse_ttm_chain
from repro.engine.backend import SequentialBackend
from repro.engine.driver import HOOIEngine

__all__ = ["met_hooi", "TTMChainBackend"]


class TTMChainBackend(SequentialBackend):
    """TTMc evaluated as a sparse TTM chain (the MET evaluation strategy).

    No symbolic preprocessing: every mode of every iteration re-derives the
    fiber structure while materializing the semi-sparse intermediates.
    """

    name = "ttm-chain"

    def prepare(self, eng) -> None:
        # Deliberately nothing: the absence of reusable symbolic data is the
        # point of this baseline.
        pass

    def compute_ttmc(self, eng, mode: int) -> np.ndarray:
        semi = sparse_ttm_chain(eng.tensor, eng.factors, skip=mode)
        return semi.matricize_remaining(mode)


def met_hooi(
    tensor: SparseTensor,
    ranks: Sequence[int] | int,
    options: Optional[HOOIOptions] = None,
) -> HOOIResult:
    """HOOI with TTV/TTM-chain TTMc evaluation (the MET-style baseline).

    Accepts the same options as :func:`repro.core.hooi.hooi` and returns the
    same result structure, so the two can be compared (and benchmarked) on
    identical inputs.
    """
    engine = HOOIEngine(tensor, ranks, options, backend=TTMChainBackend())
    return engine.run()
