"""MET-style memory-efficient Tucker baseline.

Section V of the paper compares the single-core performance of HyperTensor's
nonzero-based, symbolically-preprocessed HOOI against MET (Kolda & Sun's
Memory-Efficient Tucker from the Matlab Tensor Toolbox): on a random
10K×10K×10K tensor with 1M nonzeros and 5 iterations, MET takes 87.2 s versus
11.3 s for the paper's code.

This module implements the comparison point: a HOOI whose TTMc is evaluated
the conventional way — as a chain of sparse TTM products, one mode at a time,
materializing the semi-sparse intermediate after every multiplication and
merging duplicate fibers (the memory-saving trick MET schedules around), with
no symbolic preprocessing reused across iterations.  The numerics are
identical to :func:`repro.core.hooi.hooi` (both drive the same TRSVD), so the
benchmark isolates the cost of the TTMc evaluation strategy, which is exactly
what the paper's comparison highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.hooi import HOOIOptions, HOOIResult
from repro.core.hosvd import initialize_factors
from repro.core.sparse_tensor import SparseTensor
from repro.core.trsvd import truncated_svd
from repro.core.ttm import sparse_ttm_chain
from repro.core.tucker import TuckerTensor, core_from_ttmc
from repro.util.timing import TimingBreakdown
from repro.util.validation import check_rank_vector

__all__ = ["met_hooi"]


def met_hooi(
    tensor: SparseTensor,
    ranks: Sequence[int] | int,
    options: Optional[HOOIOptions] = None,
) -> HOOIResult:
    """HOOI with TTV/TTM-chain TTMc evaluation (the MET-style baseline).

    Accepts the same options as :func:`repro.core.hooi.hooi` and returns the
    same result structure, so the two can be compared (and benchmarked) on
    identical inputs.
    """
    options = options or HOOIOptions()
    ranks = check_rank_vector(ranks, tensor.shape)
    timings = TimingBreakdown()

    with timings.time("init"):
        factors = initialize_factors(
            tensor, ranks, init=options.init, seed=options.seed
        )

    norm_x = tensor.norm()
    fit_history: List[float] = []
    trsvd_stats = []
    converged = False
    core = np.zeros(ranks, dtype=np.float64)
    iterations_run = 0

    for iteration in range(options.max_iterations):
        iterations_run = iteration + 1
        last_ttmc: Optional[np.ndarray] = None
        for mode in range(tensor.order):
            with timings.time("ttmc"):
                semi = sparse_ttm_chain(tensor, factors, skip=mode)
                y_mat = semi.matricize_remaining(mode)
            with timings.time("trsvd"):
                result = truncated_svd(
                    y_mat,
                    ranks[mode],
                    method=options.trsvd_method,
                    **(
                        {"tol": options.trsvd_tol, "seed": options.seed}
                        if options.trsvd_method == "lanczos"
                        else {}
                    ),
                )
            factors[mode] = result.left
            trsvd_stats.append(result)
            if mode == tensor.order - 1:
                last_ttmc = y_mat

        with timings.time("core"):
            core = core_from_ttmc(last_ttmc, factors[-1], ranks)

        if options.track_fit:
            core_norm = float(np.linalg.norm(core.ravel()))
            residual_sq = max(norm_x**2 - core_norm**2, 0.0)
            fit = 1.0 - float(np.sqrt(residual_sq)) / norm_x if norm_x else 1.0
            fit_history.append(fit)
            if iteration > 0 and abs(fit_history[-1] - fit_history[-2]) < options.tolerance:
                converged = True
                break

    decomposition = TuckerTensor(core=core, factors=list(factors))
    return HOOIResult(
        decomposition=decomposition,
        fit_history=fit_history,
        iterations=iterations_run,
        converged=converged,
        timings=timings,
        trsvd_stats=trsvd_stats,
    )
