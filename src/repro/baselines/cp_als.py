"""CP-ALS baseline (CANDECOMP/PARAFAC via alternating least squares).

The paper positions Tucker/HOOI against the CP decomposition (Fig. 1 and the
introduction) and reuses the hypergraph models of its CP-ALS work [16]; a
working CP-ALS is therefore included both as a baseline for the examples (the
recommender scenarios can be run with either model) and as a target for the
partitioners' task models.

The implementation is the standard sparse MTTKRP-based CP-ALS: for each mode
``n`` the matricized-tensor-times-Khatri-Rao product is computed nonzero-wise
(reusing the same update-list machinery as the TTMc), the factor is solved
from the Hadamard product of the other factors' Gramians, and the columns are
re-normalized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.sparse_tensor import SparseTensor
from repro.core.symbolic import SymbolicTTMc
from repro.util.linalg import normalize_columns, random_orthonormal
from repro.util.validation import check_positive_int

__all__ = ["CPResult", "cp_als", "mttkrp"]


@dataclass
class CPResult:
    """A rank-R CP decomposition ``sum_r lambda_r a_r ∘ b_r ∘ c_r ...``."""

    weights: np.ndarray               # (R,)
    factors: List[np.ndarray]         # one (I_n, R) matrix per mode
    fit_history: List[float] = field(default_factory=list)
    iterations: int = 0
    converged: bool = False

    @property
    def rank(self) -> int:
        return int(self.weights.shape[0])

    @property
    def fit(self) -> float:
        return self.fit_history[-1] if self.fit_history else float("nan")

    def reconstruct_entries(self, indices: np.ndarray) -> np.ndarray:
        """Evaluate the CP model at the given coordinates."""
        indices = np.asarray(indices, dtype=np.int64)
        prod = np.ones((indices.shape[0], self.rank), dtype=np.float64)
        for mode, factor in enumerate(self.factors):
            prod *= factor[indices[:, mode]]
        return prod @ self.weights

    def norm(self) -> float:
        """Frobenius norm of the reconstructed tensor (via factor Gramians)."""
        gram = np.outer(self.weights, self.weights)
        for factor in self.factors:
            gram *= factor.T @ factor
        return float(np.sqrt(max(gram.sum(), 0.0)))


def mttkrp(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    mode: int,
    *,
    symbolic: Optional[SymbolicTTMc] = None,
) -> np.ndarray:
    """Sparse matricized-tensor-times-Khatri-Rao-product for ``mode``.

    Returns an ``I_n × R`` matrix whose row ``i`` is
    ``Σ_{x ∈ slice i} x · (⊙_{t≠n} U_t[i_t, :])`` with ⊙ the Hadamard product
    across modes (the Khatri-Rao row).
    """
    rank = factors[0].shape[1]
    out = np.zeros((tensor.shape[mode], rank), dtype=np.float64)
    if tensor.nnz == 0:
        return out
    rows = tensor.indices[:, mode]
    prod = np.ones((tensor.nnz, rank), dtype=np.float64)
    for t, factor in enumerate(factors):
        if t == mode:
            continue
        prod *= factor[tensor.indices[:, t]]
    prod *= tensor.values[:, None]
    np.add.at(out, rows, prod)
    return out


def cp_als(
    tensor: SparseTensor,
    rank: int,
    *,
    max_iterations: int = 25,
    tolerance: float = 1e-6,
    seed: Optional[int] = 0,
) -> CPResult:
    """Rank-``rank`` CP decomposition of a sparse tensor via ALS."""
    rank = check_positive_int(rank, "rank")
    rng = np.random.default_rng(seed)
    factors = [
        random_orthonormal(size, min(rank, size), seed=None if seed is None else seed + n)
        if size >= rank
        else np.abs(rng.standard_normal((size, rank)))
        for n, size in enumerate(tensor.shape)
    ]
    # Pad factors whose mode is smaller than the rank.
    factors = [
        f if f.shape[1] == rank else np.hstack([f, rng.standard_normal((f.shape[0], rank - f.shape[1])) * 1e-2])
        for f in factors
    ]
    weights = np.ones(rank, dtype=np.float64)
    norm_x = tensor.norm()
    fit_history: List[float] = []
    converged = False
    iterations_run = 0

    for iteration in range(max_iterations):
        iterations_run = iteration + 1
        for mode in range(tensor.order):
            m = mttkrp(tensor, factors, mode)
            gram = np.ones((rank, rank), dtype=np.float64)
            for t, factor in enumerate(factors):
                if t == mode:
                    continue
                gram *= factor.T @ factor
            # Solve U_n (gram) = M with a ridge fallback for singular Gramians.
            try:
                solution = np.linalg.solve(gram, m.T).T
            except np.linalg.LinAlgError:
                solution = np.linalg.lstsq(gram, m.T, rcond=None)[0].T
            factors[mode], weights = normalize_columns(solution)

        # Fit: ||X - X̂||² = ||X||² + ||X̂||² - 2 <X, X̂>.
        model = CPResult(weights=weights, factors=[f.copy() for f in factors])
        inner = float(model.reconstruct_entries(tensor.indices) @ tensor.values)
        model_norm_sq = model.norm() ** 2
        residual_sq = max(norm_x**2 + model_norm_sq - 2.0 * inner, 0.0)
        fit = 1.0 - float(np.sqrt(residual_sq)) / norm_x if norm_x else 1.0
        fit_history.append(fit)
        if iteration > 0 and abs(fit_history[-1] - fit_history[-2]) < tolerance:
            converged = True
            break

    return CPResult(
        weights=weights,
        factors=factors,
        fit_history=fit_history,
        iterations=iterations_run,
        converged=converged,
    )
