"""Baseline algorithms the paper compares against or builds on."""

from repro.baselines.met import met_hooi
from repro.baselines.cp_als import CPResult, cp_als, mttkrp
from repro.baselines.dense_hooi import dense_hooi, dense_hosvd, dense_st_hosvd

__all__ = [
    "met_hooi",
    "CPResult",
    "cp_als",
    "mttkrp",
    "dense_hooi",
    "dense_hosvd",
    "dense_st_hosvd",
]
