"""HyperTensor-py: parallel Tucker decomposition of sparse tensors.

A from-scratch Python reproduction of

    Kaya & Uçar, "High Performance Parallel Algorithms for the Tucker
    Decomposition of Sparse Tensors", ICPP 2016.

The public API is re-exported from the subpackages:

* :mod:`repro.core` — sparse tensors, nonzero-based TTMc, symbolic TTMc,
  matrix-free TRSVD, sequential HOOI.
* :mod:`repro.engine` — the unified HOOI driver loop, pluggable execution
  backends, pooled workspaces and the float32/float64 dtype policy.
* :mod:`repro.parallel` — shared-memory (thread) parallel HOOI, Algorithm 3.
* :mod:`repro.partition` — hypergraph models of the TTMc/TRSVD tasks and a
  multilevel partitioner (PaToH substitute), plus random/block partitioners.
* :mod:`repro.simmpi` — simulated MPI: SPMD communicator, collectives,
  communication accounting and the BG/Q-like machine model.
* :mod:`repro.distributed` — coarse- and fine-grain distributed HOOI,
  Algorithm 4, with the communication-avoiding distributed TRSVD.
* :mod:`repro.baselines` — MET-style TTV-chain HOOI, CP-ALS, dense HOOI.
* :mod:`repro.serving` — decomposition-as-a-service: an asyncio job engine
  (queue, cache, cancellation, metrics) over a persistent worker-process
  pool reused across requests.
* :mod:`repro.resilience` — fault tolerance: sweep checkpoint/resume, the
  graceful-degradation ladder + circuit breaker, the retry policy, and the
  deterministic fault-injection harness.
* :mod:`repro.streaming` — incremental tensor ingestion (append-only
  batches with incremental CSF maintenance), warm-started incremental
  HOOI, and out-of-core decomposition over memory-mapped CSF trees.
* :mod:`repro.data` — synthetic tensors (including analogs of the paper's
  four datasets) and FROSTT-style text IO with a chunked reader.
* :mod:`repro.experiments` — the per-table/figure reproduction harness.

:func:`decompose` is the recommended entry point: one keyword-only call
routing every execution model (``sequential`` / ``thread`` / ``process`` /
``distributed``) with options expressed as plain serializable values.
"""

from repro.api import decompose
from repro.core import (
    HOOIOptions,
    HOOIResult,
    SparseTensor,
    TuckerTensor,
    hooi,
    tucker_fit,
)
from repro.engine import HOOIEngine, WorkspacePool
from repro.resilience import CheckpointState, Checkpointer
from repro.serving import DecompositionService
from repro.streaming import DeltaBatch, StreamingSession, StreamingTensor

__version__ = "1.1.0"

__all__ = [
    "SparseTensor",
    "TuckerTensor",
    "HOOIOptions",
    "HOOIResult",
    "HOOIEngine",
    "WorkspacePool",
    "decompose",
    "hooi",
    "tucker_fit",
    "DecompositionService",
    "Checkpointer",
    "CheckpointState",
    "DeltaBatch",
    "StreamingTensor",
    "StreamingSession",
    "__version__",
]
