"""Compiled-kernel tier for the TTMc hot loops.

``HOOIOptions.kernel = "numpy" | "numba"`` is a first-class engine axis:
``"numpy"`` keeps the vectorized kernels every other axis was built on,
``"numba"`` swaps the inner loops of the COO row-block TTMc and the CSF
pullup/pushdown sweeps for fused, JIT-compiled loop bodies (gather +
multiply + accumulate in one pass, no ``reduceat`` temporaries).  The
registry owns availability, lazy compilation and warmup; the loop bodies
live in :mod:`repro.kernels.csf_kernels` / :mod:`repro.kernels.coo_kernels`
and are plain Python, so the numerics are testable without numba installed.
"""

from repro.kernels.registry import (
    KERNEL_TIERS,
    MISSING_DIMTREE_KERNELS,
    KernelTable,
    kernel_available,
    kernel_table,
    missing_dimtree_kernel_message,
    numba_available,
    require_kernel,
    warmup_kernels,
)

__all__ = [
    "KERNEL_TIERS",
    "MISSING_DIMTREE_KERNELS",
    "KernelTable",
    "kernel_available",
    "kernel_table",
    "missing_dimtree_kernel_message",
    "numba_available",
    "require_kernel",
    "warmup_kernels",
]
