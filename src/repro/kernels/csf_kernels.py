"""Fused CSF TTMc loop bodies for the compiled kernel tier.

The NumPy CSF kernels (:mod:`repro.sparse.csf_ttmc`) evaluate each tree
level as *gather → batched Kronecker → segment reduction*: three full passes
over a ``(nodes × width)`` temporary per level, with the ``np.add.reduceat``
pass reading back the entire Kronecker buffer it just wrote.  The functions
here are the same level sweeps written as explicit fiber-extent loops so a
JIT can fuse them: each output row is produced in **one pass** — factor rows
gathered, multiplied into the child's partial product and accumulated into
the parent's row without materializing the per-node contribution matrix.

Every function is written in the njit-compatible subset of Python/NumPy
(scalar loops, no fancy indexing, no allocation besides the caller-provided
buffers) and is valid *interpreted* Python too: the registry
(:mod:`repro.kernels.registry`) compiles them with
``numba.njit(cache=True, nogil=True)`` when numba is importable and can fall
back to the interpreted bodies for testing (``REPRO_KERNEL_FORCE_PYTHON``).
``prange`` degrades to ``range`` both in the interpreter and under
``parallel=False``; the loops over parents/groups are row-disjoint, so the
parallel flag is purely a scheduling choice.

Column conventions match :func:`repro.core.kron.batch_kron_rows`: the
*first* operand varies fastest.  The pullup kron is ``[below, factor]``
(below fastest), the pushdown kron is ``[factor, above]`` (factor fastest),
exactly as the NumPy path composes them — the compiled tier only
reassociates floating-point sums, never reorders columns.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised only where numba is installed
    from numba import prange
except ImportError:  # interpreted fallback: prange behaves like range
    prange = range

__all__ = [
    "csf_pullup_level",
    "csf_target_accumulate",
    "csf_pushdown_level",
    "csf_pushdown_expand",
]


def csf_pullup_level(below, factor, fids, fptr, lo, parent_lo, parent_hi, out):
    """One pullup level, fused: gather + Kronecker + extent accumulation.

    ``below`` holds the partial products of the child level's nodes
    ``[lo, lo + below.shape[0])``; ``fids``/``fptr`` are the child level's
    ``csf.fids[level]`` / ``csf.fptr[level - 1]`` arrays.  Row ``p`` of
    ``out`` (one per parent node in ``[parent_lo, parent_hi)``) receives

        ``Σ_{c ∈ children(p)} kron([below[c - lo], factor[fids[c]]])``

    with ``below`` varying fastest — the same numbers the NumPy path gets
    from ``batch_kron_rows`` + ``np.add.reduceat``, without the
    ``(children × width)`` contribution temporary.
    """
    width_below = below.shape[1]
    rank = factor.shape[1]
    for p in prange(parent_hi - parent_lo):
        row = out[p]
        for j in range(width_below * rank):
            row[j] = 0.0
        for c in range(fptr[parent_lo + p], fptr[parent_lo + p + 1]):
            frow = factor[fids[c]]
            brow = below[c - lo]
            for j in range(rank):
                base = j * width_below
                fj = frow[j]
                for i in range(width_below):
                    row[base + i] += fj * brow[i]
    return out


def csf_target_accumulate(below, above, perm, boundaries, total, out):
    """Deep-target assembly: per-node pullup ⊗ pushdown, summed by row group.

    ``perm``/``boundaries`` come from ``CSFTensor.target_grouping``: group
    ``g`` covers permuted positions ``boundaries[g]:boundaries[g + 1]``
    (``total`` closes the last group).  Row ``g`` of ``out`` receives

        ``Σ_{k ∈ group g} kron([below[perm[k]], above[perm[k]]])``

    with ``below`` varying fastest — fusing the NumPy path's full-width
    ``batch_kron_rows`` buffer and its ``np.add.reduceat`` into one pass.
    """
    width_below = below.shape[1]
    width_above = above.shape[1]
    for g in prange(boundaries.shape[0]):
        start = boundaries[g]
        stop = total if g + 1 == boundaries.shape[0] else boundaries[g + 1]
        row = out[g]
        for j in range(width_below * width_above):
            row[j] = 0.0
        for k in range(start, stop):
            node = perm[k]
            brow = below[node]
            arow = above[node]
            for j in range(width_above):
                base = j * width_below
                aj = arow[j]
                for i in range(width_below):
                    row[base + i] += aj * brow[i]
    return out


def csf_pushdown_level(above, factor, fids, fptr, out):
    """One pushdown level, fused: parent expansion + Kronecker refinement.

    ``above`` holds the ancestor products of the parent level's nodes (full
    level, one row per parent); child ``c`` of parent ``p`` receives
    ``kron([factor[fids[c]], above[p]])`` with the *factor* row varying
    fastest — the NumPy path's ``np.repeat`` + ``batch_kron_rows`` pair in
    one pass, without the expanded parent temporary.
    """
    rank = factor.shape[1]
    width_above = above.shape[1]
    for p in prange(above.shape[0]):
        arow = above[p]
        for c in range(fptr[p], fptr[p + 1]):
            frow = factor[fids[c]]
            crow = out[c]
            for j in range(width_above):
                base = j * rank
                aj = arow[j]
                for i in range(rank):
                    crow[base + i] = aj * frow[i]
    return out


def csf_pushdown_expand(above, fptr, out):
    """Final pushdown expansion: copy each parent row to all its children."""
    width = above.shape[1]
    for p in prange(above.shape[0]):
        arow = above[p]
        for c in range(fptr[p], fptr[p + 1]):
            crow = out[c]
            for j in range(width):
                crow[j] = arow[j]
    return out
