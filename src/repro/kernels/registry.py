"""Kernel-tier registry: availability, lazy JIT compilation, warmup.

``HOOIOptions.kernel`` selects the implementation tier of the TTMc hot
loops:

* ``"numpy"`` — the vectorized NumPy kernels every axis was built on (the
  default; always available);
* ``"numba"`` — the fused loop bodies of :mod:`repro.kernels.csf_kernels`
  and :mod:`repro.kernels.coo_kernels`, JIT-compiled with
  ``numba.njit(cache=True, nogil=True)``.

The registry is the single owner of that choice.  :func:`kernel_table`
returns ``None`` for the numpy tier (callers keep their vectorized path) or
a :class:`KernelTable` of compiled dispatchers for the numba tier —
compiled lazily on first request and cached for the process (numba's
``cache=True`` additionally persists the machine code on disk, so worker
processes and later runs skip recompilation).

Fallback is explicit, not silent: requesting ``kernel="numba"`` without
numba installed raises a :class:`ValueError` naming the fix
(``pip install numba`` — or ``pip install 'repro-hypertensor[kernels]'`` —
or ``kernel="numpy"``).  :meth:`~repro.core.hooi.HOOIOptions.validate`
calls :func:`require_kernel` so the error fires at option validation, before
any tensor work starts.

Two environment hooks, both read per call so tests can monkeypatch them:

* ``REPRO_KERNEL_FORCE_PYTHON=1`` serves the numba tier's *interpreted*
  loop bodies instead of compiling them.  This is a testing hook: it proves
  the compiled tier's numerics (the bodies are the exact code numba
  compiles) on machines without numba, and it propagates through the
  environment to worker processes.  It is orders of magnitude slower than
  either real tier — never use it for performance work.
* ``REPRO_KERNEL_PARALLEL=1`` compiles with ``parallel=True`` so the
  kernels' ``prange`` loops use numba's own thread team.  Off by default:
  the engine already parallelizes over rows/slabs/ranks, and nested thread
  teams oversubscribe; the compiled tier composes with those layers by
  staying single-threaded (but ``nogil``) inside each task.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "KERNEL_TIERS",
    "MISSING_DIMTREE_KERNELS",
    "KernelTable",
    "numba_available",
    "kernel_available",
    "require_kernel",
    "kernel_table",
    "missing_dimtree_kernel_message",
    "warmup_kernels",
]

#: The implementation tiers ``HOOIOptions.kernel`` accepts.
KERNEL_TIERS = ("numpy", "numba")

#: The fused entry points the dimension-tree strategy would need from the
#: compiled tier but which no :class:`KernelTable` provides yet.  Naming them
#: here keeps the ``kernel='numba' × ttmc_strategy='dimtree'`` fail-fast in
#: :meth:`repro.core.hooi.HOOIOptions.validate` honest: the error message
#: (:func:`missing_dimtree_kernel_message`) lists exactly these, so closing
#: the hole means implementing them, adding KernelTable fields, and deleting
#: this constant — not hunting for scattered guard strings.
MISSING_DIMTREE_KERNELS = ("dimtree_edge_update", "dimtree_leaf_gather")

_FORCE_PYTHON_ENV = "REPRO_KERNEL_FORCE_PYTHON"
_PARALLEL_ENV = "REPRO_KERNEL_PARALLEL"

#: Compiled (or interpreted-fallback) tables, keyed by (force_python, parallel).
_TABLES: Dict[Tuple[bool, bool], "KernelTable"] = {}


@dataclass(frozen=True)
class KernelTable:
    """The compiled-tier entry points, resolved once per configuration.

    ``compiled`` is False only under the ``REPRO_KERNEL_FORCE_PYTHON``
    testing hook, where the fields hold the interpreted loop bodies.
    ``make_factor_list`` adapts a Python list of factor arrays to what the
    dispatchers accept (``numba.typed.List`` under JIT, the list itself
    interpreted).
    """

    csf_pullup_level: Callable
    csf_target_accumulate: Callable
    csf_pushdown_level: Callable
    csf_pushdown_expand: Callable
    coo_row_block_ttmc: Callable
    make_factor_list: Callable[[List[np.ndarray]], object]
    compiled: bool


def _force_python() -> bool:
    return os.environ.get(_FORCE_PYTHON_ENV, "").strip() not in ("", "0")


def _parallel() -> bool:
    return os.environ.get(_PARALLEL_ENV, "").strip() not in ("", "0")


def numba_available() -> bool:
    """Whether the numba JIT itself is importable (no env hooks applied)."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def kernel_available(kernel: str) -> bool:
    """Whether a tier can serve requests on this interpreter.

    The numpy tier always can; the numba tier needs numba installed or the
    ``REPRO_KERNEL_FORCE_PYTHON`` testing hook.
    """
    if kernel == "numpy":
        return True
    if kernel == "numba":
        return numba_available() or _force_python()
    return False


def require_kernel(kernel: str) -> str:
    """Validate a tier name *and* its availability; return the name.

    Raises :class:`ValueError` with an actionable message — this is what
    :meth:`repro.core.hooi.HOOIOptions.validate` surfaces when
    ``kernel="numba"`` is requested on an interpreter without numba.
    """
    if kernel not in KERNEL_TIERS:
        raise ValueError(
            f"unknown kernel {kernel!r}: expected one of {KERNEL_TIERS}"
        )
    if not kernel_available(kernel):
        raise ValueError(
            "kernel='numba' requires the numba JIT, which is not installed "
            "in this environment: install it with `pip install numba` (or "
            "`pip install 'repro-hypertensor[kernels]'`), or run with "
            "kernel='numpy' (the default, same numerics — see README "
            "'Choosing a kernel tier')"
        )
    return kernel


def missing_dimtree_kernel_message() -> str:
    """The actionable error for ``kernel='numba' × ttmc_strategy='dimtree'``.

    Kept next to :data:`MISSING_DIMTREE_KERNELS` so the message and the
    list of unimplemented entry points cannot drift apart.
    """
    missing = ", ".join(f"'{name}'" for name in MISSING_DIMTREE_KERNELS)
    return (
        "kernel='numba' does not compose with ttmc_strategy='dimtree': the "
        f"compiled tier is missing the fused dimension-tree kernels {missing} "
        "(repro/kernels/registry.py, MISSING_DIMTREE_KERNELS) — use "
        "kernel='numpy' with the dimtree strategy, or keep the numba tier "
        "with ttmc_strategy='per-mode' (either tensor format).  Note the "
        "REPRO_KERNEL_FORCE_PYTHON=1 hook cannot bridge this hole: it serves "
        "the numba tier's existing loop bodies interpreted, but these "
        "dimension-tree entry points do not exist in any form yet."
    )


def _build_table() -> KernelTable:
    """Compile (or, under the testing hook, interpret) the loop bodies."""
    from repro.kernels import coo_kernels, csf_kernels

    bodies = dict(
        csf_pullup_level=csf_kernels.csf_pullup_level,
        csf_target_accumulate=csf_kernels.csf_target_accumulate,
        csf_pushdown_level=csf_kernels.csf_pushdown_level,
        csf_pushdown_expand=csf_kernels.csf_pushdown_expand,
        coo_row_block_ttmc=coo_kernels.coo_row_block_ttmc,
    )
    if _force_python():
        return KernelTable(
            **bodies, make_factor_list=lambda factors: factors, compiled=False
        )

    import numba

    jit = numba.njit(cache=True, nogil=True, parallel=_parallel())

    def make_factor_list(factors: List[np.ndarray]):
        typed = numba.typed.List()
        for factor in factors:
            typed.append(factor)
        return typed

    return KernelTable(
        **{name: jit(fn) for name, fn in bodies.items()},
        make_factor_list=make_factor_list,
        compiled=True,
    )


def kernel_table(kernel: str) -> Optional[KernelTable]:
    """The dispatch table of a tier: ``None`` for numpy, compiled for numba.

    Compilation is lazy (first request per process) and cached per
    ``(force_python, parallel)`` configuration; numba's own ``cache=True``
    persists the machine code across processes.
    """
    require_kernel(kernel)
    if kernel == "numpy":
        return None
    key = (_force_python(), _parallel())
    table = _TABLES.get(key)
    if table is None:
        table = _TABLES[key] = _build_table()
    return table


def warmup_kernels(kernel: str = "numba", dtype=np.float64) -> Optional[KernelTable]:
    """Trigger (and time-shift) JIT compilation off the measured path.

    Runs every dispatcher once on a tiny synthetic problem so the first
    real sweep pays no compilation latency — call it before benchmarking or
    before a latency-sensitive serving loop.  Returns the warmed table
    (``None`` for the numpy tier, which needs no warmup).
    """
    table = kernel_table(kernel)
    if table is None:
        return None
    dtype = np.dtype(dtype)
    # A 2-level toy tree: 2 roots, 3 children (= nonzeros).
    below = np.asarray([[1.0], [2.0], [3.0]], dtype=dtype)
    factor = np.asarray([[1.0, 2.0], [3.0, 4.0]], dtype=dtype)
    fids = np.asarray([0, 1, 0], dtype=np.int64)
    fptr = np.asarray([0, 2, 3], dtype=np.int64)
    out2 = np.empty((2, 2), dtype=dtype)
    table.csf_pullup_level(below, factor, fids, fptr, 0, 0, 2, out2)
    table.csf_target_accumulate(
        out2,
        np.ones((2, 1), dtype=dtype),
        np.asarray([0, 1], dtype=np.int64),
        np.asarray([0, 1], dtype=np.int64),
        2,
        np.empty((2, 2), dtype=dtype),
    )
    table.csf_pushdown_level(
        np.ones((2, 1), dtype=dtype), factor, fids, fptr,
        np.empty((3, 2), dtype=dtype),
    )
    table.csf_pushdown_expand(out2, fptr, np.empty((3, 2), dtype=dtype))
    indices = np.asarray([[0, 0, 1], [1, 1, 0], [0, 1, 1]], dtype=np.int64)
    values = np.asarray([1.0, 2.0, 3.0], dtype=dtype)
    factors = table.make_factor_list([factor.copy(), factor.copy()])
    table.coo_row_block_ttmc(
        indices,
        values,
        factors,
        np.asarray([1, 2], dtype=np.int64),
        np.asarray([0, 2, 3], dtype=np.int64),
        np.asarray([0, 2, 1], dtype=np.int64),
        np.asarray([0, 1], dtype=np.int64),
        np.zeros((2, 4), dtype=dtype),
    )
    return table
