"""Compiled COO row-block TTMc loop body.

The NumPy COO kernel (:func:`repro.core.ttmc.ttmc_matricized` /
:func:`repro.parallel.shared_ttmc.ttmc_row_block`) expands each block of
nonzeros into a dense ``(block × ∏R)`` Kronecker buffer, scales it by the
values and reduces it with ``np.add.reduceat`` — every nonzero's full-width
row is written to memory once and read back once before it ever reaches the
output.  The loop body here is the same equation (4) accumulation written
per nonzero: the Kronecker row is built *in place* in a width-``∏R``
register-blocked buffer and added straight into the owning output row, so
the full-width temporary never exists.

The outer loop runs over output rows, not nonzeros — each row of ``out`` is
written by exactly one iteration (the paper's lock-free row decomposition),
which keeps the kernel composable with the thread / process / distributed
row-block layers exactly like the NumPy path and makes ``prange`` safe.

``factors`` is a list of the ``N − 1`` non-target factor matrices in
ascending mode order (a ``numba.typed.List`` under JIT, a plain list in the
interpreted fallback — both index and slice identically here); ``cols[t]``
is the tensor mode of ``factors[t]`` inside ``indices``.  The in-place
Kronecker expansion iterates high-to-low so ``buf[j * w + i]`` never
overwrites a ``buf[i]`` it still needs; the first operand (smallest mode)
varies fastest, matching :func:`repro.core.kron.batch_kron_rows`.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import prange
except ImportError:  # interpreted fallback: prange behaves like range
    prange = range

__all__ = ["coo_row_block_ttmc"]


def coo_row_block_ttmc(
    indices, values, factors, cols, rowptr, positions, target_rows, out
):
    """Accumulate TTMc rows ``out[target_rows[r]]`` from grouped nonzeros.

    ``positions[rowptr[r]:rowptr[r + 1]]`` are the nonzero positions of
    output row ``r`` (the symbolic step's update list ``ul_n(i)``);
    ``target_rows[r]`` is the row of ``out`` it owns.  Each owned row is
    zeroed and then accumulated in one pass:

        ``out[target_rows[r]] = Σ_z vals[z] · kron(U_t[indices[z, cols[t]]])``

    with the first factor varying fastest.  Rows of ``out`` outside
    ``target_rows`` are never touched.
    """
    width = out.shape[1]
    num_factors = len(cols)
    for r in prange(target_rows.shape[0]):
        row = out[target_rows[r]]
        for j in range(width):
            row[j] = 0.0
        buf = np.empty(width, dtype=out.dtype)
        for k in range(rowptr[r], rowptr[r + 1]):
            z = positions[k]
            buf[0] = values[z]
            w = 1
            for t in range(num_factors):
                factor = factors[t]
                frow = factor[indices[z, cols[t]]]
                rank = factor.shape[1]
                for j in range(rank - 1, -1, -1):
                    base = j * w
                    fj = frow[j]
                    for i in range(w - 1, -1, -1):
                        buf[base + i] = fj * buf[i]
                w *= rank
            for j in range(width):
                row[j] += buf[j]
    return out
