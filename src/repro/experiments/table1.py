"""Table I — properties of the tensors used in the experiments.

The paper's Table I lists the mode sizes and nonzero counts of Netflix, NELL,
Delicious and Flickr; the reproduction reports, for each dataset, the paper's
numbers next to the synthetic analog actually generated at the configured
scale (including the realized nonzero count after duplicate merging).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.data.datasets import PAPER_DATASETS
from repro.experiments.harness import DATASET_ORDER, ExperimentContext, format_table

__all__ = ["run_table1", "render_table1"]


def run_table1(context: Optional[ExperimentContext] = None) -> List[Dict[str, object]]:
    """Generate each analog and collect the Table I rows."""
    context = context or ExperimentContext()
    rows: List[Dict[str, object]] = []
    for key in DATASET_ORDER:
        spec = PAPER_DATASETS[key]
        tensor = context.tensor(key)
        rows.append(
            {
                "dataset": spec.name,
                "paper_shape": spec.shape,
                "paper_nnz": spec.nnz,
                "analog_shape": tensor.shape,
                "analog_nnz": tensor.nnz,
                "order": tensor.order,
                "scale": context.scale,
            }
        )
    return rows


def render_table1(rows: List[Dict[str, object]]) -> str:
    headers = ["Tensor", "Paper shape", "Paper #nnz", "Analog shape", "Analog #nnz"]
    body = [
        [
            str(row["dataset"]),
            "x".join(str(s) for s in row["paper_shape"]),
            f"{row['paper_nnz']:,}",
            "x".join(str(s) for s in row["analog_shape"]),
            f"{row['analog_nnz']:,}",
        ]
        for row in rows
    ]
    return format_table(headers, body, title="Table I: tensors used in the experiments")
