"""Table III — per-mode computation and communication statistics (Flickr).

The paper's Table III reports, for the Flickr tensor partitioned 256 ways with
each of the four methods, the maximum and average per-process values of:

* ``W_TTMc`` — Kronecker contributions computed in the mode's TTMc;
* ``W_TRSVD`` — rows of ``Y_(n)`` multiplied in the TRSVD's MxV/MTxV;
* the communication volume of the mode (factor rows plus, for fine-grain
  partitions, the folded/scattered TRSVD vector entries).

Those quantities depend only on the partition (not on the hardware), so the
reproduction computes them exactly from the distribution plans.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.distributed.performance import collect_partition_statistics
from repro.experiments.harness import STRATEGIES, ExperimentContext, format_table

__all__ = ["run_table3", "render_table3"]


def run_table3(
    context: Optional[ExperimentContext] = None,
    *,
    dataset: str = "flickr",
    num_parts: int = 16,
    strategies: Sequence[str] = STRATEGIES,
    trsvd_solver_iterations: int = 1,
) -> Dict[str, List[Dict[str, float]]]:
    """Per-strategy, per-mode max/avg statistics: ``result[strategy][mode]``."""
    context = context or ExperimentContext()
    tensor = context.tensor(dataset)
    ranks = context.ranks(dataset)
    result: Dict[str, List[Dict[str, float]]] = {}
    for strategy in strategies:
        partition = context.partition(dataset, strategy, num_parts)
        stats = collect_partition_statistics(
            tensor, partition, ranks,
            trsvd_solver_iterations=trsvd_solver_iterations,
        )
        rows = []
        for mode_stats in stats.modes:
            rows.append(
                {
                    "mode": mode_stats.mode + 1,
                    "wttmc_max": float(mode_stats.ttmc_work.max()),
                    "wttmc_avg": float(mode_stats.ttmc_work.mean()),
                    "wtrsvd_max": float(mode_stats.trsvd_rows.max()),
                    "wtrsvd_avg": float(mode_stats.trsvd_rows.mean()),
                    "comm_max": float(mode_stats.comm_volume.max()),
                    "comm_avg": float(mode_stats.comm_volume.mean()),
                }
            )
        result[strategy] = rows
    return result


def render_table3(result: Dict[str, List[Dict[str, float]]],
                  *, dataset: str = "flickr", num_parts: int = 16) -> str:
    headers = ["Mode", "WTTMc max", "WTTMc avg", "WTRSVD max", "WTRSVD avg",
               "Comm max", "Comm avg"]
    blocks = []
    for strategy, rows in result.items():
        body = [
            [
                str(row["mode"]),
                row["wttmc_max"],
                row["wttmc_avg"],
                row["wtrsvd_max"],
                row["wtrsvd_avg"],
                row["comm_max"],
                row["comm_avg"],
            ]
            for row in rows
        ]
        blocks.append(
            format_table(
                headers,
                body,
                title=(
                    f"Table III ({dataset}, {num_parts} ranks, {strategy}): "
                    "computation / communication per mode"
                ),
            )
        )
    return "\n\n".join(blocks)
