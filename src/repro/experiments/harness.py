"""Shared experiment infrastructure: caching, table rendering, result records.

Each ``tableN`` module produces plain dictionaries/lists so the benchmarks can
assert on them and EXPERIMENTS.md can embed them; the helpers here render them
as aligned text tables in the same layout as the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.sparse_tensor import SparseTensor
from repro.data.datasets import make_dataset
from repro.experiments.calibration import DEFAULT_DATASET_SCALE, paper_ranks
from repro.partition.strategies import TensorPartition, make_partition

__all__ = [
    "ExperimentContext",
    "format_table",
    "format_float",
    "STRATEGIES",
    "DATASET_ORDER",
]

#: Partitioning strategies in the order the paper's tables list them.
STRATEGIES: Tuple[str, ...] = ("fine-hp", "fine-rd", "coarse-hp", "coarse-bl")

#: Dataset order used by the paper's tables.
DATASET_ORDER: Tuple[str, ...] = ("delicious", "flickr", "nell", "netflix")


@dataclass
class ExperimentContext:
    """Caches datasets and partitions so a benchmark session reuses them.

    The hypergraph partitioner is by far the most expensive preprocessing
    step (as in the paper, where PaToH partitions are produced offline); the
    context mirrors that by computing each (dataset, strategy, P) partition at
    most once.
    """

    scale: float = DEFAULT_DATASET_SCALE
    seed: int = 0
    _tensors: Dict[str, SparseTensor] = field(default_factory=dict)
    _partitions: Dict[Tuple[str, str, int], TensorPartition] = field(default_factory=dict)

    def tensor(self, dataset: str) -> SparseTensor:
        key = dataset.lower()
        if key not in self._tensors:
            self._tensors[key] = make_dataset(key, scale=self.scale, seed=self.seed)
        return self._tensors[key]

    def ranks(self, dataset: str) -> Tuple[int, ...]:
        return paper_ranks(self.tensor(dataset).order)

    def partition(self, dataset: str, strategy: str, num_parts: int) -> TensorPartition:
        key = (dataset.lower(), strategy, int(num_parts))
        if key not in self._partitions:
            self._partitions[key] = make_partition(
                self.tensor(dataset),
                num_parts,
                strategy,
                seed=self.seed,
                ranks=self.ranks(dataset),
            )
        return self._partitions[key]


def format_float(value: float) -> str:
    """Human-friendly numeric formatting for table cells."""
    if value is None or (isinstance(value, float) and np.isnan(value)):
        return "-"
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e6:
        return f"{value / 1e6:.1f}M"
    if magnitude >= 1e4:
        return f"{value / 1e3:.0f}K"
    if magnitude >= 100:
        return f"{value:.0f}"
    if magnitude >= 1:
        return f"{value:.2f}"
    return f"{value:.4f}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render an aligned, pipe-separated text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered_rows.append(
            [cell if isinstance(cell, str) else format_float(float(cell)) if cell is not None else "-"
             for cell in row]
        )
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
