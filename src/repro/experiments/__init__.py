"""Reproduction harness: one module per table/figure of the paper's evaluation."""

from repro.experiments.calibration import (
    DEFAULT_DATASET_SCALE,
    DEFAULT_NODE_COUNTS,
    DEFAULT_THREAD_COUNTS,
    EXPERIMENT_MACHINE,
    EXPERIMENT_NODE,
    paper_ranks,
)
from repro.experiments.harness import (
    DATASET_ORDER,
    STRATEGIES,
    ExperimentContext,
    format_float,
    format_table,
)
from repro.experiments.table1 import render_table1, run_table1
from repro.experiments.table2 import render_table2, run_table2
from repro.experiments.table3 import render_table3, run_table3
from repro.experiments.table4 import render_table4, run_table4
from repro.experiments.table5 import (
    render_table5,
    render_table5_hybrid,
    run_table5,
    run_table5_hybrid,
)
from repro.experiments.met_compare import (
    MetComparison,
    render_met_comparison,
    run_met_comparison,
)

__all__ = [
    "DEFAULT_DATASET_SCALE",
    "DEFAULT_NODE_COUNTS",
    "DEFAULT_THREAD_COUNTS",
    "EXPERIMENT_MACHINE",
    "EXPERIMENT_NODE",
    "paper_ranks",
    "DATASET_ORDER",
    "STRATEGIES",
    "ExperimentContext",
    "format_float",
    "format_table",
    "render_table1",
    "run_table1",
    "render_table2",
    "run_table2",
    "render_table3",
    "run_table3",
    "render_table4",
    "run_table4",
    "render_table5",
    "run_table5",
    "render_table5_hybrid",
    "run_table5_hybrid",
    "MetComparison",
    "render_met_comparison",
    "run_met_comparison",
]
