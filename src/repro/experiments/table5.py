"""Table V — shared-memory thread scaling.

The paper varies the number of OpenMP threads from 1 to 32 on the minimum
number of nodes each tensor fits in and reports the time per HOOI iteration;
the observed pattern is that the latency-bound tensors (Netflix, NELL) scale
much better than the ones dominated by the bandwidth-bound TRSVD of a huge
mode (Delicious, Flickr), with Netflix even super-linear thanks to the 2
hardware threads per core.

The reproduction reports two curves per dataset:

* **modelled** — the node roofline model applied to the analog's work profile
  for 1..32 threads (this is what reproduces the BlueGene/Q shape);
* **measured** — wall-clock seconds per iteration of the actual thread-parallel
  HOOI on the analog (Python threads; the absolute speedups are limited by the
  GIL for the non-BLAS parts, so these are reported for completeness, not as
  the headline numbers).

The paper's headline Table V configuration is *hybrid*: MPI ranks each
running a multithreaded TTMc.  :func:`run_table5_hybrid` runs that for real —
the simulated-MPI distributed driver with ``execution="thread"`` ranks — and
reports the machine-model iteration time per (ranks × threads) point, so the
thread-scaling shape comes out of the actual SPMD program (communication
included) instead of the analytic single-node model alone.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.hooi import HOOIOptions
from repro.distributed.dist_hooi import distributed_hooi
from repro.experiments.calibration import (
    DEFAULT_THREAD_COUNTS,
    scaled_machine,
    scaled_node,
)
from repro.experiments.harness import DATASET_ORDER, ExperimentContext, format_table
from repro.parallel.model import NodeModel
from repro.parallel.parallel_for import ParallelConfig
from repro.parallel.shared_hooi import predict_iteration_time, shared_hooi

__all__ = [
    "run_table5",
    "render_table5",
    "run_table5_hybrid",
    "render_table5_hybrid",
]


def run_table5(
    context: Optional[ExperimentContext] = None,
    *,
    datasets: Sequence[str] = DATASET_ORDER,
    thread_counts: Sequence[int] = DEFAULT_THREAD_COUNTS,
    node_model: Optional[NodeModel] = None,
    measure: bool = True,
    measured_thread_counts: Sequence[int] = (1, 2, 4),
    iterations: int = 2,
    seed: int = 0,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Thread-scaling results: ``result[dataset]['modelled'|'measured'][threads]``."""
    context = context or ExperimentContext()
    if node_model is None:
        node_model = scaled_node(context.scale)
    result: Dict[str, Dict[str, Dict[int, float]]] = {}
    for dataset in datasets:
        tensor = context.tensor(dataset)
        ranks = context.ranks(dataset)
        modelled = {
            threads: predict_iteration_time(
                tensor, ranks, threads, node_model=node_model
            )
            for threads in thread_counts
        }
        measured: Dict[int, float] = {}
        if measure:
            for threads in measured_thread_counts:
                report = shared_hooi(
                    tensor,
                    ranks,
                    HOOIOptions(max_iterations=iterations, init="random", seed=seed),
                    config=ParallelConfig(num_threads=threads),
                    node_model=node_model,
                )
                measured[threads] = report.measured_seconds_per_iteration
        result[dataset] = {"modelled": modelled, "measured": measured}
    return result


def run_table5_hybrid(
    context: Optional[ExperimentContext] = None,
    *,
    datasets: Sequence[str] = ("netflix", "nell"),
    strategy: str = "fine-hp",
    rank_counts: Sequence[int] = (2, 4),
    thread_counts: Sequence[int] = (1, 4, 16),
    ttmc_strategy: str = "per-mode",
    iterations: int = 2,
    seed: int = 0,
    machine=None,
) -> Dict[str, Dict[Tuple[int, int], Dict[str, float]]]:
    """Hybrid (MPI ranks × threads per rank) Table V points, run for real.

    Every (``P`` ranks, ``T`` threads) point executes the distributed HOOI
    with ``HOOIOptions(execution="thread", num_workers=T)`` — each simulated
    rank runs the row-disjoint threaded TTMc over its own update lists, and
    the machine model charges the rank's compute phases at ``T`` threads.
    Returns ``result[dataset][(P, T)]`` with the simulated seconds per
    iteration (the Table V quantity), the measured wall seconds, and the
    final fit (identical across ``T`` by construction — execution strategy
    only changes local compute).
    """
    context = context or ExperimentContext()
    if machine is None:
        machine = scaled_machine(context.scale)
    result: Dict[str, Dict[Tuple[int, int], Dict[str, float]]] = {}
    for dataset in datasets:
        tensor = context.tensor(dataset)
        ranks = context.ranks(dataset)
        points: Dict[Tuple[int, int], Dict[str, float]] = {}
        for num_ranks in rank_counts:
            partition = context.partition(dataset, strategy, num_ranks)
            for threads in thread_counts:
                run = distributed_hooi(
                    tensor,
                    ranks,
                    partition,
                    HOOIOptions(
                        max_iterations=iterations,
                        init="random",
                        seed=seed,
                        execution="thread",
                        num_workers=threads,
                        ttmc_strategy=ttmc_strategy,
                    ),
                    machine=machine,
                )
                points[(num_ranks, threads)] = {
                    "simulated": run.simulated_time_per_iteration,
                    "measured": run.wall_time_per_iteration,
                    "fit": run.fit,
                }
        result[dataset] = points
    return result


def render_table5_hybrid(
    result: Dict[str, Dict[Tuple[int, int], Dict[str, float]]],
) -> str:
    datasets = list(result.keys())
    points = sorted(next(iter(result.values())).keys())
    headers = ["ranks x threads"] + [d.capitalize() for d in datasets]
    rows = []
    for num_ranks, threads in points:
        rows.append(
            [f"{num_ranks} x {threads}"]
            + [result[d][(num_ranks, threads)]["simulated"] for d in datasets]
        )
    return format_table(
        headers, rows,
        title="Table V (hybrid, simulated): seconds per HOOI iteration",
    )


def render_table5(result: Dict[str, Dict[str, Dict[int, float]]]) -> str:
    datasets = list(result.keys())
    thread_counts = sorted(next(iter(result.values()))["modelled"].keys())
    headers = ["#threads"] + [d.capitalize() for d in datasets]
    rows = []
    for threads in thread_counts:
        rows.append([str(threads)] + [result[d]["modelled"][threads] for d in datasets])
    modelled = format_table(
        headers, rows,
        title="Table V (modelled): seconds per HOOI iteration vs threads",
    )
    speedup_rows = []
    for threads in thread_counts:
        speedup_rows.append(
            [str(threads)]
            + [
                result[d]["modelled"][thread_counts[0]] / result[d]["modelled"][threads]
                for d in datasets
            ]
        )
    speedups = format_table(
        headers, speedup_rows,
        title="Table V (modelled): speedup over 1 thread",
    )
    blocks = [modelled, speedups]
    if any(result[d]["measured"] for d in datasets):
        measured_counts = sorted(
            {t for d in datasets for t in result[d]["measured"]}
        )
        measured_rows = []
        for threads in measured_counts:
            measured_rows.append(
                [str(threads)]
                + [result[d]["measured"].get(threads, float("nan")) for d in datasets]
            )
        blocks.append(
            format_table(
                headers, measured_rows,
                title="Table V (measured, Python threads): seconds per iteration",
            )
        )
    return "\n\n".join(blocks)
