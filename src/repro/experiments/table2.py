"""Table II — distributed strong scaling (time per HOOI iteration).

The paper reports the average time per HOOI iteration of the four
partitioning configurations (fine-hp, fine-rd, coarse-hp, coarse-bl) on 1-256
BlueGene/Q nodes.  The reproduction computes, for every (dataset, strategy,
node count), the per-rank work and communication volumes implied by the
partition and pushes them through the calibrated machine model
(:func:`repro.distributed.performance.estimate_iteration_time`).  On small
rank counts the full SPMD simulation can be run instead (and is, in the tests)
— both paths share the same plans, so they agree on the work/volume numbers.

The qualitative expectations (see DESIGN.md) are: fine-hp scales best and is
roughly twice as fast as fine-rd on the 4-mode tensors; the coarse variants
trail behind due to TTMc load imbalance; NELL is the outlier where fine-rd
can beat fine-hp.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.distributed.performance import (
    collect_partition_statistics,
    estimate_iteration_time,
)
from repro.experiments.calibration import DEFAULT_NODE_COUNTS, scaled_machine
from repro.experiments.harness import (
    DATASET_ORDER,
    STRATEGIES,
    ExperimentContext,
    format_table,
)
from repro.simmpi.machine import MachineModel

__all__ = ["run_table2", "render_table2"]


def run_table2(
    context: Optional[ExperimentContext] = None,
    *,
    datasets: Sequence[str] = DATASET_ORDER,
    strategies: Sequence[str] = STRATEGIES,
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    machine: Optional[MachineModel] = None,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Modelled seconds per HOOI iteration: ``result[dataset][strategy][P]``.

    ``machine`` defaults to the scale-matched machine model (see
    :func:`repro.experiments.calibration.scaled_machine`), so one modelled
    second corresponds to one second of the paper's full-size run.
    """
    context = context or ExperimentContext()
    if machine is None:
        machine = scaled_machine(context.scale)
    result: Dict[str, Dict[str, Dict[int, float]]] = {}
    for dataset in datasets:
        tensor = context.tensor(dataset)
        ranks = context.ranks(dataset)
        result[dataset] = {}
        for strategy in strategies:
            per_p: Dict[int, float] = {}
            for num_parts in node_counts:
                partition = context.partition(dataset, strategy, num_parts)
                stats = collect_partition_statistics(tensor, partition, ranks)
                per_p[num_parts] = estimate_iteration_time(
                    tensor, partition, ranks, machine=machine, statistics=stats
                )
            result[dataset][strategy] = per_p
    return result


def render_table2(result: Dict[str, Dict[str, Dict[int, float]]]) -> str:
    """Render the scaling table, one block per dataset (as in the paper)."""
    blocks: List[str] = []
    for dataset, per_strategy in result.items():
        node_counts = sorted(next(iter(per_strategy.values())).keys())
        headers = ["#ranks"] + list(per_strategy.keys())
        rows = []
        for p in node_counts:
            rows.append([str(p)] + [per_strategy[s][p] for s in per_strategy])
        blocks.append(
            format_table(
                headers,
                rows,
                title=f"Table II ({dataset}): modelled seconds per HOOI iteration",
            )
        )
    return "\n\n".join(blocks)
