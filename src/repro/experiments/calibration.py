"""Experiment-wide calibration constants.

Everything that maps the laptop-scale reproduction onto the paper's setup is
collected here so EXPERIMENTS.md can point at a single source of truth:

* the machine model constants (BlueGene/Q-like node + network);
* the default dataset scale factors (how much the synthetic analogs shrink the
  paper's tensors);
* the decomposition ranks used throughout (the paper's choices: rank 10 per
  mode for 3-mode tensors, rank 5 per mode for 4-mode tensors);
* the rank (node) counts of the strong-scaling sweep.
"""

from __future__ import annotations

from typing import Tuple

from repro.parallel.model import NodeModel
from repro.simmpi.machine import MachineModel

__all__ = [
    "EXPERIMENT_NODE",
    "EXPERIMENT_MACHINE",
    "paper_ranks",
    "DEFAULT_DATASET_SCALE",
    "DEFAULT_NODE_COUNTS",
    "DEFAULT_THREAD_COUNTS",
    "scaled_node",
    "scaled_machine",
]

#: Node model used by every experiment (see repro.parallel.model.NodeModel for
#: the meaning of each constant).  Values approximate a BlueGene/Q node: 16
#: in-order cores at 1.6 GHz with 2 useful hardware threads each, ~28 GB/s of
#: memory bandwidth and ~85 ns irregular-access latency.
EXPERIMENT_NODE = NodeModel(
    cores=16,
    smt=2,
    flops_per_core=1.6e9,
    memory_bandwidth=28e9,
    # Effective cost of one irregular access in the TTMc gather/scatter.  This
    # is deliberately larger than a raw DRAM latency: on the in-order PowerPC
    # A2 every miss also stalls the dependent Kronecker/accumulate chain, and
    # the paper's single-thread per-nonzero TTMc cost (Table V) implies an
    # effective ~0.5 µs per touched cache line.  Documented in EXPERIMENTS.md.
    memory_latency=500e-9,
    latency_overlap_per_thread=1.0,
    thread_overhead=5e-6,
)

#: Cluster model: the node above plus a torus-like network (α = 3 µs,
#: ~1.8 GB/s per-link bandwidth), 32 threads per MPI rank as in the paper.
EXPERIMENT_MACHINE = MachineModel(
    node=EXPERIMENT_NODE,
    threads_per_rank=32,
    network_latency=3.0e-6,
    network_bandwidth=1.8e9,
)

#: Default scale factor of the synthetic dataset analogs (fraction of the
#: paper's nonzero count / mode sizes).  1e-3 keeps the shapes of Table I at
#: roughly 80K-140K nonzeros, which a laptop handles comfortably.
DEFAULT_DATASET_SCALE: float = 1e-3

#: MPI-rank counts of the strong-scaling sweep (the paper uses 1..256 nodes).
DEFAULT_NODE_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Thread counts of the shared-memory sweep (the paper's Table V).
DEFAULT_THREAD_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)


def paper_ranks(order: int) -> Tuple[int, ...]:
    """The paper's decomposition ranks: 10 per mode for 3-mode tensors, 5 for 4-mode."""
    if order == 3:
        return (10, 10, 10)
    if order == 4:
        return (5, 5, 5, 5)
    return tuple([5] * order)


def scaled_node(scale: float = DEFAULT_DATASET_SCALE) -> NodeModel:
    """Node model matched to the dataset scale factor.

    The synthetic analogs shrink the paper's tensors by ``scale``; to keep the
    *ratio* of computation to communication (and therefore the shape of the
    scaling curves) at the paper's operating point, the modelled machine is
    slowed down by the same factor: per-core flop rate and memory bandwidth
    are multiplied by ``scale`` while the latencies — which do not depend on
    the data volume — stay untouched.  Equivalently, one simulated second on
    this machine corresponds to one real second of the paper's BlueGene/Q on
    the full-size tensor.
    """
    return EXPERIMENT_NODE.with_overrides(
        flops_per_core=EXPERIMENT_NODE.flops_per_core * scale,
        memory_bandwidth=EXPERIMENT_NODE.memory_bandwidth * scale,
        # The latency charge is per irregular access, i.e. per unit of work,
        # so it scales inversely with the workload size like the other
        # throughput constants (the per-message network latency does not).
        memory_latency=EXPERIMENT_NODE.memory_latency / scale,
    )


def scaled_machine(scale: float = DEFAULT_DATASET_SCALE) -> MachineModel:
    """Cluster model matched to the dataset scale factor (see :func:`scaled_node`)."""
    return EXPERIMENT_MACHINE.with_overrides(
        node=scaled_node(scale),
        network_bandwidth=EXPERIMENT_MACHINE.network_bandwidth * scale,
    )
