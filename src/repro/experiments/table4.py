"""Table IV — relative time of TTMc, TRSVD and core-tensor steps.

The paper reports, for the 256-way fine-hp configuration, the percentage of
each HOOI iteration spent in the TTMc, the TRSVD (including its
communication), and the core-tensor formation.  The reproduction runs the
actual SPMD simulation with the fine-hp partition on each dataset analog and
reads the simulated per-phase time breakdown; the expected shape is that TTMc
dominates for Delicious/Flickr/NELL while TRSVD+comm dominates for Netflix
(whose large first mode makes the dense MxV/MTxV the bottleneck).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.hooi import HOOIOptions
from repro.distributed.dist_hooi import distributed_hooi
from repro.experiments.calibration import scaled_machine
from repro.experiments.harness import DATASET_ORDER, ExperimentContext, format_table
from repro.simmpi.machine import MachineModel

__all__ = ["run_table4", "render_table4"]


def run_table4(
    context: Optional[ExperimentContext] = None,
    *,
    datasets: Sequence[str] = DATASET_ORDER,
    strategy: str = "fine-hp",
    num_parts: int = 8,
    iterations: int = 2,
    machine: Optional[MachineModel] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Per-dataset percentage of simulated time per phase: ``result[dataset][phase]``."""
    context = context or ExperimentContext()
    if machine is None:
        machine = scaled_machine(context.scale)
    result: Dict[str, Dict[str, float]] = {}
    for dataset in datasets:
        tensor = context.tensor(dataset)
        ranks = context.ranks(dataset)
        partition = context.partition(dataset, strategy, num_parts)
        run = distributed_hooi(
            tensor,
            ranks,
            partition,
            HOOIOptions(max_iterations=iterations, init="random", seed=seed),
            machine=machine,
        )
        fractions = run.phase_fractions()
        result[dataset] = {
            "ttmc": 100.0 * fractions.get("ttmc", 0.0),
            "trsvd+comm": 100.0 * fractions.get("trsvd", 0.0),
            "core+comm": 100.0 * fractions.get("core", 0.0),
        }
    return result


def render_table4(result: Dict[str, Dict[str, float]]) -> str:
    datasets = list(result.keys())
    headers = ["Step"] + [d.capitalize() for d in datasets]
    steps = ["ttmc", "trsvd+comm", "core+comm"]
    rows = [
        [step.upper() if step == "ttmc" else step]
        + [result[d][step] for d in datasets]
        for step in steps
    ]
    return format_table(
        headers,
        rows,
        title="Table IV: relative timings (%) of TTMc / TRSVD / core within HOOI",
    )
