"""Single-core comparison against the MET-style baseline (Section V, in-text).

The paper reports that five HOOI iterations on a random 10K×10K×10K tensor
with 1M nonzeros take 87.2 s with MET and 11.3 s with the paper's code on a
single core.  The reproduction runs the same experiment at a configurable
scale: the library's symbolic + nonzero-based HOOI versus the TTM-chain MET
baseline on the identical random tensor, identical initialization and TRSVD,
so the measured ratio isolates the TTMc evaluation strategy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.baselines.met import met_hooi
from repro.core.hooi import HOOIOptions, hooi
from repro.data.synthetic import random_sparse_tensor
from repro.experiments.harness import format_table

__all__ = ["MetComparison", "run_met_comparison", "render_met_comparison"]


@dataclass
class MetComparison:
    """Timing comparison of the nonzero-based HOOI and the MET baseline."""

    shape: Tuple[int, ...]
    nnz: int
    iterations: int
    hypertensor_seconds: float
    met_seconds: float
    fits_match: bool
    paper_hypertensor_seconds: float = 11.3
    paper_met_seconds: float = 87.2

    @property
    def speedup(self) -> float:
        return self.met_seconds / self.hypertensor_seconds if self.hypertensor_seconds else float("nan")

    @property
    def paper_speedup(self) -> float:
        return self.paper_met_seconds / self.paper_hypertensor_seconds


def run_met_comparison(
    *,
    shape: Sequence[int] = (1000, 1000, 1000),
    nnz: int = 100_000,
    ranks: Sequence[int] | int = 10,
    iterations: int = 5,
    seed: int = 0,
) -> MetComparison:
    """Run both codes on the same random tensor and time them (single thread)."""
    tensor = random_sparse_tensor(shape, nnz, seed=seed)
    options = HOOIOptions(max_iterations=iterations, init="random", seed=seed,
                          tolerance=0.0)
    start = time.perf_counter()
    ours = hooi(tensor, ranks, options)
    ours_seconds = time.perf_counter() - start
    start = time.perf_counter()
    met = met_hooi(tensor, ranks, options)
    met_seconds = time.perf_counter() - start
    return MetComparison(
        shape=tuple(tensor.shape),
        nnz=tensor.nnz,
        iterations=iterations,
        hypertensor_seconds=ours_seconds,
        met_seconds=met_seconds,
        fits_match=bool(np.allclose(ours.fit_history, met.fit_history, atol=1e-8)),
    )


def render_met_comparison(result: MetComparison) -> str:
    headers = ["Code", "Paper (10K^3, 1M nnz)", f"Reproduction {result.shape}, {result.nnz} nnz"]
    rows = [
        ["MET (TTM-chain)", f"{result.paper_met_seconds:.1f} s", f"{result.met_seconds:.2f} s"],
        ["HyperTensor (nonzero-based)", f"{result.paper_hypertensor_seconds:.1f} s",
         f"{result.hypertensor_seconds:.2f} s"],
        ["Speedup", f"{result.paper_speedup:.1f}x", f"{result.speedup:.1f}x"],
    ]
    return format_table(
        headers, rows, title="Single-core MET comparison (5 HOOI iterations)"
    )
