"""The unified HOOI execution engine.

One driver loop (:class:`~repro.engine.driver.HOOIEngine`), pluggable
execution backends (:mod:`repro.engine.backend`), pooled workspaces
(:mod:`repro.engine.workspace`) and the ``float32``/``float64`` dtype policy
shared by the sequential, shared-memory and distributed HOOI drivers.
"""

from repro.engine.backend import (
    CSFBackend,
    ExecutionBackend,
    ProcessBackend,
    SequentialBackend,
    ThreadedBackend,
    ThreadedCSFBackend,
    parallel_symbolic,
    trsvd_kwargs,
)
from repro.engine.dimtree import (
    DimensionTree,
    DimTreeBackend,
    DimTreeNode,
    ProcessDimTreeBackend,
    ThreadedDimTreeBackend,
    resolve_ttmc_backend,
)
from repro.engine.driver import HOOIEngine, hooi_fit
from repro.engine.workspace import WorkspacePool

__all__ = [
    "ExecutionBackend",
    "SequentialBackend",
    "ThreadedBackend",
    "ProcessBackend",
    "CSFBackend",
    "ThreadedCSFBackend",
    "parallel_symbolic",
    "trsvd_kwargs",
    "DimensionTree",
    "DimTreeBackend",
    "DimTreeNode",
    "ThreadedDimTreeBackend",
    "ProcessDimTreeBackend",
    "resolve_ttmc_backend",
    "HOOIEngine",
    "hooi_fit",
    "WorkspacePool",
]
