"""Pooled workspaces for the HOOI engine.

Every HOOI iteration recomputes, for each mode ``n``, the matricized TTMc
result ``Y_(n)`` — an ``(I_n × ∏_{t≠n} R_t)`` dense matrix — plus a stack of
Kronecker block scratch buffers of the same width.  The shapes repeat
identically across iterations (and often across modes), so allocating them
fresh every time wastes allocator work and memory bandwidth on the hottest,
latency-bound phase.  :class:`WorkspacePool` keeps one buffer per distinct
``(shape, dtype)`` and hands the same memory back on every request.

The pool is deliberately simple: it is *not* a checkout/return arena.  The
engine's execution order guarantees that a buffer's previous content is dead
by the time the same key is requested again (a mode's ``Y_(n)`` is consumed
by the TRSVD before the next mode with the same shape runs, and the last
mode's ``Y_(N)`` is folded into the core before the next iteration starts),
which is exactly the reuse pattern a ring of per-key buffers supports.

The pool is not thread-safe; concurrent workers must either use their own
pool or allocate directly (the threaded TTMc keeps its per-worker scratch
private for this reason).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = ["WorkspacePool"]


class WorkspacePool:
    """A keyed pool of reusable ndarray buffers.

    Buffers are keyed by ``(tag, shape, dtype)``; the first request for a key
    allocates, every later request returns the same array.  The ``tag``
    separates buffer *roles* that may be live at the same time — e.g. a TTMc
    output and the Kronecker scratch written while accumulating into it can
    coincidentally share a shape, and must never share memory.  The instance
    counts allocations and reuses so benchmarks (and tests) can verify that a
    steady-state HOOI iteration performs zero pool allocations.
    """

    def __init__(self) -> None:
        self._buffers: Dict[
            Tuple[str, Tuple[int, ...], np.dtype], np.ndarray
        ] = {}
        self.allocations = 0
        self.reuses = 0

    def take(self, shape, dtype=np.float64, *, tag: str = "") -> np.ndarray:
        """Return a buffer of the given shape/dtype (contents unspecified).

        Callers whose buffer must stay live while other pool buffers of the
        same shape are written (an accumulation target, for instance) must
        pass a distinct ``tag``.
        """
        key = (tag, tuple(int(s) for s in shape), np.dtype(dtype))
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = np.empty(key[1], dtype=key[2])
            self._buffers[key] = buffer
            self.allocations += 1
        else:
            self.reuses += 1
        return buffer

    def zeros(self, shape, dtype=np.float64, *, tag: str = "") -> np.ndarray:
        """Like :meth:`take` but the returned buffer is zero-filled."""
        buffer = self.take(shape, dtype, tag=tag)
        buffer[...] = 0
        return buffer

    @property
    def num_buffers(self) -> int:
        return len(self._buffers)

    def nbytes(self) -> int:
        """Total bytes currently held by the pool."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self) -> None:
        """Drop every pooled buffer (counters are kept)."""
        self._buffers.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkspacePool(buffers={self.num_buffers}, "
            f"bytes={self.nbytes()}, allocations={self.allocations}, "
            f"reuses={self.reuses})"
        )
