"""Execution backends for the unified HOOI engine.

The engine (:mod:`repro.engine.driver`) owns the *iteration state machine* —
init, symbolic reuse, the per-mode sweep, core formation, fit tracking and
convergence.  What varies between the sequential, shared-memory and
distributed drivers is only *how* the three heavy steps are executed:

* the numeric TTMc of a mode (``compute_ttmc``),
* the truncated SVD refreshing that mode's factor (``update_factor``),
* the core-tensor formation from the last mode's TTMc (``form_core``),

plus where the tensor norm comes from and how the initial factors are
produced.  :class:`ExecutionBackend` is that seam.  The engine calls the
hooks in a fixed order; backends may keep per-run state (symbolic data,
communicators, clocks) between calls.

Call order per run::

    prepare_tensor -> initial_factors -> prepare ->
    [ on_iteration_start ->
        ( on_mode_start -> compute_ttmc -> update_factor -> on_mode_end )*N ->
        form_core -> on_iteration_end ]* -> (fit/convergence in the engine)
    -> finalize   (always, success or failure)

Three backends live here: :class:`SequentialBackend` (the paper's Algorithm
1/3 without ``parfor``), :class:`ThreadedBackend` (Algorithm 3: parallel
symbolic, row-parallel lock-free numeric TTMc on threads) and
:class:`ProcessBackend` (the same decomposition on worker *processes* with
zero-copy shared memory — true multicore, GIL-free).  The distributed
per-rank backend lives in :mod:`repro.distributed.dist_hooi` next to the
plan/exchange machinery it drives, and the baselines provide TTM-chain (MET)
and dense (Gram) backends — all drivers share this one loop.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.hosvd import initialize_factors
from repro.core.sparse_tensor import SparseTensor
from repro.core.symbolic import ModeSymbolic, symbolic_ttmc
from repro.core.trsvd import TRSVDResult, truncated_svd
from repro.core.ttmc import ttmc_matricized
from repro.core.tucker import core_from_ttmc
from repro.core.kron import kron_row_length

__all__ = [
    "ExecutionBackend",
    "SequentialBackend",
    "ThreadedBackend",
    "ProcessBackend",
    "CSFBackend",
    "ThreadedCSFBackend",
    "ProcessCSFBackend",
    "engine_kernel",
    "trsvd_kwargs",
    "parallel_symbolic",
    "symbolic_row_positions",
    "gather_present_rows",
]


def gather_present_rows(
    sorted_rows: np.ndarray,
    payload: np.ndarray,
    wanted: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Gather ``payload`` rows for ``wanted`` global indices, zeroing absentees.

    ``sorted_rows`` maps payload row ``i`` to the global index it holds
    (sorted ascending, as every compact TTMc form produces); ``out[p]``
    receives ``payload[i]`` where ``sorted_rows[i] == wanted[p]``, and zeros
    when ``wanted[p]`` is absent — a global row with no local nonzeros
    contributes nothing.  This is the one membership-gather idiom shared by
    the compact row-block seams (dimension-tree leaves, CSF compact blocks);
    :func:`symbolic_row_positions` is its strict sibling that *raises* on
    absent rows instead.
    """
    if sorted_rows.shape[0] == 0:
        out[:] = 0
        return out
    positions = np.searchsorted(sorted_rows, wanted)
    clipped = np.minimum(positions, sorted_rows.shape[0] - 1)
    present = sorted_rows[clipped] == wanted
    out[present] = payload[positions[present]]
    if not present.all():
        out[~present] = 0
    return out


def engine_kernel(eng) -> str:
    """The engine's configured kernel tier (``"numpy"`` when unset).

    All backends route their numeric TTMc calls through this accessor, so
    the ``kernel`` axis composes with every execution model without any
    backend growing a constructor knob — validation already happened in
    :meth:`HOOIOptions.validate`.
    """
    return getattr(eng.options, "kernel", "numpy")


def trsvd_kwargs(options) -> dict:
    """Solver keyword arguments implied by :class:`HOOIOptions`.

    The Lanczos solver takes the tolerance and seed; the randomized
    (Halko-style) range finder is seeded for reproducibility; the dense and
    Gram baselines take no knobs.
    """
    if options.trsvd_method == "lanczos":
        return {"tol": options.trsvd_tol, "seed": options.seed}
    if options.trsvd_method == "randomized":
        return {"seed": options.seed}
    return {}


def symbolic_row_positions(symbolic: ModeSymbolic, rows: np.ndarray) -> np.ndarray:
    """Positions of global row indices inside a mode's sorted ``J_n``.

    ``rows`` must be sorted and every entry must be a non-empty row of the
    mode (the distributed plans guarantee it by intersecting with ``J_n``);
    a row outside ``J_n`` raises instead of silently mapping to a neighbour.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return np.empty(0, dtype=np.int64)
    positions = np.searchsorted(symbolic.rows, rows).astype(np.int64, copy=False)
    if symbolic.num_rows:
        clipped = np.minimum(positions, symbolic.num_rows - 1)
        valid = (positions < symbolic.num_rows) & (symbolic.rows[clipped] == rows)
    else:
        valid = np.zeros(rows.shape[0], dtype=bool)
    if not valid.all():
        missing = rows[~valid]
        raise ValueError(
            f"rows {missing[:5].tolist()} are not non-empty rows of mode "
            f"{symbolic.mode} (|J_n| = {symbolic.num_rows})"
        )
    return positions


def parallel_symbolic(tensor: SparseTensor, num_threads: int) -> Dict[int, ModeSymbolic]:
    """Build the symbolic data of every mode, one task per mode (parfor n)."""
    modes = list(range(tensor.order))
    if num_threads <= 1 or len(modes) == 1:
        return {mode: symbolic_ttmc(tensor, mode) for mode in modes}
    with ThreadPoolExecutor(max_workers=min(num_threads, len(modes))) as pool:
        futures = {mode: pool.submit(symbolic_ttmc, tensor, mode) for mode in modes}
        return {mode: fut.result() for mode, fut in futures.items()}


class ExecutionBackend:
    """How one HOOI engine run executes its heavy steps.

    The base class implements the sequential single-process behaviour; the
    engine is usable with it directly (``SequentialBackend`` only adds the
    name).  Subclasses override the pieces they execute differently and may
    use the no-op iteration/mode hooks to maintain clocks or communication
    statistics.
    """

    name = "sequential"

    # -- setup ----------------------------------------------------------- #
    def prepare_tensor(self, eng) -> None:
        """Apply the engine's dtype policy to the input tensor."""
        if isinstance(eng.tensor, SparseTensor):
            eng.tensor = eng.tensor.astype(eng.dtype)

    def tensor_norm(self, eng) -> float:
        """Frobenius norm of the full input tensor."""
        return eng.tensor.norm()

    def initial_factors(self, eng) -> List[np.ndarray]:
        """Produce the initial factor matrices (cast to dtype by the engine)."""
        return initialize_factors(
            eng.tensor, eng.ranks, init=eng.options.init, seed=eng.options.seed
        )

    def prepare(self, eng) -> None:
        """Build per-run reusable state (the symbolic TTMc data)."""
        self.symbolic = {
            mode: symbolic_ttmc(eng.tensor, mode) for mode in range(eng.order)
        }

    # -- the three heavy steps ------------------------------------------- #
    def _pooled_out(self, eng, mode: int) -> np.ndarray:
        """The pooled ``(I_n, ∏R_t)`` output buffer for this mode's TTMc.

        Buffers are keyed per mode and fully zeroed only on their first use
        in a run; afterwards the numeric kernels clear (or overwrite) just
        the ``|J_n|`` touched rows, so steady-state sweeps never memset the
        full ``I_n × W`` matrix — measurable on hypersparse modes.  The
        per-run set of primed buffers lives on the engine
        (``eng._primed_ttmc_out``), which :meth:`HOOIEngine.run` resets.
        """
        width = kron_row_length(
            [eng.factors[t].shape[1] for t in range(eng.order) if t != mode]
        )
        buffer = eng.workspace.take(
            (eng.tensor.shape[mode], width), eng.dtype, tag=f"ttmc-out-{mode}"
        )
        primed = getattr(eng, "_primed_ttmc_out", None)
        if primed is None:
            primed = eng._primed_ttmc_out = set()
        key = (mode, buffer.shape, buffer.dtype)
        if key not in primed:
            buffer[...] = 0
            primed.add(key)
        return buffer

    def compute_ttmc(self, eng, mode: int) -> np.ndarray:
        """Numeric TTMc of ``mode`` into a pooled ``(I_n, ∏R_t)`` buffer."""
        return ttmc_matricized(
            eng.tensor,
            eng.factors,
            mode,
            symbolic=self.symbolic[mode],
            block_nnz=eng.options.block_nnz,
            out=self._pooled_out(eng, mode),
            workspace=eng.workspace,
            # _pooled_out guarantees rows outside J_n are zero, so only the
            # touched rows need clearing between sweeps.
            zero="touched",
            kernel=engine_kernel(eng),
        )

    def compute_ttmc_rows(self, eng, mode: int, rows: np.ndarray) -> np.ndarray:
        """Compact TTMc block: ``Y_(mode)`` restricted to the given rows.

        ``rows`` is a sorted array of global mode-``mode`` indices, each a
        non-empty row of the engine's tensor (``rows ⊆ J_mode``); the result
        has shape ``(len(rows), ∏_{t≠mode} R_t)`` with row ``p`` holding
        ``Y_(mode)(rows[p], :)``.  This is the rank-scoped seam the
        distributed driver composes with: each simulated MPI rank computes
        only its owned/local rows through whatever execution model and TTMc
        strategy the options select, reusing this backend over the rank's
        local tensor.
        """
        from repro.parallel.shared_ttmc import ttmc_row_block

        return ttmc_row_block(
            eng.tensor,
            eng.factors,
            mode,
            self.symbolic[mode],
            symbolic_row_positions(self.symbolic[mode], rows),
            block_nnz=eng.options.block_nnz,
            kernel=engine_kernel(eng),
        )

    def update_factor(
        self, eng, mode: int, y_mat: np.ndarray
    ) -> Tuple[np.ndarray, Optional[TRSVDResult]]:
        """Refresh ``U_mode`` from ``Y_(mode)`` via the configured TRSVD."""
        result = truncated_svd(
            y_mat,
            eng.ranks[mode],
            method=eng.options.trsvd_method,
            **trsvd_kwargs(eng.options),
        )
        return np.asarray(result.left, dtype=eng.dtype), result

    def notify_factor_updated(self, eng, mode: int) -> None:
        """A factor was replaced *outside* :meth:`update_factor`.

        Backends caching state derived from the factors (the dimension
        tree's memoized partial chains) invalidate it here.  The distributed
        per-rank backend calls this after its distributed TRSVD + factor-row
        exchange replaced ``U_mode``, since the rank-local TTMc backend never
        sees that update otherwise.
        """

    def form_core(self, eng, last_ttmc: np.ndarray) -> np.ndarray:
        """Fold the last mode's TTMc into the core tensor (one small GEMM)."""
        return core_from_ttmc(last_ttmc, eng.factors[-1], eng.ranks)

    # -- hooks (no-ops by default) --------------------------------------- #
    def on_iteration_start(self, eng, iteration: int) -> None:
        pass

    def on_iteration_end(self, eng, iteration: int) -> None:
        pass

    def on_mode_start(self, eng, mode: int) -> None:
        pass

    def on_mode_end(self, eng, mode: int) -> None:
        pass

    def finalize(self, eng) -> None:
        """Release per-run resources (called exactly once, success or not)."""
        pass


class SequentialBackend(ExecutionBackend):
    """Single-threaded execution — the reference everything is validated against."""

    name = "sequential"


class ThreadedBackend(ExecutionBackend):
    """Shared-memory execution (the paper's Algorithm 3).

    The symbolic step runs one task per mode; the numeric TTMc distributes
    the non-empty rows ``J_n`` over worker threads with the configured
    schedule (lock-free: each row is written by exactly one worker).  The
    TRSVD and core GEMM are BLAS-parallel as in the sequential backend.
    """

    name = "threaded"

    def __init__(self, config=None) -> None:
        from repro.parallel.parallel_for import ParallelConfig

        self.config = config or ParallelConfig()

    def prepare(self, eng) -> None:
        self.symbolic = parallel_symbolic(eng.tensor, self.config.num_threads)

    def compute_ttmc(self, eng, mode: int) -> np.ndarray:
        from repro.parallel.shared_ttmc import parallel_ttmc_matricized

        return parallel_ttmc_matricized(
            eng.tensor,
            eng.factors,
            mode,
            symbolic=self.symbolic[mode],
            config=self.config,
            block_nnz=eng.options.block_nnz,
            out=self._pooled_out(eng, mode),
            # Every J_n row is assigned and _pooled_out keeps the rest zero,
            # so no zeroing pass is needed at all.
            zero="none",
            kernel=engine_kernel(eng),
        )

    def compute_ttmc_rows(self, eng, mode: int, rows: np.ndarray) -> np.ndarray:
        from repro.parallel.shared_ttmc import parallel_ttmc_row_block

        return parallel_ttmc_row_block(
            eng.tensor,
            eng.factors,
            mode,
            self.symbolic[mode],
            symbolic_row_positions(self.symbolic[mode], rows),
            config=self.config,
            block_nnz=eng.options.block_nnz,
            kernel=engine_kernel(eng),
        )


class CSFBackend(SequentialBackend):
    """Sequential execution over Compressed Sparse Fiber storage.

    ``prepare`` compresses the engine's tensor into CSF trees
    (:class:`repro.sparse.csf.CSFTensorSet`) instead of building per-mode
    update lists; ``compute_ttmc`` then serves each mode's ``Y_(n)`` as a
    fiber-segment sweep (:func:`repro.sparse.csf_ttmc.csf_ttmc_matricized`)
    — factor rows gathered once per merged fiber, partial products reduced
    over fiber extents with ``np.add.reduceat``.  ``trees`` selects the
    layout policy: ``"per-mode"`` (default) builds one tree rooted at every
    mode, the fastest configuration at ``order``× the index memory;
    ``"shared"`` builds a single shortest-mode-first tree reused for every
    mode — minimal memory, with deep target modes served by the slower
    pushdown/pullup pass.
    """

    name = "csf"

    #: Tree layout policies ``__init__`` accepts.
    TREE_POLICIES = ("per-mode", "shared")

    def __init__(self, trees: str = "per-mode", *, tensors=None) -> None:
        if trees not in self.TREE_POLICIES:
            raise ValueError(
                f"unknown CSF tree policy {trees!r}: expected one of "
                f"{self.TREE_POLICIES}"
            )
        self.trees = trees
        # A pre-built CSFTensorSet (e.g. memory-mapped trees loaded by the
        # out-of-core driver) skips the per-run compression in ``prepare``.
        self._preset_tensors = tensors
        self.tensors = tensors

    def prepare(self, eng) -> None:
        from repro.sparse import CSFTensorSet

        if self._preset_tensors is not None:
            self.tensors = self._preset_tensors
        elif self.trees == "per-mode":
            config = self._ttmc_config()
            self.tensors = CSFTensorSet.per_mode(
                eng.tensor,
                num_threads=config.num_threads if config is not None else 1,
            )
        else:
            self.tensors = CSFTensorSet.shared_tree(eng.tensor)

    def _ttmc_config(self):
        """Thread configuration for the fiber sweeps (None = inline)."""
        return None

    def compute_ttmc(self, eng, mode: int) -> np.ndarray:
        from repro.sparse import csf_ttmc_matricized

        return csf_ttmc_matricized(
            self.tensors.tree_for(mode),
            eng.factors,
            mode,
            out=self._pooled_out(eng, mode),
            workspace=eng.workspace,
            config=self._ttmc_config(),
            # Every J_n row is assigned and _pooled_out keeps the rest zero.
            zero="none",
            kernel=engine_kernel(eng),
        )

    def compute_ttmc_rows(self, eng, mode: int, rows: np.ndarray) -> np.ndarray:
        """Compact TTMc block for a sorted set of global rows.

        The fiber sweep already produces ``Y_(n)`` in compact ``(J_n, ∏R_t)``
        form, so serving a rank's owned/local rows is one sorted gather —
        rows without local nonzeros come back zero, mirroring the dimension
        tree's ``local_rows`` contract.
        """
        from repro.sparse import csf_ttmc_compact

        tree = self.tensors.tree_for(mode)
        all_rows, block = csf_ttmc_compact(
            tree,
            eng.factors,
            mode,
            workspace=eng.workspace,
            config=self._ttmc_config(),
            kernel=engine_kernel(eng),
        )
        rows = np.asarray(rows, dtype=np.int64)
        # The gather destination is pooled like the sweep's own buffers, so
        # steady-state rank-local sweeps stop allocating entirely.
        out = eng.workspace.take(
            (rows.shape[0], block.shape[1]), block.dtype,
            tag=f"csf-rows-out-{mode}",
        )
        return gather_present_rows(all_rows, block, rows, out)


class ThreadedCSFBackend(CSFBackend):
    """Shared-memory execution over CSF storage.

    The numeric sweep distributes contiguous *root-fiber slabs* over worker
    threads with the configured ``make_chunks`` schedule.  A slab's subtree
    is a contiguous node range at every level and its output rows are
    exactly its root fibers, so — with the per-mode rooted trees this
    backend always builds — no two workers ever write the same ``Y_(n)``
    row: the paper's lock-free row decomposition, applied to fibers.
    """

    name = "threaded-csf"

    def __init__(self, config=None) -> None:
        from repro.parallel.parallel_for import ParallelConfig

        # Root-fiber slabs partition the output rows only when every tree
        # is rooted at its target mode, so the policy is fixed.
        super().__init__(trees="per-mode")
        self.config = config or ParallelConfig()

    def _ttmc_config(self):
        return self.config


class ProcessCSFBackend(CSFBackend):
    """True-multicore execution over Compressed Sparse Fiber storage.

    The driver builds the per-mode rooted trees once (thread-overlapped,
    like the per-mode symbolic step), serializes their level arrays into a
    shared arena (:meth:`~repro.parallel.process_pool.HOOIProcessPool.for_csf`),
    and dispatches every TTMc as contiguous root-fiber slabs to the worker
    pool — a slab's output rows are exactly its unique, sorted root fibers,
    so workers write lock-free just as in the COO row decomposition.
    Refreshed factors are broadcast by writing their shared segment,
    mirroring :class:`ProcessBackend`.

    ``num_workers <= 1`` degenerates to the sequential CSF backend: no
    worker processes are spawned and no shared memory is allocated.
    """

    name = "process-csf"

    def __init__(self, config=None) -> None:
        from repro.parallel.process_pool import ProcessConfig

        # Root-fiber slabs partition the output rows only when every tree
        # is rooted at its target mode, so the policy is fixed (the same
        # constraint as the threaded CSF backend).
        super().__init__(trees="per-mode")
        self.config = config or ProcessConfig()
        self.pool = None

    def prepare(self, eng) -> None:
        from repro.sparse import CSFTensorSet

        self.tensors = CSFTensorSet.per_mode(
            eng.tensor, num_threads=self.config.num_workers
        )
        if self.config.num_workers <= 1:
            return
        from repro.parallel.process_pool import HOOIProcessPool

        self.pool = HOOIProcessPool.for_csf(
            self.tensors,
            eng.tensor,
            eng.factors,
            eng.ranks,
            eng.dtype,
            config=self.config,
            block_nnz=eng.options.block_nnz,
            kernel=engine_kernel(eng),
        )

    def compute_ttmc(self, eng, mode: int) -> np.ndarray:
        if self.pool is None:
            return super().compute_ttmc(eng, mode)
        return self.pool.ttmc(mode)

    def update_factor(self, eng, mode: int, y_mat: np.ndarray):
        new_factor, stats = super().update_factor(eng, mode, y_mat)
        if self.pool is not None:
            self.pool.write_factor(mode, new_factor)
        return new_factor, stats

    def finalize(self, eng) -> None:
        if self.pool is not None:
            self.pool.close()
            self.pool = None


class ProcessBackend(SequentialBackend):
    """True-multicore execution: worker processes + zero-copy shared memory.

    The decomposition is exactly the paper's Algorithm 3 — the non-empty
    rows ``J_n`` are chunked with an OpenMP-like schedule and each chunk is
    one lock-free task — but tasks run on a persistent pool of worker
    *processes* (:class:`~repro.parallel.process_pool.HOOIProcessPool`), so
    the hot gather/Kronecker/segment-sum work escapes the GIL and really
    uses multiple cores.  The tensor, symbolic structures, factors and the
    ``Y_(n)`` buffers live in ``multiprocessing.shared_memory`` segments
    that workers attach once at pool startup; only tiny ``(mode, row_chunk)``
    descriptors cross process boundaries, and refreshed factors are
    broadcast by writing their shared segment after each TRSVD.

    ``num_workers <= 1`` degenerates to the sequential backend: no worker
    processes are spawned and no shared memory is allocated.
    """

    name = "process"

    def __init__(self, config=None) -> None:
        from repro.parallel.process_pool import ProcessConfig

        self.config = config or ProcessConfig()
        self.pool = None

    def prepare(self, eng) -> None:
        if self.config.num_workers <= 1:
            super().prepare(eng)
            return
        from repro.parallel.process_pool import HOOIProcessPool

        self.symbolic = parallel_symbolic(eng.tensor, self.config.num_workers)
        self.pool = HOOIProcessPool.for_per_mode(
            eng.tensor,
            self.symbolic,
            eng.factors,
            eng.ranks,
            eng.dtype,
            config=self.config,
            block_nnz=eng.options.block_nnz,
            kernel=engine_kernel(eng),
        )

    def compute_ttmc(self, eng, mode: int) -> np.ndarray:
        if self.pool is None:
            return super().compute_ttmc(eng, mode)
        return self.pool.ttmc(mode)

    def update_factor(self, eng, mode: int, y_mat: np.ndarray):
        new_factor, stats = super().update_factor(eng, mode, y_mat)
        if self.pool is not None:
            self.pool.write_factor(mode, new_factor)
        return new_factor, stats

    def finalize(self, eng) -> None:
        if self.pool is not None:
            self.pool.close()
            self.pool = None
