"""The unified HOOI driver loop.

Every HOOI variant in this repository — sequential (Algorithm 1/3 minus the
``parfor``), shared-memory (Algorithm 3), the distributed per-rank program
(Algorithm 4), and the MET/dense baselines — iterates the same state machine:

1. initialize the factor matrices;
2. build reusable per-run state (the symbolic TTMc data) once;
3. per iteration and per mode: numeric TTMc into the matricized ``Y_(n)``,
   then a truncated SVD of ``Y_(n)`` refreshing ``U_n``;
4. after the last mode, fold ``Y_(N)`` into the core tensor;
5. track the fit ``1 - ||X - X̂|| / ||X||`` and stop when its improvement
   falls below the tolerance.

:class:`HOOIEngine` implements that loop exactly once.  *How* each heavy step
runs is delegated to an :class:`~repro.engine.backend.ExecutionBackend`;
*where* the big buffers come from is delegated to a
:class:`~repro.engine.workspace.WorkspacePool` (the ``(I_n × ∏R_t)`` TTMc
outputs and Kronecker scratch are reused across modes and iterations); and
*what precision* everything computes in is the engine's dtype policy
(``HOOIOptions.dtype``, ``float32`` or ``float64``, threaded through
``SparseTensor → kron → ttmc → trsvd``).

The public drivers (:func:`repro.core.hooi.hooi`,
:func:`repro.parallel.shared_hooi.shared_hooi`,
:func:`repro.distributed.dist_hooi.distributed_hooi`) are thin configuration
wrappers over this class.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

import numpy as np

from repro.core.hooi import HOOIOptions, HOOIResult
from repro.core.sparse_tensor import resolve_dtype
from repro.core.trsvd import TRSVDResult
from repro.core.tucker import TuckerTensor
from repro.engine.backend import ExecutionBackend, SequentialBackend
from repro.engine.workspace import WorkspacePool
from repro.util.timing import TimingBreakdown
from repro.util.validation import check_rank_vector

__all__ = ["HOOIEngine", "hooi_fit"]


def hooi_fit(norm_x: float, core: np.ndarray) -> float:
    """Fit ``1 - ||X - X̂|| / ||X||`` from the core norm (orthonormal factors).

    With orthonormal factors the residual satisfies
    ``||X - X̂||² = ||X||² - ||G||²``, so the fit needs no reconstruction —
    this is the quantity every HOOI driver monitors for convergence.
    """
    if not norm_x:
        return 1.0
    core_norm = float(np.linalg.norm(np.asarray(core).ravel()))
    residual_sq = max(norm_x**2 - core_norm**2, 0.0)
    return 1.0 - float(np.sqrt(residual_sq)) / norm_x


class HOOIEngine:
    """One HOOI run: tensor + ranks + options + backend + workspace.

    Backends receive the engine instance in every hook and read/write its
    public state: ``tensor``, ``shape``, ``ranks``, ``order``, ``options``,
    ``dtype``, ``factors``, ``workspace``, ``timings``.  After :meth:`run`,
    ``iteration_seconds`` holds the measured wall time of each iteration's
    sweep + core phases (what the scaling experiments report).
    """

    def __init__(
        self,
        tensor,
        ranks,
        options: Optional[HOOIOptions] = None,
        *,
        backend: Optional[ExecutionBackend] = None,
        workspace: Optional[WorkspacePool] = None,
    ) -> None:
        self.options = options or HOOIOptions()
        self.backend = backend or SequentialBackend()
        self.dtype = resolve_dtype(self.options.dtype)
        self.tensor = tensor
        self.shape = tuple(int(s) for s in tensor.shape)
        self.order = len(self.shape)
        self.ranks = check_rank_vector(ranks, self.shape)
        self.workspace = workspace or WorkspacePool()
        self.timings = TimingBreakdown()
        self.factors: Optional[List[np.ndarray]] = None
        self.iteration_seconds: List[float] = []
        # Pooled TTMc output buffers already fully zeroed this run (the
        # backend's _pooled_out handshake; reset per run).
        self._primed_ttmc_out: set = set()

    def run(
        self,
        *,
        callback: Optional[Callable[[int, float], None]] = None,
        cancel_check: Optional[Callable[[], None]] = None,
        checkpoint=None,
        resume=None,
    ) -> HOOIResult:
        """Execute the HOOI state machine and return the packaged result.

        ``cancel_check`` is the cooperative-cancellation seam the serving
        layer uses: when given, it is invoked at the start of every mode of
        every sweep (never while a parallel dispatch is in flight) and may
        raise to abort the run.  The exception propagates to the caller
        unchanged, and ``finalize`` still releases the backend's per-run
        resources — a cancelled process-backend run tears down (or, on the
        serving crew, detaches) its shared segments exactly like a completed
        one.  Additionally, a *truthy return* from ``cancel_check`` at a
        sweep boundary stops the run gracefully: the completed sweeps are
        packaged into a partial result with ``termination="cancelled"``.

        ``checkpoint`` is a :class:`repro.resilience.Checkpointer` (built
        from ``options.checkpoint_dir`` when omitted) invoked after every
        configured sweep; ``resume`` is a
        :class:`~repro.resilience.checkpoint.CheckpointState` (or a path /
        ``"auto"``) whose factors, fit history and sweep counter replace the
        fresh start.  Resume state is installed *before* ``backend.prepare``
        on purpose: the process backend packs ``eng.factors`` into its
        shared arena during ``prepare``, so the workers must see the
        checkpointed factors, not the initializer's.
        """
        from repro.resilience.checkpoint import (
            Checkpointer,
            check_resume_compatible,
            resolve_resume,
            restore_rng_state,
        )

        backend = self.backend
        options = self.options
        timings = self.timings

        if checkpoint is None and getattr(options, "checkpoint_dir", None):
            checkpoint = Checkpointer(
                options.checkpoint_dir,
                interval=getattr(options, "checkpoint_interval", 1),
            )

        self._primed_ttmc_out = set()
        backend.prepare_tensor(self)
        with timings.time("init"):
            self.factors = [
                np.asarray(f, dtype=self.dtype)
                for f in backend.initial_factors(self)
            ]
        resume_state = resolve_resume(resume, checkpoint)
        if resume_state is not None:
            check_resume_compatible(resume_state, self)
            self.factors = [
                np.ascontiguousarray(f, dtype=self.dtype)
                for f in resume_state.factors
            ]
            restore_rng_state(resume_state.rng_state)
        with timings.time("symbolic"):
            backend.prepare(self)
        try:
            return self._run_iterations(
                callback=callback,
                cancel_check=cancel_check,
                checkpoint=checkpoint,
                resume_state=resume_state,
            )
        finally:
            # Per-run resources (e.g. the process backend's worker pool and
            # shared segments) are released whether the run succeeded or not.
            backend.finalize(self)

    def _run_iterations(
        self,
        *,
        callback: Optional[Callable[[int, float], None]] = None,
        cancel_check: Optional[Callable[[], None]] = None,
        checkpoint=None,
        resume_state=None,
    ) -> HOOIResult:
        """The iteration state machine (factored out so run() can finalize)."""
        options = self.options
        backend = self.backend
        timings = self.timings

        norm_x = backend.tensor_norm(self)
        fit_history: List[float] = []
        trsvd_stats: List[TRSVDResult] = []
        converged = False
        core = np.zeros(self.ranks, dtype=self.dtype)
        resumed_sweeps = 0
        if resume_state is not None:
            # A resumed run continues the checkpointed one: its core and fit
            # history are real completed-sweep state, and the loop starts
            # where the interrupted run stopped.
            core = np.asarray(resume_state.core, dtype=self.dtype)
            fit_history = list(resume_state.fit_history)
            resumed_sweeps = int(resume_state.completed_sweeps)
        iterations_run = resumed_sweeps
        termination = "resumed" if resumed_sweeps > 0 else "max_iters"

        for iteration in range(resumed_sweeps, options.max_iterations):
            if cancel_check is not None and cancel_check():
                # A truthy return (as opposed to a raise) requests a graceful
                # stop: keep the completed sweeps as a partial result.
                termination = "cancelled"
                break
            iterations_run = iteration + 1
            termination = "max_iters"
            backend.on_iteration_start(self, iteration)
            sweep_start = time.perf_counter()
            last_ttmc: Optional[np.ndarray] = None

            for mode in range(self.order):
                if cancel_check is not None:
                    cancel_check()
                backend.on_mode_start(self, mode)
                with timings.time("ttmc"):
                    y_mat = backend.compute_ttmc(self, mode)
                with timings.time("trsvd"):
                    new_factor, stats = backend.update_factor(self, mode, y_mat)
                self.factors[mode] = new_factor
                if stats is not None:
                    trsvd_stats.append(stats)
                backend.on_mode_end(self, mode)
                if mode == self.order - 1:
                    last_ttmc = y_mat

            with timings.time("core"):
                core = backend.form_core(self, last_ttmc)
            self.iteration_seconds.append(time.perf_counter() - sweep_start)
            backend.on_iteration_end(self, iteration)

            if options.track_fit:
                with timings.time("fit"):
                    fit = hooi_fit(norm_x, core)
                fit_history.append(fit)
                if callback is not None:
                    callback(iteration, fit)
            if checkpoint is not None:
                # Snapshot strictly after the sweep's state is complete (core
                # formed, fit recorded) and before the convergence decision,
                # so the rolling checkpoint always embodies whole sweeps.
                with timings.time("checkpoint"):
                    checkpoint.on_sweep(self, iteration + 1, core, fit_history)
            if options.track_fit and len(fit_history) >= 2:
                improvement = fit_history[-1] - fit_history[-2]
                if abs(improvement) < options.tolerance:
                    converged = True
                    termination = "converged"
                    break

        if not fit_history:
            # track_fit=False skips per-iteration tracking, but the result's
            # fit must still be populated: evaluate it once from the final
            # core so HOOIResult.fit is never NaN on a completed run.
            with timings.time("fit"):
                fit_history.append(hooi_fit(norm_x, core))

        decomposition = TuckerTensor(core=core, factors=list(self.factors))
        return HOOIResult(
            decomposition=decomposition,
            fit_history=fit_history,
            iterations=iterations_run,
            converged=converged,
            timings=timings,
            trsvd_stats=trsvd_stats,
            completed_sweeps=iterations_run,
            termination=termination,
            resumed_sweeps=resumed_sweeps,
        )
