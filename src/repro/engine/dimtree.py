"""Dimension-tree TTMc: memoized partial TTM chains over a binary mode tree.

The per-mode backend recomputes each mode's (N−1)-factor TTMc from scratch —
N chains of N−1 multiplies per HOOI sweep, O(N²) mode multiplications.  Kaya's
dimension-tree line of work observes that the chains overlap pairwise: a
binary tree over the mode set lets every internal node cache the partial
chain shared by all the leaves below it, cutting the per-sweep multiply count
to O(N log N).

Structure
---------
Each :class:`DimTreeNode` owns a contiguous *free* mode range ``[lo, hi]``
and represents the input tensor multiplied by the factors of every *other*
mode.  The root (free = all modes) is the raw tensor; a node's two children
split its range in half, each refining the parent's chain by the sibling's
modes; the leaf for mode ``n`` (free = ``{n}``) holds exactly the matricized
TTMc ``Y_(n)`` rows the factor update needs.  Values are *semi-sparse
intermediates* (:mod:`repro.core.subset_ttmc`): the distinct index tuples
over the free modes (fibers, merged once symbolically per edge) paired with
a dense payload over the multiplied ranks.

Caching and invalidation
------------------------
Every factor carries a version counter; each cached node payload records the
versions of the factors it multiplied by.  Refreshing ``U_n`` bumps version
``n``, which lazily invalidates every node whose free range *excludes* ``n``
— i.e. after an update only the root-to-leaf path of ``n`` stays fresh.
Nodes revalidate top-down on demand, so one HOOI sweep recomputes each
non-root node exactly once regardless of mode order.

Symbolic sources
----------------
The tree's groupings come either from per-edge lexsorts over the COO index
matrix (``source="coo"``) or from a CSF fiber hierarchy with the identity
mode order (``source="csf"``): the CSF levels then coincide with the tree's
contiguous mode ranges, every left-child edge inherits contiguous,
already-sorted segments from its parent's sort order, and the numeric edge
updates run gather-free over payload slices.  The served ``Y_(n)`` is
identical either way, which is what lets ``tensor_format="csf"`` compose
with ``ttmc_strategy="dimtree"`` across all execution models.

Memory
------
Node payloads live in the engine's :class:`~repro.engine.workspace.WorkspacePool`
(one buffer per node, reused across iterations), trading
``Σ_nodes fibers × ∏ranks`` of resident memory for the recomputation the
per-mode strategy performs — the tradeoff ``HOOIOptions.ttmc_strategy``
selects.
"""

from __future__ import annotations

from itertools import count as _instance_counter
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hooi import HOOIOptions
from repro.core.kron import kron_dtype, kron_row_length
from repro.core.sparse_tensor import SparseTensor
from repro.core.subset_ttmc import (
    FiberGrouping,
    edge_update_groups,
    group_fibers,
    group_fibers_presorted,
    subset_widths,
)
from repro.engine.backend import (
    CSFBackend,
    ProcessBackend,
    ProcessCSFBackend,
    SequentialBackend,
    ThreadedBackend,
    ThreadedCSFBackend,
    gather_present_rows,
)
from repro.util.validation import check_axis

__all__ = [
    "DimTreeNode",
    "DimensionTree",
    "DimTreeBackend",
    "ThreadedDimTreeBackend",
    "ProcessDimTreeBackend",
    "resolve_ttmc_backend",
]

_TREE_IDS = _instance_counter()


class DimTreeNode:
    """One node of the dimension tree: a contiguous free-mode range + cache."""

    __slots__ = (
        "node_id",
        "lo",
        "hi",
        "parent",
        "left",
        "right",
        "sibling_modes",
        "sibling_cols",
        "grouping",
        "index_cols",
        "multiplied_modes",
        "payload",
        "cache_dtype",
        "cache_ranks",
        "dep_versions",
    )

    def __init__(self, node_id: int, lo: int, hi: int, parent: Optional["DimTreeNode"]):
        self.node_id = node_id
        self.lo = lo
        self.hi = hi
        self.parent = parent
        self.left: Optional["DimTreeNode"] = None
        self.right: Optional["DimTreeNode"] = None
        self.sibling_modes: Tuple[int, ...] = ()
        self.sibling_cols: Tuple[int, ...] = ()
        self.grouping: Optional[FiberGrouping] = None
        self.index_cols: Optional[np.ndarray] = None
        self.multiplied_modes: Tuple[int, ...] = ()
        self.payload: Optional[np.ndarray] = None
        self.cache_dtype: Optional[np.dtype] = None
        self.cache_ranks: Optional[Tuple[int, ...]] = None
        self.dep_versions: Optional[Tuple[int, ...]] = None

    @property
    def modes(self) -> Tuple[int, ...]:
        """The node's free modes (its TTMc still has these modes unmultiplied)."""
        return tuple(range(self.lo, self.hi + 1))

    @property
    def is_leaf(self) -> bool:
        return self.lo == self.hi

    @property
    def num_fibers(self) -> int:
        return int(self.index_cols.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DimTreeNode(modes={self.modes}, fibers={self.num_fibers})"


class DimensionTree:
    """Symbolic dimension tree plus the per-factor-version payload cache.

    Built once per tensor (a lexsort per edge, the analogue of the per-mode
    symbolic step); :meth:`leaf_matricized` then serves any mode's ``Y_(n)``,
    recomputing only the stale part of the root-to-leaf path, and
    :meth:`invalidate_factor` must be called whenever a factor matrix is
    replaced.  ``edge_updates`` counts numeric node recomputations — a steady
    HOOI sweep performs exactly ``len(nodes) - 1`` of them.

    ``source`` selects where the symbolic structure comes from:

    * ``"coo"`` (default) — the tree's root is the tensor's raw index matrix
      and every edge grouping is a :func:`group_fibers` lexsort.
    * ``"csf"`` — the tree is built over a CSF fiber hierarchy
      (:class:`~repro.sparse.csf.CSFTensor` with the *identity* mode order,
      so the CSF levels coincide with the tree's contiguous mode ranges).
      The root holds the lexicographically sorted nonzeros, which makes
      every left-child grouping a prefix of a sorted parent: its segments
      are derived by the CSF change-flag walk
      (:func:`group_fibers_presorted`) with an identity permutation, and the
      numeric edge updates read the parent payload through contiguous slices
      instead of gathers.  Caching, invalidation and the served ``Y_(n)``
      are identical to the COO-sourced tree (fibers sort the same way —
      only the root row order and the grouping mechanics differ).

    Either way the sortedness of every non-root node's tuples (a
    :func:`group_fibers` postcondition) lets deeper left edges reuse the
    presorted walk too.
    """

    #: Legal values of the ``source`` constructor argument.
    SOURCES = ("coo", "csf")

    def __init__(self, tensor: SparseTensor, *, source: str = "coo") -> None:
        if tensor.order < 2:
            raise ValueError("a dimension tree requires a tensor of order >= 2")
        if source not in self.SOURCES:
            raise ValueError(
                f"unknown dimension-tree source {source!r}; expected one of "
                f"{self.SOURCES}"
            )
        self.shape = tensor.shape
        self.order = tensor.order
        self.source = source
        self._token = f"dimtree{next(_TREE_IDS)}"
        if source == "csf":
            from repro.sparse.csf import CSFTensor

            # Identity mode order: level ℓ of the fiber tree is mode ℓ, so
            # the CSF hierarchy *is* the left spine of the dimension tree and
            # the sorted expansion below is the root's index matrix.
            self.csf: Optional[CSFTensor] = CSFTensor(
                tensor, mode_order=tuple(range(tensor.order))
            )
            root_cols = self.csf.to_coo().indices
            self._values = self.csf.values
            root_sorted = True
        else:
            self.csf = None
            root_cols = tensor.indices
            self._values = tensor.values
            root_sorted = False
        self.nodes: List[DimTreeNode] = []
        self.leaves: List[Optional[DimTreeNode]] = [None] * self.order
        self.root = self._build(0, self.order - 1, None, root_cols, root_sorted)
        self._versions = [0] * self.order
        self.edge_updates = 0

    @property
    def root_values(self) -> np.ndarray:
        """Nonzero values aligned with the root's ``index_cols`` rows.

        For a COO-sourced tree these are the tensor's values verbatim; for a
        CSF-sourced tree they are the lexicographically sorted copy matching
        the sorted root index matrix.  The process pool serializes *these*
        (not the raw tensor's) so worker-side groupings see the same row
        order the driver's tree was built over.
        """
        return self._values

    # ------------------------------------------------------------------ #
    # Construction (symbolic)
    # ------------------------------------------------------------------ #
    def _build(
        self,
        lo: int,
        hi: int,
        parent: Optional[DimTreeNode],
        parent_index_cols: np.ndarray,
        parent_sorted: bool,
    ) -> DimTreeNode:
        node = DimTreeNode(len(self.nodes), lo, hi, parent)
        self.nodes.append(node)
        if parent is None:
            node.index_cols = np.asarray(parent_index_cols, dtype=np.int64)
        else:
            rel = [m - parent.lo for m in range(lo, hi + 1)]
            if parent_sorted and lo == parent.lo:
                # Left child of a lex-sorted parent: its grouping columns are
                # a prefix of the sort key, so the groups are already
                # contiguous and ordered — the CSF change-flag walk replaces
                # the lexsort (and marks the grouping contiguous, unlocking
                # the sliced edge-update fast path).
                node.grouping = group_fibers_presorted(parent_index_cols[:, rel])
            else:
                node.grouping = group_fibers(parent_index_cols[:, rel])
            node.index_cols = node.grouping.indices
            node.sibling_modes = tuple(
                m for m in parent.modes if not lo <= m <= hi
            )
            node.sibling_cols = tuple(m - parent.lo for m in node.sibling_modes)
        node.multiplied_modes = tuple(
            m for m in range(self.order) if not lo <= m <= hi
        )
        if lo == hi:
            self.leaves[lo] = node
        else:
            mid = (lo + hi) // 2
            # Children of any non-root node see sorted tuples (group_fibers
            # and the presorted walk both emit ascending order); only a COO
            # root's raw index matrix is unsorted.
            child_sorted = parent is not None or parent_sorted
            node.left = self._build(lo, mid, node, node.index_cols, child_sorted)
            node.right = self._build(
                mid + 1, hi, node, node.index_cols, child_sorted
            )
        return node

    def path(self, mode: int) -> List[DimTreeNode]:
        """Root-to-leaf node path for ``mode``."""
        mode = check_axis(mode, self.order)
        path = [self.root]
        node = self.root
        while not node.is_leaf:
            node = node.left if mode <= node.left.hi else node.right
            path.append(node)
        return path

    # ------------------------------------------------------------------ #
    # Cache state
    # ------------------------------------------------------------------ #
    def invalidate_factor(self, mode: int) -> None:
        """Mark factor ``mode`` as replaced.

        Lazily invalidates every cached node whose chain multiplied by the
        old ``U_mode`` — everything *off* the root-to-leaf path of ``mode``.
        """
        mode = check_axis(mode, self.order)
        self._versions[mode] += 1

    def node_is_fresh(self, node: DimTreeNode) -> bool:
        """Whether the node's cached payload reflects the current factors."""
        if node.payload is None:
            return False
        if node is self.root:
            return True
        return all(
            node.dep_versions[i] == self._versions[m]
            for i, m in enumerate(node.multiplied_modes)
        )

    def fresh_nodes(self) -> List[DimTreeNode]:
        """All nodes whose cache is valid under the current factor versions."""
        return [node for node in self.nodes if self.node_is_fresh(node)]

    # ------------------------------------------------------------------ #
    # Numeric evaluation
    # ------------------------------------------------------------------ #
    def leaf_matricized(
        self,
        mode: int,
        factors: Sequence[Optional[np.ndarray]],
        *,
        dtype=None,
        out: Optional[np.ndarray] = None,
        workspace=None,
        block_nnz: Optional[int] = None,
        parallel_config=None,
        edge_executor=None,
        zero: str = "full",
        local_rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Serve ``Y_(mode)`` from the tree, refreshing stale path nodes.

        Matches :func:`repro.core.ttmc.ttmc_matricized` in shape, column
        order and dtype promotion.  ``factors[mode]`` is never multiplied and
        may be ``None``.  ``workspace`` supplies the node payload and scratch
        buffers; ``parallel_config`` (a
        :class:`~repro.parallel.parallel_for.ParallelConfig`) switches the
        edge updates to the row-parallel lock-free path; ``edge_executor``
        (``executor(node) -> payload``) delegates both the payload buffer
        and the numeric refinement of a stale non-root node to an external
        engine — the process backend routes edges to its worker pool this
        way.  ``zero`` controls how much of a caller-provided ``out`` is
        cleared (``"full"``/``"touched"``/``"none"``); the leaf rows are
        *assigned*, so ``"none"`` is sufficient when the caller keeps the
        empty rows zero (the engine's per-mode pooled buffers do).

        ``local_rows`` is the distributed driver's hook: a sorted array of
        global mode-``mode`` indices restricting the result to a compact
        ``(len(local_rows), ∏R_t)`` block whose row ``p`` holds
        ``Y_(mode)(local_rows[p], :)`` — only the rows a simulated MPI rank
        owns (coarse grain) or touches (fine grain).  Rows outside the
        tree's leaf fibers come back zero (a row with no local nonzeros
        contributes nothing), every output row is assigned exactly once, and
        ``zero`` is ignored.
        """
        mode = check_axis(mode, self.order)
        if zero not in ("full", "touched", "none"):
            raise ValueError(f"unknown zero policy {zero!r}")
        if len(factors) != self.order:
            raise ValueError(
                f"expected {self.order} factors, got {len(factors)}"
            )
        if dtype is None:
            dtype = kron_dtype(
                self._values, *[f for f in factors if f is not None]
            )
        dtype = np.dtype(dtype)
        ranks: List[Optional[int]] = []
        for t, factor in enumerate(factors):
            if factor is None:
                ranks.append(None)
                continue
            factor = np.asarray(factor)
            if factor.ndim != 2 or factor.shape[0] != self.shape[t]:
                raise ValueError(
                    f"factor for mode {t} must be 2-D with {self.shape[t]} rows"
                )
            ranks.append(int(factor.shape[1]))

        path = self.path(mode)
        for node in path:
            self._ensure_fresh(
                node, factors, ranks, dtype,
                workspace=workspace, block_nnz=block_nnz,
                parallel_config=parallel_config,
                edge_executor=edge_executor,
            )
        leaf = path[-1]

        width = kron_row_length(
            [ranks[t] for t in range(self.order) if t != mode]
        )
        if local_rows is not None:
            return self._leaf_local_block(leaf, local_rows, width, dtype, out)
        if out is None:
            out = np.zeros((self.shape[mode], width), dtype=dtype)
        else:
            if out.shape != (self.shape[mode], width) or out.dtype != dtype:
                raise ValueError(
                    f"out has shape {out.shape} / dtype {out.dtype}, expected "
                    f"{(self.shape[mode], width)} / {dtype}"
                )
            if zero == "full":
                out[:] = 0.0
            # "touched" degenerates to "none" here: the touched rows are the
            # leaf's fiber rows, which the assignment below overwrites anyway.
        if leaf.num_fibers:
            out[leaf.index_cols[:, 0]] = leaf.payload
        return out

    def _leaf_local_block(
        self,
        leaf: DimTreeNode,
        local_rows: np.ndarray,
        width: int,
        dtype,
        out: Optional[np.ndarray],
    ) -> np.ndarray:
        """Gather a fresh leaf's payload rows for a sorted set of global rows."""
        local_rows = np.asarray(local_rows, dtype=np.int64)
        shape = (local_rows.shape[0], width)
        if out is None:
            out = np.empty(shape, dtype=dtype)
        elif out.shape != shape or out.dtype != dtype:
            raise ValueError(
                f"out has shape {out.shape} / dtype {out.dtype}, expected "
                f"{shape} / {dtype}"
            )
        if local_rows.shape[0] == 0:
            return out
        # The leaf's fibers are its distinct mode indices in ascending order
        # (group_fibers sorts), so membership is one searchsorted.
        return gather_present_rows(
            leaf.index_cols[:, 0], leaf.payload, local_rows, out
        )

    def _ensure_fresh(
        self,
        node: DimTreeNode,
        factors,
        ranks,
        dtype,
        *,
        workspace,
        block_nnz,
        parallel_config,
        edge_executor=None,
    ) -> None:
        if node is self.root:
            if node.payload is None or node.cache_dtype != dtype:
                node.payload = np.asarray(
                    self._values, dtype=dtype
                ).reshape(-1, 1)
                node.cache_dtype = dtype
            return
        sig = tuple(ranks[m] for m in node.multiplied_modes)
        if (
            node.cache_dtype == dtype
            and node.cache_ranks == sig
            and self.node_is_fresh(node)
        ):
            return

        parent = node.parent
        sibling_factors = [
            np.asarray(factors[m], dtype=dtype) for m in node.sibling_modes
        ]
        lo_width, hi_width = subset_widths(ranks, parent.lo, parent.hi)
        child_width = lo_width * hi_width * kron_row_length(
            [f.shape[1] for f in sibling_factors]
        )
        shape = (node.num_fibers, child_width)
        if edge_executor is not None:
            # External engine (the process pool): it owns the payload buffer
            # and performs the refinement — typically fiber-parallel on
            # worker processes against shared-memory views of this tree.
            payload = edge_executor(node)
            if payload.shape != shape or payload.dtype != dtype:
                raise ValueError(
                    f"edge executor returned a {payload.shape}/{payload.dtype} "
                    f"payload for node {node.node_id}, expected {shape}/{dtype}"
                )
        else:
            if workspace is not None:
                payload = workspace.take(
                    shape, dtype, tag=f"{self._token}-node{node.node_id}"
                )
            else:
                payload = np.empty(shape, dtype=dtype)

            if parallel_config is not None and parallel_config.num_threads > 1:
                from repro.parallel.shared_dimtree import parallel_edge_update

                parallel_edge_update(
                    node.grouping,
                    parent.payload,
                    parent.index_cols,
                    node.sibling_cols,
                    sibling_factors,
                    lo_width,
                    hi_width,
                    payload,
                    parallel_config,
                    block_nnz=block_nnz,
                )
            else:
                edge_update_groups(
                    node.grouping,
                    0,
                    node.num_fibers,
                    parent.payload,
                    parent.index_cols,
                    node.sibling_cols,
                    sibling_factors,
                    lo_width,
                    hi_width,
                    payload,
                    block_nnz=block_nnz,
                    workspace=workspace,
                )
        node.payload = payload
        node.cache_dtype = dtype
        node.cache_ranks = sig
        node.dep_versions = tuple(
            self._versions[m] for m in node.multiplied_modes
        )
        self.edge_updates += 1


class DimTreeBackend(SequentialBackend):
    """Sequential execution with dimension-tree TTMc evaluation.

    Identical to :class:`~repro.engine.backend.SequentialBackend` except that
    ``compute_ttmc`` is served from a :class:`DimensionTree` (built in
    ``prepare``, replacing the per-mode symbolic step) and ``update_factor``
    additionally bumps the refreshed factor's version so stale partial chains
    are recomputed on their next use.

    ``tensor_format`` decides the tree's symbolic source: ``"csf"`` builds
    the groupings over the CSF fiber hierarchy (contiguous, gather-free edge
    updates), ``"coo"`` keeps the per-edge lexsorts.  Both serve identical
    ``Y_(n)``, so the format axis composes with this strategy — and with its
    threaded and process subclasses — without any further routing.
    """

    name = "dimtree"

    def __init__(self) -> None:
        self.tree: Optional[DimensionTree] = None

    def _tree_source(self, eng) -> str:
        fmt = getattr(eng.options, "tensor_format", "coo") or "coo"
        return "csf" if fmt == "csf" else "coo"

    def prepare(self, eng) -> None:
        self.tree = DimensionTree(eng.tensor, source=self._tree_source(eng))

    def _edge_parallel_config(self):
        """Thread configuration for stale-edge refinements (None = inline)."""
        return None

    def compute_ttmc(self, eng, mode: int) -> np.ndarray:
        return self.tree.leaf_matricized(
            mode,
            eng.factors,
            dtype=eng.dtype,
            out=self._pooled_out(eng, mode),
            workspace=eng.workspace,
            block_nnz=eng.options.block_nnz,
            # _pooled_out keeps rows outside the leaf fibers zero and the
            # leaf rows are assigned, so no zeroing pass is needed.
            zero="none",
        )

    def compute_ttmc_rows(self, eng, mode: int, rows: np.ndarray) -> np.ndarray:
        """Serve a compact row block from the rank-local dimension tree."""
        return self.tree.leaf_matricized(
            mode,
            eng.factors,
            dtype=eng.dtype,
            workspace=eng.workspace,
            block_nnz=eng.options.block_nnz,
            parallel_config=self._edge_parallel_config(),
            local_rows=np.asarray(rows, dtype=np.int64),
        )

    def update_factor(self, eng, mode: int, y_mat: np.ndarray):
        new_factor, stats = super().update_factor(eng, mode, y_mat)
        self.notify_factor_updated(eng, mode)
        return new_factor, stats

    def notify_factor_updated(self, eng, mode: int) -> None:
        if self.tree is not None:
            self.tree.invalidate_factor(mode)


class ThreadedDimTreeBackend(DimTreeBackend):
    """Shared-memory execution with dimension-tree TTMc evaluation.

    The numeric refinement of each tree edge distributes contiguous ranges
    of the child's fibers over worker threads
    (:func:`repro.parallel.shared_dimtree.parallel_edge_update`) — lock-free,
    since each fiber row is written by exactly one worker, mirroring the
    per-mode row decomposition of Algorithm 3.
    """

    name = "threaded-dimtree"

    def __init__(self, config=None) -> None:
        from repro.parallel.parallel_for import ParallelConfig

        super().__init__()
        self.config = config or ParallelConfig()

    def _edge_parallel_config(self):
        return self.config

    def compute_ttmc(self, eng, mode: int) -> np.ndarray:
        return self.tree.leaf_matricized(
            mode,
            eng.factors,
            dtype=eng.dtype,
            out=self._pooled_out(eng, mode),
            workspace=eng.workspace,
            block_nnz=eng.options.block_nnz,
            parallel_config=self.config,
            zero="none",
        )


class ProcessDimTreeBackend(DimTreeBackend):
    """True-multicore execution with dimension-tree TTMc evaluation.

    The driver keeps the symbolic tree and its version counters (so it knows
    exactly which partial chains a factor refresh made stale), while every
    numeric edge refinement is dispatched as fiber-range chunks to the
    persistent worker pool.  The tree's fiber groupings and all node
    payloads live in shared memory, so workers read the parent payload and
    write their disjoint slice of the child payload with zero copies; the
    driver scatters the finished leaf payload into its pooled ``Y_(n)``.

    ``num_workers <= 1`` degenerates to the sequential dimension-tree
    backend (no processes, no shared memory).
    """

    name = "process-dimtree"

    def __init__(self, config=None) -> None:
        from repro.parallel.process_pool import ProcessConfig

        super().__init__()
        self.config = config or ProcessConfig()
        self.pool = None

    def prepare(self, eng) -> None:
        super().prepare(eng)
        if self.config.num_workers <= 1:
            return
        from repro.parallel.process_pool import HOOIProcessPool

        self.pool = HOOIProcessPool.for_dimtree(
            self.tree,
            eng.tensor,
            eng.factors,
            eng.ranks,
            eng.dtype,
            config=self.config,
            block_nnz=eng.options.block_nnz,
        )

    def _edge_executor(self, node: DimTreeNode) -> np.ndarray:
        return self.pool.dimtree_edge(node.node_id)

    def compute_ttmc(self, eng, mode: int) -> np.ndarray:
        if self.pool is None:
            return super().compute_ttmc(eng, mode)
        return self.tree.leaf_matricized(
            mode,
            eng.factors,
            dtype=eng.dtype,
            out=self._pooled_out(eng, mode),
            workspace=eng.workspace,
            block_nnz=eng.options.block_nnz,
            edge_executor=self._edge_executor,
            zero="none",
        )

    def update_factor(self, eng, mode: int, y_mat: np.ndarray):
        new_factor, stats = super().update_factor(eng, mode, y_mat)
        if self.pool is not None:
            self.pool.write_factor(mode, new_factor)
        return new_factor, stats

    def finalize(self, eng) -> None:
        if self.pool is not None:
            self.pool.close()
            self.pool = None


def resolve_ttmc_backend(options, config=None):
    """Backend implied by ``ttmc_strategy``, ``execution`` and ``tensor_format``.

    ``config`` (a :class:`~repro.parallel.parallel_for.ParallelConfig`)
    comes from the threaded driver and selects the thread-parallel variants;
    without it, ``options.execution`` decides: ``"sequential"`` (default),
    ``"thread"`` (``options.num_workers`` threads) or ``"process"``
    (``options.num_workers`` worker processes with zero-copy shared memory).
    The two remaining axes compose orthogonally: ``ttmc_strategy="dimtree"``
    always routes to a dimension-tree backend (whose tree reads
    ``tensor_format`` to pick its symbolic source — CSF fiber hierarchy or
    per-edge lexsorts), while ``tensor_format="csf"`` with the per-mode
    strategy routes to the fiber-tree backends
    (:class:`~repro.engine.backend.CSFBackend` /
    :class:`~repro.engine.backend.ThreadedCSFBackend` /
    :class:`~repro.engine.backend.ProcessCSFBackend` by execution model).
    The ``kernel`` axis needs no routing of its own: every resolved backend
    reads ``options.kernel`` per TTMc call
    (:func:`~repro.engine.backend.engine_kernel`), and the ``validate`` call
    here rejects unavailable or non-composing tiers *before* any backend is
    built — a ``kernel="numba"`` request without numba fails at resolution,
    not mid-sweep.  Option values and composition are checked by
    :meth:`~repro.core.hooi.HOOIOptions.validate` (single-node context —
    the distributed driver applies its stricter composition rules before
    resolving its rank-local backends).
    """
    options.validate()
    strategy = options.ttmc_strategy or "per-mode"
    execution = options.execution or "sequential"
    tensor_format = getattr(options, "tensor_format", "coo") or "coo"
    num_workers = int(options.num_workers or 1)
    if execution == "process":
        from repro.parallel.process_pool import ProcessConfig

        if num_workers <= 1 and config is not None:
            num_workers = config.num_threads
        pconfig = ProcessConfig(
            num_workers=num_workers,
            schedule=config.schedule if config is not None else "dynamic",
            chunk_size=config.chunk_size if config is not None else None,
        )
        if strategy == "dimtree":
            return ProcessDimTreeBackend(pconfig)
        if tensor_format == "csf":
            return ProcessCSFBackend(pconfig)
        return ProcessBackend(pconfig)
    if execution == "thread" and config is None:
        from repro.parallel.parallel_for import ParallelConfig

        config = ParallelConfig(num_threads=num_workers)
    if strategy == "dimtree":
        return DimTreeBackend() if config is None else ThreadedDimTreeBackend(config)
    if tensor_format == "csf":
        return CSFBackend() if config is None else ThreadedCSFBackend(config)
    return SequentialBackend() if config is None else ThreadedBackend(config)
