"""Analytic per-iteration performance estimation for a partition.

Running the SPMD simulation with hundreds of ranks (threads) is unnecessarily
slow when all the strong-scaling experiment needs is the *time model* applied
to per-rank work and communication volumes — all of which are fully determined
by the tensor and the partition.  This module computes, without executing the
numerics:

* per-rank TTMc work, TRSVD rows and point-to-point communication volumes for
  every mode (exactly the quantities of the paper's Table III);
* a modelled time per HOOI iteration for a given machine model (the paper's
  Table II), combining the slowest rank's compute time per phase with the α–β
  cost of its communication.

The same plans drive the real SPMD execution, so the estimator and the
simulation agree on the work/volume numbers by construction; tests cross-check
them on small configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.sparse_tensor import SparseTensor
from repro.distributed.plan import GlobalPlan, RankPlan, build_plans
from repro.parallel.work import (
    core_phase_work,
    kron_width,
    trsvd_phase_work,
    ttmc_phase_work,
)
from repro.partition.strategies import TensorPartition
from repro.simmpi.machine import BGQ_MACHINE, MachineModel
from repro.util.validation import check_rank_vector

__all__ = ["ModeStatistics", "PartitionStatistics", "estimate_iteration_time",
           "collect_partition_statistics"]

_BYTES = 8


@dataclass
class ModeStatistics:
    """Per-mode, per-rank work and communication statistics."""

    mode: int
    ttmc_work: np.ndarray          # contributions (nonzeros processed) per rank
    trsvd_rows: np.ndarray         # rows multiplied in MxV/MTxV per rank
    comm_volume: np.ndarray        # point-to-point doubles sent+received per rank

    def max_avg(self, field: str) -> Dict[str, float]:
        values = getattr(self, field)
        return {"max": float(values.max()), "avg": float(values.mean())}


@dataclass
class PartitionStatistics:
    """All per-mode statistics of a partition (the paper's Table III rows)."""

    strategy: str
    num_ranks: int
    modes: List[ModeStatistics]

    def total_comm_volume(self) -> float:
        return float(sum(m.comm_volume.sum() for m in self.modes)) / 2.0


def collect_partition_statistics(
    tensor: SparseTensor,
    partition: TensorPartition,
    ranks: Sequence[int] | int,
    *,
    trsvd_solver_iterations: int = 1,
    plans: Optional[List[RankPlan]] = None,
    global_plan: Optional[GlobalPlan] = None,
) -> PartitionStatistics:
    """Compute per-mode W_TTMc, W_TRSVD and communication volume per rank.

    The communication volume counts, per rank and mode, the factor rows it
    sends plus receives (``R_n`` doubles per row, line 14 of Algorithm 4) and,
    for fine-grain partitions, the folded/scattered ``y`` entries of the
    TRSVD (2 doubles per cut row per solver iteration, Section III-B.2).
    """
    ranks = check_rank_vector(ranks, tensor.shape)
    if plans is None or global_plan is None:
        global_plan, plans = build_plans(tensor, partition, ranks)
    num_ranks = partition.num_parts
    mode_stats: List[ModeStatistics] = []
    for mode in range(tensor.order):
        ttmc_work = np.zeros(num_ranks, dtype=np.int64)
        trsvd_rows = np.zeros(num_ranks, dtype=np.int64)
        comm = np.zeros(num_ranks, dtype=np.float64)
        for plan in plans:
            mp = plan.modes[mode]
            ttmc_work[plan.rank] = plan.ttmc_nonzeros[mode]
            trsvd_rows[plan.rank] = mp.trsvd_rows
            factor_rows = mp.factor_exchange.send_volume_rows + \
                mp.factor_exchange.receive_volume_rows
            fold_rows = mp.fold.send_volume_rows + mp.fold.receive_volume_rows
            comm[plan.rank] = (
                factor_rows * ranks[mode]
                + 2.0 * fold_rows * trsvd_solver_iterations
            )
        mode_stats.append(
            ModeStatistics(
                mode=mode,
                ttmc_work=ttmc_work,
                trsvd_rows=trsvd_rows,
                comm_volume=comm,
            )
        )
    return PartitionStatistics(
        strategy=partition.strategy, num_ranks=num_ranks, modes=mode_stats
    )


def estimate_iteration_time(
    tensor: SparseTensor,
    partition: TensorPartition,
    ranks: Sequence[int] | int,
    *,
    machine: MachineModel = BGQ_MACHINE,
    trsvd_solver_iterations: int = 1,
    lanczos_vectors: Optional[int] = None,
    statistics: Optional[PartitionStatistics] = None,
) -> float:
    """Modelled time of one HOOI iteration for the given partition.

    Per mode the model takes the slowest rank's TTMc roofline time, the
    slowest rank's TRSVD roofline time (proportional to the rows it
    multiplies), the α–β cost of its point-to-point traffic and the
    collective cost of the TRSVD's per-step allreduce; the core-tensor GEMM
    and its allreduce close the iteration.  Load imbalance therefore shows up
    exactly the way the paper describes: through the max-per-rank terms.
    """
    ranks = check_rank_vector(ranks, tensor.shape)
    if statistics is None:
        statistics = collect_partition_statistics(
            tensor, partition, ranks,
            trsvd_solver_iterations=trsvd_solver_iterations,
        )
    num_ranks = partition.num_parts
    order = tensor.order
    total = 0.0
    for mode in range(order):
        stats = statistics.modes[mode]
        width = kron_width(ranks, mode)
        if lanczos_vectors is None:
            steps_per_restart = 2 * int(ranks[mode]) + 4
        else:
            steps_per_restart = int(lanczos_vectors)
        solver_steps = max(trsvd_solver_iterations, 1) * steps_per_restart

        # Slowest rank's local compute.
        ttmc_time = machine.compute_time(
            ttmc_phase_work(int(stats.ttmc_work.max()), order, ranks, mode)
        )
        trsvd_time = machine.compute_time(
            trsvd_phase_work(
                int(stats.trsvd_rows.max()), ranks, mode,
                solver_iterations=trsvd_solver_iterations,
                lanczos_vectors=steps_per_restart,
            )
        )
        # Slowest rank's point-to-point traffic (α per peer message is folded
        # into an average message size of the factor-row exchange).
        max_volume_bytes = float(stats.comm_volume.max()) * _BYTES
        p2p_time = machine.message_time(max_volume_bytes) if max_volume_bytes else 0.0
        # One allreduce of the short x vector per Lanczos step (MTxV), plus the
        # small dot-product allreduces (folded into the same term).
        allreduce_time = solver_steps * machine.collective_time(
            "allreduce", width * _BYTES, num_ranks
        )
        total += ttmc_time + trsvd_time + p2p_time + allreduce_time

    # Core tensor: local GEMM on the slowest rank plus an allreduce of G.
    last_rows = statistics.modes[order - 1].trsvd_rows
    core_time = machine.compute_time(
        core_phase_work(int(last_rows.max()), ranks)
    )
    core_width = int(np.prod(ranks))
    total += core_time + machine.collective_time(
        "allreduce", core_width * _BYTES, num_ranks
    )
    return total
