"""Distributed-memory parallel HOOI (Algorithm 4 of the paper).

The same SPMD program implements both task grains; the only differences are
the rows each rank's TTMc produces (owned rows for coarse grain, the local
``J_n`` for fine grain — line 4 vs line 6 of Algorithm 4) and whether the
TRSVD has to fold partial results (fine grain only).  Per iteration and mode:

1. local numeric TTMc over the rank's update lists (lines 9-12);
2. distributed matrix-free TRSVD of the (row- or sum-distributed) ``Y_(n)``
   (line 13);
3. point-to-point exchange of the updated ``U_n`` rows (line 14);

and once per iteration the core tensor is formed from the last mode's TTMc
with a local GEMM followed by an all-reduce (lines 15-16), from which every
rank evaluates the fit.

The per-rank iteration loop is the engine's
(:class:`repro.engine.driver.HOOIEngine`); :class:`DistributedBackend` plugs
the rank-local TTMc, the communication-aware TRSVD + factor exchange and the
all-reduced core formation into its hook points, and additionally keeps the
per-rank work / communication / simulated-time statistics that the paper's
Tables II-IV report.  The driver :func:`distributed_hooi` builds the plans,
runs the SPMD program on the simulated MPI world, checks that all ranks
agree, and packages the results.

**Hybrid ranks** (the paper's headline configuration, Table V on top of
Algorithm 4): each rank's local TTMc phase runs through the same
rank-scoped backend composition the single-node drivers use
(:func:`repro.engine.dimtree.resolve_ttmc_backend`), so
``HOOIOptions(execution="thread", num_workers=T)`` nests a ``T``-thread
worker team inside every simulated rank (the row-disjoint lock-free
decomposition of :mod:`repro.parallel.shared_ttmc` over the rank's update
lists) and ``ttmc_strategy="dimtree"`` builds a rank-local dimension tree
over the rank's nonzeros whose leaves serve only the rank's owned/local rows
(:meth:`~repro.engine.dimtree.DimensionTree.leaf_matricized` with
``local_rows``).  Execution strategy changes local compute only: results
match the sequential-rank run to 1e-10 and the communication statistics are
byte-identical.  ``execution="process"`` is rejected — one worker-process
pool per simulated rank would oversubscribe the node
(:meth:`~repro.core.hooi.HOOIOptions.validate`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dense import fold
from repro.core.hooi import HOOIOptions
from repro.core.hosvd import initialize_factors
from repro.core.sparse_tensor import SparseTensor
from repro.core.tucker import TuckerTensor
from repro.distributed.dist_trsvd import (
    DistributedTTMcMatrix,
    distributed_lanczos_svd,
)
from repro.distributed.factor_exchange import exchange_factor_rows
from repro.distributed.plan import GlobalPlan, RankPlan, build_plans
from repro.engine.backend import ExecutionBackend
from repro.engine.driver import HOOIEngine
from repro.parallel.work import core_phase_work, ttmc_phase_work
from repro.partition.strategies import TensorPartition
from repro.simmpi.communicator import Communicator
from repro.simmpi.launcher import run_spmd
from repro.simmpi.machine import BGQ_MACHINE, MachineModel
from repro.util.validation import check_rank_vector

__all__ = [
    "RankRunResult",
    "DistributedHOOIResult",
    "DistributedBackend",
    "distributed_hooi",
    "hooi_rank_program",
]


@dataclass
class RankRunResult:
    """Per-rank outcome of the SPMD HOOI program."""

    rank: int
    fit_history: List[float]
    core: np.ndarray
    owned_factor_rows: List[Tuple[np.ndarray, np.ndarray]]   # (rows, values) per mode
    iteration_sim_times: List[float]          # simulated seconds per iteration
    iteration_wall_times: List[float]         # measured seconds per iteration
    phase_sim_times: Dict[str, float]         # simulated breakdown (ttmc/trsvd/...)
    per_mode_comm_bytes: List[int]            # cumulative traffic charged per mode
    ttmc_work: List[int]                      # W_TTMc per mode (contributions)
    trsvd_rows: List[int]                     # W_TRSVD per mode (rows multiplied)
    trsvd_iterations: List[int]               # restart counts observed
    iterations: int = 0                       # iterations executed by the engine
    converged: bool = False                   # engine convergence decision
    comm_stats: Optional[Dict[str, int]] = None   # CommStats.snapshot() per rank


@dataclass
class DistributedHOOIResult:
    """Driver-level result: assembled decomposition + per-rank statistics."""

    decomposition: TuckerTensor
    fit_history: List[float]
    iterations: int
    converged: bool
    rank_results: List[RankRunResult]
    strategy: str
    num_ranks: int
    simulated_time_per_iteration: float
    wall_time_per_iteration: float

    @property
    def fit(self) -> float:
        """Final fit; raises on an empty history (see ``HOOIResult.fit``)."""
        if not self.fit_history:
            raise ValueError(
                "fit_history is empty: the distributed run did not complete "
                "an iteration (a completed run always records at least the "
                "final fit, even with track_fit=False)"
            )
        return self.fit_history[-1]

    def comm_volume_elements(self) -> np.ndarray:
        """Per-rank total communication volume in doubles (all iterations)."""
        return np.array(
            [sum(r.per_mode_comm_bytes) / 8.0 for r in self.rank_results]
        )

    def phase_fractions(self) -> Dict[str, float]:
        """Average simulated share of TTMc / TRSVD / core time (Table IV)."""
        totals: Dict[str, float] = {}
        for r in self.rank_results:
            for key, value in r.phase_sim_times.items():
                totals[key] = totals.get(key, 0.0) + value
        grand = sum(totals.values())
        if grand <= 0:
            return {k: 0.0 for k in totals}
        return {k: v / grand for k, v in totals.items()}


class DistributedBackend(ExecutionBackend):
    """Per-rank execution of Algorithm 4 behind the engine's hook points.

    Besides executing the three heavy steps with the plan's communication
    schedules, the backend advances the rank's simulated clock through the
    machine model and accumulates the per-phase / per-mode statistics the
    experiment tables report.

    The local TTMc phase is delegated to a *rank-scoped* single-node backend
    (``resolve_ttmc_backend(options)`` over the rank's local tensor), so
    ``execution="thread"`` and ``ttmc_strategy="dimtree"`` compose with both
    task grains exactly as on the single-node drivers — the paper's hybrid
    MPI+threads configuration.  With ``execution="thread"`` the simulated
    clock charges compute phases at ``num_workers`` threads through the node
    roofline model (Table V's per-thread model) instead of the machine's
    default ``threads_per_rank``.
    """

    name = "distributed"

    def __init__(
        self,
        comm: Communicator,
        plan: RankPlan,
        global_plan: GlobalPlan,
        initial_factors: List[np.ndarray],
    ) -> None:
        self.comm = comm
        self.plan = plan
        self.global_plan = global_plan
        self._initial_factors = initial_factors
        # Per-rank statistics accumulated through the hooks (wall-clock
        # iteration times come from the engine's own ``iteration_seconds``).
        self.iteration_sim_times: List[float] = []
        self.phase_sim: Dict[str, float] = {"ttmc": 0.0, "trsvd": 0.0, "core": 0.0}
        self.per_mode_comm: List[int] = [0] * plan.order
        self.trsvd_iteration_counts: List[int] = []
        self.local_backend: Optional[ExecutionBackend] = None
        self._model_threads: Optional[int] = None
        self._block_rows: Optional[np.ndarray] = None
        self._mode_comm_before = 0
        self._iter_clock_start = 0.0

    # -- setup ----------------------------------------------------------- #
    def tensor_norm(self, eng) -> float:
        return self.global_plan.norm_x

    def initial_factors(self, eng) -> List[np.ndarray]:
        return [np.array(f, copy=True) for f in self._initial_factors]

    def prepare(self, eng) -> None:
        from repro.engine.dimtree import resolve_ttmc_backend

        # Fail fast when the backend is driven directly (the driver already
        # checks before launching the SPMD world).
        eng.options.validate(context="distributed")
        execution = eng.options.execution or "sequential"
        # Thread-level work items feed the Table V per-thread roofline: a
        # hybrid rank charges its compute phases at its own thread count.
        self._model_threads = (
            int(eng.options.num_workers) if execution == "thread" else None
        )
        # Rank-scoped backend: the same composition the single-node drivers
        # resolve, built over the rank's local tensor (``eng.tensor`` *is*
        # ``plan.local_tensor``) — per-mode symbolic data or a rank-local
        # dimension tree, sequential or nested worker threads.
        self.local_backend = resolve_ttmc_backend(eng.options)
        strategy = eng.options.ttmc_strategy or "per-mode"
        tensor_format = eng.options.tensor_format or "coo"
        if strategy == "per-mode" and tensor_format == "coo":
            # The plan already built this rank's symbolic TTMc data
            # (index-only, so the dtype cast is irrelevant); seed the
            # backend instead of redoing the per-mode argsorts.
            self.local_backend.symbolic = self.plan.symbolic
        else:
            # Rank-local dimension tree or rank-local CSF trees, built over
            # the rank's local tensor (global index space, local nonzeros).
            self.local_backend.prepare(eng)
        # Rows each mode's local TTMc produces (line 4 vs 6 of Algorithm 4):
        # fine grain the local ``J_n``, coarse grain the owned slices — in
        # both cases intersected with the local ``J_n``, since a row without
        # local nonzeros contributes nothing.
        self.compute_block_rows: List[np.ndarray] = []
        for mode in range(eng.order):
            sym_rows = self.plan.symbolic[mode].rows
            targets = self.plan.modes[mode].compute_rows
            rows = np.intersect1d(sym_rows, targets, assume_unique=True)
            self.compute_block_rows.append(rows.astype(np.int64))

    # -- hooks: clocks and communication counters ------------------------ #
    def on_iteration_start(self, eng, iteration: int) -> None:
        self._iter_clock_start = self.comm.clock.now

    def on_iteration_end(self, eng, iteration: int) -> None:
        self.iteration_sim_times.append(self.comm.clock.now - self._iter_clock_start)

    def on_mode_start(self, eng, mode: int) -> None:
        self._mode_comm_before = self.comm.stats.total_bytes

    def on_mode_end(self, eng, mode: int) -> None:
        self.per_mode_comm[mode] += (
            self.comm.stats.total_bytes - self._mode_comm_before
        )

    # -- the three heavy steps ------------------------------------------- #
    def compute_ttmc(self, eng, mode: int) -> np.ndarray:
        """Local numeric TTMc over the rank's update lists (lines 9-12).

        Delegated to the rank-scoped backend's compact row-block seam, so
        the thread / dimension-tree compositions reuse the single-node
        kernels unchanged.
        """
        clock_before = self.comm.clock.now
        rows = self.compute_block_rows[mode]
        block = self.local_backend.compute_ttmc_rows(eng, mode, rows)
        self._block_rows = rows
        self.comm.advance_compute(
            self.comm.machine.compute_time(
                ttmc_phase_work(
                    self.plan.ttmc_nonzeros[mode], eng.order, eng.ranks, mode
                ),
                threads=self._model_threads,
            ),
            category="ttmc",
        )
        self.phase_sim["ttmc"] += self.comm.clock.now - clock_before
        return block

    def update_factor(self, eng, mode: int, block: np.ndarray):
        """Distributed TRSVD (line 13) + factor-row exchange (line 14)."""
        clock_before = self.comm.clock.now
        mode_plan = self.plan.modes[mode]
        op = DistributedTTMcMatrix(
            self.comm,
            mode_plan,
            self._block_rows,
            block,
            model_threads=self._model_threads,
        )
        trsvd = distributed_lanczos_svd(
            op,
            eng.ranks[mode],
            tol=eng.options.trsvd_tol,
            seed=eng.options.seed if eng.options.seed is not None else 0,
        )
        self.trsvd_iteration_counts.append(trsvd.iterations)

        # The solver may return fewer columns than requested when the matrix
        # has fewer non-empty rows than the rank (tiny tensors); the missing
        # columns stay zero.
        new_factor = np.zeros(
            (self.plan.shape[mode], eng.ranks[mode]), dtype=eng.dtype
        )
        got = trsvd.left_owned.shape[1]
        new_factor[mode_plan.owned_nonempty_rows, :got] = trsvd.left_owned
        exchange_factor_rows(self.comm, mode_plan.factor_exchange, new_factor)
        # The rank-local TTMc backend never sees this factor refresh; tell it
        # so cached state (the dimension tree's partial chains) invalidates.
        self.local_backend.notify_factor_updated(eng, mode)
        self.phase_sim["trsvd"] += self.comm.clock.now - clock_before
        return new_factor, None

    def form_core(self, eng, last_block: np.ndarray) -> np.ndarray:
        """Core tensor: local GEMM on ``Y_(N)`` + all-reduce (lines 15-16)."""
        clock_before = self.comm.clock.now
        last_rows = self._block_rows
        if last_rows is not None and last_rows.size:
            core_local = eng.factors[-1][last_rows].T @ last_block
        else:
            width = int(np.prod([eng.ranks[t] for t in range(eng.order - 1)]))
            core_local = np.zeros((eng.ranks[-1], width), dtype=eng.dtype)
        self.comm.advance_compute(
            self.comm.machine.compute_time(
                core_phase_work(
                    int(last_rows.size) if last_rows is not None else 0, eng.ranks
                ),
                threads=self._model_threads,
            ),
            category="core",
        )
        core_mat = self.comm.allreduce(core_local)
        core = fold(core_mat, eng.order - 1, eng.ranks)
        self.phase_sim["core"] += self.comm.clock.now - clock_before
        return core

    def finalize(self, eng) -> None:
        if self.local_backend is not None:
            self.local_backend.finalize(eng)


def hooi_rank_program(
    comm: Communicator,
    plans: List[RankPlan],
    global_plan: GlobalPlan,
    initial_factors: List[np.ndarray],
    options: HOOIOptions,
    callback: Optional[Callable[[int, float], None]] = None,
) -> RankRunResult:
    """The SPMD body executed by every simulated rank (Algorithm 4).

    ``callback(iteration, fit)`` fires on rank 0 only (every rank computes
    the identical fit, so one invocation per tracked iteration mirrors the
    single-node drivers).
    """
    plan = plans[comm.rank]
    backend = DistributedBackend(comm, plan, global_plan, initial_factors)
    engine = HOOIEngine(
        plan.local_tensor, plan.ranks_requested, options, backend=backend
    )
    result = engine.run(callback=callback if comm.rank == 0 else None)

    owned_factor_rows = [
        (plan.modes[mode].owned_nonempty_rows,
         engine.factors[mode][plan.modes[mode].owned_nonempty_rows].copy())
        for mode in range(plan.order)
    ]
    return RankRunResult(
        rank=comm.rank,
        fit_history=list(result.fit_history),
        core=result.decomposition.core,
        owned_factor_rows=owned_factor_rows,
        iteration_sim_times=backend.iteration_sim_times,
        iteration_wall_times=list(engine.iteration_seconds),
        phase_sim_times=backend.phase_sim,
        per_mode_comm_bytes=backend.per_mode_comm,
        ttmc_work=list(plan.ttmc_nonzeros),
        trsvd_rows=[mp.trsvd_rows for mp in plan.modes],
        trsvd_iterations=backend.trsvd_iteration_counts,
        iterations=result.iterations,
        converged=result.converged,
        # Full per-rank communication counters (bytes, message counts,
        # collective traffic): execution strategy only changes local
        # compute, so these must be byte-identical across hybrid configs.
        comm_stats=comm.stats.snapshot(),
    )


def distributed_hooi(
    tensor: SparseTensor,
    ranks: Sequence[int] | int,
    partition: TensorPartition,
    options: Optional[HOOIOptions] = None,
    *,
    machine: MachineModel = BGQ_MACHINE,
    callback: Optional[Callable[[int, float], None]] = None,
) -> DistributedHOOIResult:
    """Run Algorithm 4 on the simulated MPI world and assemble the results.

    Option composition is checked by
    :meth:`~repro.core.hooi.HOOIOptions.validate` with the ``"distributed"``
    context: ``execution`` may be ``"sequential"`` or ``"thread"`` (hybrid
    ranks), ``ttmc_strategy`` may be ``"per-mode"`` or ``"dimtree"``
    (rank-local trees), ``trsvd_method`` must be ``"lanczos"``.
    ``callback(iteration, fit)`` is invoked once per tracked iteration
    (on rank 0), exactly as in the single-node drivers; with
    ``track_fit=False`` it never fires but the result's single final fit is
    still recorded.
    """
    options = (options or HOOIOptions()).validate(context="distributed")
    ranks = check_rank_vector(ranks, tensor.shape)
    global_plan, plans = build_plans(tensor, partition, ranks)
    initial_factors = initialize_factors(
        tensor, ranks, init=options.init, seed=options.seed
    )

    spmd = run_spmd(
        hooi_rank_program,
        partition.num_parts,
        plans,
        global_plan,
        initial_factors,
        options,
        callback,
        machine=machine,
    )
    rank_results: List[RankRunResult] = spmd.values

    # All ranks compute identical fit histories and cores; use rank 0's.
    reference = rank_results[0]
    for rr in rank_results[1:]:
        if not np.allclose(rr.fit_history, reference.fit_history, atol=1e-9):
            raise RuntimeError("ranks disagree on the fit history — SPMD bug")

    # Assemble the factor matrices from the owned rows.
    factors = [
        np.zeros((tensor.shape[mode], ranks[mode]), dtype=reference.core.dtype)
        for mode in range(tensor.order)
    ]
    for rr in rank_results:
        for mode, (rows, values) in enumerate(rr.owned_factor_rows):
            factors[mode][rows] = values

    decomposition = TuckerTensor(core=reference.core, factors=factors)
    iterations = reference.iterations
    sim_times = np.array(
        [
            max(rr.iteration_sim_times[i] for rr in rank_results)
            for i in range(iterations)
        ]
    )
    wall_times = np.array(
        [
            max(rr.iteration_wall_times[i] for rr in rank_results)
            for i in range(iterations)
        ]
    )
    return DistributedHOOIResult(
        decomposition=decomposition,
        fit_history=list(reference.fit_history),
        iterations=iterations,
        converged=reference.converged,
        rank_results=rank_results,
        strategy=partition.strategy,
        num_ranks=partition.num_parts,
        simulated_time_per_iteration=float(sim_times.mean()) if sim_times.size else 0.0,
        wall_time_per_iteration=float(wall_times.mean()) if wall_times.size else 0.0,
    )
