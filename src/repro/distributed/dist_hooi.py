"""Distributed-memory parallel HOOI (Algorithm 4 of the paper).

The same SPMD program implements both task grains; the only differences are
the rows each rank's TTMc produces (owned rows for coarse grain, the local
``J_n`` for fine grain — line 4 vs line 6 of Algorithm 4) and whether the
TRSVD has to fold partial results (fine grain only).  Per iteration and mode:

1. local numeric TTMc over the rank's update lists (lines 9-12);
2. distributed matrix-free TRSVD of the (row- or sum-distributed) ``Y_(n)``
   (line 13);
3. point-to-point exchange of the updated ``U_n`` rows (line 14);

and once per iteration the core tensor is formed from the last mode's TTMc
with a local GEMM followed by an all-reduce (lines 15-16), from which every
rank evaluates the fit.

The driver :func:`distributed_hooi` builds the plans, runs the SPMD program on
the simulated MPI world, checks that all ranks agree, and packages the
numerical results together with the per-rank work / communication / simulated
time statistics that the paper's Tables II-IV report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dense import fold
from repro.core.hooi import HOOIOptions
from repro.core.hosvd import initialize_factors
from repro.core.sparse_tensor import SparseTensor
from repro.core.tucker import TuckerTensor
from repro.distributed.dist_trsvd import (
    DistributedTTMcMatrix,
    distributed_lanczos_svd,
)
from repro.distributed.factor_exchange import exchange_factor_rows
from repro.distributed.plan import GlobalPlan, RankPlan, build_plans
from repro.parallel.shared_ttmc import ttmc_row_block
from repro.parallel.work import core_phase_work, ttmc_phase_work
from repro.partition.strategies import TensorPartition
from repro.simmpi.communicator import Communicator
from repro.simmpi.launcher import run_spmd
from repro.simmpi.machine import BGQ_MACHINE, MachineModel
from repro.util.validation import check_rank_vector

__all__ = ["RankRunResult", "DistributedHOOIResult", "distributed_hooi", "hooi_rank_program"]


@dataclass
class RankRunResult:
    """Per-rank outcome of the SPMD HOOI program."""

    rank: int
    fit_history: List[float]
    core: np.ndarray
    owned_factor_rows: List[Tuple[np.ndarray, np.ndarray]]   # (rows, values) per mode
    iteration_sim_times: List[float]          # simulated seconds per iteration
    iteration_wall_times: List[float]         # measured seconds per iteration
    phase_sim_times: Dict[str, float]         # simulated breakdown (ttmc/trsvd/...)
    per_mode_comm_bytes: List[int]            # cumulative traffic charged per mode
    ttmc_work: List[int]                      # W_TTMc per mode (contributions)
    trsvd_rows: List[int]                     # W_TRSVD per mode (rows multiplied)
    trsvd_iterations: List[int]               # restart counts observed


@dataclass
class DistributedHOOIResult:
    """Driver-level result: assembled decomposition + per-rank statistics."""

    decomposition: TuckerTensor
    fit_history: List[float]
    iterations: int
    converged: bool
    rank_results: List[RankRunResult]
    strategy: str
    num_ranks: int
    simulated_time_per_iteration: float
    wall_time_per_iteration: float

    @property
    def fit(self) -> float:
        return self.fit_history[-1] if self.fit_history else float("nan")

    def comm_volume_elements(self) -> np.ndarray:
        """Per-rank total communication volume in doubles (all iterations)."""
        return np.array(
            [sum(r.per_mode_comm_bytes) / 8.0 for r in self.rank_results]
        )

    def phase_fractions(self) -> Dict[str, float]:
        """Average simulated share of TTMc / TRSVD / core time (Table IV)."""
        totals: Dict[str, float] = {}
        for r in self.rank_results:
            for key, value in r.phase_sim_times.items():
                totals[key] = totals.get(key, 0.0) + value
        grand = sum(totals.values())
        if grand <= 0:
            return {k: 0.0 for k in totals}
        return {k: v / grand for k, v in totals.items()}


def hooi_rank_program(
    comm: Communicator,
    plans: List[RankPlan],
    global_plan: GlobalPlan,
    initial_factors: List[np.ndarray],
    options: HOOIOptions,
) -> RankRunResult:
    """The SPMD body executed by every simulated rank (Algorithm 4)."""
    import time as _time

    plan = plans[comm.rank]
    order = plan.order
    ranks = plan.ranks_requested
    machine = comm.machine
    factors = [np.array(f, dtype=np.float64, copy=True) for f in initial_factors]
    norm_x = global_plan.norm_x

    # Positions of the compute rows inside the local symbolic row lists
    # (fine grain: every local row; coarse grain: the owned slices).
    compute_positions: List[np.ndarray] = []
    for mode in range(order):
        sym_rows = plan.symbolic[mode].rows
        targets = plan.modes[mode].compute_rows
        if targets.size and sym_rows.size:
            pos = np.flatnonzero(np.isin(sym_rows, targets))
        else:
            pos = np.empty(0, dtype=np.int64)
        compute_positions.append(pos.astype(np.int64))

    fit_history: List[float] = []
    iteration_sim_times: List[float] = []
    iteration_wall_times: List[float] = []
    phase_sim: Dict[str, float] = {"ttmc": 0.0, "trsvd": 0.0, "core": 0.0}
    per_mode_comm = [0] * order
    trsvd_iteration_counts: List[int] = []
    core = np.zeros(ranks, dtype=np.float64)
    converged = False

    for iteration in range(options.max_iterations):
        iter_clock_start = comm.clock.now
        iter_wall_start = _time.perf_counter()
        last_block: Optional[np.ndarray] = None
        last_rows: Optional[np.ndarray] = None
        for mode in range(order):
            mode_plan = plan.modes[mode]
            comm_before = comm.stats.total_bytes
            # ---- local numeric TTMc (lines 9-12) -------------------------
            clock_before = comm.clock.now
            positions = compute_positions[mode]
            block = ttmc_row_block(
                plan.local_tensor,
                factors,
                mode,
                plan.symbolic[mode],
                positions,
                block_nnz=options.block_nnz,
            )
            block_rows = plan.symbolic[mode].rows[positions]
            comm.advance_compute(
                machine.compute_time(
                    ttmc_phase_work(plan.ttmc_nonzeros[mode], order, ranks, mode)
                ),
                category="ttmc",
            )
            phase_sim["ttmc"] += comm.clock.now - clock_before

            # ---- distributed TRSVD (line 13) -----------------------------
            clock_before = comm.clock.now
            op = DistributedTTMcMatrix(comm, mode_plan, block_rows, block)
            trsvd = distributed_lanczos_svd(
                op,
                ranks[mode],
                tol=options.trsvd_tol,
                seed=options.seed if options.seed is not None else 0,
            )
            trsvd_iteration_counts.append(trsvd.iterations)

            # ---- refresh U_n and exchange rows (line 14) -----------------
            # The solver may return fewer columns than requested when the
            # matrix has fewer non-empty rows than the rank (tiny tensors);
            # the missing columns stay zero.
            new_factor = np.zeros((plan.shape[mode], ranks[mode]), dtype=np.float64)
            got = trsvd.left_owned.shape[1]
            new_factor[mode_plan.owned_nonempty_rows, :got] = trsvd.left_owned
            exchange_factor_rows(comm, mode_plan.factor_exchange, new_factor)
            factors[mode] = new_factor
            phase_sim["trsvd"] += comm.clock.now - clock_before

            per_mode_comm[mode] += comm.stats.total_bytes - comm_before
            if mode == order - 1:
                last_block = block
                last_rows = block_rows

        # ---- core tensor (lines 15-16) -----------------------------------
        clock_before = comm.clock.now
        if last_rows is not None and last_rows.size:
            core_local = factors[-1][last_rows].T @ last_block
        else:
            width = int(np.prod([ranks[t] for t in range(order - 1)]))
            core_local = np.zeros((ranks[-1], width), dtype=np.float64)
        comm.advance_compute(
            machine.compute_time(
                core_phase_work(int(last_rows.size) if last_rows is not None else 0, ranks)
            ),
            category="core",
        )
        core_mat = comm.allreduce(core_local)
        core = fold(core_mat, order - 1, ranks)
        phase_sim["core"] += comm.clock.now - clock_before

        # ---- fit / convergence (identical decision on every rank) --------
        core_norm = float(np.linalg.norm(core.ravel()))
        residual_sq = max(norm_x**2 - core_norm**2, 0.0)
        fit = 1.0 - float(np.sqrt(residual_sq)) / norm_x if norm_x else 1.0
        fit_history.append(fit)
        iteration_sim_times.append(comm.clock.now - iter_clock_start)
        iteration_wall_times.append(_time.perf_counter() - iter_wall_start)
        if options.track_fit and iteration > 0:
            if abs(fit_history[-1] - fit_history[-2]) < options.tolerance:
                converged = True
                break

    owned_factor_rows = [
        (plan.modes[mode].owned_nonempty_rows,
         factors[mode][plan.modes[mode].owned_nonempty_rows].copy())
        for mode in range(order)
    ]
    return RankRunResult(
        rank=comm.rank,
        fit_history=fit_history,
        core=core,
        owned_factor_rows=owned_factor_rows,
        iteration_sim_times=iteration_sim_times,
        iteration_wall_times=iteration_wall_times,
        phase_sim_times=phase_sim,
        per_mode_comm_bytes=per_mode_comm,
        ttmc_work=list(plan.ttmc_nonzeros),
        trsvd_rows=[mp.trsvd_rows for mp in plan.modes],
        trsvd_iterations=trsvd_iteration_counts,
    )


def distributed_hooi(
    tensor: SparseTensor,
    ranks: Sequence[int] | int,
    partition: TensorPartition,
    options: Optional[HOOIOptions] = None,
    *,
    machine: MachineModel = BGQ_MACHINE,
) -> DistributedHOOIResult:
    """Run Algorithm 4 on the simulated MPI world and assemble the results."""
    options = options or HOOIOptions()
    ranks = check_rank_vector(ranks, tensor.shape)
    global_plan, plans = build_plans(tensor, partition, ranks)
    initial_factors = initialize_factors(
        tensor, ranks, init=options.init, seed=options.seed
    )

    spmd = run_spmd(
        hooi_rank_program,
        partition.num_parts,
        plans,
        global_plan,
        initial_factors,
        options,
        machine=machine,
    )
    rank_results: List[RankRunResult] = spmd.values

    # All ranks compute identical fit histories and cores; use rank 0's.
    reference = rank_results[0]
    for rr in rank_results[1:]:
        if not np.allclose(rr.fit_history, reference.fit_history, atol=1e-9):
            raise RuntimeError("ranks disagree on the fit history — SPMD bug")

    # Assemble the factor matrices from the owned rows.
    factors = [
        np.zeros((tensor.shape[mode], ranks[mode]), dtype=np.float64)
        for mode in range(tensor.order)
    ]
    for rr in rank_results:
        for mode, (rows, values) in enumerate(rr.owned_factor_rows):
            factors[mode][rows] = values

    decomposition = TuckerTensor(core=reference.core, factors=factors)
    iterations = len(reference.fit_history)
    sim_times = np.array(
        [
            max(rr.iteration_sim_times[i] for rr in rank_results)
            for i in range(iterations)
        ]
    )
    wall_times = np.array(
        [
            max(rr.iteration_wall_times[i] for rr in rank_results)
            for i in range(iterations)
        ]
    )
    return DistributedHOOIResult(
        decomposition=decomposition,
        fit_history=list(reference.fit_history),
        iterations=iterations,
        converged=len(reference.fit_history) < options.max_iterations,
        rank_results=rank_results,
        strategy=partition.strategy,
        num_ranks=partition.num_parts,
        simulated_time_per_iteration=float(sim_times.mean()) if sim_times.size else 0.0,
        wall_time_per_iteration=float(wall_times.mean()) if wall_times.size else 0.0,
    )
