"""Distribution plans for the distributed HOOI (Algorithm 4 setup).

Given a :class:`~repro.partition.strategies.TensorPartition`, this module
precomputes — once, outside the HOOI iterations — everything a rank needs:

* its local nonzeros (``X^k``) and the symbolic TTMc of that local tensor;
* the rows it owns in each mode (``I_n^k``) and the rows its local TTMc
  touches (``J_n`` of the local tensor);
* the factor-row exchange plan of each mode (who sends which rows of ``U_n``
  to whom after the mode's TRSVD — Algorithm 4, line 14);
* the fold/scatter plans of the fine-grain TRSVD (which partial ``y`` entries
  are sent to the row owner in the MxV, and back before the MTxV).

Plans are built centrally (the full tensor is available in this simulated
setting) but contain only per-rank information, mirroring what a real MPI
implementation would precompute during its symbolic phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.sparse_tensor import SparseTensor
from repro.core.symbolic import SymbolicTTMc
from repro.partition.strategies import TensorPartition
from repro.util.validation import check_rank_vector

__all__ = ["ExchangePlan", "ModePlan", "RankPlan", "GlobalPlan", "build_plans"]


@dataclass
class ExchangePlan:
    """Point-to-point exchange: row indices to send to / receive from each peer."""

    send: Dict[int, np.ndarray] = field(default_factory=dict)
    receive: Dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def send_volume_rows(self) -> int:
        return int(sum(v.shape[0] for v in self.send.values()))

    @property
    def receive_volume_rows(self) -> int:
        return int(sum(v.shape[0] for v in self.receive.values()))


@dataclass
class ModePlan:
    """Per-mode information of one rank's plan.

    Exchange-plan direction convention: ``receive[peer]`` holds rows this rank
    *needs* whose owner is ``peer``; ``send[peer]`` holds rows this rank *owns*
    that ``peer`` needs.  The same plan therefore serves (a) the factor-row
    exchange after the TRSVD (owners push fresh ``U_n`` rows along ``send``),
    (b) the fine-grain MxV fold (contributors push partial ``y`` entries along
    ``receive``, i.e. towards the owner) and (c) the scatter of summed ``y``
    values back to contributors before the MTxV (along ``send`` again).
    """

    mode: int
    owned_rows: np.ndarray            # rows of U_n / Y_(n) owned by this rank
    owned_nonempty_rows: np.ndarray   # owned rows that are non-empty globally
    compute_rows: np.ndarray          # rows the local TTMc produces (K_n)
    local_rows: np.ndarray            # rows touched by the local tensor (J_n)
    factor_exchange: ExchangePlan     # U_n rows after TRSVD (line 14)
    fold: ExchangePlan                # partial y entries -> row owners (fine MxV)
    trsvd_rows: int                   # rows this rank multiplies in MxV/MTxV


@dataclass
class RankPlan:
    """Everything rank ``k`` needs to execute Algorithm 4."""

    rank: int
    num_ranks: int
    kind: str                          # 'fine' or 'coarse'
    shape: Tuple[int, ...]
    ranks_requested: Tuple[int, ...]   # decomposition ranks R_1..R_N
    local_positions: np.ndarray        # positions into the global nonzero list
    local_tensor: SparseTensor         # the rank's X^k (global index space)
    symbolic: SymbolicTTMc             # symbolic TTMc of the local tensor
    modes: List[ModePlan]
    ttmc_nonzeros: List[int]           # per-mode W_TTMc (contributions computed)

    @property
    def order(self) -> int:
        return len(self.shape)


@dataclass
class GlobalPlan:
    """Data shared by all ranks (computed once at setup)."""

    shape: Tuple[int, ...]
    ranks_requested: Tuple[int, ...]
    norm_x: float
    num_ranks: int
    kind: str
    strategy: str
    nonempty_rows: List[np.ndarray]    # per-mode global J_n


def _exchange_from_pairs(
    needed_by_rank: List[np.ndarray],
    row_owner: np.ndarray,
    num_ranks: int,
) -> List[ExchangePlan]:
    """Build per-rank exchange plans from "rank k needs rows needed_by_rank[k]".

    The owner of a needed row sends it to the requester (unless requester ==
    owner).  Returns one :class:`ExchangePlan` per rank with both directions
    filled in.
    """
    plans = [ExchangePlan() for _ in range(num_ranks)]
    for requester in range(num_ranks):
        rows = needed_by_rank[requester]
        if rows.size == 0:
            continue
        owners = row_owner[rows]
        foreign = owners != requester
        rows_f = rows[foreign]
        owners_f = owners[foreign]
        if rows_f.size == 0:
            continue
        order = np.argsort(owners_f, kind="stable")
        rows_f = rows_f[order]
        owners_f = owners_f[order]
        boundaries = np.flatnonzero(
            np.concatenate(([True], owners_f[1:] != owners_f[:-1]))
        )
        ends = np.concatenate([boundaries[1:], [owners_f.shape[0]]])
        for b, e in zip(boundaries, ends):
            owner = int(owners_f[b])
            segment = rows_f[b:e]
            plans[requester].receive[owner] = segment
            plans[owner].send.setdefault(requester, segment)
    return plans


def build_plans(
    tensor: SparseTensor,
    partition: TensorPartition,
    ranks: Sequence[int] | int,
) -> Tuple[GlobalPlan, List[RankPlan]]:
    """Build the global plan and one :class:`RankPlan` per rank."""
    ranks = check_rank_vector(ranks, tensor.shape)
    num_ranks = partition.num_parts
    order = tensor.order

    nonempty = [tensor.nonempty_rows(mode) for mode in range(order)]
    global_plan = GlobalPlan(
        shape=tensor.shape,
        ranks_requested=ranks,
        norm_x=tensor.norm(),
        num_ranks=num_ranks,
        kind=partition.kind,
        strategy=partition.strategy,
        nonempty_rows=nonempty,
    )

    # Local nonzero sets and local tensors.
    local_positions = [
        partition.local_nonzero_positions(tensor, rank) for rank in range(num_ranks)
    ]
    local_tensors = [tensor.select_nonzeros(pos) for pos in local_positions]
    local_symbolics = [SymbolicTTMc(lt) for lt in local_tensors]

    rank_mode_plans: List[List[ModePlan]] = [[] for _ in range(num_ranks)]
    ttmc_counts: List[List[int]] = [[] for _ in range(num_ranks)]

    for mode in range(order):
        row_owner = partition.row_owner[mode]
        owned_rows = [
            np.flatnonzero(row_owner == rank).astype(np.int64)
            for rank in range(num_ranks)
        ]
        local_rows = [
            local_tensors[rank].nonempty_rows(mode) for rank in range(num_ranks)
        ]
        if partition.kind == "coarse":
            compute_rows = owned_rows
        else:
            compute_rows = local_rows

        # Factor-row exchange (line 14): after the mode's TRSVD every rank
        # needs the fresh U_n rows its *local tensor* references.
        factor_plans = _exchange_from_pairs(local_rows, row_owner, num_ranks)

        # Fine-grain TRSVD fold: partial y entries for local rows that are not
        # owned travel to the owner (and back before the MTxV).  Coarse-grain
        # local rows are exactly the owned rows, so these plans are empty.
        if partition.kind == "fine":
            fold_plans = _exchange_from_pairs(local_rows, row_owner, num_ranks)
        else:
            fold_plans = [ExchangePlan() for _ in range(num_ranks)]

        for rank in range(num_ranks):
            owned_nonempty = np.intersect1d(
                owned_rows[rank], nonempty[mode], assume_unique=True
            )
            if partition.kind == "coarse":
                # W_TTMc: nonzeros of the owned slices in this mode.
                count = int(
                    np.isin(
                        local_tensors[rank].indices[:, mode], owned_rows[rank]
                    ).sum()
                ) if local_tensors[rank].nnz else 0
            else:
                count = local_tensors[rank].nnz
            ttmc_counts[rank].append(count)
            rank_mode_plans[rank].append(
                ModePlan(
                    mode=mode,
                    owned_rows=owned_rows[rank],
                    owned_nonempty_rows=owned_nonempty,
                    compute_rows=compute_rows[rank],
                    local_rows=local_rows[rank],
                    factor_exchange=factor_plans[rank],
                    fold=fold_plans[rank],
                    trsvd_rows=int(owned_nonempty.shape[0])
                    if partition.kind == "coarse"
                    else int(local_rows[rank].shape[0]),
                )
            )

    plans = [
        RankPlan(
            rank=rank,
            num_ranks=num_ranks,
            kind=partition.kind,
            shape=tensor.shape,
            ranks_requested=ranks,
            local_positions=local_positions[rank],
            local_tensor=local_tensors[rank],
            symbolic=local_symbolics[rank],
            modes=rank_mode_plans[rank],
            ttmc_nonzeros=ttmc_counts[rank],
        )
        for rank in range(num_ranks)
    ]
    return global_plan, plans
