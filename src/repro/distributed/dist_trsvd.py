"""Distributed matrix-free TRSVD (Section III-B of the paper).

After the local TTMc step, the matricized tensor ``Y_(n)`` exists either

* **row-distributed** (coarse grain): every rank holds the complete rows it
  owns, or
* **sum-distributed** (fine grain): ``Y_(n) = Σ_k Y^k_(n)`` where every rank
  holds *partial* rows for the mode-``n`` indices its nonzeros touch.

The paper's key point is that the TRSVD only needs MxV and MTxV products, so
the partial results are never assembled.  :class:`DistributedTTMcMatrix`
implements those two products with exactly the communication the paper
prescribes:

* MxV ``y ← Y x``: local multiply, then point-to-point *fold* of the partial
  ``y`` entries to the row owners (one scalar per cut row per iteration);
* MTxV ``xᵀ ← yᵀ Y``: point-to-point *scatter* of the summed ``y`` entries
  back to the contributors, local multiply, then an all-to-all reduction
  (allreduce) of the short ``x`` vector.

``distributed_lanczos_svd`` runs Golub-Kahan Lanczos bidiagonalization on that
operator with the *left* vectors distributed by row ownership and the *right*
vectors (length ``Π_{t≠n} R_t``) replicated; all reductions are allreduces of
short vectors.  Every rank executes the same scalar logic with the same seed,
so the solver state stays bit-identical across ranks without extra
synchronization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.sparse_tensor import as_supported_float
from repro.distributed.plan import ModePlan
from repro.simmpi.communicator import Communicator

__all__ = ["DistributedTTMcMatrix", "DistTRSVDResult", "distributed_lanczos_svd"]

TAG_FOLD = 101
TAG_SCATTER = 102


class DistributedTTMcMatrix:
    """Sum/row-distributed ``Y_(n)`` exposing communication-aware MxV / MTxV.

    Parameters
    ----------
    comm:
        The rank's communicator.
    mode_plan:
        The rank's :class:`~repro.distributed.plan.ModePlan` for this mode.
    block_rows:
        Global row indices of the local block (fine grain: the local ``J_n``;
        coarse grain: the owned non-empty rows).
    local_block:
        ``(len(block_rows), ncols)`` local (partial) rows of ``Y_(n)``.
    charge_time:
        When true (default), local multiplies advance the rank's simulated
        clock through the machine model.
    model_threads:
        Thread count the machine model charges the local multiplies at
        (the hybrid rank's nested team size); ``None`` uses the machine's
        default ``threads_per_rank``.
    """

    def __init__(
        self,
        comm: Communicator,
        mode_plan: ModePlan,
        block_rows: np.ndarray,
        local_block: np.ndarray,
        *,
        charge_time: bool = True,
        model_threads: Optional[int] = None,
    ) -> None:
        self.comm = comm
        self.plan = mode_plan
        self.block_rows = np.asarray(block_rows, dtype=np.int64)
        # A float32 block (the engine's dtype policy) is multiplied as
        # float32; the solver's own float64 vectors promote products exactly.
        self.local_block = np.ascontiguousarray(as_supported_float(local_block))
        if self.local_block.shape[0] != self.block_rows.shape[0]:
            raise ValueError("local_block must have one row per block row")
        self.ncols = int(self.local_block.shape[1])
        self.owned_rows = mode_plan.owned_nonempty_rows
        self.charge_time = charge_time
        self.model_threads = model_threads

        # Position of each block row within the owned segment (or -1).
        owned_pos = {int(r): i for i, r in enumerate(self.owned_rows)}
        self._block_to_owned = np.array(
            [owned_pos.get(int(r), -1) for r in self.block_rows], dtype=np.int64
        )
        self._mine_mask = self._block_to_owned >= 0

        # Fold/scatter peers: rows grouped by the peer on the other side.
        # ``receive[peer]`` = rows I touch but ``peer`` owns (I send partials
        # there and later receive the summed values from there);
        # ``send[peer]``    = rows I own that ``peer`` touches.
        block_pos = {int(r): i for i, r in enumerate(self.block_rows)}
        self._to_owner: List[Tuple[int, np.ndarray]] = []
        for peer, rows in sorted(mode_plan.fold.receive.items()):
            positions = np.array([block_pos[int(r)] for r in rows], dtype=np.int64)
            self._to_owner.append((peer, positions))
        self._from_toucher: List[Tuple[int, np.ndarray]] = []
        for peer, rows in sorted(mode_plan.fold.send.items()):
            positions = np.array([owned_pos[int(r)] for r in rows], dtype=np.int64)
            self._from_toucher.append((peer, positions))

        # Statistics for reporting (one MxV+MTxV pair per Lanczos step).
        self.matvec_count = 0
        self.rmatvec_count = 0

    # ------------------------------------------------------------------ #
    @property
    def local_rows(self) -> int:
        return int(self.block_rows.shape[0])

    @property
    def owned_count(self) -> int:
        return int(self.owned_rows.shape[0])

    def _charge(self, flops: float, streamed: float) -> None:
        if not self.charge_time:
            return
        from repro.parallel.model import PhaseWork  # local import to avoid cycles

        self.comm.advance_compute(
            self.comm.machine.compute_time(
                PhaseWork(flops=flops, streamed_bytes=streamed),
                threads=self.model_threads,
            ),
            category="trsvd",
        )

    # ------------------------------------------------------------------ #
    def matvec(self, v: np.ndarray) -> np.ndarray:
        """``y ← Y x`` returning this rank's *owned* segment of ``y``."""
        v = np.asarray(v, dtype=np.float64)
        partial = self.local_block @ v
        self._charge(2.0 * self.local_rows * self.ncols,
                     8.0 * self.local_rows * self.ncols)
        y = np.zeros(self.owned_count, dtype=np.float64)
        mine = self._mine_mask
        y[self._block_to_owned[mine]] += partial[mine]
        # Fold partial entries to their owners (fine grain only; the lists are
        # empty in the coarse-grain case).
        for owner, positions in self._to_owner:
            self.comm.send(partial[positions], dest=owner, tag=TAG_FOLD)
        for toucher, positions in self._from_toucher:
            data = self.comm.recv(source=toucher, tag=TAG_FOLD)
            y[positions] += data
        self.matvec_count += 1
        return y

    def rmatvec(self, y_owned: np.ndarray) -> np.ndarray:
        """``xᵀ ← yᵀ Y`` returning the replicated short vector ``x``."""
        y_owned = np.asarray(y_owned, dtype=np.float64)
        if y_owned.shape[0] != self.owned_count:
            raise ValueError("rmatvec expects this rank's owned y segment")
        y_block = np.zeros(self.local_rows, dtype=np.float64)
        mine = self._mine_mask
        y_block[mine] = y_owned[self._block_to_owned[mine]]
        # Scatter the summed values back to the contributors.
        for toucher, positions in self._from_toucher:
            self.comm.send(y_owned[positions], dest=toucher, tag=TAG_SCATTER)
        for owner, positions in self._to_owner:
            data = self.comm.recv(source=owner, tag=TAG_SCATTER)
            y_block[positions] = data
        x_local = self.local_block.T @ y_block
        self._charge(2.0 * self.local_rows * self.ncols,
                     8.0 * self.local_rows * self.ncols)
        x = self.comm.allreduce(x_local)
        self.rmatvec_count += 1
        return x

    # ------------------------------------------------------------------ #
    def dot_owned(self, a: np.ndarray, b: np.ndarray) -> float:
        """Global dot product of two owned-segment vectors."""
        local = float(a @ b)
        return float(self.comm.allreduce(np.array([local]))[0])

    def block_dot_owned(self, basis: np.ndarray, vector: np.ndarray) -> np.ndarray:
        """Global ``basisᵀ @ vector`` for an owned-segment basis (m × j)."""
        if basis.shape[1] == 0:
            return np.zeros(0, dtype=np.float64)
        local = basis.T @ vector
        return self.comm.allreduce(local)


@dataclass
class DistTRSVDResult:
    """Outcome of a distributed truncated SVD solve (per rank)."""

    left_owned: np.ndarray          # (num owned non-empty rows, k)
    singular_values: np.ndarray
    iterations: int
    matvecs: int
    rmatvecs: int
    converged: bool


def distributed_lanczos_svd(
    op: DistributedTTMcMatrix,
    rank: int,
    *,
    tol: float = 1e-8,
    max_restarts: int = 12,
    subspace: Optional[int] = None,
    seed: Optional[int] = 0,
) -> DistTRSVDResult:
    """Golub-Kahan Lanczos bidiagonalization on a distributed operator.

    The algorithm is the distributed counterpart of
    :func:`repro.core.trsvd.lanczos_svd`: right (short) vectors are replicated,
    left vectors live on the owned row segments, and every inner product is a
    short allreduce.  All ranks run the identical scalar control flow, so no
    additional synchronization is required for the restart decisions.
    """
    total_rows = int(
        op.comm.allreduce(np.array([op.owned_count], dtype=np.float64))[0]
    )
    n = op.ncols
    rank = int(rank)
    if rank <= 0:
        raise ValueError("rank must be positive")
    rank = min(rank, total_rows, n) if total_rows > 0 else min(rank, n)
    rank = max(rank, 1)
    if subspace is None:
        subspace = max(2 * rank + 4, rank + 8)
    cap = min(total_rows, n) if total_rows > 0 else n
    subspace = int(min(max(subspace, rank + 1), max(cap, 1)))

    # ``rng`` drives decisions that must be identical on every rank (the right
    # starting vector and right-side deflations); it must therefore see the
    # same number of draws everywhere.  ``local_rng`` is only used for
    # left-side (owned-segment) deflation vectors, whose content is allowed to
    # differ across ranks, so drawing a rank-dependent number of values from
    # it cannot desynchronize the shared stream.
    rng = np.random.default_rng(seed)
    local_rng = np.random.default_rng(None if seed is None else seed + 7919 * (op.comm.rank + 1))
    v = rng.standard_normal(n)
    v /= np.linalg.norm(v)

    m_local = op.owned_count
    V = np.zeros((n, subspace + 1))
    U = np.zeros((m_local, subspace))
    alphas = np.zeros(subspace)
    betas = np.zeros(subspace)

    V[:, 0] = v
    start = 0
    beta_prev = 0.0
    u_prev = np.zeros(m_local)
    locked_sigma = np.zeros(0)
    restart_coupling = np.zeros(0)

    left = np.zeros((m_local, rank))
    sigma = np.zeros(rank)
    converged = False
    total_restarts = 0

    for restart in range(max_restarts):
        total_restarts = restart + 1
        j = start
        while j < subspace:
            u = op.matvec(V[:, j]) - beta_prev * u_prev
            if j > 0:
                coeffs = op.block_dot_owned(U[:, :j], u)
                u -= U[:, :j] @ coeffs
            alpha = float(np.sqrt(max(op.dot_owned(u, u), 0.0)))
            if alpha < 1e-14:
                # Deflate with a random direction orthogonal to the basis.
                u = local_rng.standard_normal(m_local) if m_local else u
                if j > 0:
                    coeffs = op.block_dot_owned(U[:, :j], u)
                    u -= U[:, :j] @ coeffs
                norm_u = float(np.sqrt(max(op.dot_owned(u, u), 0.0)))
                if norm_u > 0:
                    u = u / norm_u
                alpha = 0.0
            else:
                u = u / alpha
            U[:, j] = u
            alphas[j] = alpha

            w = op.rmatvec(u) - alpha * V[:, j]
            w -= V[:, : j + 1] @ (V[:, : j + 1].T @ w)
            beta = float(np.linalg.norm(w))
            if beta < 1e-14:
                w = rng.standard_normal(n)
                w -= V[:, : j + 1] @ (V[:, : j + 1].T @ w)
                norm_w = float(np.linalg.norm(w))
                if norm_w > 0:
                    w = w / norm_w
                beta = 0.0
            else:
                w = w / beta
            V[:, j + 1] = w
            betas[j] = beta
            beta_prev = beta
            u_prev = u
            j += 1

        B = np.zeros((subspace, subspace))
        if start > 0:
            B[:start, :start] = np.diag(locked_sigma)
            B[:start, start] = restart_coupling
        for i in range(start, subspace):
            B[i, i] = alphas[i]
            if i + 1 < subspace:
                B[i, i + 1] = betas[i]

        P, s, Qt = np.linalg.svd(B)
        sigma = s[:rank]
        beta_last = betas[subspace - 1]
        residuals = np.abs(beta_last * P[subspace - 1, :rank])
        threshold = tol * max(float(s[0]), 1e-300)
        left = U[:, :subspace] @ P[:, :rank]
        right = V[:, :subspace] @ Qt.T
        # Stop on convergence, on the restart budget, or when the subspace
        # already spans the whole problem (rank == subspace), in which case a
        # thick restart has nothing left to add.
        if (
            np.all(residuals <= threshold)
            or restart == max_restarts - 1
            or rank >= subspace
        ):
            converged = bool(np.all(residuals <= threshold)) or rank >= subspace
            break

        keep = rank
        locked_sigma = s[:keep].copy()
        restart_coupling = beta_last * P[subspace - 1, :keep].copy()
        U[:, :keep] = left[:, :keep]
        V[:, :keep] = right[:, :keep]
        V[:, keep] = V[:, subspace]
        start = keep
        beta_prev = 0.0
        u_prev = np.zeros(m_local)

    return DistTRSVDResult(
        left_owned=np.ascontiguousarray(left[:, :rank]),
        singular_values=np.ascontiguousarray(sigma[:rank]),
        iterations=total_restarts,
        matvecs=op.matvec_count,
        rmatvecs=op.rmatvec_count,
        converged=converged,
    )
