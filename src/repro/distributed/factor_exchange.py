"""Factor-row exchange (Algorithm 4, line 14).

After the mode-``n`` TRSVD each rank holds the fresh rows of ``U_n`` it owns.
Before the next TTMc can run, every rank must receive the fresh values of the
``U_n`` rows its *local tensor* references.  The rows to move were computed
once in the plan (``ModePlan.factor_exchange``); each message carries
``len(rows) × R_n`` doubles, which is the per-mode factor communication the
paper contrasts with the (much larger) ``Π_{t≠n} R_t``-wide partial TTMc rows
the fine-grain algorithm avoids sending.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.plan import ExchangePlan
from repro.simmpi.communicator import Communicator

__all__ = ["exchange_factor_rows"]

TAG_FACTOR = 103


def exchange_factor_rows(
    comm: Communicator,
    exchange: ExchangePlan,
    factor: np.ndarray,
) -> np.ndarray:
    """Send owned rows of ``factor`` to the ranks that need them; fill received rows.

    ``factor`` is this rank's full-size (``I_n × R_n``) copy of the factor
    matrix with the owned rows already up to date; it is updated in place with
    the rows received from their owners and returned for convenience.
    """
    # Buffered sends first (deadlock-free in the simulated runtime), then
    # receives in a deterministic (sorted peer) order.
    for peer in sorted(exchange.send):
        rows = exchange.send[peer]
        comm.send(np.ascontiguousarray(factor[rows]), dest=peer, tag=TAG_FACTOR)
    for peer in sorted(exchange.receive):
        rows = exchange.receive[peer]
        data = comm.recv(source=peer, tag=TAG_FACTOR)
        factor[rows] = data
    return factor
