"""Distributed-memory parallel HOOI (coarse- and fine-grain, Algorithm 4)."""

from repro.distributed.plan import (
    ExchangePlan,
    GlobalPlan,
    ModePlan,
    RankPlan,
    build_plans,
)
from repro.distributed.dist_trsvd import (
    DistributedTTMcMatrix,
    DistTRSVDResult,
    distributed_lanczos_svd,
)
from repro.distributed.factor_exchange import exchange_factor_rows
from repro.distributed.dist_hooi import (
    DistributedHOOIResult,
    RankRunResult,
    distributed_hooi,
    hooi_rank_program,
)
from repro.distributed.performance import (
    ModeStatistics,
    PartitionStatistics,
    collect_partition_statistics,
    estimate_iteration_time,
)

__all__ = [
    "ExchangePlan",
    "GlobalPlan",
    "ModePlan",
    "RankPlan",
    "build_plans",
    "DistributedTTMcMatrix",
    "DistTRSVDResult",
    "distributed_lanczos_svd",
    "exchange_factor_rows",
    "DistributedHOOIResult",
    "RankRunResult",
    "distributed_hooi",
    "hooi_rank_program",
    "ModeStatistics",
    "PartitionStatistics",
    "collect_partition_statistics",
    "estimate_iteration_time",
]
