"""Minimal logging configuration for the library.

The library never configures the root logger; it only provides a helper to
fetch namespaced loggers and an opt-in convenience to attach a stderr handler
when scripts (examples, benchmarks) want progress output.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "enable_console_logging"]

_LIBRARY_ROOT = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under the library root."""
    if name.startswith(_LIBRARY_ROOT):
        return logging.getLogger(name)
    return logging.getLogger(f"{_LIBRARY_ROOT}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a simple stderr handler to the library's root logger.

    Calling this twice is safe; the handler is only added once.
    """
    root = logging.getLogger(_LIBRARY_ROOT)
    root.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in root.handlers):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        root.addHandler(handler)
    return root
