"""Shared utilities: validation, timing, logging and small linear-algebra helpers.

These modules are deliberately dependency-free (NumPy only) so that every
other subpackage can use them without creating import cycles.
"""

from repro.util.validation import (
    check_axis,
    check_dtype_real,
    check_positive_int,
    check_rank_vector,
    check_same_order,
    check_shape_vector,
)
from repro.util.timing import Stopwatch, TimingBreakdown
from repro.util.linalg import (
    gram_leading_eigvecs,
    normalize_columns,
    orthonormalize,
    random_orthonormal,
)

__all__ = [
    "check_axis",
    "check_dtype_real",
    "check_positive_int",
    "check_rank_vector",
    "check_same_order",
    "check_shape_vector",
    "Stopwatch",
    "TimingBreakdown",
    "gram_leading_eigvecs",
    "normalize_columns",
    "orthonormalize",
    "random_orthonormal",
]
