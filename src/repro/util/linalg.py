"""Small dense linear-algebra helpers shared by the TRSVD and HOOI code."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "orthonormalize",
    "random_orthonormal",
    "normalize_columns",
    "gram_leading_eigvecs",
]


def orthonormalize(matrix: np.ndarray) -> np.ndarray:
    """Return an orthonormal basis for the column space of ``matrix``.

    Uses a thin QR factorization; columns that are (numerically) linearly
    dependent are replaced by random directions re-orthogonalized against the
    basis, so the result always has exactly ``matrix.shape[1]`` orthonormal
    columns (useful when a factor matrix loses rank during HOOI).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("orthonormalize expects a 2-D array")
    rows, cols = matrix.shape
    if cols > rows:
        raise ValueError(
            f"cannot build {cols} orthonormal columns in dimension {rows}"
        )
    q, r = np.linalg.qr(matrix)
    # Detect rank deficiency from tiny diagonal entries of R.
    diag = np.abs(np.diag(r))
    tol = max(rows, cols) * np.finfo(np.float64).eps * (diag.max() if diag.size else 0.0)
    deficient = np.flatnonzero(diag <= tol)
    if deficient.size:
        rng = np.random.default_rng(0)
        for j in deficient:
            v = rng.standard_normal(rows)
            for _ in range(2):  # two rounds of classical Gram-Schmidt
                v -= q @ (q.T @ v)
            norm = np.linalg.norm(v)
            if norm > 0:
                q[:, j] = v / norm
    return q


def random_orthonormal(
    rows: int, cols: int, seed: Optional[int] = None
) -> np.ndarray:
    """Return a ``rows x cols`` matrix with orthonormal columns (Haar-ish)."""
    if cols > rows:
        raise ValueError(f"cannot build {cols} orthonormal columns in dimension {rows}")
    rng = np.random.default_rng(seed)
    return orthonormalize(rng.standard_normal((rows, cols)))


def normalize_columns(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Scale each column of ``matrix`` to unit 2-norm.

    Returns ``(normalized, norms)``; zero columns are left untouched and get a
    reported norm of 1 to keep downstream divisions safe (the CP-ALS baseline
    relies on this convention).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    norms = np.linalg.norm(matrix, axis=0)
    safe = np.where(norms > 0, norms, 1.0)
    return matrix / safe, np.where(norms > 0, norms, 1.0)


def gram_leading_eigvecs(matrix: np.ndarray, rank: int) -> np.ndarray:
    """Leading left singular vectors of ``matrix`` via the Gram matrix.

    This is the dense-Tucker approach the paper contrasts against (forming
    ``Y Yᵀ`` and taking its eigenvectors); it is exposed both as a correctness
    oracle in the tests and as part of the dense-HOOI baseline.  Only suitable
    when ``matrix.shape[0]`` is modest.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    rank = int(rank)
    if rank <= 0:
        raise ValueError("rank must be positive")
    rank = min(rank, matrix.shape[0])
    gram = matrix @ matrix.T
    # eigh returns ascending eigenvalues; take the trailing `rank` columns.
    _, vecs = np.linalg.eigh(gram)
    lead = vecs[:, ::-1][:, :rank]
    return np.ascontiguousarray(lead)
