"""Timing helpers used by the HOOI drivers and the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional
from contextlib import contextmanager

__all__ = ["Stopwatch", "TimingBreakdown"]


class Stopwatch:
    """A simple cumulative stopwatch.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: Optional[float] = None

    def start(self) -> "Stopwatch":
        if self._start is not None:
            raise RuntimeError("Stopwatch already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Stopwatch is not running")
        delta = time.perf_counter() - self._start
        self.elapsed += delta
        self._start = None
        return delta

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class TimingBreakdown:
    """Named cumulative timers, e.g. ``{"ttmc": 1.2, "trsvd": 0.4, "core": 0.1}``.

    Used by the HOOI drivers to report the per-step breakdown that the paper's
    Table IV presents (relative share of TTMc, TRSVD and core-tensor time).
    """

    totals: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def time(self, key: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(key, time.perf_counter() - t0)

    def add(self, key: str, seconds: float) -> None:
        self.totals[key] = self.totals.get(key, 0.0) + float(seconds)

    def merge(self, other: "TimingBreakdown") -> "TimingBreakdown":
        for key, value in other.totals.items():
            self.add(key, value)
        return self

    def total(self) -> float:
        return sum(self.totals.values())

    def fractions(self) -> Dict[str, float]:
        """Return each timer's share of the total (empty dict if nothing timed)."""
        total = self.total()
        if total <= 0.0:
            return {k: 0.0 for k in self.totals}
        return {k: v / total for k, v in self.totals.items()}

    def as_percentages(self) -> Dict[str, float]:
        return {k: 100.0 * v for k, v in self.fractions().items()}

    def __getitem__(self, key: str) -> float:
        return self.totals.get(key, 0.0)
