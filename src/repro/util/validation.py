"""Argument validation helpers.

All validators raise :class:`ValueError` or :class:`TypeError` with messages
that name the offending argument, so user code gets actionable errors instead
of cryptic NumPy broadcasting failures deep inside a kernel.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = [
    "check_positive_int",
    "check_axis",
    "check_shape_vector",
    "check_rank_vector",
    "check_same_order",
    "check_dtype_real",
]


def check_positive_int(value: int, name: str) -> int:
    """Return ``value`` as ``int`` after checking it is a positive integer."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_axis(axis: int, order: int, name: str = "mode") -> int:
    """Validate a mode index ``axis`` against a tensor order.

    Negative indices are supported with the usual Python semantics.
    """
    if isinstance(axis, bool) or not isinstance(axis, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(axis).__name__}")
    axis = int(axis)
    if not -order <= axis < order:
        raise ValueError(f"{name} {axis} is out of range for an order-{order} tensor")
    return axis % order


def check_shape_vector(shape: Sequence[int], name: str = "shape") -> Tuple[int, ...]:
    """Validate a tensor shape: a non-empty sequence of positive integers."""
    try:
        out = tuple(int(s) for s in shape)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a sequence of integers") from exc
    if len(out) == 0:
        raise ValueError(f"{name} must have at least one dimension")
    for i, s in enumerate(out):
        if s <= 0:
            raise ValueError(f"{name}[{i}] must be positive, got {s}")
    return out


def check_rank_vector(
    ranks: Sequence[int] | int, shape: Sequence[int], name: str = "ranks"
) -> Tuple[int, ...]:
    """Validate a per-mode rank vector against a tensor shape.

    A scalar rank is broadcast to every mode.  Ranks larger than the mode size
    are clipped to the mode size (requesting more singular vectors than rows
    is never meaningful).
    """
    shape = check_shape_vector(shape, name="shape")
    if isinstance(ranks, (int, np.integer)):
        ranks = [int(ranks)] * len(shape)
    try:
        out = tuple(int(r) for r in ranks)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be an int or a sequence of ints") from exc
    if len(out) != len(shape):
        raise ValueError(
            f"{name} has {len(out)} entries but the tensor has {len(shape)} modes"
        )
    for i, r in enumerate(out):
        if r <= 0:
            raise ValueError(f"{name}[{i}] must be positive, got {r}")
    return tuple(min(r, s) for r, s in zip(out, shape))


def check_same_order(order: int, items: Iterable, name: str) -> None:
    """Check that ``items`` has exactly ``order`` elements."""
    items = list(items)
    if len(items) != order:
        raise ValueError(
            f"{name} must have {order} entries (one per mode), got {len(items)}"
        )


def check_dtype_real(array: np.ndarray, name: str) -> np.ndarray:
    """Ensure ``array`` has a real floating dtype, converting integers to float64."""
    arr = np.asarray(array)
    if np.issubdtype(arr.dtype, np.complexfloating):
        raise TypeError(f"{name} must be real-valued, got dtype {arr.dtype}")
    if not np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(np.float64)
    return arr
