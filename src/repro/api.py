"""The top-level decomposition facade: one serializable entry point.

Every driver grown since PR 1 — :func:`repro.core.hooi.hooi` (sequential /
thread / process execution through the engine), :func:`repro.parallel.
shared_hooi.shared_hooi` (the Algorithm 3 driver with the node roofline
report) and :func:`repro.distributed.dist_hooi.distributed_hooi` (the
simulated-MPI Algorithm 4) — shares :class:`~repro.core.hooi.HOOIOptions`
but exposes its own positional signature.  :func:`decompose` fronts all of
them with one keyword-only signature whose knobs *are* the options fields,
so a call is fully described by ``(tensor, rank, execution, options-dict)``
— the same value-form contract the serving layer's job submissions use
(:meth:`HOOIOptions.from_dict` / :meth:`HOOIOptions.options_fingerprint`).

The driver functions remain the low-level API: reach for them when you need
their extras (``shared_hooi``'s modelled-vs-measured report, the
distributed driver's per-rank statistics).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

from repro.core.hooi import EXECUTIONS, HOOIOptions, hooi

__all__ = ["decompose", "DECOMPOSE_EXECUTIONS"]

#: ``execution=`` values :func:`decompose` routes (the single-node engine
#: values plus the simulated-MPI driver).
DECOMPOSE_EXECUTIONS = EXECUTIONS + ("distributed",)


def decompose(
    tensor,
    rank: Union[int, Sequence[int]],
    *,
    execution: str = "sequential",
    partition=None,
    machine=None,
    options: Optional[Union[HOOIOptions, dict]] = None,
    callback: Optional[Callable[[int, float], None]] = None,
    workspace=None,
    cancel_check: Optional[Callable[[], None]] = None,
    checkpoint=None,
    resume=None,
    resume_factors=None,
    **option_kwargs,
):
    """Tucker-decompose ``tensor`` at the given rank(s), one call for every driver.

    Parameters
    ----------
    tensor:
        The sparse input tensor (:class:`~repro.core.sparse_tensor.SparseTensor`),
        or a :class:`~repro.streaming.StreamingTensor` whose merged snapshot
        is decomposed.
    rank:
        Per-mode ranks ``R_1, ..., R_N`` (a scalar is broadcast).
    execution:
        ``"sequential"`` (default), ``"thread"``, ``"process"`` — the
        single-node engine's execution axis — or ``"distributed"`` (the
        simulated-MPI Algorithm 4 driver, which additionally needs
        ``partition``).  For ``"distributed"``, any ``execution`` key inside
        ``options`` / ``option_kwargs`` selects the *rank-local* execution
        model (``"sequential"`` or ``"thread"`` for hybrid ranks ×
        threads), mirroring :func:`~repro.distributed.dist_hooi.distributed_hooi`.
    partition:
        A :class:`~repro.distributed.plan.TensorPartition`; required by (and
        only meaningful for) ``execution="distributed"``.
    machine:
        Optional :class:`~repro.simmpi.machine.MachineModel` for the
        distributed driver's simulated clock.
    options:
        Base options as an :class:`HOOIOptions` or a plain dict (the wire
        format); ``option_kwargs`` override individual fields on top of it.
        Unknown keys are rejected with the field list
        (:meth:`HOOIOptions.from_dict`).
    callback / workspace / cancel_check:
        Passed through to the underlying driver (``workspace`` and
        ``cancel_check`` apply to the single-node engine only).
    checkpoint / resume:
        Sweep-boundary checkpointing and resume (single-node engine only):
        ``checkpoint`` overrides the :class:`repro.resilience.Checkpointer`
        built from ``checkpoint_dir`` / ``checkpoint_interval`` in the
        options; ``resume`` is a checkpoint state, a file path, or
        ``"auto"`` (see :func:`repro.core.hooi.hooi`).  The distributed
        driver has no checkpoint seam yet and rejects both.
    resume_factors:
        Warm-start factor matrices (single-node engine only), typically a
        previous run's ``result.decomposition.factors`` over a tensor that
        has since received streaming appends.  They are conformed to the
        current shape and ranks (:func:`repro.streaming.conform_factors` —
        grown modes get fresh rows, changed ranks keep the leading columns)
        and installed as the ``init``.  Distinct from ``resume``: a
        checkpoint resumes *this* run's sweep counter and RNG state, while
        ``resume_factors`` seed a *fresh* run from learned subspaces.
    **option_kwargs:
        Any :class:`HOOIOptions` field, e.g. ``trsvd_method="gram"``,
        ``tensor_format="csf"``, ``num_workers=4``, ``dtype="float32"``.

    Returns
    -------
    :class:`~repro.core.hooi.HOOIResult` for the single-node executions, a
    :class:`~repro.distributed.dist_hooi.DistributedHOOIResult` (an
    ``HOOIResult`` plus simulated times and per-rank statistics) for
    ``execution="distributed"``.
    """
    if execution not in DECOMPOSE_EXECUTIONS:
        raise ValueError(
            f"unknown execution {execution!r}: decompose() routes one of "
            f"{DECOMPOSE_EXECUTIONS} (single-node engine values plus "
            "'distributed' for the simulated-MPI driver)"
        )
    from repro.streaming.tensor import StreamingTensor

    if isinstance(tensor, StreamingTensor):
        tensor = tensor.tensor
    if isinstance(options, HOOIOptions):
        base = options.to_dict()
    elif options is None:
        base = {}
    elif isinstance(options, dict):
        base = dict(options)
    else:
        raise TypeError(
            f"options must be an HOOIOptions or a dict, got "
            f"{type(options).__name__}"
        )
    base.update(option_kwargs)

    if execution == "distributed":
        if resume_factors is not None:
            raise ValueError(
                "resume_factors= applies to the single-node engine only: "
                "the distributed driver initializes factors inside its "
                "simulated ranks — run the warm-started job on "
                "execution='sequential'/'thread'/'process', or drop "
                "resume_factors"
            )
        if checkpoint is not None or resume is not None:
            raise ValueError(
                "checkpoint=/resume= apply to the single-node engine only: "
                "the distributed driver has no sweep-checkpoint seam yet "
                "(rank-local state lives inside the simulated ranks) — run "
                "the resumable job on execution='sequential'/'thread'/"
                "'process', or drop the checkpoint arguments"
            )
        if partition is None:
            raise ValueError(
                "execution='distributed' needs a partition= (a "
                "TensorPartition describing rank ownership; see "
                "repro.partition.strategies for ready-made partitioners)"
            )
        from repro.distributed.dist_hooi import distributed_hooi

        opts = HOOIOptions.from_dict(base)
        kwargs = {"callback": callback}
        if machine is not None:
            kwargs["machine"] = machine
        return distributed_hooi(tensor, rank, partition, opts, **kwargs)

    if partition is not None or machine is not None:
        raise ValueError(
            "partition=/machine= only apply to execution='distributed'; "
            f"the {execution!r} execution runs on the single-node engine"
        )
    base["execution"] = execution
    opts = HOOIOptions.from_dict(base)
    if resume_factors is not None:
        import dataclasses

        from repro.streaming.warmstart import conform_factors

        opts = dataclasses.replace(
            opts,
            init=conform_factors(resume_factors, tensor.shape, rank),
        )
    return hooi(
        tensor,
        rank,
        opts,
        callback=callback,
        workspace=workspace,
        cancel_check=cancel_check,
        checkpoint=checkpoint,
        resume=resume,
    )
