"""Synthetic sparse tensor generators.

Two families are provided:

* :func:`random_sparse_tensor` — uniform random coordinates, the workload the
  paper uses for its single-core MET comparison (a 10K³ tensor with 1M
  nonzeros);
* :func:`power_law_sparse_tensor` — coordinates drawn from per-mode Zipf-like
  (power-law) marginals, which is how real recommender / web-crawl tensors
  behave and what gives the coarse-grain partitions of the paper their
  characteristic load imbalance (a handful of very heavy slices).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.sparse_tensor import SparseTensor
from repro.util.validation import check_shape_vector

__all__ = [
    "random_sparse_tensor",
    "power_law_sparse_tensor",
    "zipf_indices",
]


def random_sparse_tensor(
    shape: Sequence[int],
    nnz: int,
    *,
    seed: Optional[int] = 0,
    value_distribution: str = "normal",
) -> SparseTensor:
    """Uniformly random sparse tensor with ``nnz`` (pre-deduplication) entries.

    ``value_distribution`` is ``"normal"`` (standard normal), ``"uniform"``
    (U[0, 1)) or ``"ones"``.
    """
    shape = check_shape_vector(shape)
    rng = np.random.default_rng(seed)
    indices = np.column_stack(
        [rng.integers(0, size, size=nnz, dtype=np.int64) for size in shape]
    )
    if value_distribution == "normal":
        values = rng.standard_normal(nnz)
    elif value_distribution == "uniform":
        values = rng.random(nnz)
    elif value_distribution == "ones":
        values = np.ones(nnz, dtype=np.float64)
    else:
        raise ValueError(f"unknown value_distribution {value_distribution!r}")
    return SparseTensor(indices, values, shape, copy=False, sum_duplicates=True)


def zipf_indices(
    size: int,
    count: int,
    exponent: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``count`` indices in ``[0, size)`` with a Zipf-like marginal.

    ``exponent`` controls the skew: 0 gives a uniform marginal, values around
    1 give the heavy-headed distributions typical of users/tags/items data.
    Implemented by inverse-transform sampling of a truncated power law, which
    is vectorized and avoids the rejection loops of ``numpy.random.zipf``.
    """
    if size <= 0:
        raise ValueError("size must be positive")
    if exponent <= 0:
        return rng.integers(0, size, size=count, dtype=np.int64)
    u = rng.random(count)
    if abs(exponent - 1.0) < 1e-9:
        # CDF ~ log(1 + x) / log(1 + size)
        positions = np.expm1(u * np.log1p(size - 1.0))
    else:
        power = 1.0 - exponent
        norm = (size ** power) - 1.0
        positions = (u * norm + 1.0) ** (1.0 / power) - 1.0
    idx = np.floor(positions).astype(np.int64)
    return np.clip(idx, 0, size - 1)


def power_law_sparse_tensor(
    shape: Sequence[int],
    nnz: int,
    *,
    exponents: Sequence[float] | float = 0.9,
    seed: Optional[int] = 0,
    value_distribution: str = "uniform",
    shuffle_labels: bool = True,
) -> SparseTensor:
    """Sparse tensor whose mode marginals follow per-mode power laws.

    ``exponents`` gives the skew of each mode (scalar = same for all modes).
    With ``shuffle_labels`` (default) the heavy indices are scattered over the
    index range instead of being the smallest ids, so block partitions do not
    accidentally balance the load — mirroring real data where popular items
    have arbitrary identifiers.
    """
    shape = check_shape_vector(shape)
    if isinstance(exponents, (int, float)):
        exponents = [float(exponents)] * len(shape)
    if len(exponents) != len(shape):
        raise ValueError("exponents must have one entry per mode")
    rng = np.random.default_rng(seed)
    columns = []
    for size, exponent in zip(shape, exponents):
        idx = zipf_indices(size, nnz, float(exponent), rng)
        if shuffle_labels:
            relabel = rng.permutation(size)
            idx = relabel[idx]
        columns.append(idx)
    indices = np.column_stack(columns)
    if value_distribution == "normal":
        values = rng.standard_normal(nnz)
    elif value_distribution == "uniform":
        values = rng.random(nnz) + 0.5
    elif value_distribution == "ones":
        values = np.ones(nnz, dtype=np.float64)
    else:
        raise ValueError(f"unknown value_distribution {value_distribution!r}")
    return SparseTensor(indices, values, shape, copy=False, sum_duplicates=True)
