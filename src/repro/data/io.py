"""Text IO for sparse tensors (FROSTT ``.tns`` format).

The de-facto interchange format for sparse tensors (used by FROSTT, SPLATT,
HyperTensor and the Tensor Toolbox) is a whitespace-separated text file with
one nonzero per line: ``i_1 i_2 ... i_N value`` with 1-based indices, plus
optional ``#`` comment lines.  Readers accept an explicit shape or infer it
from the maximum index per mode.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.sparse_tensor import SparseTensor

__all__ = ["write_tns", "read_tns", "iter_tns_chunks", "TnsChunkReader"]

PathLike = Union[str, Path]

#: Default nonzeros per chunk of the streaming reader: ~8 MiB of parsed
#: arrays for a 4-mode tensor, small enough that the transient Python-object
#: parse state never dominates peak memory.
DEFAULT_CHUNK_NNZ = 262_144


def write_tns(tensor: SparseTensor, path: PathLike, *, header: bool = True) -> None:
    """Write a sparse tensor as a ``.tns`` text file (1-based indices)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            shape_str = " ".join(str(s) for s in tensor.shape)
            handle.write(f"# shape: {shape_str}\n")
            handle.write(f"# nnz: {tensor.nnz}\n")
        for row, value in zip(tensor.indices, tensor.values):
            coords = " ".join(str(int(i) + 1) for i in row)
            handle.write(f"{coords} {float(value):.17g}\n")


class TnsChunkReader:
    """Iterate a ``.tns`` file as ``(indices, values)`` array chunks.

    Each iteration pass re-opens the file and yields 0-based int64 index
    blocks of at most ``chunk_nnz`` rows with their float64 values, in file
    order — the parse state held at any moment is one chunk, never the whole
    coordinate list.  This is the ingestion seam shared by :func:`read_tns`
    (one-shot loads with bounded peak memory) and the streaming layer
    (:meth:`repro.streaming.StreamingTensor.from_tns` turns each chunk into
    an append batch; :func:`repro.streaming.build_out_of_core` spools chunks
    into memory-mapped CSF trees).

    ``header_shape`` is populated from a ``# shape:`` comment as soon as the
    line is parsed (complete once iteration finishes); malformed lines and
    per-line arity changes raise :class:`ValueError` mid-iteration with the
    same messages the eager reader used.
    """

    def __init__(self, path: PathLike, *, chunk_nnz: int = DEFAULT_CHUNK_NNZ) -> None:
        if int(chunk_nnz) < 1:
            raise ValueError(f"chunk_nnz must be >= 1, got {chunk_nnz}")
        self.path = Path(path)
        self.chunk_nnz = int(chunk_nnz)
        self.header_shape: Optional[Tuple[int, ...]] = None
        self.order: Optional[int] = None

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        indices: list = []
        values: list = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    body = line[1:].strip()
                    if body.lower().startswith("shape:"):
                        self.header_shape = tuple(
                            int(tok) for tok in body[6:].split()
                        )
                    continue
                tokens = line.split()
                if len(tokens) < 2:
                    raise ValueError(f"malformed .tns line: {line!r}")
                if self.order is None:
                    self.order = len(tokens) - 1
                elif len(tokens) - 1 != self.order:
                    raise ValueError("inconsistent number of indices per line")
                indices.append([int(tok) - 1 for tok in tokens[:-1]])
                values.append(float(tokens[-1]))
                if len(values) >= self.chunk_nnz:
                    yield self._emit(indices, values)
                    indices, values = [], []
        if values:
            yield self._emit(indices, values)

    def _emit(self, indices: list, values: list) -> Tuple[np.ndarray, np.ndarray]:
        return (
            np.asarray(indices, dtype=np.int64).reshape(len(values), -1),
            np.asarray(values, dtype=np.float64),
        )


def iter_tns_chunks(
    path: PathLike, *, chunk_nnz: int = DEFAULT_CHUNK_NNZ
) -> TnsChunkReader:
    """A re-iterable chunked view of a ``.tns`` file (see :class:`TnsChunkReader`)."""
    return TnsChunkReader(path, chunk_nnz=chunk_nnz)


def read_tns(
    path: PathLike,
    *,
    shape: Optional[Sequence[int]] = None,
    sum_duplicates: bool = True,
    chunk_nnz: int = DEFAULT_CHUNK_NNZ,
) -> SparseTensor:
    """Read a ``.tns`` text file.

    If ``shape`` is not given it is taken from a ``# shape:`` header when
    present, otherwise inferred from the maximum index of each mode.

    Duplicate coordinates are merged by summing (``sum_duplicates=True``, the
    default): real-world dumps repeat coordinates, and a tensor carrying
    duplicates silently corrupts every norm-based quantity downstream (the
    fit each HOOI driver reports divides by ``norm()``, which would count the
    duplicated values as distinct entries).  Pass ``sum_duplicates=False``
    only to inspect a file's raw contents, and call
    :meth:`~repro.core.sparse_tensor.SparseTensor.deduplicate` before any
    numeric use.

    Parsing streams through :func:`iter_tns_chunks` in ``chunk_nnz`` blocks:
    peak memory is the final arrays plus one chunk of parse state, instead
    of a Python list-of-lists of every line (roughly 10× the array bytes on
    CPython).  Duplicate merging is unchanged — values concatenate in file
    order before the same left-fold dedup, so the result is bit-identical
    to the eager reader's.
    """
    reader = iter_tns_chunks(path, chunk_nnz=chunk_nnz)
    index_chunks: list = []
    value_chunks: list = []
    for chunk_indices, chunk_values in reader:
        index_chunks.append(chunk_indices)
        value_chunks.append(chunk_values)
    if not index_chunks:
        if shape is None and reader.header_shape is None:
            raise ValueError("empty .tns file with no shape information")
        final_shape = (
            tuple(shape) if shape is not None else tuple(reader.header_shape)
        )
        return SparseTensor.empty(final_shape)
    index_array = (
        index_chunks[0]
        if len(index_chunks) == 1
        else np.concatenate(index_chunks, axis=0)
    )
    value_array = (
        value_chunks[0]
        if len(value_chunks) == 1
        else np.concatenate(value_chunks)
    )
    if shape is not None:
        final_shape = tuple(int(s) for s in shape)
    elif reader.header_shape is not None:
        final_shape = tuple(reader.header_shape)
    else:
        final_shape = tuple(int(m) + 1 for m in index_array.max(axis=0))
    return SparseTensor(
        index_array, value_array, final_shape, copy=False,
        sum_duplicates=sum_duplicates,
    )
