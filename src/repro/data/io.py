"""Text IO for sparse tensors (FROSTT ``.tns`` format).

The de-facto interchange format for sparse tensors (used by FROSTT, SPLATT,
HyperTensor and the Tensor Toolbox) is a whitespace-separated text file with
one nonzero per line: ``i_1 i_2 ... i_N value`` with 1-based indices, plus
optional ``#`` comment lines.  Readers accept an explicit shape or infer it
from the maximum index per mode.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.sparse_tensor import SparseTensor

__all__ = ["write_tns", "read_tns"]

PathLike = Union[str, Path]


def write_tns(tensor: SparseTensor, path: PathLike, *, header: bool = True) -> None:
    """Write a sparse tensor as a ``.tns`` text file (1-based indices)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            shape_str = " ".join(str(s) for s in tensor.shape)
            handle.write(f"# shape: {shape_str}\n")
            handle.write(f"# nnz: {tensor.nnz}\n")
        for row, value in zip(tensor.indices, tensor.values):
            coords = " ".join(str(int(i) + 1) for i in row)
            handle.write(f"{coords} {float(value):.17g}\n")


def read_tns(
    path: PathLike,
    *,
    shape: Optional[Sequence[int]] = None,
    sum_duplicates: bool = True,
) -> SparseTensor:
    """Read a ``.tns`` text file.

    If ``shape`` is not given it is taken from a ``# shape:`` header when
    present, otherwise inferred from the maximum index of each mode.

    Duplicate coordinates are merged by summing (``sum_duplicates=True``, the
    default): real-world dumps repeat coordinates, and a tensor carrying
    duplicates silently corrupts every norm-based quantity downstream (the
    fit each HOOI driver reports divides by ``norm()``, which would count the
    duplicated values as distinct entries).  Pass ``sum_duplicates=False``
    only to inspect a file's raw contents, and call
    :meth:`~repro.core.sparse_tensor.SparseTensor.deduplicate` before any
    numeric use.
    """
    path = Path(path)
    header_shape: Optional[list] = None
    indices = []
    values = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if body.lower().startswith("shape:"):
                    header_shape = [int(tok) for tok in body[6:].split()]
                continue
            tokens = line.split()
            if len(tokens) < 2:
                raise ValueError(f"malformed .tns line: {line!r}")
            indices.append([int(tok) - 1 for tok in tokens[:-1]])
            values.append(float(tokens[-1]))
    if not indices:
        if shape is None and header_shape is None:
            raise ValueError("empty .tns file with no shape information")
        final_shape = tuple(shape) if shape is not None else tuple(header_shape)
        return SparseTensor.empty(final_shape)
    index_array = np.asarray(indices, dtype=np.int64)
    value_array = np.asarray(values, dtype=np.float64)
    orders = {index_array.shape[1]}
    if len(orders) != 1:
        raise ValueError("inconsistent number of indices per line")
    if shape is not None:
        final_shape = tuple(int(s) for s in shape)
    elif header_shape is not None:
        final_shape = tuple(header_shape)
    else:
        final_shape = tuple(int(m) + 1 for m in index_array.max(axis=0))
    return SparseTensor(
        index_array, value_array, final_shape, copy=False,
        sum_duplicates=sum_duplicates,
    )
