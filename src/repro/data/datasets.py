"""Synthetic analogs of the paper's four real-world tensors (Table I).

The paper evaluates on Netflix, NELL, Delicious and Flickr — 78M-140M nonzero
tensors built from proprietary or hard-to-obtain dumps that are not available
here.  Following the substitution rule documented in DESIGN.md, each dataset
is replaced by a *synthetic analog* that preserves the properties the paper's
behaviour depends on:

* the mode sizes **relative to each other** (e.g. Delicious/Flickr's third
  mode is tens of millions of resources vs a 731-entry time mode; Netflix's
  first mode dwarfs its time mode), which drive the TRSVD cost profile and the
  coarse-grain granularity problems;
* the nonzero count relative to the mode sizes (density);
* heavily skewed per-mode marginals (power laws), which produce the slice-size
  imbalance that breaks the coarse-grain partitions in Table III.

``scale`` shrinks every mode size and the nonzero count by the same factor so
that laptop-scale experiments keep the paper's proportions.  The default
(1/1000 of the nonzeros) yields tensors of 80K-140K nonzeros.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.sparse_tensor import SparseTensor
from repro.data.synthetic import power_law_sparse_tensor

__all__ = ["DatasetSpec", "PAPER_DATASETS", "make_dataset", "dataset_table"]


@dataclass(frozen=True)
class DatasetSpec:
    """Shape/nonzero specification of one of the paper's tensors."""

    name: str
    shape: Tuple[int, ...]            # the paper's Table I mode sizes
    nnz: int                          # the paper's Table I nonzero count
    exponents: Tuple[float, ...]      # per-mode skew of the synthetic analog
    description: str

    @property
    def order(self) -> int:
        return len(self.shape)

    def scaled_shape(self, scale: float) -> Tuple[int, ...]:
        """Mode sizes scaled by ``scale`` (each at least 8)."""
        return tuple(max(int(round(s * scale)), 8) for s in self.shape)

    def scaled_nnz(self, scale: float) -> int:
        return max(int(round(self.nnz * scale)), 1000)


#: The paper's Table I, with per-mode skew exponents chosen to mimic each
#: dataset's nature (user/item/tag popularity follows heavy power laws; the
#: small time modes are closer to uniform).
PAPER_DATASETS: Dict[str, DatasetSpec] = {
    "netflix": DatasetSpec(
        name="Netflix",
        shape=(480_000, 17_000, 2_000),
        nnz=100_000_000,
        exponents=(0.7, 1.0, 0.3),
        description="user x movie x time ratings tensor (Netflix Prize)",
    ),
    "nell": DatasetSpec(
        name="NELL",
        shape=(3_200_000, 301, 638_000),
        nnz=78_000_000,
        exponents=(1.0, 0.6, 1.0),
        description="entity x relation x entity knowledge-base tensor (NELL)",
    ),
    "delicious": DatasetSpec(
        name="Delicious",
        shape=(1_400, 532_000, 17_000_000, 2_400_000),
        nnz=140_000_000,
        exponents=(0.2, 0.9, 1.1, 1.0),
        description="time x user x resource x tag bookmarking tensor",
    ),
    "flickr": DatasetSpec(
        name="Flickr",
        shape=(731, 319_000, 28_000_000, 1_600_000),
        nnz=112_000_000,
        exponents=(0.2, 0.9, 1.1, 1.0),
        description="time x user x photo x tag tensor",
    ),
}


def make_dataset(
    name: str,
    *,
    scale: float = 1e-3,
    seed: Optional[int] = 0,
) -> SparseTensor:
    """Generate the synthetic analog of one of the paper's datasets.

    ``scale`` multiplies both the mode sizes and the nonzero count (default
    1/1000).  The same seed always produces the same tensor.
    """
    key = name.lower()
    if key not in PAPER_DATASETS:
        raise ValueError(
            f"unknown dataset {name!r}; available: {sorted(PAPER_DATASETS)}"
        )
    spec = PAPER_DATASETS[key]
    shape = spec.scaled_shape(scale)
    nnz = spec.scaled_nnz(scale)
    return power_law_sparse_tensor(
        shape,
        nnz,
        exponents=spec.exponents,
        seed=seed,
        value_distribution="uniform",
    )


def dataset_table(scale: float = 1e-3) -> Dict[str, Dict[str, object]]:
    """Reproduce Table I: per dataset, the paper's sizes and the analog's sizes."""
    rows: Dict[str, Dict[str, object]] = {}
    for key, spec in PAPER_DATASETS.items():
        rows[spec.name] = {
            "paper_shape": spec.shape,
            "paper_nnz": spec.nnz,
            "analog_shape": spec.scaled_shape(scale),
            "analog_nnz_target": spec.scaled_nnz(scale),
            "order": spec.order,
            "description": spec.description,
        }
    return rows
