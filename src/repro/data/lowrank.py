"""Planted low-rank sparse tensors.

Correctness experiments (and several integration tests) need tensors with a
*known* Tucker structure so the recovered fit can be checked against ground
truth: a random core and random orthonormal factors define a low-rank tensor,
which is then sampled at random coordinates (optionally with noise) to produce
a sparse observation tensor.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.sparse_tensor import SparseTensor
from repro.core.tucker import TuckerTensor
from repro.util.linalg import random_orthonormal
from repro.util.validation import check_rank_vector, check_shape_vector

__all__ = ["random_tucker_tensor", "planted_lowrank_tensor"]


def random_tucker_tensor(
    shape: Sequence[int],
    ranks: Sequence[int] | int,
    *,
    seed: Optional[int] = 0,
    core_scale: float = 1.0,
) -> TuckerTensor:
    """A random Tucker model with orthonormal factors and a dense random core."""
    shape = check_shape_vector(shape)
    ranks = check_rank_vector(ranks, shape)
    rng = np.random.default_rng(seed)
    factors = [
        random_orthonormal(size, rank, seed=None if seed is None else seed + 13 * n)
        for n, (size, rank) in enumerate(zip(shape, ranks))
    ]
    core = core_scale * rng.standard_normal(ranks)
    return TuckerTensor(core=core, factors=factors)


def planted_lowrank_tensor(
    shape: Sequence[int],
    ranks: Sequence[int] | int,
    nnz: int,
    *,
    noise: float = 0.0,
    seed: Optional[int] = 0,
) -> Tuple[SparseTensor, TuckerTensor]:
    """Sample a random low-rank Tucker tensor at ``nnz`` random coordinates.

    Returns the sparse observation tensor and the ground-truth model.  With
    ``noise=0`` every stored value equals the model exactly, so HOOI with the
    true ranks should reach a fit close to 1 on the *observed* entries of a
    densified version; with noise the recoverable fit degrades gracefully.
    """
    shape = check_shape_vector(shape)
    ranks = check_rank_vector(ranks, shape)
    truth = random_tucker_tensor(shape, ranks, seed=seed)
    rng = np.random.default_rng(None if seed is None else seed + 1)
    indices = np.column_stack(
        [rng.integers(0, size, size=nnz, dtype=np.int64) for size in shape]
    )
    # Deduplicate coordinates first so values are sampled once per coordinate.
    tensor = SparseTensor(indices, np.zeros(indices.shape[0]), shape, sum_duplicates=True)
    values = truth.reconstruct_entries(tensor.indices)
    if noise > 0:
        values = values + noise * rng.standard_normal(values.shape[0])
    observed = SparseTensor(tensor.indices, values, shape, copy=False)
    return observed, truth
