"""Planted low-rank sparse tensors.

Correctness experiments (and several integration tests) need tensors with a
*known* Tucker structure so the recovered fit can be checked against ground
truth: a random core and random orthonormal factors define a low-rank tensor,
which is then sampled at random coordinates (optionally with noise) to produce
a sparse observation tensor.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.sparse_tensor import SparseTensor
from repro.core.tucker import TuckerTensor
from repro.util.linalg import random_orthonormal
from repro.util.validation import check_rank_vector, check_shape_vector

__all__ = [
    "random_tucker_tensor",
    "planted_lowrank_tensor",
    "drifting_lowrank_stream",
]


def random_tucker_tensor(
    shape: Sequence[int],
    ranks: Sequence[int] | int,
    *,
    seed: Optional[int] = 0,
    core_scale: float = 1.0,
) -> TuckerTensor:
    """A random Tucker model with orthonormal factors and a dense random core."""
    shape = check_shape_vector(shape)
    ranks = check_rank_vector(ranks, shape)
    rng = np.random.default_rng(seed)
    factors = [
        random_orthonormal(size, rank, seed=None if seed is None else seed + 13 * n)
        for n, (size, rank) in enumerate(zip(shape, ranks))
    ]
    core = core_scale * rng.standard_normal(ranks)
    return TuckerTensor(core=core, factors=factors)


def planted_lowrank_tensor(
    shape: Sequence[int],
    ranks: Sequence[int] | int,
    nnz: int,
    *,
    noise: float = 0.0,
    seed: Optional[int] = 0,
) -> Tuple[SparseTensor, TuckerTensor]:
    """Sample a random low-rank Tucker tensor at ``nnz`` random coordinates.

    Returns the sparse observation tensor and the ground-truth model.  With
    ``noise=0`` every stored value equals the model exactly, so HOOI with the
    true ranks should reach a fit close to 1 on the *observed* entries of a
    densified version; with noise the recoverable fit degrades gracefully.
    """
    shape = check_shape_vector(shape)
    ranks = check_rank_vector(ranks, shape)
    truth = random_tucker_tensor(shape, ranks, seed=seed)
    rng = np.random.default_rng(None if seed is None else seed + 1)
    indices = np.column_stack(
        [rng.integers(0, size, size=nnz, dtype=np.int64) for size in shape]
    )
    # Deduplicate coordinates first so values are sampled once per coordinate.
    tensor = SparseTensor(indices, np.zeros(indices.shape[0]), shape, sum_duplicates=True)
    values = truth.reconstruct_entries(tensor.indices)
    if noise > 0:
        values = values + noise * rng.standard_normal(values.shape[0])
    observed = SparseTensor(tensor.indices, values, shape, copy=False)
    return observed, truth


def drifting_lowrank_stream(
    shape: Sequence[int],
    ranks: Sequence[int] | int,
    nnz_per_batch: int,
    num_batches: int,
    *,
    drift: float = 0.05,
    noise: float = 0.0,
    seed: Optional[int] = 0,
):
    """A stream of observation batches from a slowly-rotating Tucker model.

    The planted subspaces random-walk between batches: each factor takes a
    Gaussian step of size ``drift`` and is re-orthonormalized (QR), and the
    core takes a proportional step, so consecutive batches sample *nearby*
    low-rank models — the regime where a warm-started HOOI should track the
    drift in a couple of sweeps while a cold solve pays its full iteration
    count every time.  Yields ``num_batches``
    :class:`~repro.streaming.DeltaBatch` objects; feed them to a
    :class:`~repro.streaming.StreamingTensor` /
    :class:`~repro.streaming.StreamingSession`.
    """
    from repro.streaming.delta import DeltaBatch

    shape = check_shape_vector(shape)
    ranks = check_rank_vector(ranks, shape)
    model = random_tucker_tensor(shape, ranks, seed=seed)
    factors = [f.copy() for f in model.factors]
    core = model.core.copy()
    rng = np.random.default_rng(None if seed is None else seed + 1)
    for _ in range(num_batches):
        indices = np.column_stack(
            [
                rng.integers(0, size, size=nnz_per_batch, dtype=np.int64)
                for size in shape
            ]
        )
        batch = DeltaBatch(
            indices, np.zeros(indices.shape[0]), merge_duplicates=True
        )
        values = TuckerTensor(core=core, factors=factors).reconstruct_entries(
            batch.indices
        )
        if noise > 0:
            values = values + noise * rng.standard_normal(values.shape[0])
        yield DeltaBatch(
            batch.indices, values, copy=False, merge_duplicates=False
        )
        if drift > 0:
            for n, factor in enumerate(factors):
                stepped = factor + drift * rng.standard_normal(factor.shape)
                q, r = np.linalg.qr(stepped)
                # Fix the QR sign ambiguity so a zero step is the identity.
                factors[n] = q * np.sign(np.diag(r))
            core = core + drift * np.abs(core).mean() * rng.standard_normal(
                core.shape
            )
