"""Synthetic datasets (including analogs of the paper's four tensors) and IO."""

from repro.data.synthetic import (
    power_law_sparse_tensor,
    random_sparse_tensor,
    zipf_indices,
)
from repro.data.lowrank import (
    drifting_lowrank_stream,
    planted_lowrank_tensor,
    random_tucker_tensor,
)
from repro.data.datasets import (
    PAPER_DATASETS,
    DatasetSpec,
    dataset_table,
    make_dataset,
)
from repro.data.io import iter_tns_chunks, read_tns, write_tns

__all__ = [
    "power_law_sparse_tensor",
    "random_sparse_tensor",
    "zipf_indices",
    "drifting_lowrank_stream",
    "planted_lowrank_tensor",
    "random_tucker_tensor",
    "PAPER_DATASETS",
    "DatasetSpec",
    "dataset_table",
    "make_dataset",
    "iter_tns_chunks",
    "read_tns",
    "write_tns",
]
