"""Row-wise Kronecker products.

The nonzero-based TTMc formulation (Algorithm 2 / equation (4) of the paper)
scales, for every nonzero, the Kronecker product of one row from each factor
matrix.  These helpers compute that product for a single nonzero and — much
more importantly — for a *batch* of nonzeros at once so the numeric TTMc can
be expressed with a handful of NumPy calls instead of a Python loop per
nonzero.

Convention: the result is laid out so that the *first* vector in the list
varies fastest, matching the column-major (Kolda-Bader) matricization used by
:mod:`repro.core.dense` and :meth:`repro.core.sparse_tensor.SparseTensor.matricize`.
Equivalently, ``kron_rows([a, b, c]) == np.kron(c, np.kron(b, a))``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["kron_rows", "batch_kron_rows", "kron_row_length"]


def kron_row_length(widths: Sequence[int]) -> int:
    """Length of the Kronecker product of rows with the given widths."""
    out = 1
    for w in widths:
        out *= int(w)
    return out


def kron_rows(rows: Sequence[np.ndarray]) -> np.ndarray:
    """Kronecker product of 1-D row vectors with the first operand fastest.

    ``kron_rows([a])`` returns a copy of ``a``; an empty list yields ``[1.0]``
    (the empty product), which keeps order-1 corner cases well defined.
    """
    result = np.ones(1, dtype=np.float64)
    for row in rows:
        row = np.asarray(row, dtype=np.float64).ravel()
        # new[j * len(result) + i] = row[j] * result[i]  -> earlier rows fastest
        result = (row[:, None] * result[None, :]).ravel()
    return result


def batch_kron_rows(blocks: Sequence[np.ndarray]) -> np.ndarray:
    """Row-wise Kronecker product of a batch.

    Each element of ``blocks`` is an array of shape ``(m, R_t)`` holding one
    row per nonzero; the result has shape ``(m, prod R_t)`` with row ``p``
    equal to ``kron_rows([blocks[0][p], blocks[1][p], ...])``.

    This is the workhorse of the numeric TTMc: the factor rows for a block of
    nonzeros are gathered with fancy indexing and combined here without any
    Python-level per-nonzero loop.
    """
    if len(blocks) == 0:
        raise ValueError("batch_kron_rows needs at least one block")
    arrays: List[np.ndarray] = [
        np.ascontiguousarray(np.asarray(b, dtype=np.float64)) for b in blocks
    ]
    m = arrays[0].shape[0]
    for a in arrays:
        if a.ndim != 2:
            raise ValueError("each block must be 2-D (nonzeros x rank)")
        if a.shape[0] != m:
            raise ValueError("all blocks must have the same number of rows")
    result = arrays[0]
    for block in arrays[1:]:
        # result: (m, W), block: (m, R)  ->  (m, R * W) with result fastest
        m, width = result.shape
        result = (block[:, :, None] * result[:, None, :]).reshape(m, -1)
    return result
