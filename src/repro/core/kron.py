"""Row-wise Kronecker products.

The nonzero-based TTMc formulation (Algorithm 2 / equation (4) of the paper)
scales, for every nonzero, the Kronecker product of one row from each factor
matrix.  These helpers compute that product for a single nonzero and — much
more importantly — for a *batch* of nonzeros at once so the numeric TTMc can
be expressed with a handful of NumPy calls instead of a Python loop per
nonzero.

Convention: the result is laid out so that the *first* vector in the list
varies fastest, matching the column-major (Kolda-Bader) matricization used by
:mod:`repro.core.dense` and :meth:`repro.core.sparse_tensor.SparseTensor.matricize`.
Equivalently, ``kron_rows([a, b, c]) == np.kron(c, np.kron(b, a))``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.sparse_tensor import SUPPORTED_DTYPES

__all__ = ["kron_rows", "batch_kron_rows", "kron_row_length", "kron_dtype"]


def kron_dtype(*arrays) -> np.dtype:
    """Compute dtype of a Kronecker product of the given operands.

    Policy-dtype inputs keep their (promoted) precision — an all-``float32``
    batch stays ``float32``, a mixed batch computes in ``float64`` — while any
    operand outside the policy (integer, bool, half or extended precision)
    promotes the whole product to ``float64`` exactly as before the dtype
    policy existed.
    """
    dtypes = [np.asarray(a).dtype for a in arrays]
    if not dtypes or not all(d in SUPPORTED_DTYPES for d in dtypes):
        return np.dtype(np.float64)
    return np.dtype(np.result_type(*dtypes))


def kron_row_length(widths: Sequence[int]) -> int:
    """Length of the Kronecker product of rows with the given widths."""
    out = 1
    for w in widths:
        out *= int(w)
    return out


def kron_rows(rows: Sequence[np.ndarray]) -> np.ndarray:
    """Kronecker product of 1-D row vectors with the first operand fastest.

    ``kron_rows([a])`` returns a copy of ``a``; an empty list yields ``[1.0]``
    (the empty product), which keeps order-1 corner cases well defined.
    """
    dtype = kron_dtype(*rows)
    result = np.ones(1, dtype=dtype)
    for row in rows:
        row = np.asarray(row, dtype=dtype).ravel()
        # new[j * len(result) + i] = row[j] * result[i]  -> earlier rows fastest
        result = (row[:, None] * result[None, :]).ravel()
    return result


def batch_kron_rows(
    blocks: Sequence[np.ndarray], *, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Row-wise Kronecker product of a batch.

    Each element of ``blocks`` is an array of shape ``(m, R_t)`` holding one
    row per nonzero; the result has shape ``(m, prod R_t)`` with row ``p``
    equal to ``kron_rows([blocks[0][p], blocks[1][p], ...])``.

    This is the workhorse of the numeric TTMc: the factor rows for a block of
    nonzeros are gathered with fancy indexing and combined here without any
    Python-level per-nonzero loop.  ``out``, when given, receives the final
    (largest) expansion step in place — the engine's workspace pool passes a
    reused ``(m, prod R_t)`` scratch buffer here so the hot loop performs no
    full-width allocation.
    """
    if len(blocks) == 0:
        raise ValueError("batch_kron_rows needs at least one block")
    dtype = kron_dtype(*blocks)
    arrays: List[np.ndarray] = [
        np.ascontiguousarray(np.asarray(b, dtype=dtype)) for b in blocks
    ]
    m = arrays[0].shape[0]
    width = 1
    for a in arrays:
        if a.ndim != 2:
            raise ValueError("each block must be 2-D (nonzeros x rank)")
        if a.shape[0] != m:
            raise ValueError("all blocks must have the same number of rows")
        width *= a.shape[1]
    if out is not None and (out.shape != (m, width) or out.dtype != dtype):
        raise ValueError(
            f"out has shape {out.shape} / dtype {out.dtype}, expected "
            f"{(m, width)} / {dtype}"
        )
    if len(arrays) == 1:
        if out is None:
            return arrays[0]
        np.copyto(out, arrays[0])
        return out
    result = arrays[0]
    for block in arrays[1:-1]:
        # result: (m, W), block: (m, R)  ->  (m, R * W) with result fastest
        result = (block[:, :, None] * result[:, None, :]).reshape(m, -1)
    last = arrays[-1]
    if out is None:
        return (last[:, :, None] * result[:, None, :]).reshape(m, -1)
    np.multiply(
        last[:, :, None],
        result[:, None, :],
        out=out.reshape(m, last.shape[1], result.shape[1]),
    )
    return out
