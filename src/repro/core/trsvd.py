"""Matrix-free truncated SVD (the paper's TRSVD step).

HOOI needs, for each mode ``n``, the leading ``R_n`` *left* singular vectors
of the matricized TTMc result ``Y_(n)`` — a dense, usually tall-and-skinny
matrix with up to millions of rows.  Following Section III-A.2 of the paper we
never form the Gram matrix ``Y Yᵀ`` (its side would be ``I_n``) and we never
compute a full SVD; instead we run an iterative method whose only access to
the matrix is through matrix-vector (``MxV``) and transposed matrix-vector
(``MTxV``) products.  That operator interface is exactly what the distributed
algorithm hooks into: the fine-grain variant keeps ``Y_(n)`` in sum-distributed
form and implements the two products with communication (see
:mod:`repro.distributed.dist_trsvd`).

Three solvers are provided:

* :func:`lanczos_svd` — Golub-Kahan Lanczos bidiagonalization with full
  reorthogonalization and implicit restarting; the default, mirroring the
  Krylov solvers SLEPc provides.
* :func:`randomized_svd` — a randomized range finder with power iterations,
  useful as a cross-check and for the ablation benchmarks.
* :func:`gram_svd` — ``eigh`` of the *small* ``W × W`` Gram matrix ``YᵀY``
  plus the recovery ``U = Y V Σ⁻¹``; the fast path when the matricized
  width ``W = ∏_{t≠n} R_t`` is small relative to ``I_n`` (it squares the
  spectrum, so trailing singular values lose accuracy — see its docstring).

The iterative solvers report the number of operator applications so
experiments can account for per-iteration communication exactly as the
paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.core.sparse_tensor import as_supported_float
from repro.resilience.faults import maybe_fail
from repro.util.linalg import orthonormalize

__all__ = [
    "LinearOperator",
    "DenseOperator",
    "CountingOperator",
    "TRSVDResult",
    "lanczos_svd",
    "randomized_svd",
    "gram_svd",
    "truncated_svd",
]


class LinearOperator:
    """Minimal matrix-free operator: a shape plus ``matvec``/``rmatvec``.

    Subclasses implement ``matvec(x) -> A @ x`` (length ``shape[0]``) and
    ``rmatvec(y) -> A.T @ y`` (length ``shape[1]``).
    """

    shape: Tuple[int, int]

    def matvec(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def rmatvec(self, y: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def matmat(self, block: np.ndarray) -> np.ndarray:
        """Apply the operator to each column of ``block`` (default: loop)."""
        block = np.asarray(block)
        return np.column_stack([self.matvec(block[:, j]) for j in range(block.shape[1])])

    def rmatmat(self, block: np.ndarray) -> np.ndarray:
        block = np.asarray(block)
        return np.column_stack([self.rmatvec(block[:, j]) for j in range(block.shape[1])])


class DenseOperator(LinearOperator):
    """Wrap a dense ndarray as a :class:`LinearOperator` (BLAS2 products).

    The matrix's floating dtype is preserved — a ``float32`` TTMc result is
    multiplied as ``float32`` (the solver's own vectors stay ``float64``, and
    mixed products promote exactly), so the dtype policy never forces an
    up-conversion copy of the big matricized operand.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        self.matrix = as_supported_float(matrix)
        if self.matrix.ndim != 2:
            raise ValueError("DenseOperator expects a 2-D array")
        self.shape = self.matrix.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.matrix @ x

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return self.matrix.T @ y

    def matmat(self, block: np.ndarray) -> np.ndarray:
        return self.matrix @ block

    def rmatmat(self, block: np.ndarray) -> np.ndarray:
        return self.matrix.T @ block


class CountingOperator(LinearOperator):
    """Decorator counting operator applications (MxV / MTxV)."""

    def __init__(self, inner: LinearOperator) -> None:
        self.inner = inner
        self.shape = inner.shape
        self.matvec_count = 0
        self.rmatvec_count = 0

    def matvec(self, x: np.ndarray) -> np.ndarray:
        self.matvec_count += 1
        return self.inner.matvec(x)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        self.rmatvec_count += 1
        return self.inner.rmatvec(y)

    def matmat(self, block: np.ndarray) -> np.ndarray:
        self.matvec_count += block.shape[1]
        return self.inner.matmat(block)

    def rmatmat(self, block: np.ndarray) -> np.ndarray:
        self.rmatvec_count += block.shape[1]
        return self.inner.rmatmat(block)


@dataclass
class TRSVDResult:
    """Output of a truncated SVD solve."""

    left: np.ndarray          # (m, k) leading left singular vectors
    singular_values: np.ndarray  # (k,)
    right: Optional[np.ndarray]  # (n, k) or None if not requested
    iterations: int           # outer iterations (restarts for Lanczos)
    matvecs: int              # number of MxV applications
    rmatvecs: int             # number of MTxV applications
    converged: bool

    @property
    def rank(self) -> int:
        return int(self.singular_values.shape[0])


def _as_operator(matrix: Union[np.ndarray, LinearOperator]) -> LinearOperator:
    if isinstance(matrix, LinearOperator):
        return matrix
    return DenseOperator(np.asarray(matrix))


def lanczos_svd(
    matrix: Union[np.ndarray, LinearOperator],
    rank: int,
    *,
    tol: float = 1e-8,
    max_restarts: int = 20,
    subspace: Optional[int] = None,
    seed: Optional[int] = 0,
    compute_right: bool = True,
) -> TRSVDResult:
    """Leading ``rank`` singular triplets via Golub-Kahan Lanczos bidiagonalization.

    The bidiagonalization is run with full reorthogonalization up to a
    subspace of ``subspace`` vectors (default ``max(2 * rank + 4, rank + 8)``,
    capped at ``min(op.shape)``); if the top-``rank`` triplets have not
    converged the factorization is (thick-)restarted from the current Ritz
    vectors, up to ``max_restarts`` times.  Convergence of triplet ``i`` is
    declared when its residual bound ``beta * |last Ritz component|`` falls
    below ``tol * sigma_max``.
    """
    op = _as_operator(matrix)
    counter = op if isinstance(op, CountingOperator) else CountingOperator(op)
    m, n = counter.shape
    rank = int(rank)
    if rank <= 0:
        raise ValueError("rank must be positive")
    rank = min(rank, m, n)
    if subspace is None:
        subspace = max(2 * rank + 4, rank + 8)
    subspace = int(min(max(subspace, rank + 1), min(m, n)))

    rng = np.random.default_rng(seed)
    # Right starting vector.
    v = rng.standard_normal(n)
    v /= np.linalg.norm(v)

    V = np.zeros((n, subspace + 1))
    U = np.zeros((m, subspace))
    alphas = np.zeros(subspace)
    betas = np.zeros(subspace)

    total_restarts = 0
    converged = False
    left = np.zeros((m, rank))
    right = np.zeros((n, rank))
    sigma = np.zeros(rank)

    V[:, 0] = v
    start = 0          # number of locked/restart basis vectors already in place
    beta_prev = 0.0
    u_prev = np.zeros(m)

    for restart in range(max_restarts):
        total_restarts = restart + 1
        j = start
        while j < subspace:
            u = counter.matvec(V[:, j]) - beta_prev * u_prev
            # Full reorthogonalization against previous left vectors.
            if j > 0:
                u -= U[:, :j] @ (U[:, :j].T @ u)
            alpha = np.linalg.norm(u)
            if alpha < 1e-14:
                u = rng.standard_normal(m)
                u -= U[:, :j] @ (U[:, :j].T @ u)
                alpha_norm = np.linalg.norm(u)
                u = u / alpha_norm if alpha_norm > 0 else u
                alpha = 0.0
            else:
                u /= alpha
            U[:, j] = u
            alphas[j] = alpha

            w = counter.rmatvec(u) - alpha * V[:, j]
            w -= V[:, : j + 1] @ (V[:, : j + 1].T @ w)
            beta = np.linalg.norm(w)
            if beta < 1e-14:
                w = rng.standard_normal(n)
                w -= V[:, : j + 1] @ (V[:, : j + 1].T @ w)
                beta_norm = np.linalg.norm(w)
                w = w / beta_norm if beta_norm > 0 else w
                beta = 0.0
            else:
                w /= beta
            V[:, j + 1] = w
            betas[j] = beta
            beta_prev = beta
            u_prev = u
            j += 1

        # Build the (subspace x subspace) projected matrix B = Uᵀ A V.  The
        # fresh part (columns `start`..) is upper bidiagonal with the recurrence
        # coefficients; after a thick restart the first `start` columns hold
        # the locked Ritz values and couple to the first new column through
        # the saved residual coefficients (Baglama-Reichel style restart).
        B = np.zeros((subspace, subspace))
        if start > 0:
            B[:start, :start] = np.diag(locked_sigma)
            B[:start, start] = restart_coupling
        for i in range(start, subspace):
            B[i, i] = alphas[i]
            if i + 1 < subspace:
                B[i, i + 1] = betas[i]

        P, s, Qt = np.linalg.svd(B)
        k = rank
        sigma = s[:k]
        # Residual bound for each Ritz triplet: beta_last * |P[last, i]|.
        beta_last = betas[subspace - 1]
        residuals = np.abs(beta_last * P[subspace - 1, :k])
        threshold = tol * max(s[0], 1e-300)
        left = U[:, :subspace] @ P[:, :k]
        right = V[:, :subspace] @ Qt.T[:, :k]
        # Stop on convergence, on the restart budget, or when the subspace
        # already spans the whole problem (rank == subspace), in which case a
        # thick restart has nothing left to add.
        if (
            np.all(residuals <= threshold)
            or restart == max_restarts - 1
            or rank >= subspace
        ):
            converged = bool(np.all(residuals <= threshold)) or rank >= subspace
            break

        # Thick restart: keep the top `rank` Ritz vectors plus the residual
        # direction V[:, subspace] and continue expanding.
        keep = rank
        locked_sigma = s[:keep].copy()
        restart_coupling = beta_last * P[subspace - 1, :keep].copy()
        U[:, :keep] = left[:, :keep]
        V[:, :keep] = right[:, :keep]
        V[:, keep] = V[:, subspace]
        start = keep
        beta_prev = 0.0
        u_prev = np.zeros(m)

    return TRSVDResult(
        left=np.ascontiguousarray(left[:, :rank]),
        singular_values=np.ascontiguousarray(sigma[:rank]),
        right=np.ascontiguousarray(right[:, :rank]) if compute_right else None,
        iterations=total_restarts,
        matvecs=counter.matvec_count,
        rmatvecs=counter.rmatvec_count,
        converged=converged,
    )


def randomized_svd(
    matrix: Union[np.ndarray, LinearOperator],
    rank: int,
    *,
    oversample: int = 8,
    power_iterations: int = 2,
    seed: Optional[int] = 0,
    compute_right: bool = True,
) -> TRSVDResult:
    """Randomized truncated SVD (Halko-Martinsson-Tropp range finder).

    Uses ``rank + oversample`` random probes and ``power_iterations`` rounds of
    subspace (power) iteration with re-orthonormalization, then a dense SVD of
    the small projected matrix.  All accesses go through ``matmat``/``rmatmat``
    so the same distributed operators work here too.
    """
    op = _as_operator(matrix)
    counter = op if isinstance(op, CountingOperator) else CountingOperator(op)
    m, n = counter.shape
    rank = int(rank)
    if rank <= 0:
        raise ValueError("rank must be positive")
    rank = min(rank, m, n)
    probes = min(rank + int(oversample), n)

    rng = np.random.default_rng(seed)
    omega = rng.standard_normal((n, probes))
    sample = counter.matmat(omega)
    q, _ = np.linalg.qr(sample)
    for _ in range(int(power_iterations)):
        z = counter.rmatmat(q)
        z, _ = np.linalg.qr(z)
        sample = counter.matmat(z)
        q, _ = np.linalg.qr(sample)
    # Project: B = Qᵀ A  (n columns), computed as (Aᵀ Q)ᵀ.
    b = counter.rmatmat(q).T
    ub, s, vt = np.linalg.svd(b, full_matrices=False)
    left = q @ ub[:, :rank]
    return TRSVDResult(
        left=np.ascontiguousarray(left),
        singular_values=np.ascontiguousarray(s[:rank]),
        right=np.ascontiguousarray(vt[:rank].T) if compute_right else None,
        iterations=int(power_iterations) + 1,
        matvecs=counter.matvec_count,
        rmatvecs=counter.rmatvec_count,
        converged=True,
    )


def gram_svd(
    matrix: np.ndarray,
    rank: int,
    *,
    compute_right: bool = True,
) -> TRSVDResult:
    """Truncated SVD through the *small* Gram matrix ``G = Yᵀ Y`` (``W × W``).

    HOOI's operand ``Y_(n)`` is tall and skinny: ``I_n`` rows (up to
    millions) but only ``W = ∏_{t≠n} R_t`` columns.  When ``W`` is small
    relative to ``I_n`` the cheapest factor update is one GEMM to form the
    ``W × W`` Gram matrix, a dense ``eigh`` of it, and the recovery
    ``U = Y V Σ⁻¹`` — no Lanczos iteration, no MxV/MTxV passes over the tall
    operand.  (This is *not* the ``Y Yᵀ`` Gram of side ``I_n`` the paper
    argues against — that one is quadratic in the long dimension.)

    Conditioning caveat: the Gram matrix squares the spectrum, so singular
    values below roughly ``√ε · σ_max`` are lost to rounding and their
    vectors are unreliable.  Numerically tiny directions are repaired by
    re-orthonormalization (random completion), keeping ``U`` orthonormal;
    prefer ``"lanczos"`` when trailing singular values matter.
    """
    dense = as_supported_float(np.asarray(matrix))
    if dense.ndim != 2:
        raise ValueError("gram_svd expects a 2-D array")
    m, n = dense.shape
    rank = int(rank)
    if rank <= 0:
        raise ValueError("rank must be positive")
    rank = min(rank, m, n)
    # The big GEMM runs in the operand's dtype policy; the small W x W
    # eigenproblem is always solved in float64 for stability.
    gram = np.asarray(dense.T @ dense, dtype=np.float64)
    eigvals, eigvecs = np.linalg.eigh(gram)
    lead = np.argsort(eigvals)[::-1][:rank]
    sigma = np.sqrt(np.clip(eigvals[lead], 0.0, None))
    right = np.ascontiguousarray(eigvecs[:, lead])
    left = np.asarray(
        dense @ right.astype(dense.dtype, copy=False), dtype=np.float64
    )
    # The Gram matrix's eigenvalues carry an absolute error of order
    # eps * sigma_max^2, so singular values below ~sqrt(eps) * sigma_max are
    # pure noise — the squared-spectrum resolution limit of this method.
    tol = np.sqrt(max(m, n) * np.finfo(np.float64).eps) * (
        sigma[0] if rank else 0.0
    )
    safe = sigma > tol
    left[:, safe] /= sigma[safe]
    if not np.all(safe):
        # Directions squashed by the squared spectrum: zero them out and let
        # the orthonormalization complete the basis with random directions.
        left[:, ~safe] = 0.0
        left = orthonormalize(left)
    return TRSVDResult(
        left=np.ascontiguousarray(left),
        singular_values=np.ascontiguousarray(sigma),
        right=right if compute_right else None,
        iterations=1,
        matvecs=0,
        rmatvecs=0,
        converged=True,
    )


def truncated_svd(
    matrix: Union[np.ndarray, LinearOperator],
    rank: int,
    *,
    method: str = "lanczos",
    **kwargs,
) -> TRSVDResult:
    """Dispatch to a truncated-SVD backend.

    ``method`` is one of ``"lanczos"`` (default), ``"randomized"``, ``"dense"``
    (full LAPACK SVD — only for small matrices / tests), or ``"gram"``
    (:func:`gram_svd`: ``eigh`` of the small ``W × W`` Gram matrix ``YᵀY``
    plus the recovery ``U = Y V Σ⁻¹`` — the fast path for tall-and-skinny
    operands, with a squared-spectrum conditioning caveat).
    """
    # Fault point "trsvd": the factor update of every mode of every sweep
    # (see repro.resilience.faults; a single module-global None check when
    # injection is disabled).
    maybe_fail("trsvd")
    if method == "lanczos":
        return lanczos_svd(matrix, rank, **kwargs)
    if method == "randomized":
        return randomized_svd(matrix, rank, **kwargs)
    if method == "dense":
        dense = matrix.matrix if isinstance(matrix, DenseOperator) else np.asarray(matrix)
        if isinstance(matrix, LinearOperator) and not isinstance(matrix, DenseOperator):
            raise TypeError("method='dense' needs an explicit matrix")
        u, s, vt = np.linalg.svd(dense, full_matrices=False)
        rank = min(int(rank), s.shape[0])
        return TRSVDResult(
            left=np.ascontiguousarray(u[:, :rank]),
            singular_values=s[:rank].copy(),
            right=np.ascontiguousarray(vt[:rank].T),
            iterations=1,
            matvecs=0,
            rmatvecs=0,
            converged=True,
        )
    if method == "gram":
        dense = matrix.matrix if isinstance(matrix, DenseOperator) else np.asarray(matrix)
        if isinstance(matrix, LinearOperator) and not isinstance(matrix, DenseOperator):
            raise TypeError("method='gram' needs an explicit matrix")
        return gram_svd(dense, rank, **kwargs)
    raise ValueError(f"unknown TRSVD method {method!r}")
