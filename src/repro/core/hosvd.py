"""Factor-matrix initialization: random and (truncated) HOSVD.

Algorithm 1 of the paper initializes the factor matrices either randomly or
with the higher-order SVD (HOSVD) [De Lathauwer et al. 2000]: ``U_n`` is set
to the leading ``R_n`` left singular vectors of the sparse matricization
``X_(n)``.  Both options are provided; the HOSVD path works directly on the
sparse CSR matricization so it scales to large sparse tensors.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.core.sparse_tensor import SparseTensor
from repro.core.trsvd import LinearOperator, lanczos_svd
from repro.util.linalg import random_orthonormal
from repro.util.validation import check_rank_vector

__all__ = ["random_init", "hosvd_init", "initialize_factors"]


class _SparseMatricizationOperator(LinearOperator):
    """Matrix-free wrapper around a CSR matricization (for the Lanczos path)."""

    def __init__(self, matrix: sp.csr_matrix) -> None:
        self.matrix = matrix
        self.shape = matrix.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(self.matrix @ x).ravel()

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        return np.asarray(self.matrix.T @ y).ravel()


def random_init(
    tensor: SparseTensor, ranks: Sequence[int] | int, *, seed: Optional[int] = 0
) -> List[np.ndarray]:
    """Random orthonormal factor matrices, one per mode."""
    ranks = check_rank_vector(ranks, tensor.shape)
    factors = []
    for n, (size, rank) in enumerate(zip(tensor.shape, ranks)):
        factor_seed = None if seed is None else seed + n
        factors.append(random_orthonormal(size, rank, seed=factor_seed))
    return factors


def hosvd_init(
    tensor: SparseTensor,
    ranks: Sequence[int] | int,
    *,
    backend: str = "scipy",
    seed: Optional[int] = 0,
) -> List[np.ndarray]:
    """HOSVD initialization: leading left singular vectors of each ``X_(n)``.

    ``backend`` selects the sparse SVD solver: ``"scipy"`` uses
    ``scipy.sparse.linalg.svds`` (ARPACK), ``"lanczos"`` uses the library's own
    matrix-free solver.  Modes whose rank equals the mode size fall back to a
    dense SVD of the matricization's Gram-free thin SVD when small, or to the
    Lanczos solver otherwise.
    """
    ranks = check_rank_vector(ranks, tensor.shape)
    factors: List[np.ndarray] = []
    for mode, rank in enumerate(ranks):
        mat = tensor.matricize(mode)
        rows, cols = mat.shape
        max_arpack = min(rows, cols) - 1
        if backend == "scipy" and 0 < rank <= max_arpack:
            rng = np.random.default_rng(None if seed is None else seed + mode)
            v0 = rng.standard_normal(min(rows, cols))
            u, _, _ = spla.svds(mat.astype(np.float64), k=rank, v0=v0)
            # svds returns singular values (and vectors) in ascending order.
            factors.append(np.ascontiguousarray(u[:, ::-1]))
        elif backend == "lanczos" and rank <= max_arpack:
            result = lanczos_svd(_SparseMatricizationOperator(mat), rank, seed=seed)
            factors.append(result.left)
        else:
            # Rank too close to the matrix dimensions for an iterative solver:
            # densify only this matricization (rows == shape[mode] is small in
            # that situation) and take a thin SVD.
            dense = np.asarray(mat.todense(), dtype=np.float64)
            u, _, _ = np.linalg.svd(dense, full_matrices=False)
            factors.append(np.ascontiguousarray(u[:, :rank]))
    return factors


def initialize_factors(
    tensor: SparseTensor,
    ranks: Sequence[int] | int,
    *,
    init: str | Sequence[np.ndarray] = "hosvd",
    seed: Optional[int] = 0,
) -> List[np.ndarray]:
    """Resolve an ``init`` specification into a list of factor matrices.

    ``init`` may be ``"hosvd"``, ``"random"``, or an explicit list of
    matrices (validated for shape).
    """
    ranks = check_rank_vector(ranks, tensor.shape)
    if isinstance(init, str):
        if init == "hosvd":
            return hosvd_init(tensor, ranks, seed=seed)
        if init == "random":
            return random_init(tensor, ranks, seed=seed)
        raise ValueError(f"unknown init method {init!r}")
    factors = [np.asarray(f, dtype=np.float64) for f in init]
    if len(factors) != tensor.order:
        raise ValueError(
            f"init provided {len(factors)} matrices for an order-{tensor.order} tensor"
        )
    for n, (factor, rank) in enumerate(zip(factors, ranks)):
        if factor.shape != (tensor.shape[n], rank):
            raise ValueError(
                f"init factor {n} has shape {factor.shape}, expected "
                f"{(tensor.shape[n], rank)}"
            )
    return [f.copy() for f in factors]
