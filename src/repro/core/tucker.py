"""The Tucker decomposition container and fit computations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dense import dense_ttm_chain, fold, tensor_norm
from repro.core.kron import batch_kron_rows
from repro.core.sparse_tensor import SparseTensor, as_supported_float

__all__ = ["TuckerTensor", "core_from_ttmc", "tucker_fit"]


@dataclass
class TuckerTensor:
    """A Tucker decomposition ``[[G; U_1, ..., U_N]]``.

    ``core`` has shape ``(R_1, ..., R_N)`` and ``factors[n]`` has shape
    ``(I_n, R_n)``.  In HOOI the factors are orthonormal by construction
    (columns are singular vectors), which several fit shortcuts rely on.
    """

    core: np.ndarray
    factors: List[np.ndarray]

    def __post_init__(self) -> None:
        self.core = as_supported_float(self.core)
        self.factors = [as_supported_float(f) for f in self.factors]
        if self.core.ndim != len(self.factors):
            raise ValueError(
                f"core has order {self.core.ndim} but there are "
                f"{len(self.factors)} factor matrices"
            )
        for n, factor in enumerate(self.factors):
            if factor.ndim != 2:
                raise ValueError(f"factor {n} must be 2-D")
            if factor.shape[1] != self.core.shape[n]:
                raise ValueError(
                    f"factor {n} has {factor.shape[1]} columns but the core's "
                    f"mode-{n} size is {self.core.shape[n]}"
                )

    # ------------------------------------------------------------------ #
    @property
    def order(self) -> int:
        return self.core.ndim

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the (implicit) full tensor."""
        return tuple(f.shape[0] for f in self.factors)

    @property
    def ranks(self) -> Tuple[int, ...]:
        return tuple(self.core.shape)

    def core_norm(self) -> float:
        return float(np.linalg.norm(self.core.ravel()))

    def norm(self) -> float:
        """Frobenius norm of the reconstructed tensor.

        Equals ``||G||`` when all factors are orthonormal; computed exactly
        through Gram matrices otherwise.
        """
        if all(_is_orthonormal(f) for f in self.factors):
            return self.core_norm()
        contracted = self.core.copy()
        for n, factor in enumerate(self.factors):
            gram = factor.T @ factor
            contracted = np.moveaxis(
                np.tensordot(contracted, gram, axes=([n], [0])), -1, n
            )
        value = float(np.tensordot(self.core, contracted, axes=self.order))
        return float(np.sqrt(max(value, 0.0)))

    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense tensor ``G ×_1 U_1 ... ×_N U_N``."""
        return dense_ttm_chain(self.core, self.factors, transpose=False)

    def reconstruct_entries(self, indices: np.ndarray) -> np.ndarray:
        """Evaluate the model at the given coordinates without densifying.

        ``indices`` is ``(m, N)``; the result is a length ``m`` vector.  Used
        for held-out prediction in the examples and for large-tensor fits.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 2 or indices.shape[1] != self.order:
            raise ValueError(f"indices must be (m, {self.order})")
        rows = [self.factors[n][indices[:, n]] for n in range(self.order)]
        kron = batch_kron_rows(rows)
        return kron @ self.core.ravel(order="F")

    def compression_ratio(self, nnz: Optional[int] = None) -> float:
        """Stored entries of the original over stored entries of the model."""
        model = self.core.size + sum(f.size for f in self.factors)
        original = nnz if nnz is not None else int(np.prod(self.shape))
        return float(original) / float(model)


def _is_orthonormal(matrix: np.ndarray, tol: float = 1e-8) -> bool:
    gram = matrix.T @ matrix
    return bool(np.allclose(gram, np.eye(matrix.shape[1]), atol=tol))


def core_from_ttmc(
    last_mode_ttmc: np.ndarray, last_factor: np.ndarray, ranks: Sequence[int]
) -> np.ndarray:
    """Form the core tensor from the mode-``N`` TTMc result.

    Algorithm 3, line 10: after the mode-``N`` TTMc, ``Y_(N)`` already equals
    ``(X ×_1 U_1ᵀ ... ×_{N-1} U_{N-1}ᵀ)_(N)`` of shape ``I_N × prod_{t<N} R_t``;
    multiplying by ``U_Nᵀ`` and folding yields ``G``.
    """
    ranks = tuple(int(r) for r in ranks)
    core_mat = last_factor.T @ last_mode_ttmc
    return fold(core_mat, len(ranks) - 1, ranks)


def tucker_fit(
    tensor: SparseTensor,
    decomposition: TuckerTensor,
    *,
    assume_orthonormal: bool = True,
) -> float:
    """Fit ``1 - ||X - X̂|| / ||X||`` of a Tucker model to a sparse tensor.

    With orthonormal factors (the HOOI invariant) the residual satisfies
    ``||X - X̂||² = ||X||² - ||G||²``, so no reconstruction is needed — this is
    the quantity whose change HOOI monitors for convergence.  The general path
    evaluates the model at the nonzero coordinates and corrects for the dense
    model mass, which is exact only when X̂ is evaluated densely; therefore the
    general path densifies and is meant for small tensors / tests.
    """
    norm_x = tensor.norm()
    if norm_x == 0.0:
        return 1.0
    if assume_orthonormal and all(_is_orthonormal(f) for f in decomposition.factors):
        residual_sq = max(norm_x**2 - decomposition.core_norm() ** 2, 0.0)
        return 1.0 - float(np.sqrt(residual_sq)) / norm_x
    dense = tensor.to_dense()
    residual = tensor_norm(dense - decomposition.to_dense())
    return 1.0 - residual / norm_x
