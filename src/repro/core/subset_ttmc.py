"""Subset-TTMc kernels: partial TTM chains over arbitrary mode subsets.

The per-mode TTMc (:mod:`repro.core.ttmc`) multiplies *all* modes but one in
a single pass over the nonzeros.  The dimension-tree evaluation
(:mod:`repro.engine.dimtree`) instead materializes *partial* chains — the
tensor multiplied by the factors of a subset ``M`` of the modes — and reuses
them between the modes whose TTMc shares that subset.  A partial chain is a
*semi-sparse* tensor: sparse over the free modes ``F = {0..N-1} \\ M`` and
dense over the multiplied ones, stored here as

* a :class:`FiberGrouping` — the distinct index tuples over ``F`` (the
  fibers) plus the CSR-style map from a finer grouping's fibers onto them,
  exactly the symbolic structure of the paper's update lists generalized
  from single modes to mode subsets; and
* a dense *payload* of shape ``(num_fibers, ∏_{t∈M} R_t)`` whose row for
  fiber ``(i_t)_{t∈F}`` equals ``Σ x · kron(U_t[i_t, :] for t ∈ M)`` over
  the nonzeros sharing that fiber.

Payload columns follow the same convention as :func:`repro.core.kron.kron_rows`
applied to the multiplied modes in *ascending* order with the lowest mode
varying fastest.  Because the dimension tree splits contiguous mode ranges,
a node's multiplied set is always a low block ``{0..lo-1}`` plus a high block
``{hi+1..N-1}``, and refining a chain by the sibling's (contiguous, middle)
range is the :func:`kron_insert` below — a single reshaped broadcast multiply
that keeps the ascending-mode column order intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.kron import batch_kron_rows, kron_row_length
from repro.core.ttmc import default_block_size

__all__ = [
    "FiberGrouping",
    "group_fibers",
    "group_fibers_presorted",
    "subset_widths",
    "kron_insert",
    "edge_update_groups",
]


@dataclass(frozen=True)
class FiberGrouping:
    """Distinct fibers of a mode subset and the map from parent fibers onto them.

    Attributes
    ----------
    indices:
        ``(num_groups, k)`` array of the distinct index tuples, in the
        lexicographic order produced by :func:`group_fibers`.
    perm:
        Permutation of parent-fiber positions such that positions mapping to
        the same group are contiguous, ordered consistently with ``indices``.
    segptr:
        Array of length ``num_groups + 1``; parent positions for group ``g``
        occupy ``perm[segptr[g]:segptr[g + 1]]``.
    contiguous:
        True when ``perm`` is the identity — group ``g``'s parent positions
        are literally the slice ``segptr[g]:segptr[g + 1]``.  Numeric passes
        may then read the parent payload through views instead of fancy
        gathers.  :func:`group_fibers_presorted` always produces contiguous
        groupings; :func:`group_fibers` never claims the flag (even when its
        lexsort happens to be the identity) so the flag stays a structural
        guarantee, not a data-dependent accident.
    """

    indices: np.ndarray
    perm: np.ndarray
    segptr: np.ndarray
    contiguous: bool = False

    @property
    def num_groups(self) -> int:
        return int(self.indices.shape[0])

    @property
    def num_parents(self) -> int:
        return int(self.perm.shape[0])

    def group_sizes(self) -> np.ndarray:
        """Number of parent fibers merged into each group."""
        return np.diff(self.segptr)


def group_fibers(index_columns: np.ndarray) -> FiberGrouping:
    """Group rows of an ``(m, k)`` index array by their tuple value.

    A single lexsort — O(m log m), done once per tree edge and reused by
    every numeric pass — generalizing :func:`repro.core.symbolic.symbolic_ttmc`
    from one mode to a mode subset.
    """
    cols = np.asarray(index_columns, dtype=np.int64)
    if cols.ndim != 2:
        raise ValueError("index_columns must be 2-D (fibers x modes)")
    m, k = cols.shape
    if k == 0:
        raise ValueError("cannot group fibers over an empty mode subset")
    if m == 0:
        return FiberGrouping(
            indices=np.empty((0, k), dtype=np.int64),
            perm=np.empty(0, dtype=np.int64),
            segptr=np.zeros(1, dtype=np.int64),
        )
    # lexsort's last key is primary: pass columns reversed so the lowest mode
    # is the most significant and groups come out in ascending tuple order.
    perm = np.lexsort(tuple(cols[:, c] for c in range(k - 1, -1, -1)))
    perm = perm.astype(np.int64, copy=False)
    sorted_cols = cols[perm]
    boundary = np.empty(m, dtype=bool)
    boundary[0] = True
    np.any(sorted_cols[1:] != sorted_cols[:-1], axis=1, out=boundary[1:])
    starts = np.flatnonzero(boundary).astype(np.int64)
    segptr = np.concatenate([starts, [m]]).astype(np.int64)
    return FiberGrouping(indices=sorted_cols[boundary], perm=perm, segptr=segptr)


def group_fibers_presorted(index_columns: np.ndarray) -> FiberGrouping:
    """Group rows that are already in ascending lexicographic order.

    The CSF construction's change-flag walk, lifted to tree edges: when the
    parent's index tuples are lex-sorted, any *prefix* of its columns is
    non-decreasing too, so equal tuples are already contiguous and in order.
    The permutation is then the identity and the segment boundaries fall out
    of one vectorized row-change comparison — no lexsort.  This is how a
    CSF-sourced dimension tree derives every left-child grouping (and, since
    :func:`group_fibers` emits sorted tuples, every deeper grouping of a COO
    tree's sorted internal nodes).

    Equal-valued input rows must be adjacent; rows out of order would be
    silently split into separate groups, so callers are responsible for the
    sortedness invariant.
    """
    cols = np.asarray(index_columns, dtype=np.int64)
    if cols.ndim != 2:
        raise ValueError("index_columns must be 2-D (fibers x modes)")
    m, k = cols.shape
    if k == 0:
        raise ValueError("cannot group fibers over an empty mode subset")
    if m == 0:
        return FiberGrouping(
            indices=np.empty((0, k), dtype=np.int64),
            perm=np.empty(0, dtype=np.int64),
            segptr=np.zeros(1, dtype=np.int64),
            contiguous=True,
        )
    boundary = np.empty(m, dtype=bool)
    boundary[0] = True
    np.any(cols[1:] != cols[:-1], axis=1, out=boundary[1:])
    starts = np.flatnonzero(boundary).astype(np.int64)
    segptr = np.concatenate([starts, [m]]).astype(np.int64)
    return FiberGrouping(
        indices=cols[boundary],
        perm=np.arange(m, dtype=np.int64),
        segptr=segptr,
        contiguous=True,
    )


def subset_widths(
    ranks: Sequence[Optional[int]], lo: int, hi: int
) -> Tuple[int, int]:
    """Dense widths of the low/high multiplied blocks around free range [lo, hi].

    Returns ``(∏_{t < lo} R_t, ∏_{t > hi} R_t)``.  Ranks inside the free
    range may be ``None`` (they are not multiplied and do not contribute).
    """
    lo_width = kron_row_length([int(r) for r in ranks[:lo]])
    hi_width = kron_row_length([int(r) for r in ranks[hi + 1 :]])
    return lo_width, hi_width


def kron_insert(
    payload: np.ndarray,
    middle: np.ndarray,
    lo_width: int,
    hi_width: int,
    *,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Insert a Kronecker block between a payload's low and high blocks.

    ``payload`` has shape ``(m, lo_width * hi_width)`` with the low block
    varying fastest; ``middle`` has shape ``(m, w)`` and corresponds to modes
    lying strictly *between* the low and high blocks in mode order.  The
    result, shape ``(m, lo_width * w * hi_width)``, keeps the ascending-mode
    column convention: low block fastest, then ``middle``, then the high
    block.  ``out`` must be C-contiguous when given (pool buffers are).
    """
    m, wp = payload.shape
    if wp != lo_width * hi_width:
        raise ValueError(
            f"payload width {wp} does not factor as lo {lo_width} x hi {hi_width}"
        )
    if middle.shape[0] != m:
        raise ValueError("payload and middle must have the same number of rows")
    w = middle.shape[1]
    dtype = np.result_type(payload, middle)
    if out is None:
        out = np.empty((m, wp * w), dtype=dtype)
    elif out.shape != (m, wp * w) or out.dtype != dtype:
        raise ValueError(
            f"out has shape {out.shape} / dtype {out.dtype}, expected "
            f"{(m, wp * w)} / {dtype}"
        )
    np.multiply(
        payload.reshape(m, hi_width, 1, lo_width),
        middle.reshape(m, 1, w, 1),
        out=out.reshape(m, hi_width, w, lo_width),
    )
    return out


def edge_update_groups(
    grouping: FiberGrouping,
    group_start: int,
    group_stop: int,
    parent_payload: np.ndarray,
    parent_index_cols: np.ndarray,
    sibling_cols: Sequence[int],
    sibling_factors: Sequence[np.ndarray],
    lo_width: int,
    hi_width: int,
    out: np.ndarray,
    *,
    block_nnz: Optional[int] = None,
    workspace=None,
) -> np.ndarray:
    """Numeric refinement of one tree edge for a contiguous range of groups.

    For each group ``g`` in ``[group_start, group_stop)`` this accumulates

        ``out[g - group_start] = Σ_p  payload[p] ⊗ kron(U_t[i_t(p)], t ∈ S)``

    over the parent fibers ``p`` mapping to ``g``, where ``S`` is the sibling
    mode set (``sibling_cols`` are its columns in ``parent_index_cols``,
    ``sibling_factors`` its factor matrices in the same ascending-mode order)
    and the Kronecker insertion keeps the payload column convention.

    ``out`` (zeroed here) covers only the requested group range, so disjoint
    ranges can be filled concurrently by different workers — the row-parallel,
    lock-free decomposition of :mod:`repro.parallel.shared_dimtree`.
    ``workspace`` supplies the per-block scratch buffers and must be ``None``
    when called from concurrent workers (the pool is not thread-safe).
    """
    out[:] = 0
    count = group_stop - group_start
    if count <= 0:
        return out
    dtype = out.dtype
    sib_width = kron_row_length([f.shape[1] for f in sibling_factors])
    child_width = out.shape[1]
    p0 = int(grouping.segptr[group_start])
    p1 = int(grouping.segptr[group_stop])
    total = p1 - p0
    if total == 0:
        return out
    # A contiguous grouping's perm is the identity: parent fibers for the
    # requested range are literally rows p0:p1, so each block below reads the
    # payload and index columns through slice views instead of fancy gathers.
    # The block order, segment boundaries and accumulation order are the same
    # either way, so both paths produce bit-identical payloads.
    positions = None if grouping.contiguous else grouping.perm[p0:p1]
    counts = np.diff(grouping.segptr[group_start : group_stop + 1])
    local_rows = np.repeat(np.arange(count, dtype=np.int64), counts)
    if block_nnz is None:
        block_nnz = default_block_size(child_width, itemsize=dtype.itemsize)

    for start in range(0, total, block_nnz):
        stop = min(start + block_nnz, total)
        chunk_rows = local_rows[start:stop]
        if positions is None:
            pay = parent_payload[p0 + start : p0 + stop]
            idx_rows = parent_index_cols[p0 + start : p0 + stop]
            blocks = [
                factor[idx_rows[:, col]]
                for col, factor in zip(sibling_cols, sibling_factors)
            ]
        else:
            chunk = positions[start:stop]
            pay = parent_payload[chunk]
            blocks = [
                factor[parent_index_cols[chunk, col]]
                for col, factor in zip(sibling_cols, sibling_factors)
            ]
        kron_scratch = (
            workspace.take((stop - start, sib_width), dtype, tag="dimtree-kron")
            if workspace is not None and len(blocks) > 1
            else None
        )
        kron = batch_kron_rows(blocks, out=kron_scratch)
        insert_scratch = (
            workspace.take(
                (stop - start, child_width), dtype, tag="dimtree-insert"
            )
            if workspace is not None
            else None
        )
        combined = kron_insert(pay, kron, lo_width, hi_width, out=insert_scratch)
        # chunk_rows is non-decreasing (perm is grouped), so the accumulation
        # is a segment-sum; a group split across blocks is handled by the +=.
        boundaries = np.flatnonzero(
            np.concatenate(([True], chunk_rows[1:] != chunk_rows[:-1]))
        )
        sums = np.add.reduceat(combined, boundaries, axis=0)
        out[chunk_rows[boundaries]] += sums
    return out
