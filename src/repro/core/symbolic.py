"""Symbolic TTMc (the paper's preprocessing step, Section III-A.1).

For each mode ``n`` the numeric TTMc accumulates one outer/Kronecker product
per nonzero into the row ``Y_(n)(i_n, :)`` of the matricized result.  Two
nonzeros sharing the same mode-``n`` index therefore write to the same row —
the write conflict the paper untangles by building, once and for all before
the HOOI iterations, the *update list* ``ul_n(i)``: the list of nonzeros that
contribute to row ``i``, together with the set ``J_n`` of non-empty rows.

Here the update lists are stored CSR-style: a permutation of nonzero positions
grouped by mode-``n`` index plus a row-pointer array.  This keeps the numeric
kernel fully vectorized (a gather + segment-sum) and is exactly the reusable
"symbolic data" of Algorithm 3, lines 1-2 and Algorithm 4, lines 1-2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.sparse_tensor import SparseTensor
from repro.util.validation import check_axis

__all__ = ["ModeSymbolic", "SymbolicTTMc", "symbolic_ttmc", "symbolic_all_modes"]


@dataclass(frozen=True)
class ModeSymbolic:
    """Update lists for a single mode.

    Attributes
    ----------
    mode:
        The mode this structure describes.
    rows:
        ``J_n`` — sorted array of mode-``n`` indices owning at least one
        nonzero (only these rows of ``Y_(n)`` are ever touched).
    perm:
        Permutation of nonzero positions such that nonzeros contributing to
        the same row are contiguous, ordered consistently with ``rows``.
    rowptr:
        Array of length ``len(rows) + 1``; nonzeros for ``rows[r]`` occupy
        ``perm[rowptr[r]:rowptr[r + 1]]``.
    """

    mode: int
    rows: np.ndarray
    perm: np.ndarray
    rowptr: np.ndarray

    @property
    def num_rows(self) -> int:
        """Number of non-empty rows (``|J_n|``)."""
        return int(self.rows.shape[0])

    @property
    def nnz(self) -> int:
        return int(self.perm.shape[0])

    def update_list(self, row_index: int) -> np.ndarray:
        """Nonzero positions contributing to the given mode-``n`` index.

        ``row_index`` is a *tensor* index (an element of ``rows``), not a
        position into ``rows``; an empty array is returned for rows with no
        nonzeros, mirroring ``ul_n(i) = ∅``.
        """
        pos = np.searchsorted(self.rows, row_index)
        if pos >= self.rows.shape[0] or self.rows[pos] != row_index:
            return np.empty(0, dtype=np.int64)
        return self.perm[self.rowptr[pos]: self.rowptr[pos + 1]]

    def row_sizes(self) -> np.ndarray:
        """Number of contributing nonzeros per non-empty row."""
        return np.diff(self.rowptr)


class SymbolicTTMc:
    """Symbolic TTMc data for every mode of a tensor (``{ul_n, J_n}`` for all n)."""

    def __init__(self, tensor: SparseTensor, modes: Optional[Sequence[int]] = None):
        self.shape = tensor.shape
        self.order = tensor.order
        self.nnz = tensor.nnz
        self._per_mode: Dict[int, ModeSymbolic] = {}
        if modes is None:
            modes = range(tensor.order)
        for mode in modes:
            self._per_mode[check_axis(mode, tensor.order)] = symbolic_ttmc(
                tensor, mode
            )

    def __contains__(self, mode: int) -> bool:
        return mode in self._per_mode

    def __getitem__(self, mode: int) -> ModeSymbolic:
        mode = check_axis(mode, self.order)
        if mode not in self._per_mode:
            raise KeyError(f"symbolic data was not built for mode {mode}")
        return self._per_mode[mode]

    def modes(self) -> List[int]:
        return sorted(self._per_mode)


def symbolic_ttmc(tensor: SparseTensor, mode: int) -> ModeSymbolic:
    """Build the mode-``n`` update lists for ``tensor``.

    The construction is a single stable sort of the nonzero positions by their
    mode-``n`` index — O(nnz log nnz) — performed once and reused by every
    numeric TTMc in every HOOI iteration.
    """
    mode = check_axis(mode, tensor.order)
    idx = tensor.indices[:, mode]
    perm = np.argsort(idx, kind="stable").astype(np.int64)
    sorted_idx = idx[perm]
    if sorted_idx.shape[0] == 0:
        return ModeSymbolic(
            mode=mode,
            rows=np.empty(0, dtype=np.int64),
            perm=perm,
            rowptr=np.zeros(1, dtype=np.int64),
        )
    boundary = np.empty(sorted_idx.shape, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_idx[1:], sorted_idx[:-1], out=boundary[1:])
    rows = sorted_idx[boundary]
    starts = np.flatnonzero(boundary).astype(np.int64)
    rowptr = np.concatenate([starts, [sorted_idx.shape[0]]]).astype(np.int64)
    return ModeSymbolic(mode=mode, rows=rows, perm=perm, rowptr=rowptr)


def symbolic_all_modes(tensor: SparseTensor) -> SymbolicTTMc:
    """Convenience wrapper building symbolic data for every mode."""
    return SymbolicTTMc(tensor)
