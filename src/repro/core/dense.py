"""Dense tensor helpers: matricization, folding and dense n-mode products.

These routines follow the Kolda-Bader conventions used throughout the paper
(Section II) and serve two purposes: they are the correctness oracles that the
sparse kernels are tested against, and they implement the small dense
contractions HOOI needs once the data has been compressed (core-tensor
formation, dense baseline HOOI).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.util.validation import check_axis

__all__ = [
    "unfold",
    "fold",
    "dense_ttm",
    "dense_ttm_chain",
    "dense_ttv",
    "tensor_norm",
]


def unfold(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``n`` matricization of a dense tensor (Kolda-Bader convention).

    The result has ``tensor.shape[mode]`` rows; column index of element
    ``(i_1, ..., i_N)`` is ``sum_{k != n} i_k * prod_{m < k, m != n} I_m``
    (earlier modes vary fastest).
    """
    tensor = np.asarray(tensor)
    mode = check_axis(mode, tensor.ndim)
    return np.reshape(
        np.moveaxis(tensor, mode, 0), (tensor.shape[mode], -1), order="F"
    )


def fold(matrix: np.ndarray, mode: int, shape: Sequence[int]) -> np.ndarray:
    """Inverse of :func:`unfold`: rebuild the tensor of ``shape`` from ``X_(n)``."""
    shape = tuple(int(s) for s in shape)
    mode = check_axis(mode, len(shape))
    matrix = np.asarray(matrix)
    expected_rows = shape[mode]
    expected_cols = int(np.prod(shape, dtype=np.int64)) // max(expected_rows, 1)
    if matrix.shape != (expected_rows, expected_cols):
        raise ValueError(
            f"matrix of shape {matrix.shape} cannot be folded into {shape} "
            f"along mode {mode}"
        )
    moved_shape = (shape[mode],) + tuple(
        shape[m] for m in range(len(shape)) if m != mode
    )
    tensor = np.reshape(matrix, moved_shape, order="F")
    return np.moveaxis(tensor, 0, mode)


def dense_ttm(
    tensor: np.ndarray, matrix: np.ndarray, mode: int, *, transpose: bool = False
) -> np.ndarray:
    """Dense n-mode (tensor times matrix) product ``X ×_n U``.

    With ``transpose=True`` computes ``X ×_n Uᵀ`` (the form HOOI uses, where
    ``U`` has shape ``I_n × R_n`` and the result mode shrinks to ``R_n``).
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    matrix = np.asarray(matrix, dtype=np.float64)
    mode = check_axis(mode, tensor.ndim)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    op = matrix.T if transpose else matrix
    if op.shape[1] != tensor.shape[mode]:
        raise ValueError(
            f"matrix with {op.shape[1]} columns cannot multiply mode {mode} of "
            f"size {tensor.shape[mode]}"
        )
    unfolded = unfold(tensor, mode)
    product = op @ unfolded
    new_shape = list(tensor.shape)
    new_shape[mode] = op.shape[0]
    return fold(product, mode, new_shape)


def dense_ttm_chain(
    tensor: np.ndarray,
    matrices: Sequence[Optional[np.ndarray]],
    modes: Optional[Iterable[int]] = None,
    *,
    skip: Optional[int] = None,
    transpose: bool = False,
) -> np.ndarray:
    """Multiply ``tensor`` by one matrix per mode (a TTM chain).

    ``matrices`` holds one matrix per mode (entries may be ``None`` to skip a
    mode); ``skip`` additionally excludes a mode, which is how HOOI's
    ``X ×_{-n} Uᵀ`` is expressed.
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    if modes is None:
        modes = range(tensor.ndim)
    result = tensor
    for mode in modes:
        if skip is not None and mode == skip:
            continue
        matrix = matrices[mode]
        if matrix is None:
            continue
        result = dense_ttm(result, matrix, mode, transpose=transpose)
    return result


def dense_ttv(tensor: np.ndarray, vector: np.ndarray, mode: int) -> np.ndarray:
    """Dense tensor-times-vector along ``mode`` (the mode is contracted away)."""
    tensor = np.asarray(tensor, dtype=np.float64)
    vector = np.asarray(vector, dtype=np.float64).ravel()
    mode = check_axis(mode, tensor.ndim)
    if vector.shape[0] != tensor.shape[mode]:
        raise ValueError(
            f"vector of length {vector.shape[0]} cannot contract mode {mode} "
            f"of size {tensor.shape[mode]}"
        )
    return np.tensordot(tensor, vector, axes=([mode], [0]))


def tensor_norm(tensor: np.ndarray) -> float:
    """Frobenius norm of a dense tensor."""
    return float(np.linalg.norm(np.asarray(tensor).ravel()))
