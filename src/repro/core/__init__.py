"""Core sparse-tensor algebra and the sequential HOOI algorithm.

This package contains the paper's primary computational kernels in their
single-process form:

* :class:`~repro.core.sparse_tensor.SparseTensor` — COO sparse tensors;
* dense matricization / folding / n-mode products (correctness oracles);
* the nonzero-based TTMc formulation with its symbolic preprocessing step;
* matrix-free truncated SVD (TRSVD);
* HOSVD/random initialization and the sequential HOOI driver;
* the :class:`~repro.core.tucker.TuckerTensor` result container.
"""

from repro.core.sparse_tensor import SparseTensor, SUPPORTED_DTYPES, resolve_dtype
from repro.core.dense import (
    dense_ttm,
    dense_ttm_chain,
    dense_ttv,
    fold,
    tensor_norm,
    unfold,
)
from repro.core.kron import batch_kron_rows, kron_row_length, kron_rows
from repro.core.symbolic import (
    ModeSymbolic,
    SymbolicTTMc,
    symbolic_all_modes,
    symbolic_ttmc,
)
from repro.core.ttmc import (
    default_block_size,
    gather_ranges,
    ttmc_contributions,
    ttmc_flops,
    ttmc_matricized,
)
from repro.core.subset_ttmc import (
    FiberGrouping,
    edge_update_groups,
    group_fibers,
    kron_insert,
    subset_widths,
)
from repro.core.ttm import SemiSparseTensor, sparse_ttm, sparse_ttm_chain, sparse_ttv
from repro.core.trsvd import (
    CountingOperator,
    DenseOperator,
    LinearOperator,
    TRSVDResult,
    gram_svd,
    lanczos_svd,
    randomized_svd,
    truncated_svd,
)
from repro.core.hosvd import hosvd_init, initialize_factors, random_init
from repro.core.tucker import TuckerTensor, core_from_ttmc, tucker_fit
from repro.core.hooi import HOOIOptions, HOOIResult, hooi, hooi_iteration_stats

__all__ = [
    "SparseTensor",
    "SUPPORTED_DTYPES",
    "resolve_dtype",
    "dense_ttm",
    "dense_ttm_chain",
    "dense_ttv",
    "fold",
    "tensor_norm",
    "unfold",
    "batch_kron_rows",
    "kron_row_length",
    "kron_rows",
    "ModeSymbolic",
    "SymbolicTTMc",
    "symbolic_all_modes",
    "symbolic_ttmc",
    "default_block_size",
    "gather_ranges",
    "ttmc_contributions",
    "ttmc_flops",
    "ttmc_matricized",
    "FiberGrouping",
    "edge_update_groups",
    "group_fibers",
    "kron_insert",
    "subset_widths",
    "SemiSparseTensor",
    "sparse_ttm",
    "sparse_ttm_chain",
    "sparse_ttv",
    "CountingOperator",
    "DenseOperator",
    "LinearOperator",
    "TRSVDResult",
    "gram_svd",
    "lanczos_svd",
    "randomized_svd",
    "truncated_svd",
    "hosvd_init",
    "initialize_factors",
    "random_init",
    "TuckerTensor",
    "core_from_ttmc",
    "tucker_fit",
    "HOOIOptions",
    "HOOIResult",
    "hooi",
    "hooi_iteration_stats",
]
