"""COO sparse tensor container.

The paper operates on general N-mode sparse tensors stored as coordinate
lists (one integer index per mode plus a value per nonzero).  This module
provides that container together with the handful of structural operations
every other subsystem needs: deduplication, mode matricization (as a SciPy
CSR matrix), slicing by mode index, permutation of modes, conversion to and
from dense arrays, and norm/fiber statistics.

Values are stored in ``float64`` by default; ``float32`` is supported as a
first-class storage dtype (the engine's dtype policy halves the memory
traffic of the TTMc phase with it).  Structural operations preserve the
storage dtype; anything that is not a supported float dtype is promoted to
``float64`` on construction.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.util.validation import check_axis, check_shape_vector

__all__ = [
    "SparseTensor",
    "SUPPORTED_DTYPES",
    "resolve_dtype",
    "as_supported_float",
    "DeltaFingerprint",
    "fingerprint_with_delta",
]

#: Value dtypes the library computes in (the engine's dtype policy).
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def as_supported_float(array) -> np.ndarray:
    """Return ``array`` with a policy dtype: float32/float64 kept, rest promoted.

    This is the single promotion rule every module applies to operands it
    receives (tensor values, factor matrices, dense operators): the two
    supported float dtypes pass through untouched, anything else — integers,
    bools, half or extended precision — is promoted to ``float64``.
    """
    array = np.asarray(array)
    if array.dtype not in SUPPORTED_DTYPES:
        array = array.astype(np.float64)
    return array


def resolve_dtype(dtype) -> np.dtype:
    """Normalize a dtype policy specification to ``float32`` or ``float64``.

    Accepts the strings ``"float32"``/``"float64"``, the NumPy scalar types,
    or dtype objects; anything else is rejected so an engine never silently
    computes in an unintended precision.
    """
    resolved = np.dtype(dtype)
    if resolved not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported dtype {dtype!r}: the dtype policy allows "
            "float32 or float64"
        )
    return resolved


#: Per-lane seeds of the multiset hash (arbitrary odd 64-bit constants).
_LANE_SEEDS = (
    0x243F6A8885A308D3,
    0x13198A2E03707344,
    0xA4093822299F31D0,
    0x082EFA98EC4E6C89,
)
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer, vectorized over a uint64 array (wraps mod 2^64)."""
    x = x ^ (x >> np.uint64(30))
    x = x * np.uint64(0xBF58476D1CE4E5B9)
    x = x ^ (x >> np.uint64(27))
    x = x * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def _value_bits(values: np.ndarray) -> np.ndarray:
    """The IEEE bit patterns of a float array, widened to uint64."""
    if values.dtype == np.float32:
        return np.ascontiguousarray(values).view(np.uint32).astype(np.uint64)
    return np.ascontiguousarray(values).view(np.uint64)


def _entry_lanes(indices: np.ndarray, values: np.ndarray) -> Tuple[int, ...]:
    """Commutative multiset hash of ``(index tuple, value)`` entries.

    Each entry is hashed independently (splitmix64 over its index columns
    and value bits) and the per-entry hashes are *summed* per lane with
    wrap-around, so the result depends only on the multiset of entries —
    never on storage order — and two multisets combine by adding lanes.
    Four independent lanes put accidental collisions far below anything a
    cache could observe; this is a structural identity, not a cryptographic
    one (the final digest is derived via sha256 in
    :meth:`DeltaFingerprint.hexdigest`).
    """
    n = int(values.shape[0])
    if n == 0:
        return (0, 0, 0, 0)
    vbits = _value_bits(values)
    cols = np.ascontiguousarray(indices).astype(np.uint64)
    lanes = []
    for seed in _LANE_SEEDS:
        h = np.full(n, np.uint64(seed), dtype=np.uint64)
        for c in range(cols.shape[1]):
            salt = np.uint64((0x9E3779B97F4A7C15 * (c + 1)) & _MASK64)
            h = _mix64(h ^ (cols[:, c] + salt))
        h = _mix64(h ^ vbits)
        lanes.append(int(h.sum(dtype=np.uint64)))
    return tuple(lanes)


@dataclass(frozen=True)
class DeltaFingerprint:
    """Incrementally-extendable content identity of a nonzero multiset.

    :meth:`SparseTensor.fingerprint` is a sha256 over the *sorted* nonzeros
    — canonical, but appending a batch means re-hashing everything stored so
    far.  ``DeltaFingerprint`` carries the identity in a form that extends
    in O(batch) work: four 64-bit lanes of a commutative multiset hash plus
    the shape, dtype and entry count.  :func:`fingerprint_with_delta` folds
    a batch in by adding its lanes; :meth:`hexdigest` derives a stable hex
    digest (via sha256 over the lanes and metadata) whenever a string key
    is needed.

    The identity is over the stored entries *as a multiset*: duplicate
    coordinates contribute one entry each, and storage order never matters.
    It is therefore equal for any split of the same entries into batches —
    the equivalence the streaming layer's hypothesis tests pin down.
    """

    shape: Tuple[int, ...]
    dtype: str
    count: int
    lanes: Tuple[int, int, int, int]

    @classmethod
    def empty(cls, shape: Sequence[int] = (), dtype="float64") -> "DeltaFingerprint":
        return cls(
            shape=tuple(int(s) for s in shape),
            dtype=np.dtype(resolve_dtype(dtype)).str,
            count=0,
            lanes=(0, 0, 0, 0),
        )

    def hexdigest(self) -> str:
        """A stable hex digest of the fingerprint (sha256 over its fields)."""
        digest = hashlib.sha256()
        digest.update(b"repro-delta-fingerprint/1")
        digest.update(np.asarray(self.shape, dtype=np.int64).tobytes())
        digest.update(self.dtype.encode("ascii"))
        digest.update(np.asarray([self.count], dtype=np.int64).tobytes())
        digest.update(np.asarray(self.lanes, dtype=np.uint64).tobytes())
        return digest.hexdigest()


def fingerprint_with_delta(
    base: DeltaFingerprint,
    indices,
    values=None,
    *,
    shape: Sequence[int] | None = None,
) -> DeltaFingerprint:
    """Extend a :class:`DeltaFingerprint` with a batch of appended nonzeros.

    ``indices``/``values`` may also be passed as one object with those
    attributes (a :class:`SparseTensor` or a
    :class:`repro.streaming.DeltaBatch`).  Values are hashed in the base's
    dtype (the streaming layer stores batches cast to its storage dtype, so
    the incremental hash must see the stored bits).  The resulting shape is
    the elementwise max of the base shape and the batch extents unless an
    explicit ``shape`` is given.

    Equivalence contract (hypothesis-tested): for any tensor ``t`` and batch
    ``(bi, bv)``, ``fingerprint_with_delta(t.delta_fingerprint(), bi, bv)``
    equals the ``delta_fingerprint()`` of the tensor holding the
    concatenated entries — no re-hash of the prior nonzeros.
    """
    if values is None:
        values = indices.values
        indices = indices.indices
    indices = np.asarray(indices, dtype=np.int64)
    values = np.asarray(values)
    if indices.ndim != 2:
        if indices.size == 0:
            indices = indices.reshape(0, max(len(base.shape), 1))
        else:
            raise ValueError("indices must be a 2-D array of shape (nnz, order)")
    if base.shape and indices.shape[1] != len(base.shape):
        raise ValueError(
            f"batch has {indices.shape[1]} modes but the base fingerprint "
            f"has {len(base.shape)}"
        )
    values = values.astype(np.dtype(base.dtype), copy=False)
    if shape is not None:
        new_shape = tuple(int(s) for s in shape)
    else:
        extents = (
            tuple(int(m) + 1 for m in indices.max(axis=0))
            if indices.shape[0]
            else (0,) * indices.shape[1]
        )
        if base.shape:
            new_shape = tuple(
                max(s, e) for s, e in zip(base.shape, extents)
            )
        else:
            new_shape = extents
    delta = _entry_lanes(indices, values)
    lanes = tuple(
        int(x)
        for x in (
            np.asarray(base.lanes, dtype=np.uint64)
            + np.asarray(delta, dtype=np.uint64)
        )
    )
    return DeltaFingerprint(
        shape=new_shape,
        dtype=base.dtype,
        count=base.count + int(values.shape[0]),
        lanes=lanes,  # type: ignore[arg-type]
    )


class SparseTensor:
    """An N-mode sparse tensor in coordinate (COO) format.

    Parameters
    ----------
    indices:
        Integer array of shape ``(nnz, order)``; ``indices[t, n]`` is the
        mode-``n`` index of the ``t``-th nonzero (0-based).
    values:
        Real array of shape ``(nnz,)``.
    shape:
        Mode sizes.  Indices must satisfy ``0 <= indices[:, n] < shape[n]``.
    copy:
        When ``True`` (default) the inputs are copied; when ``False`` the
        arrays are used as-is (they are still validated).
    sum_duplicates:
        When ``True``, duplicate coordinates are merged by summing values.
    dtype:
        Storage dtype of the values (``float32`` or ``float64``).  When
        omitted, a supported float dtype of the input is preserved and
        everything else is promoted to ``float64``.
    """

    __slots__ = ("indices", "values", "shape")

    def __init__(
        self,
        indices: np.ndarray,
        values: np.ndarray,
        shape: Sequence[int],
        *,
        copy: bool = True,
        sum_duplicates: bool = False,
        dtype=None,
    ) -> None:
        shape = check_shape_vector(shape)
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values)
        if dtype is not None:
            values = values.astype(resolve_dtype(dtype), copy=False)
        else:
            values = as_supported_float(values)
        if copy:
            indices = indices.copy()
            values = values.copy()
        if indices.ndim != 2:
            if indices.size == 0:
                indices = indices.reshape(0, len(shape))
            else:
                raise ValueError("indices must be a 2-D array of shape (nnz, order)")
        if indices.shape[1] != len(shape):
            raise ValueError(
                f"indices have {indices.shape[1]} columns but shape has "
                f"{len(shape)} modes"
            )
        if values.ndim != 1 or values.shape[0] != indices.shape[0]:
            raise ValueError("values must be 1-D with one entry per nonzero")
        if indices.shape[0]:
            mins = indices.min(axis=0)
            maxs = indices.max(axis=0)
            if (mins < 0).any():
                raise ValueError("negative indices are not allowed")
            if (maxs >= np.asarray(shape, dtype=np.int64)).any():
                bad = int(np.argmax(maxs >= np.asarray(shape, dtype=np.int64)))
                raise ValueError(
                    f"index {int(maxs[bad])} out of range for mode {bad} of size "
                    f"{shape[bad]}"
                )
        self.indices = indices
        self.values = values
        self.shape: Tuple[int, ...] = shape
        if sum_duplicates:
            self._sum_duplicates_inplace()

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, array: np.ndarray, *, tol: float = 0.0) -> "SparseTensor":
        """Build a sparse tensor from a dense array, dropping entries with
        ``abs(value) <= tol``."""
        array = as_supported_float(array)
        if array.ndim == 0:
            raise ValueError("cannot build a SparseTensor from a scalar")
        mask = np.abs(array) > tol
        coords = np.argwhere(mask)
        vals = array[mask]
        return cls(coords, vals, array.shape, copy=False)

    @classmethod
    def empty(cls, shape: Sequence[int], *, dtype=np.float64) -> "SparseTensor":
        """An all-zero tensor of the given shape."""
        shape = check_shape_vector(shape)
        return cls(
            np.empty((0, len(shape)), dtype=np.int64),
            np.empty(0, dtype=resolve_dtype(dtype)),
            shape,
            copy=False,
        )

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def order(self) -> int:
        """Number of modes (the paper's ``N``)."""
        return len(self.shape)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return int(self.values.shape[0])

    @property
    def dtype(self) -> np.dtype:
        """Storage dtype of the values."""
        return self.values.dtype

    @property
    def size(self) -> int:
        """Total number of entries of the dense equivalent."""
        return int(np.prod(self.shape, dtype=np.int64))

    @property
    def density(self) -> float:
        return self.nnz / self.size if self.size else 0.0

    def norm(self) -> float:
        """Frobenius norm."""
        return float(np.linalg.norm(self.values))

    def fingerprint(self) -> str:
        """Content hash of the tensor: shape, value dtype and stored nonzeros.

        The hash is *canonical over the nonzero order*: nonzeros are sorted
        by their linear index before hashing, so two tensors holding the
        same coordinates/values in a different storage order fingerprint
        identically (duplicate coordinates keep their relative order and are
        hashed as stored — fingerprint a :meth:`deduplicate`-d tensor when
        duplicate-insensitive identity is needed).  The dtype participates,
        so a ``float32`` copy of a ``float64`` tensor is a different tensor.

        This is the identity the serving layer's result cache keys on
        (together with :meth:`repro.core.hooi.HOOIOptions.options_fingerprint`):
        any change to the shape, any single index, or any single value —
        including a sign flip or a last-ulp perturbation — changes the hash.
        """
        digest = hashlib.sha256()
        digest.update(b"repro-sparse-tensor/1")
        digest.update(np.asarray(self.shape, dtype=np.int64).tobytes())
        digest.update(self.values.dtype.str.encode("ascii"))
        if self.nnz:
            order = np.argsort(self.linear_indices(), kind="stable")
            digest.update(np.ascontiguousarray(self.indices[order]).tobytes())
            digest.update(np.ascontiguousarray(self.values[order]).tobytes())
        return digest.hexdigest()

    def delta_fingerprint(self) -> DeltaFingerprint:
        """The incrementally-extendable form of :meth:`fingerprint`.

        Hashes the stored entries as an order-insensitive multiset
        (duplicates contribute one entry each, as stored).  Appending a
        batch extends the result in O(batch) via
        :func:`fingerprint_with_delta` instead of re-hashing every prior
        nonzero — the identity the streaming layer maintains per append.
        """
        return DeltaFingerprint(
            shape=self.shape,
            dtype=self.values.dtype.str,
            count=self.nnz,
            lanes=_entry_lanes(self.indices, self.values),  # type: ignore[arg-type]
        )

    def memory_bytes(self) -> int:
        """Bytes held by the coordinate and value arrays.

        The COO footprint is ``nnz × (order × 8 + itemsize)`` — one int64
        per mode per nonzero plus the value.  Compressed formats
        (:meth:`repro.sparse.csf.CSFTensor.memory_bytes`) report the same
        measure so footprints compare directly.
        """
        return int(self.indices.nbytes + self.values.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseTensor(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.3g})"
        )

    # ------------------------------------------------------------------ #
    # Structural operations
    # ------------------------------------------------------------------ #
    def copy(self) -> "SparseTensor":
        return SparseTensor(self.indices, self.values, self.shape, copy=True)

    def astype(self, dtype) -> "SparseTensor":
        """Return the tensor with values stored in the given dtype.

        A no-op (returning ``self``) when the dtype already matches, so the
        engine can apply its dtype policy unconditionally without copying.
        """
        dtype = resolve_dtype(dtype)
        if self.values.dtype == dtype:
            return self
        return SparseTensor(
            self.indices, self.values.astype(dtype), self.shape, copy=False
        )

    def astype_shape(self, shape: Sequence[int]) -> "SparseTensor":
        """Return the same nonzeros viewed in a (possibly larger) shape."""
        return SparseTensor(self.indices, self.values, shape, copy=False)

    def _sum_duplicates_inplace(self) -> None:
        if self.nnz == 0:
            return
        keys = self.linear_indices()
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        uniq_mask = np.empty(keys_sorted.shape, dtype=bool)
        uniq_mask[0] = True
        np.not_equal(keys_sorted[1:], keys_sorted[:-1], out=uniq_mask[1:])
        group_ids = np.cumsum(uniq_mask) - 1
        summed = np.zeros(int(group_ids[-1]) + 1, dtype=self.values.dtype)
        np.add.at(summed, group_ids, self.values[order])
        first_pos = order[uniq_mask]
        self.indices = self.indices[first_pos]
        self.values = summed

    def deduplicate(self) -> "SparseTensor":
        """Return a tensor with duplicate coordinates merged (values summed)."""
        out = self.copy()
        out._sum_duplicates_inplace()
        return out

    def drop_zeros(self, tol: float = 0.0) -> "SparseTensor":
        """Remove explicitly-stored entries with ``abs(value) <= tol``."""
        mask = np.abs(self.values) > tol
        return SparseTensor(
            self.indices[mask], self.values[mask], self.shape, copy=False
        )

    def linear_indices(self) -> np.ndarray:
        """Column-major (first mode fastest) linear index of every nonzero."""
        strides = np.ones(self.order, dtype=np.int64)
        for n in range(1, self.order):
            strides[n] = strides[n - 1] * self.shape[n - 1]
        return self.indices @ strides

    def permute_modes(self, perm: Sequence[int]) -> "SparseTensor":
        """Return the tensor with modes reordered according to ``perm``."""
        perm = list(perm)
        if sorted(perm) != list(range(self.order)):
            raise ValueError(f"perm must be a permutation of 0..{self.order - 1}")
        new_shape = tuple(self.shape[p] for p in perm)
        return SparseTensor(self.indices[:, perm], self.values, new_shape, copy=False)

    def scale(self, alpha: float) -> "SparseTensor":
        """Return ``alpha * X``."""
        return SparseTensor(self.indices, alpha * self.values, self.shape, copy=False)

    def mode_slice(self, mode: int, index: int) -> "SparseTensor":
        """Return the slice ``X[..., index, ...]`` (mode removed) as a sparse tensor."""
        mode = check_axis(mode, self.order)
        if not 0 <= index < self.shape[mode]:
            raise ValueError(f"index {index} out of range for mode {mode}")
        mask = self.indices[:, mode] == index
        keep = [m for m in range(self.order) if m != mode]
        new_shape = tuple(self.shape[m] for m in keep)
        if not keep:
            raise ValueError("cannot slice a 1-mode tensor down to order 0")
        return SparseTensor(
            self.indices[np.ix_(mask, keep)] if mask.any() else
            np.empty((0, len(keep)), dtype=np.int64),
            self.values[mask],
            new_shape,
            copy=False,
        )

    def select_nonzeros(self, positions: np.ndarray) -> "SparseTensor":
        """Return a tensor containing only the nonzeros at ``positions``."""
        positions = np.asarray(positions, dtype=np.int64)
        return SparseTensor(
            self.indices[positions], self.values[positions], self.shape, copy=False
        )

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Materialize the dense array (only sensible for small tensors)."""
        if self.size > 50_000_000:
            raise MemoryError(
                f"refusing to densify a tensor with {self.size} entries"
            )
        out = np.zeros(self.shape, dtype=self.values.dtype)
        if self.nnz:
            np.add.at(out, tuple(self.indices.T), self.values)
        return out

    def matricize(self, mode: int) -> sp.csr_matrix:
        """Mode-``n`` matricization ``X_(n)`` as a SciPy CSR matrix.

        Follows the Kolda-Bader convention: rows are mode-``n`` indices and
        the column index of nonzero ``(i_1, ..., i_N)`` is
        ``sum_{k != n} i_k * prod_{m < k, m != n} I_m`` (earlier modes vary
        fastest).
        """
        mode = check_axis(mode, self.order)
        rows = self.indices[:, mode]
        cols = np.zeros(self.nnz, dtype=np.int64)
        stride = 1
        for k in range(self.order):
            if k == mode:
                continue
            cols += self.indices[:, k] * stride
            stride *= self.shape[k]
        ncols = int(stride)
        mat = sp.coo_matrix(
            (self.values, (rows, cols)), shape=(self.shape[mode], ncols)
        )
        return mat.tocsr()

    # ------------------------------------------------------------------ #
    # Statistics used by the partitioners and experiment harness
    # ------------------------------------------------------------------ #
    def mode_counts(self, mode: int) -> np.ndarray:
        """Number of nonzeros in each mode-``n`` slice (length ``shape[mode]``)."""
        mode = check_axis(mode, self.order)
        return np.bincount(self.indices[:, mode], minlength=self.shape[mode])

    def nonempty_rows(self, mode: int) -> np.ndarray:
        """Sorted array of mode-``n`` indices that own at least one nonzero."""
        mode = check_axis(mode, self.order)
        return np.unique(self.indices[:, mode])

    def allclose(self, other: "SparseTensor", *, rtol: float = 1e-10,
                 atol: float = 1e-12) -> bool:
        """Compare two sparse tensors entry-wise (after deduplication)."""
        if self.shape != other.shape:
            return False
        a = self.deduplicate()
        b = other.deduplicate()
        ka, kb = a.linear_indices(), b.linear_indices()
        pa, pb = np.argsort(ka), np.argsort(kb)
        ka, kb = ka[pa], kb[pb]
        va, vb = a.values[pa], b.values[pb]
        # Entries present in only one tensor must be ~zero.
        common_a = np.isin(ka, kb)
        common_b = np.isin(kb, ka)
        if not np.allclose(va[~common_a], 0.0, atol=atol):
            return False
        if not np.allclose(vb[~common_b], 0.0, atol=atol):
            return False
        return np.allclose(va[common_a], vb[common_b], rtol=rtol, atol=atol)
