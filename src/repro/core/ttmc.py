"""Nonzero-based TTMc (tensor-times-matrix chain) kernels.

This implements the paper's equation (4) / Algorithm 2: for the target mode
``n``, every nonzero ``x[i_1, ..., i_N]`` contributes

    ``x * kron(U_t[i_t, :] for t != n)``

to row ``i_n`` of the matricized result ``Y_(n)`` (an ``I_n x prod_{t != n} R_t``
dense matrix).  The kernels here are the sequential building blocks; the
shared-memory and distributed layers parallelize *over rows* of ``Y_(n)``
using the symbolic structure from :mod:`repro.core.symbolic`.

Performance notes (per the HPC-Python guides): there is no per-nonzero Python
loop.  Nonzeros are processed in blocks; factor rows are gathered with fancy
indexing, combined with :func:`repro.core.kron.batch_kron_rows`, scaled by the
values and accumulated with a segment-sum (``np.add.reduceat`` over the
row-grouped order produced by the symbolic step), so the inner work is all
vectorized NumPy.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.kron import batch_kron_rows, kron_dtype, kron_row_length
from repro.core.sparse_tensor import SparseTensor
from repro.core.symbolic import ModeSymbolic, symbolic_ttmc
from repro.util.validation import check_axis, check_same_order

__all__ = [
    "ttmc_matricized",
    "ttmc_contributions",
    "ttmc_dtype",
    "ttmc_flops",
    "default_block_size",
    "gather_ranges",
]

#: Upper bound on nonzeros processed per vectorized block.
_DEFAULT_BLOCK_NNZ = 65536


def default_block_size(
    kron_width: int, *, budget_bytes: int = 64 << 20, itemsize: int = 8
) -> int:
    """Pick a nonzero block size so the Kronecker buffer stays under ``budget_bytes``."""
    kron_width = max(int(kron_width), 1)
    block = budget_bytes // (max(int(itemsize), 1) * kron_width)
    return int(min(_DEFAULT_BLOCK_NNZ, max(1024, block)))


def ttmc_dtype(tensor: SparseTensor, factors, mode: int) -> np.dtype:
    """Promoted compute dtype of a TTMc (float32 only when everything is)."""
    operands = [tensor.values] + [f for t, f in enumerate(factors) if t != mode]
    return kron_dtype(*[np.asarray(a) for a in operands if a is not None])


def gather_ranges(source: np.ndarray, starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``source[starts[r]:starts[r]+counts[r]]`` for all ``r`` (vectorized)."""
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=source.dtype)
    ends = np.cumsum(counts)
    begins = ends - counts
    offsets = np.repeat(starts - begins, counts)
    return source[np.arange(total, dtype=np.int64) + offsets]


def _factor_widths(
    factors: Sequence[Optional[np.ndarray]], shape: Sequence[int], mode: int
) -> List[int]:
    widths = []
    for t, factor in enumerate(factors):
        if t == mode:
            continue
        if factor is None:
            raise ValueError(f"factor for mode {t} is required but is None")
        factor = np.asarray(factor)
        if factor.ndim != 2:
            raise ValueError(f"factor for mode {t} must be 2-D")
        if factor.shape[0] != shape[t]:
            raise ValueError(
                f"factor for mode {t} has {factor.shape[0]} rows but the tensor "
                f"mode has size {shape[t]}"
            )
        widths.append(factor.shape[1])
    return widths


def ttmc_flops(tensor_nnz: int, ranks: Sequence[int], mode: int) -> int:
    """Rough flop count of a mode-``n`` nonzero-based TTMc.

    Each nonzero builds the Kronecker product of ``N - 1`` factor rows
    incrementally and then performs one scaled accumulation of length
    ``prod_{t != n} R_t``.  This is the work measure ``W_TTMc`` the paper
    reports per process in Table III (up to a constant factor).
    """
    width = 1
    flops = 0
    for t, r in enumerate(ranks):
        if t == mode:
            continue
        width *= int(r)
        flops += width
    return int(tensor_nnz) * (flops + 2 * width)


def ttmc_contributions(
    tensor: SparseTensor,
    factors: Sequence[Optional[np.ndarray]],
    mode: int,
    nonzero_positions: np.ndarray,
    *,
    block_nnz: Optional[int] = None,
) -> np.ndarray:
    """Per-nonzero TTMc contributions ``x * kron(U_t[i_t, :], t != n)``.

    Returns an array of shape ``(len(nonzero_positions), prod R_t)``.  This is
    the fine-grain (z-task) primitive; callers that want the assembled rows of
    ``Y_(n)`` should use :func:`ttmc_matricized` instead.
    """
    mode = check_axis(mode, tensor.order)
    check_same_order(tensor.order, factors, "factors")
    widths = _factor_widths(factors, tensor.shape, mode)
    width = kron_row_length(widths)
    dtype = ttmc_dtype(tensor, factors, mode)
    positions = np.asarray(nonzero_positions, dtype=np.int64)
    out = np.empty((positions.shape[0], width), dtype=dtype)
    if block_nnz is None:
        block_nnz = default_block_size(width, itemsize=dtype.itemsize)
    factor_arrays = [
        None if t == mode else np.asarray(factors[t], dtype=dtype)
        for t in range(tensor.order)
    ]
    for start in range(0, positions.shape[0], block_nnz):
        chunk = positions[start:start + block_nnz]
        idx = tensor.indices[chunk]
        blocks = [
            factor_arrays[t][idx[:, t]]
            for t in range(tensor.order)
            if t != mode
        ]
        kron = batch_kron_rows(blocks)
        kron *= tensor.values[chunk][:, None]
        out[start:start + chunk.shape[0]] = kron
    return out


def _selected_positions(
    symbolic: ModeSymbolic, rows: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Nonzero positions (grouped by row) and their target rows for a row subset."""
    if rows is None:
        counts = symbolic.row_sizes()
        positions = symbolic.perm
        row_of_nnz = np.repeat(symbolic.rows, counts)
        return positions, row_of_nnz
    rows = np.asarray(rows, dtype=np.int64)
    sel = np.flatnonzero(np.isin(symbolic.rows, rows))
    counts = symbolic.rowptr[sel + 1] - symbolic.rowptr[sel]
    positions = gather_ranges(symbolic.perm, symbolic.rowptr[sel], counts)
    row_of_nnz = np.repeat(symbolic.rows[sel], counts)
    return positions, row_of_nnz


def _compiled_factor_args(
    tensor: SparseTensor,
    factors: Sequence[Optional[np.ndarray]],
    mode: int,
    dtype,
    table,
):
    """Factor list + column map in the form the compiled COO kernel takes."""
    cols = np.asarray(
        [t for t in range(tensor.order) if t != mode], dtype=np.int64
    )
    arrays = [
        np.ascontiguousarray(np.asarray(factors[t], dtype=dtype)) for t in cols
    ]
    return table.make_factor_list(arrays), cols


def ttmc_matricized(
    tensor: SparseTensor,
    factors: Sequence[Optional[np.ndarray]],
    mode: int,
    *,
    symbolic: Optional[ModeSymbolic] = None,
    rows: Optional[np.ndarray] = None,
    block_nnz: Optional[int] = None,
    out: Optional[np.ndarray] = None,
    workspace=None,
    zero: str = "full",
    kernel: str = "numpy",
) -> np.ndarray:
    """Mode-``n`` matricized TTMc result ``Y_(n) = (X ×_{-n} Uᵀ)_(n)``.

    Parameters
    ----------
    tensor:
        The sparse input tensor ``X`` (or a rank-local portion of it).
    factors:
        One factor matrix per mode (``I_t × R_t``); the entry for ``mode`` is
        ignored and may be ``None``.
    mode:
        The mode that is *not* multiplied (the rows of the result).
    symbolic:
        Pre-built update lists for ``mode`` (built on the fly when omitted).
        Reusing this across HOOI iterations is the point of the symbolic step.
    rows:
        Optional subset of mode-``n`` indices to compute (the distributed
        coarse-grain algorithm restricts computation to its owned rows
        ``I_n^k``).  Other rows of the output stay zero.
    block_nnz:
        Nonzeros per vectorized block (defaults to a size bounding the
        temporary Kronecker buffer to ~64 MB).
    out:
        Optional preallocated ``(I_n, prod R_t)`` output buffer (zeroed here).
    workspace:
        Optional :class:`repro.engine.workspace.WorkspacePool` supplying the
        per-block Kronecker scratch buffer, so repeated calls (one per mode
        per HOOI iteration) stop allocating the widest temporary.  Not
        thread-safe: pass ``None`` from concurrent workers.
    zero:
        How much of a caller-provided ``out`` to clear before accumulating:
        ``"full"`` (default) memsets the whole ``I_n × W`` buffer;
        ``"touched"`` zeroes only the rows this call accumulates into (the
        ``|J_n|`` non-empty rows, or the ``rows`` subset) — valid when the
        caller guarantees every *other* row is already zero, as the engine's
        per-mode pooled buffers do between sweeps; ``"none"`` skips zeroing
        entirely (the caller takes full responsibility).  Ignored when
        ``out`` is ``None`` (a fresh buffer is allocated zeroed).
    kernel:
        Implementation tier of the inner loop: ``"numpy"`` (default — the
        blocked gather/kron/``reduceat`` path above) or ``"numba"``
        (:mod:`repro.kernels` — one fused pass per output row, no
        full-width temporaries; ``block_nnz`` and ``workspace`` are unused
        there).  Same numerics up to floating-point reassociation.

    Returns
    -------
    ndarray of shape ``(I_n, prod_{t != n} R_t)``.
    """
    from repro.kernels import kernel_table
    mode = check_axis(mode, tensor.order)
    check_same_order(tensor.order, factors, "factors")
    if zero not in ("full", "touched", "none"):
        raise ValueError(f"unknown zero policy {zero!r}")
    widths = _factor_widths(factors, tensor.shape, mode)
    width = kron_row_length(widths)
    n_rows = tensor.shape[mode]
    dtype = ttmc_dtype(tensor, factors, mode)

    if out is None:
        out = np.zeros((n_rows, width), dtype=dtype)
        zero = "none"
    else:
        if out.shape != (n_rows, width) or out.dtype != dtype:
            raise ValueError(
                f"out has shape {out.shape} / dtype {out.dtype}, expected "
                f"{(n_rows, width)} / {dtype}"
            )
        if zero == "full":
            out[:] = 0.0

    if tensor.nnz == 0:
        return out

    if symbolic is None:
        symbolic = symbolic_ttmc(tensor, mode)
    elif symbolic.mode != mode or symbolic.nnz != tensor.nnz:
        raise ValueError("symbolic data does not match the tensor/mode")

    table = kernel_table(kernel)
    if table is not None:
        # Compiled tier: one fused pass per output row.  Every selected row
        # is zeroed and assigned inside the kernel, so only rows *requested
        # but absent from J_n* need an explicit clear under "touched".
        if rows is None:
            target_rows = symbolic.rows
            positions = symbolic.perm
            rowptr = symbolic.rowptr
        else:
            rows_arr = np.asarray(rows, dtype=np.int64)
            present = np.isin(rows_arr, symbolic.rows)
            if zero == "touched" and not present.all():
                out[rows_arr[~present]] = 0.0
            sel = np.flatnonzero(np.isin(symbolic.rows, rows_arr))
            counts = symbolic.rowptr[sel + 1] - symbolic.rowptr[sel]
            positions = gather_ranges(
                symbolic.perm, symbolic.rowptr[sel], counts
            )
            rowptr = np.zeros(sel.shape[0] + 1, dtype=np.int64)
            np.cumsum(counts, out=rowptr[1:])
            target_rows = symbolic.rows[sel]
        if target_rows.shape[0]:
            factor_list, cols = _compiled_factor_args(
                tensor, factors, mode, dtype, table
            )
            table.coo_row_block_ttmc(
                tensor.indices,
                tensor.values,
                factor_list,
                cols,
                np.ascontiguousarray(rowptr, dtype=np.int64),
                np.ascontiguousarray(positions, dtype=np.int64),
                np.ascontiguousarray(target_rows, dtype=np.int64),
                out,
            )
        return out

    if zero == "touched":
        touched = symbolic.rows if rows is None else np.asarray(rows, dtype=np.int64)
        out[touched] = 0.0

    positions, row_of_nnz = _selected_positions(symbolic, rows)
    if positions.shape[0] == 0:
        return out

    if block_nnz is None:
        block_nnz = default_block_size(width, itemsize=dtype.itemsize)

    factor_arrays = [
        None if t == mode else np.asarray(factors[t], dtype=dtype)
        for t in range(tensor.order)
    ]

    for start in range(0, positions.shape[0], block_nnz):
        chunk = positions[start:start + block_nnz]
        chunk_rows = row_of_nnz[start:start + chunk.shape[0]]
        idx = tensor.indices[chunk]
        blocks = [
            factor_arrays[t][idx[:, t]]
            for t in range(tensor.order)
            if t != mode
        ]
        # The scratch must never alias ``out`` (we accumulate into ``out``
        # below while the scratch still holds this block's rows), so it draws
        # from a distinct pool namespace even when the shapes coincide.
        scratch = (
            workspace.take((chunk.shape[0], width), dtype, tag="kron-scratch")
            if workspace is not None and len(blocks) > 1
            else None
        )
        kron = batch_kron_rows(blocks, out=scratch)
        kron *= tensor.values[chunk][:, None]
        # chunk_rows is non-decreasing (positions are grouped by row), so the
        # accumulation is a segment-sum: reduce each run of equal rows, then
        # add the partial sums into the output (a row split across blocks is
        # handled by the ``+=``).
        boundaries = np.flatnonzero(
            np.concatenate(([True], chunk_rows[1:] != chunk_rows[:-1]))
        )
        sums = np.add.reduceat(kron, boundaries, axis=0)
        out[chunk_rows[boundaries]] += sums
    return out
