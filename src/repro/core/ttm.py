"""Sparse tensor-times-matrix (TTM) and tensor-times-vector (TTV) products.

These are the classical building blocks that alternative TTMc evaluation
schemes (the MET baseline, HOSVD initialization) are built from.  A single
sparse TTM ``X ×_n Uᵀ`` produces a semi-sparse result: it stays sparse in all
modes except ``n``, which becomes dense of size ``R_n``.  We represent that
result as a :class:`SemiSparseTensor` — a COO list over the un-multiplied
modes whose "values" are dense vectors of length ``R_n`` — which is exactly
the structure a TTM chain threads through successive multiplications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.kron import batch_kron_rows
from repro.core.sparse_tensor import SparseTensor, as_supported_float
from repro.util.validation import check_axis

__all__ = ["SemiSparseTensor", "sparse_ttm", "sparse_ttv", "sparse_ttm_chain"]


@dataclass
class SemiSparseTensor:
    """Result of multiplying a sparse tensor in a subset of its modes.

    Attributes
    ----------
    indices:
        ``(m, k)`` integer array over the *remaining* (un-multiplied) modes;
        duplicate index combinations are always merged.
    blocks:
        ``(m, W)`` dense array; row ``p`` is the dense block attached to
        ``indices[p]``, of width ``W = prod`` of the ranks of the multiplied
        modes (ordered so that earlier multiplied modes vary fastest).
    remaining_modes:
        Original mode ids (into the source tensor) of the index columns.
    multiplied_modes:
        Original mode ids folded into the dense block, in the order that
        defines the block layout.
    shape:
        Sizes of the remaining modes.
    ranks:
        Widths contributed by each multiplied mode (same order as
        ``multiplied_modes``).
    """

    indices: np.ndarray
    blocks: np.ndarray
    remaining_modes: Tuple[int, ...]
    multiplied_modes: Tuple[int, ...]
    shape: Tuple[int, ...]
    ranks: Tuple[int, ...]

    @property
    def nnz(self) -> int:
        return int(self.indices.shape[0])

    @property
    def block_width(self) -> int:
        return int(self.blocks.shape[1])

    def matricize_remaining(self, mode: int) -> np.ndarray:
        """Dense matrix whose rows are the given remaining mode, columns the block.

        Only valid when a single remaining mode is left; this is the matrix
        handed to the TRSVD step by TTM-chain style algorithms.
        """
        if len(self.remaining_modes) != 1:
            raise ValueError(
                "matricize_remaining requires exactly one remaining mode, "
                f"got {len(self.remaining_modes)}"
            )
        if self.remaining_modes[0] != mode:
            raise ValueError(
                f"remaining mode is {self.remaining_modes[0]}, not {mode}"
            )
        out = np.zeros((self.shape[0], self.block_width), dtype=self.blocks.dtype)
        if self.nnz:
            out[self.indices[:, 0]] += self.blocks
        return out


def _merge_duplicates(indices: np.ndarray, blocks: np.ndarray,
                      shape: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
    """Sum dense blocks that share the same remaining-mode coordinates."""
    if indices.shape[0] == 0:
        return indices, blocks
    strides = np.ones(indices.shape[1], dtype=np.int64)
    for k in range(1, indices.shape[1]):
        strides[k] = strides[k - 1] * int(shape[k - 1])
    keys = indices @ strides
    order = np.argsort(keys, kind="stable")
    keys_sorted = keys[order]
    boundary = np.empty(keys_sorted.shape, dtype=bool)
    boundary[0] = True
    np.not_equal(keys_sorted[1:], keys_sorted[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    merged_blocks = np.add.reduceat(blocks[order], starts, axis=0)
    merged_indices = indices[order[starts]]
    return merged_indices, merged_blocks


def sparse_ttm(
    tensor: SparseTensor,
    matrix: np.ndarray,
    mode: int,
    *,
    merge: bool = True,
) -> SemiSparseTensor:
    """Single sparse TTM ``X ×_n Uᵀ`` (``U`` is ``I_n × R_n``).

    The result keeps COO structure over the other modes and a dense length
    ``R_n`` block per surviving coordinate (equation (3) of the paper).
    """
    mode = check_axis(mode, tensor.order)
    matrix = as_supported_float(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != tensor.shape[mode]:
        raise ValueError(
            f"matrix must be ({tensor.shape[mode]} x R), got {matrix.shape}"
        )
    remaining = tuple(m for m in range(tensor.order) if m != mode)
    rem_idx = tensor.indices[:, list(remaining)]
    blocks = matrix[tensor.indices[:, mode]] * tensor.values[:, None]
    shape = tuple(tensor.shape[m] for m in remaining)
    if merge:
        rem_idx, blocks = _merge_duplicates(rem_idx, blocks, shape)
    return SemiSparseTensor(
        indices=rem_idx,
        blocks=blocks,
        remaining_modes=remaining,
        multiplied_modes=(mode,),
        shape=shape,
        ranks=(matrix.shape[1],),
    )


def _semi_ttm(semi: SemiSparseTensor, matrix: np.ndarray, mode: int,
              *, merge: bool = True) -> SemiSparseTensor:
    """Multiply a semi-sparse tensor by ``Uᵀ`` in one of its remaining modes."""
    if mode not in semi.remaining_modes:
        raise ValueError(f"mode {mode} is not a remaining mode of this tensor")
    col = semi.remaining_modes.index(mode)
    matrix = as_supported_float(matrix)
    if matrix.shape[0] != semi.shape[col]:
        raise ValueError(
            f"matrix must have {semi.shape[col]} rows, got {matrix.shape[0]}"
        )
    # New dense block: kron(existing block, U[i_mode, :]) with the existing
    # (earlier-multiplied) modes varying fastest.
    gathered = matrix[semi.indices[:, col]]
    blocks = batch_kron_rows([semi.blocks, gathered])
    keep_cols = [c for c in range(len(semi.remaining_modes)) if c != col]
    indices = semi.indices[:, keep_cols]
    remaining = tuple(m for m in semi.remaining_modes if m != mode)
    shape = tuple(semi.shape[c] for c in keep_cols)
    if merge and indices.shape[1] > 0:
        indices, blocks = _merge_duplicates(indices, blocks, shape)
    elif merge and indices.shape[1] == 0 and indices.shape[0] > 1:
        blocks = blocks.sum(axis=0, keepdims=True)
        indices = indices[:1]
    return SemiSparseTensor(
        indices=indices,
        blocks=blocks,
        remaining_modes=remaining,
        multiplied_modes=semi.multiplied_modes + (mode,),
        shape=shape,
        ranks=semi.ranks + (matrix.shape[1],),
    )


def sparse_ttm_chain(
    tensor: SparseTensor,
    factors: Sequence[Optional[np.ndarray]],
    skip: Optional[int] = None,
    *,
    merge: bool = True,
) -> SemiSparseTensor:
    """TTM chain ``X ×_{t != skip} U_tᵀ`` evaluated one mode at a time.

    This is the conventional (non nonzero-based) evaluation scheme: each TTM
    shrinks one mode to its rank and densifies the partial result, which is
    what the MET-style baseline uses.  Modes are processed in increasing
    order; ``skip`` (if given) is left un-multiplied.
    """
    semi: Optional[SemiSparseTensor] = None
    for mode in range(tensor.order):
        if skip is not None and mode == skip:
            continue
        matrix = factors[mode]
        if matrix is None:
            raise ValueError(f"factor for mode {mode} is required but is None")
        if semi is None:
            semi = sparse_ttm(tensor, matrix, mode, merge=merge)
        else:
            semi = _semi_ttm(semi, matrix, mode, merge=merge)
    if semi is None:
        raise ValueError("sparse_ttm_chain must multiply at least one mode")
    return semi


def sparse_ttv(tensor: SparseTensor, vector: np.ndarray, mode: int) -> SparseTensor:
    """Sparse tensor-times-vector: contract ``mode`` with ``vector``.

    Returns an order ``N - 1`` sparse tensor (duplicates merged).
    """
    mode = check_axis(mode, tensor.order)
    vector = np.asarray(vector, dtype=np.float64).ravel()
    if vector.shape[0] != tensor.shape[mode]:
        raise ValueError(
            f"vector of length {vector.shape[0]} cannot contract mode {mode} "
            f"of size {tensor.shape[mode]}"
        )
    if tensor.order == 1:
        raise ValueError("cannot TTV a 1-mode tensor down to order 0")
    remaining = [m for m in range(tensor.order) if m != mode]
    new_vals = tensor.values * vector[tensor.indices[:, mode]]
    new_idx = tensor.indices[:, remaining]
    new_shape = tuple(tensor.shape[m] for m in remaining)
    return SparseTensor(new_idx, new_vals, new_shape, copy=False, sum_duplicates=True)
