"""Sequential HOOI (Higher Order Orthogonal Iteration), Algorithm 1/3 of the paper.

This is the reference driver every parallel variant is validated against.  It
follows the structure of Algorithm 3 minus the ``parfor``s:

1. build the symbolic TTMc data for every mode once (outside the main loop);
2. per iteration and per mode: numeric TTMc into the matricized ``Y_(n)``,
   then a truncated SVD of ``Y_(n)`` to refresh ``U_n``;
3. after the last mode, the core tensor is obtained from the already-available
   ``Y_(N)`` with a single small dense multiply, and the fit
   ``1 - ||X - X̂|| / ||X||`` is monitored for convergence.

Since the engine refactor the iteration loop itself lives in
:class:`repro.engine.driver.HOOIEngine`; :func:`hooi` configures it with the
:class:`~repro.engine.backend.SequentialBackend`.  This module keeps the
shared option/result containers every driver uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.trsvd import TRSVDResult
from repro.core.tucker import TuckerTensor
from repro.util.timing import TimingBreakdown

__all__ = ["HOOIOptions", "HOOIResult", "hooi", "hooi_iteration_stats"]


@dataclass
class HOOIOptions:
    """Knobs of the HOOI drivers (defaults follow the paper's experiments).

    ``trsvd_method`` selects the factor-update solver: ``"lanczos"`` (the
    default, mirroring SLEPc), ``"randomized"`` (seeded Halko-style range
    finder), ``"gram"`` (eigendecomposition of the small ``W × W`` Gram
    matrix ``YᵀY`` — the right tool when the matricized width
    ``W = ∏_{t≠n} R_t`` is small relative to ``I_n``, with a squared-spectrum
    conditioning caveat; see :func:`repro.core.trsvd.gram_svd`) or
    ``"dense"`` (full LAPACK SVD, small problems only).  ``dtype``
    is the engine's precision policy (``"float32"`` or ``"float64"``) applied
    to the tensor values, factors, TTMc and TRSVD operands alike.
    ``ttmc_strategy`` selects how the sequential and shared-memory drivers
    evaluate the TTMc phase: ``"per-mode"`` (each mode's chain recomputed
    from scratch, the paper's Algorithm 2) or ``"dimtree"`` (memoized partial
    chains on a binary dimension tree, :mod:`repro.engine.dimtree` — fewer
    multiplies per sweep in exchange for resident semi-sparse intermediates).
    ``execution`` selects the single-node execution model: ``"sequential"``
    (default), ``"thread"`` (GIL-bound worker threads — the paper's work
    decomposition, limited wall-clock gain in CPython) or ``"process"``
    (worker processes with zero-copy shared memory — true multicore;
    ``num_workers`` sets the worker count for both).  Both compose with
    either ``ttmc_strategy`` and with the dtype policy.
    """

    max_iterations: int = 5
    tolerance: float = 1e-5
    init: str | Sequence[np.ndarray] = "random"
    trsvd_method: str = "lanczos"
    trsvd_tol: float = 1e-8
    seed: Optional[int] = 0
    block_nnz: Optional[int] = None
    track_fit: bool = True
    dtype: str = "float64"
    ttmc_strategy: str = "per-mode"
    execution: str = "sequential"
    num_workers: int = 1


@dataclass
class HOOIResult:
    """Outcome of a HOOI run.

    ``fit_history`` holds one entry per tracked iteration; with
    ``track_fit=False`` it holds the single fit evaluated after the final
    iteration, so :attr:`fit` is always populated on a completed run.
    """

    decomposition: TuckerTensor
    fit_history: List[float]
    iterations: int
    converged: bool
    timings: TimingBreakdown
    trsvd_stats: List[TRSVDResult] = field(default_factory=list)

    @property
    def fit(self) -> float:
        return self.fit_history[-1] if self.fit_history else float("nan")


def hooi(
    tensor,
    ranks: Sequence[int] | int,
    options: Optional[HOOIOptions] = None,
    *,
    callback: Optional[Callable[[int, float], None]] = None,
    workspace=None,
) -> HOOIResult:
    """Run sequential HOOI on a sparse tensor.

    Parameters
    ----------
    tensor:
        The sparse input tensor ``X``.
    ranks:
        Per-mode decomposition ranks ``R_1, ..., R_N`` (a scalar is broadcast).
    options:
        :class:`HOOIOptions`; defaults match the paper (5 iterations, random
        init, Lanczos TRSVD, float64).
    callback:
        Optional ``callback(iteration, fit)`` invoked after each tracked
        iteration.
    workspace:
        Optional :class:`repro.engine.workspace.WorkspacePool` shared across
        runs (one is created per run otherwise).
    """
    from repro.engine.dimtree import resolve_ttmc_backend
    from repro.engine.driver import HOOIEngine

    options = options or HOOIOptions()
    engine = HOOIEngine(
        tensor,
        ranks,
        options,
        backend=resolve_ttmc_backend(options),
        workspace=workspace,
    )
    return engine.run(callback=callback)


def hooi_iteration_stats(result: HOOIResult) -> Dict[str, float]:
    """Per-iteration average of the timed phases (seconds), for reporting."""
    iters = max(result.iterations, 1)
    return {key: value / iters for key, value in result.timings.totals.items()}
