"""Sequential HOOI (Higher Order Orthogonal Iteration), Algorithm 1/3 of the paper.

This is the reference driver every parallel variant is validated against.  It
follows the structure of Algorithm 3 minus the ``parfor``s:

1. build the symbolic TTMc data for every mode once (outside the main loop);
2. per iteration and per mode: numeric TTMc into the matricized ``Y_(n)``,
   then a truncated SVD of ``Y_(n)`` to refresh ``U_n``;
3. after the last mode, the core tensor is obtained from the already-available
   ``Y_(N)`` with a single small dense multiply, and the fit
   ``1 - ||X - X̂|| / ||X||`` is monitored for convergence.

Since the engine refactor the iteration loop itself lives in
:class:`repro.engine.driver.HOOIEngine`; :func:`hooi` configures it with the
:class:`~repro.engine.backend.SequentialBackend`.  This module keeps the
shared option/result containers every driver uses.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.trsvd import TRSVDResult
from repro.core.tucker import TuckerTensor
from repro.util.timing import TimingBreakdown

__all__ = [
    "AXIS_DEFAULTS",
    "HOOIOptions",
    "HOOIResult",
    "hooi",
    "hooi_iteration_stats",
    "normalize_axis_fields",
]

#: Values each option axis accepts, anywhere.  Context-specific composition
#: rules live in :meth:`HOOIOptions.validate`; the conformance matrix
#: (``tests/test_conformance_matrix.py``) sweeps these axes.  Two values sit
#: outside its full cross product: ``"process"`` (distributed rejection is in
#: the matrix; single-node parity lives in ``tests/test_process_backend.py``,
#: which spawns real worker pools) and ``"dense"`` (matrix asserts the
#: distributed rejection; it is a small-problem debugging solver).
TRSVD_METHODS = ("lanczos", "randomized", "gram", "dense")
TTMC_STRATEGIES = ("per-mode", "dimtree")
EXECUTIONS = ("sequential", "thread", "process")
TENSOR_FORMATS = ("coo", "csf")
KERNELS = ("numpy", "numba")
FALLBACK_POLICIES = ("ladder", "none")
VALIDATION_CONTEXTS = ("single-node", "distributed")

#: Reasons a run ended (:attr:`HOOIResult.termination`): the fit improvement
#: dropped below the tolerance, the sweep budget ran out, a ``cancel_check``
#: requested a graceful stop, or a resumed checkpoint already satisfied the
#: requested ``max_iterations`` so no new sweep ran.
TERMINATIONS = ("converged", "max_iters", "cancelled", "resumed")

#: Concrete spellings the optional axis fields normalize to.
#: :meth:`HOOIOptions.validate` writes these back onto the instance, so a
#: validated options object never carries a ``None`` axis;
#: :func:`normalize_axis_fields` applies the same normalization to
#: serialized option dicts (checkpoints written by pre-normalization builds
#: may have recorded ``None`` spellings).
AXIS_DEFAULTS: Dict[str, str] = {
    "ttmc_strategy": "per-mode",
    "execution": "sequential",
    "tensor_format": "coo",
    "kernel": "numpy",
    "fallback": "ladder",
}


def normalize_axis_fields(data: Mapping[str, object]) -> Dict[str, object]:
    """Copy an options dict with ``None`` axis fields made concrete.

    Only keys that are *present and None* are rewritten; absent keys stay
    absent (partial dicts keep their default-insensitive semantics via
    :meth:`HOOIOptions.from_dict`).
    """
    out = dict(data)
    for key, default in AXIS_DEFAULTS.items():
        if key in out and out[key] is None:
            out[key] = default
    return out


@dataclass
class HOOIOptions:
    """Knobs of the HOOI drivers (defaults follow the paper's experiments).

    ``trsvd_method`` selects the factor-update solver: ``"lanczos"`` (the
    default, mirroring SLEPc), ``"randomized"`` (seeded Halko-style range
    finder), ``"gram"`` (eigendecomposition of the small ``W × W`` Gram
    matrix ``YᵀY`` — the right tool when the matricized width
    ``W = ∏_{t≠n} R_t`` is small relative to ``I_n``, with a squared-spectrum
    conditioning caveat; see :func:`repro.core.trsvd.gram_svd`) or
    ``"dense"`` (full LAPACK SVD, small problems only).  ``dtype``
    is the engine's precision policy (``"float32"`` or ``"float64"``) applied
    to the tensor values, factors, TTMc and TRSVD operands alike.
    ``ttmc_strategy`` selects how the sequential and shared-memory drivers
    evaluate the TTMc phase: ``"per-mode"`` (each mode's chain recomputed
    from scratch, the paper's Algorithm 2) or ``"dimtree"`` (memoized partial
    chains on a binary dimension tree, :mod:`repro.engine.dimtree` — fewer
    multiplies per sweep in exchange for resident semi-sparse intermediates).
    ``execution`` selects the single-node execution model: ``"sequential"``
    (default), ``"thread"`` (GIL-bound worker threads — the paper's work
    decomposition, limited wall-clock gain in CPython) or ``"process"``
    (worker processes with zero-copy shared memory — true multicore;
    ``num_workers`` sets the worker count for both).  Both compose with
    either ``ttmc_strategy`` and with the dtype policy.
    ``tensor_format`` selects the storage the TTMc phase executes on:
    ``"coo"`` (the flat coordinate layout every other axis value was built
    on) or ``"csf"`` (Compressed Sparse Fiber trees,
    :mod:`repro.sparse.csf` — shared index prefixes stored once, TTMc as
    vectorized fiber-segment sweeps; one rooted tree per mode by default).
    CSF composes with every ``execution`` value, every ``trsvd_method`` /
    ``dtype`` / distributed grain, and with both ``ttmc_strategy`` values:
    ``"per-mode"`` runs one rooted CSF tree per mode, ``"dimtree"`` builds
    the dimension tree's nodes over the shared CSF tree's fiber subtrees
    (the leaf matricizations and subset-fiber updates walk the compressed
    layout instead of grouped COO rows), and ``"process"`` serializes the
    per-level CSF arrays into the shared-memory arena so each worker
    attaches the trees once and sweeps disjoint root-fiber slabs lock-free.
    ``kernel`` selects the *implementation tier* of the TTMc inner loops:
    ``"numpy"`` (default — the vectorized kernels) or ``"numba"`` (fused,
    JIT-compiled loop bodies, :mod:`repro.kernels` — same numerics, one
    pass per output row instead of gather/kron/reduceat temporaries).  The
    numba tier requires the numba package and composes with both tensor
    formats, every execution model and the distributed grains (each rank /
    worker runs the compiled loops on its local rows), but not with
    ``ttmc_strategy="dimtree"`` — the one remaining composition hole,
    fail-fast with the missing entry points named
    (:data:`repro.kernels.MISSING_DIMTREE_KERNELS`).  On the distributed
    driver every rank runs the options locally (hybrid MPI+threads ranks,
    rank-local dimension trees or CSF trees); what composes per context is
    defined by :meth:`validate` and specified executable-y by
    ``tests/test_conformance_matrix.py``.
    """

    max_iterations: int = 5
    tolerance: float = 1e-5
    init: str | Sequence[np.ndarray] = "random"
    trsvd_method: str = "lanczos"
    trsvd_tol: float = 1e-8
    seed: Optional[int] = 0
    block_nnz: Optional[int] = None
    track_fit: bool = True
    dtype: str = "float64"
    ttmc_strategy: str = "per-mode"
    execution: str = "sequential"
    num_workers: int = 1
    tensor_format: str = "coo"
    kernel: str = "numpy"
    # Resilience knobs (PR 8).  ``checkpoint_dir`` enables sweep-boundary
    # checkpointing into that directory (atomic, content-hash verified;
    # ``checkpoint_interval`` snapshots every k-th sweep); ``fallback``
    # selects whether the serving layer may degrade a persistently failing
    # job down the process→thread→sequential / numba→numpy / csf→coo
    # ladder ("ladder", default) or must fail it loudly ("none").
    checkpoint_dir: Optional[str] = None
    checkpoint_interval: int = 1
    fallback: str = "ladder"

    def validate(self, context: str = "single-node") -> "HOOIOptions":
        """Check the option values *and* their composition for a driver context.

        This is the single source of truth for what composes: the drivers
        (:func:`hooi`, :func:`repro.parallel.shared_hooi.shared_hooi`,
        :func:`repro.distributed.dist_hooi.distributed_hooi`), the backend
        resolver (:func:`repro.engine.dimtree.resolve_ttmc_backend`) and the
        conformance-matrix test suite all call it instead of keeping their
        own scattered guards.

        ``context`` is ``"single-node"`` (the sequential / threaded / process
        drivers — every axis value composes with every other) or
        ``"distributed"`` (the simulated-MPI driver, where each rank runs the
        options *locally*).  The distributed composition rules:

        * ``trsvd_method`` must be ``"lanczos"`` — the only TRSVD with a
          distributed (fold/scatter + allreduce) implementation
          (Section III-B of the paper);
        * ``execution`` may be ``"sequential"`` or ``"thread"`` (the paper's
          hybrid MPI+threads ranks) but not ``"process"`` — every simulated
          rank would spawn its own worker-process pool and oversubscribe the
          node;
        * both ``ttmc_strategy`` values compose (each rank builds its own
          per-mode symbolic data or rank-local dimension tree).

        Returns ``self`` so drivers can validate inline; raises
        :class:`ValueError` with an actionable message otherwise.
        """
        if context not in VALIDATION_CONTEXTS:
            raise ValueError(
                f"unknown validation context {context!r}: expected one of "
                f"{VALIDATION_CONTEXTS}"
            )
        if self.trsvd_method not in TRSVD_METHODS:
            raise ValueError(
                f"unknown trsvd_method {self.trsvd_method!r}: expected one of "
                f"{TRSVD_METHODS}"
            )
        strategy = self.ttmc_strategy or "per-mode"
        if strategy not in TTMC_STRATEGIES:
            raise ValueError(
                f"unknown ttmc_strategy {strategy!r}: expected 'per-mode' or "
                "'dimtree'"
            )
        execution = self.execution or "sequential"
        if execution not in EXECUTIONS:
            raise ValueError(
                f"unknown execution {execution!r}: expected 'sequential', "
                "'thread' or 'process'"
            )
        if self.dtype not in ("float32", "float64"):
            raise ValueError(
                f"unknown dtype {self.dtype!r}: the engine's precision policy "
                "supports 'float32' and 'float64'"
            )
        if int(self.num_workers) < 1:
            raise ValueError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if int(self.max_iterations) < 1:
            raise ValueError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        tensor_format = self.tensor_format or "coo"
        if tensor_format not in TENSOR_FORMATS:
            raise ValueError(
                f"unknown tensor_format {tensor_format!r}: expected one of "
                f"{TENSOR_FORMATS}"
            )
        kernel = self.kernel or "numpy"
        if kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}: expected one of {KERNELS}"
            )
        fallback = self.fallback or "ladder"
        if fallback not in FALLBACK_POLICIES:
            raise ValueError(
                f"unknown fallback policy {fallback!r}: expected one of "
                f"{FALLBACK_POLICIES} ('ladder' lets a persistently failing "
                "job degrade to a slower-but-working tier; 'none' fails it "
                "once retries are exhausted)"
            )
        if int(self.checkpoint_interval) < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1, got "
                f"{self.checkpoint_interval}"
            )
        if kernel == "numba":
            # Import here: repro.kernels is a leaf package, but keeping core
            # importable without it costs nothing.
            from repro.kernels import missing_dimtree_kernel_message, require_kernel

            if strategy == "dimtree":
                raise ValueError(missing_dimtree_kernel_message())
            require_kernel(kernel)

        if context == "distributed":
            if self.trsvd_method != "lanczos":
                raise ValueError(
                    "the distributed driver supports only "
                    f"trsvd_method='lanczos', got {self.trsvd_method!r}: the "
                    "gram/randomized/dense solvers have no distributed "
                    "(fold/scatter) implementation — run them on the "
                    "single-node drivers instead"
                )
            if execution == "process":
                raise ValueError(
                    "the distributed driver rejects execution='process': "
                    "every simulated MPI rank would spawn its own "
                    "worker-process pool and oversubscribe the node; use "
                    "execution='thread' for hybrid rank×thread runs, or the "
                    "single-node drivers for process execution"
                )
        # Normalize the optional axis fields to their concrete spellings.
        # Downstream consumers compare options structurally —
        # ``options_fingerprint``, ``check_resume_compatible``,
        # ``DegradationLadder.effective_options`` — and must never see a
        # ``None``-vs-concrete split for the same configuration.
        self.ttmc_strategy = strategy
        self.execution = execution
        self.tensor_format = tensor_format
        self.kernel = kernel
        self.fallback = fallback
        return self

    # -- serialization contract ------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """The options as a plain, JSON-serializable dict (every field).

        This is the wire format of the serving layer's job submissions and
        the input :meth:`from_dict` round-trips.  Explicit factor-matrix
        initialization (``init`` given as a sequence of arrays) has no
        serializable form and is rejected with an actionable error — pass
        ``init="random"`` or ``init="hosvd"`` for serializable options.
        """
        if not isinstance(self.init, str):
            raise ValueError(
                "HOOIOptions with an explicit factor-matrix init (a sequence "
                "of arrays) cannot be serialized: to_dict()/"
                "options_fingerprint() need a value-form options object — "
                "use init='random' or init='hosvd', or keep the explicit "
                "factors on the low-level hooi(...) call path"
            )
        out: Dict[str, object] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if value is not None and spec.name in (
                "max_iterations", "num_workers", "seed", "block_nnz",
                "checkpoint_interval",
            ):
                value = int(value)
            out[spec.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "HOOIOptions":
        """Build options from a (possibly partial) dict, rejecting unknowns.

        Missing keys take their defaults, so a fingerprint computed from a
        partial submission equals the fingerprint of the fully-specified
        equivalent (:meth:`options_fingerprint` is default-insensitive).
        Unknown keys raise — a misspelled option silently falling back to
        its default is exactly the failure mode a serializable API must not
        have.
        """
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown HOOIOptions key(s) {unknown}: valid keys are "
                f"{sorted(known)} — check the spelling (from_dict rejects "
                "unknowns instead of silently using defaults)"
            )
        return cls(**dict(data))

    def options_fingerprint(self) -> str:
        """Canonical hash of the options — the cache/wire identity.

        Computed over the *complete* field set serialized with sorted keys,
        so it is insensitive to both construction order and to whether a
        value was spelled out or defaulted:
        ``HOOIOptions().options_fingerprint() ==
        HOOIOptions.from_dict({}).options_fingerprint() ==
        HOOIOptions(max_iterations=5).options_fingerprint()``.
        Together with :meth:`repro.core.sparse_tensor.SparseTensor.fingerprint`
        (and the ranks) it keys the serving layer's result cache.
        """
        payload = json.dumps(
            {"schema": "hooi-options/1", "options": self.to_dict()},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class HOOIResult:
    """Outcome of a HOOI run.

    ``fit_history`` holds one entry per tracked iteration; with
    ``track_fit=False`` it holds the single fit evaluated after the final
    iteration, so :attr:`fit` is always populated on a completed run.

    ``completed_sweeps`` counts every completed sweep the factors embody —
    including sweeps replayed from a resumed checkpoint — and
    ``termination`` says *why* the run stopped (one of
    :data:`TERMINATIONS`), so callers can tell a cancelled partial result
    from a converged one.  ``resumed_sweeps`` is the checkpoint's
    contribution (0 for a fresh run).
    """

    decomposition: TuckerTensor
    fit_history: List[float]
    iterations: int
    converged: bool
    timings: TimingBreakdown
    trsvd_stats: List[TRSVDResult] = field(default_factory=list)
    completed_sweeps: int = 0
    termination: str = "max_iters"
    resumed_sweeps: int = 0

    @property
    def fit(self) -> float:
        """Final fit ``1 - ||X - X̂|| / ||X||``.

        Raises :class:`ValueError` when ``fit_history`` is empty — that only
        happens on a result assembled from a run that died mid-iteration, and
        silently returning NaN used to let such failures propagate into
        reports unnoticed.
        """
        if not self.fit_history:
            raise ValueError(
                "fit_history is empty: the run did not complete an iteration "
                "(a completed run always records at least the final fit, even "
                "with track_fit=False)"
            )
        return self.fit_history[-1]


def hooi(
    tensor,
    ranks: Sequence[int] | int,
    options: Optional[HOOIOptions] = None,
    *,
    callback: Optional[Callable[[int, float], None]] = None,
    workspace=None,
    cancel_check: Optional[Callable[[], None]] = None,
    checkpoint=None,
    resume=None,
) -> HOOIResult:
    """Run sequential HOOI on a sparse tensor.

    Parameters
    ----------
    tensor:
        The sparse input tensor ``X``.
    ranks:
        Per-mode decomposition ranks ``R_1, ..., R_N`` (a scalar is broadcast).
    options:
        :class:`HOOIOptions`; defaults match the paper (5 iterations, random
        init, Lanczos TRSVD, float64).
    callback:
        Optional ``callback(iteration, fit)`` invoked after each tracked
        iteration.
    workspace:
        Optional :class:`repro.engine.workspace.WorkspacePool` shared across
        runs (one is created per run otherwise).
    cancel_check:
        Optional zero-argument callable invoked at every mode boundary of
        every sweep; raise from it to abort the run cooperatively, or return
        truthy to stop *gracefully* at the next sweep boundary (the run ends
        with a partial result and ``termination="cancelled"``).  Backend
        resources are released through the engine's ``finalize`` hook either
        way.
    checkpoint:
        Optional :class:`repro.resilience.Checkpointer` overriding the one
        built from ``options.checkpoint_dir`` / ``checkpoint_interval``.
        When either is active, every configured sweep boundary atomically
        snapshots the run's full resumable state.
    resume:
        Resume a checkpointed run instead of starting from sweep 0: a
        :class:`repro.resilience.CheckpointState`, a checkpoint file path,
        or ``"auto"`` (load ``options.checkpoint_dir``'s rolling checkpoint
        when present, start fresh otherwise).  The resumed run reproduces
        the uninterrupted one's remaining sweeps; structural or numeric
        option mismatches are rejected with an actionable error.
    """
    from repro.engine.dimtree import resolve_ttmc_backend
    from repro.engine.driver import HOOIEngine

    options = (options or HOOIOptions()).validate(context="single-node")
    engine = HOOIEngine(
        tensor,
        ranks,
        options,
        backend=resolve_ttmc_backend(options),
        workspace=workspace,
    )
    return engine.run(
        callback=callback,
        cancel_check=cancel_check,
        checkpoint=checkpoint,
        resume=resume,
    )


def hooi_iteration_stats(result: HOOIResult) -> Dict[str, float]:
    """Per-iteration average of the timed phases (seconds), for reporting."""
    iters = max(result.iterations, 1)
    return {key: value / iters for key, value in result.timings.totals.items()}
