"""Sequential HOOI (Higher Order Orthogonal Iteration), Algorithm 1/3 of the paper.

This is the reference driver every parallel variant is validated against.  It
follows the structure of Algorithm 3 minus the ``parfor``s:

1. build the symbolic TTMc data for every mode once (outside the main loop);
2. per iteration and per mode: numeric TTMc into the matricized ``Y_(n)``,
   then a truncated SVD of ``Y_(n)`` to refresh ``U_n``;
3. after the last mode, the core tensor is obtained from the already-available
   ``Y_(N)`` with a single small dense multiply, and the fit
   ``1 - ||X - X̂|| / ||X||`` is monitored for convergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.hosvd import initialize_factors
from repro.core.sparse_tensor import SparseTensor
from repro.core.symbolic import SymbolicTTMc
from repro.core.trsvd import TRSVDResult, truncated_svd
from repro.core.ttmc import ttmc_matricized
from repro.core.tucker import TuckerTensor, core_from_ttmc
from repro.util.timing import TimingBreakdown
from repro.util.validation import check_rank_vector

__all__ = ["HOOIOptions", "HOOIResult", "hooi", "hooi_iteration_stats"]


@dataclass
class HOOIOptions:
    """Knobs of the HOOI driver (defaults follow the paper's experiments)."""

    max_iterations: int = 5
    tolerance: float = 1e-5
    init: str | Sequence[np.ndarray] = "random"
    trsvd_method: str = "lanczos"
    trsvd_tol: float = 1e-8
    seed: Optional[int] = 0
    block_nnz: Optional[int] = None
    track_fit: bool = True


@dataclass
class HOOIResult:
    """Outcome of a HOOI run."""

    decomposition: TuckerTensor
    fit_history: List[float]
    iterations: int
    converged: bool
    timings: TimingBreakdown
    trsvd_stats: List[TRSVDResult] = field(default_factory=list)

    @property
    def fit(self) -> float:
        return self.fit_history[-1] if self.fit_history else float("nan")


def hooi(
    tensor: SparseTensor,
    ranks: Sequence[int] | int,
    options: Optional[HOOIOptions] = None,
    *,
    callback: Optional[Callable[[int, float], None]] = None,
) -> HOOIResult:
    """Run sequential HOOI on a sparse tensor.

    Parameters
    ----------
    tensor:
        The sparse input tensor ``X``.
    ranks:
        Per-mode decomposition ranks ``R_1, ..., R_N`` (a scalar is broadcast).
    options:
        :class:`HOOIOptions`; defaults match the paper (5 iterations, random
        init, Lanczos TRSVD).
    callback:
        Optional ``callback(iteration, fit)`` invoked after each iteration.
    """
    options = options or HOOIOptions()
    ranks = check_rank_vector(ranks, tensor.shape)
    timings = TimingBreakdown()

    with timings.time("init"):
        factors = initialize_factors(
            tensor, ranks, init=options.init, seed=options.seed
        )

    with timings.time("symbolic"):
        symbolic = SymbolicTTMc(tensor)

    norm_x = tensor.norm()
    fit_history: List[float] = []
    trsvd_stats: List[TRSVDResult] = []
    converged = False
    core = np.zeros(ranks, dtype=np.float64)
    iterations_run = 0

    for iteration in range(options.max_iterations):
        iterations_run = iteration + 1
        last_ttmc: Optional[np.ndarray] = None
        for mode in range(tensor.order):
            with timings.time("ttmc"):
                y_mat = ttmc_matricized(
                    tensor,
                    factors,
                    mode,
                    symbolic=symbolic[mode],
                    block_nnz=options.block_nnz,
                )
            with timings.time("trsvd"):
                result = truncated_svd(
                    y_mat,
                    ranks[mode],
                    method=options.trsvd_method,
                    **(
                        {"tol": options.trsvd_tol, "seed": options.seed}
                        if options.trsvd_method == "lanczos"
                        else {}
                    ),
                )
            factors[mode] = result.left
            trsvd_stats.append(result)
            if mode == tensor.order - 1:
                last_ttmc = y_mat

        with timings.time("core"):
            core = core_from_ttmc(last_ttmc, factors[-1], ranks)

        if options.track_fit:
            with timings.time("fit"):
                core_norm = float(np.linalg.norm(core.ravel()))
                residual_sq = max(norm_x**2 - core_norm**2, 0.0)
                fit = 1.0 - float(np.sqrt(residual_sq)) / norm_x if norm_x else 1.0
            fit_history.append(fit)
            if callback is not None:
                callback(iteration, fit)
            if iteration > 0:
                improvement = fit_history[-1] - fit_history[-2]
                if abs(improvement) < options.tolerance:
                    converged = True
                    break

    decomposition = TuckerTensor(core=core, factors=list(factors))
    return HOOIResult(
        decomposition=decomposition,
        fit_history=fit_history,
        iterations=iterations_run,
        converged=converged,
        timings=timings,
        trsvd_stats=trsvd_stats,
    )


def hooi_iteration_stats(result: HOOIResult) -> Dict[str, float]:
    """Per-iteration average of the timed phases (seconds), for reporting."""
    iters = max(result.iterations, 1)
    return {key: value / iters for key, value in result.timings.totals.items()}
