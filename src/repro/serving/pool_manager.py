"""Lifecycle management of the service's persistent worker crew.

The service amortizes worker-process startup across requests by running
every pooled job on one :class:`~repro.parallel.process_pool.
PersistentWorkerCrew`.  This module owns that crew's lifecycle: lazy
construction on first use, health-checked handout (:meth:`HOOIPoolManager.
acquire` silently replaces a crew whose worker died or whose detach timed
out), the explicit :meth:`~HOOIPoolManager.reset` the crash-retry path
calls, and final teardown.  Cumulative counters (``resets``,
``generations``) survive crew replacement so the metrics snapshot reflects
the service's whole lifetime, not the current crew's.

Since PR 8 the manager also hosts the process tier's
:class:`~repro.resilience.degrade.CircuitBreaker`: consecutive pooled-batch
failures open the circuit and :meth:`acquire` raises
:class:`~repro.resilience.degrade.CircuitOpenError` for the cooldown, so
the service degrades jobs down the fallback ladder immediately instead of
burning retries against a broken tier.  An opt-in startup sweep
(``cleanup_orphans=True``) reclaims stale ``/dev/shm`` segments a previous
SIGKILL'd owner left behind (:func:`repro.parallel.shm.cleanup_orphans`).
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.kernels.registry import kernel_available, warmup_kernels
from repro.parallel.process_pool import PersistentWorkerCrew
from repro.parallel.shm import cleanup_orphans as _cleanup_shm_orphans
from repro.resilience.degrade import CircuitBreaker, CircuitOpenError

__all__ = ["HOOIPoolManager"]


class HOOIPoolManager:
    """Owns the service's crew; hands out a healthy one, rebuilds dead ones.

    Thread-safe: :meth:`acquire` / :meth:`reset` are called from the
    service's worker thread while :meth:`close` and the metrics reads happen
    on the event-loop thread.

    ``breaker`` guards the whole process tier (pass ``None`` to disable —
    acquire then never raises :class:`CircuitOpenError`); callers report
    batch outcomes through :meth:`record_success` / :meth:`record_failure`.
    ``cleanup_orphans=True`` runs an age-gated sweep of stale repro-owned
    shared-memory segments once, before the first crew is built.
    """

    def __init__(
        self,
        num_workers: int = 1,
        *,
        start_method: Optional[str] = None,
        startup_timeout: float = 120.0,
        breaker: Optional[CircuitBreaker] = None,
        cleanup_orphans: bool = False,
        orphan_max_age: float = 3600.0,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = int(num_workers)
        self.start_method = start_method
        self.startup_timeout = startup_timeout
        self.breaker = breaker
        self.resets = 0
        self._generations_retired = 0
        self._crew: Optional[PersistentWorkerCrew] = None
        self._closed = False
        self._lock = threading.Lock()
        self.orphans_removed: tuple = ()
        if cleanup_orphans:
            self.orphans_removed = tuple(
                _cleanup_shm_orphans(max_age_seconds=orphan_max_age)
            )

    def acquire(self) -> PersistentWorkerCrew:
        """A healthy crew, building or transparently replacing as needed.

        Raises :class:`CircuitOpenError` while the breaker is open — the
        caller should degrade the work rather than wait.
        """
        if self.breaker is not None:
            self.breaker.before_call()
        with self._lock:
            if self._closed:
                raise RuntimeError("the pool manager is closed")
            if self._crew is not None and not self._crew.alive:
                self._retire_locked()
            if self._crew is None:
                self._crew = PersistentWorkerCrew(
                    self.num_workers,
                    start_method=self.start_method,
                    startup_timeout=self.startup_timeout,
                )
            return self._crew

    # -- breaker bookkeeping (no-ops without a breaker) ------------------- #
    def record_success(self) -> None:
        """Report a completed pooled batch (closes a half-open circuit)."""
        if self.breaker is not None:
            self.breaker.record_success()

    def record_failure(self) -> None:
        """Report a failed pooled batch (may trip the circuit)."""
        if self.breaker is not None:
            self.breaker.record_failure()

    @property
    def breaker_state(self) -> str:
        """``"closed"`` / ``"open"`` / ``"half-open"``, or ``"disabled"``."""
        return self.breaker.state if self.breaker is not None else "disabled"

    def _retire_locked(self) -> None:
        crew, self._crew = self._crew, None
        if crew is not None:
            self._generations_retired += crew.generations
            crew.close()

    def reset(self) -> None:
        """Tear down the current crew so the next acquire builds a fresh one.

        The crash-retry path: after a :class:`~repro.parallel.process_pool.
        WorkerCrashError` the old crew's surviving processes may hold
        attachments to an arena that is being unlinked, so the whole crew is
        reaped (releasing every shared-memory mapping) before the retried
        jobs run on new workers.
        """
        with self._lock:
            self._retire_locked()
            self.resets += 1

    def warmup(self, kernel: str = "numba") -> None:
        """Front-load the latency the first request would otherwise pay.

        Spawns the crew processes now and, when the compiled tier is
        importable, runs :func:`~repro.kernels.registry.warmup_kernels` so
        JIT compilation happens before any job is admitted.  A no-op for
        tiers that need no warmup.
        """
        self.acquire()
        if kernel != "numpy" and kernel_available(kernel):
            warmup_kernels(kernel)

    @property
    def generations(self) -> int:
        """Pool generations served across every crew this manager owned."""
        with self._lock:
            live = self._crew.generations if self._crew is not None else 0
            return self._generations_retired + live

    def close(self) -> None:
        """Reap the crew; the manager refuses further acquires (idempotent)."""
        with self._lock:
            self._closed = True
            self._retire_locked()

    def __enter__(self) -> "HOOIPoolManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else (
            "idle" if self._crew is None else repr(self._crew)
        )
        return (
            f"HOOIPoolManager(workers={self.num_workers}, "
            f"resets={self.resets}, {state})"
        )
