"""The service's LRU result cache.

Completed decompositions are cached under the request's content-addressed
key ``(tensor_fingerprint, request_fingerprint)`` — see
:class:`repro.serving.jobs.JobRequest` — so resubmitting an *identical* job
(same nonzeros, same ranks, same fully-materialized options, however
spelled) is served without touching the queue or the worker pool.  The cache
is deliberately value-blind: it stores whatever the run returned (an
:class:`~repro.core.hooi.HOOIResult`) and never inspects it.

Accounting is part of the contract: ``hits`` / ``misses`` / ``evictions``
feed the service's metrics snapshot, and the serving tests assert them
exactly, so :meth:`ResultCache.get` is the *only* place a lookup is counted
— callers must not probe the cache through any side door.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional

__all__ = ["ResultCache"]


class ResultCache:
    """A counted LRU mapping of request keys to decomposition results.

    ``capacity`` bounds the number of retained results (a decomposition's
    factors and core are dense, so the bound is on entries, chosen by the
    operator for the deployment's rank regime); ``capacity=0`` disables
    caching entirely while keeping the miss accounting alive.  Not
    thread-safe by design: the service only touches it from the event-loop
    thread.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached result for ``key``, or None; counts the hit/miss."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) a result, evicting the LRU entry beyond capacity."""
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        # Membership does not count as a lookup; accounting lives in get().
        return key in self._entries

    def clear(self) -> None:
        """Drop every entry (counters are preserved; they are cumulative)."""
        self._entries.clear()

    def snapshot(self) -> dict:
        """Counters + occupancy for the service's metrics endpoint."""
        lookups = self.hits + self.misses
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResultCache(size={len(self._entries)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
