"""Decomposition-as-a-service: async jobs over a persistent worker pool.

The one-shot drivers (:func:`repro.hooi`, :func:`repro.decompose`) pay
worker-process startup on every ``execution="process"`` call.  This package
keeps the workers alive between requests and fronts them with an asyncio
job engine:

* :class:`DecompositionService` — submit/await endpoint with admission
  control, FIFO dispatch, small-job batching onto single pool generations,
  an LRU result cache keyed by content fingerprints, cooperative
  cancellation, per-job timeouts, crash retry with sweep-checkpoint resume,
  a circuit-breaker-guarded degradation ladder and a metrics snapshot
  (see :mod:`repro.resilience`).
* :class:`JobHandle` / :class:`JobState` / :class:`JobRequest` — the job
  surface (see :mod:`repro.serving.jobs`).
* :class:`HOOIPoolManager` / :class:`ResultCache` — the reusable pieces
  (crew lifecycle, counted LRU) for embedders building their own loop.

See README "Serving decompositions" for a runnable walkthrough and
CONTRIBUTING for the job-state extension guidelines.
"""

from repro.serving.cache import ResultCache
from repro.serving.executor import (
    PooledProcessBackend,
    pooled_eligible,
    run_direct,
    run_process_batch,
)
from repro.serving.jobs import (
    AdmissionError,
    Job,
    JobCancelledError,
    JobHandle,
    JobRequest,
    JobState,
    JobTimeoutError,
    ServingError,
)
from repro.serving.pool_manager import HOOIPoolManager
from repro.serving.service import DecompositionService

__all__ = [
    "DecompositionService",
    "JobHandle",
    "JobRequest",
    "JobState",
    "Job",
    "ServingError",
    "AdmissionError",
    "JobCancelledError",
    "JobTimeoutError",
    "ResultCache",
    "HOOIPoolManager",
    "PooledProcessBackend",
    "pooled_eligible",
    "run_direct",
    "run_process_batch",
]
