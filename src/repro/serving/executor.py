"""How the service actually runs jobs: direct engine runs and pooled batches.

Two execution paths, chosen per job by the dispatcher:

* :func:`run_direct` — one ordinary :func:`repro.core.hooi.hooi` call on the
  service's worker thread.  Used for ``execution="sequential"`` /
  ``"thread"`` jobs and for the one process-execution shape the pooled path
  does not cover (the dimension-tree strategy, whose fiber-parallel arena
  layout keeps the one-shot pool-per-run lifecycle).

* :func:`run_process_batch` — the persistent-pool path.  All jobs of the
  batch are prepared up front (dtype policy, per-mode symbolic data or
  per-mode rooted CSF trees, initial factors — the same steps, in the same
  order, the engine's own :class:`~repro.engine.backend.ProcessBackend` /
  :class:`~repro.engine.backend.ProcessCSFBackend` perform), packed into ONE
  :meth:`~repro.parallel.process_pool.HOOIProcessPool.for_per_mode_batch`
  generation on the manager's crew, and then run one engine at a time
  through :class:`PooledProcessBackend`.  A batch costs one worker
  attach/detach cycle regardless of its size and zero process spawns — the
  attach/detach-thrash avoidance that makes a stream of small tensors cheap.

Every job's outcome is reported as a ``(job, kind, payload)`` tuple with
``kind`` in ``{"ok", "cancelled", "timeout", "crash", "error"}``; the
service applies them on the event-loop thread (crash outcomes feed the
retry path).  Nothing here touches asyncio — these functions run inside the
service's single worker thread.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hooi import hooi
from repro.core.hosvd import initialize_factors
from repro.core.sparse_tensor import SparseTensor, resolve_dtype
from repro.core.symbolic import symbolic_ttmc
from repro.engine.backend import SequentialBackend
from repro.engine.driver import HOOIEngine
from repro.engine.workspace import WorkspacePool
from repro.parallel.process_pool import (
    BatchJobSpec,
    HOOIProcessPool,
    PersistentWorkerCrew,
    ProcessConfig,
    WorkerCrashError,
)
from repro.resilience.checkpoint import CheckpointState
from repro.resilience.faults import maybe_fail
from repro.serving.jobs import Job, JobCancelledError, JobTimeoutError

__all__ = [
    "PooledProcessBackend",
    "pooled_eligible",
    "run_direct",
    "run_process_batch",
]

#: Outcome kinds the service's dispatcher understands ("breaker" is
#: produced service-side when the pool's circuit is open).
OUTCOME_KINDS = ("ok", "cancelled", "timeout", "crash", "error", "breaker")

Outcome = Tuple[Job, str, object]


def pooled_eligible(job: Job) -> bool:
    """Whether a job can run on the persistent crew's batched generations.

    The batched arena layout implements the per-mode TTMc for both tensor
    formats: row-parallel chunks over COO storage and root-fiber-slab
    pullups over shared-memory CSF trees (members of one batch can mix
    formats).  Only the dimension-tree strategy falls back to
    :func:`run_direct` — it keeps its dedicated fiber-parallel arena
    layout and one-shot pool-per-run lifecycle.

    Judged on the job's *effective* options: a job the degradation ladder
    moved off the process tier routes through :func:`run_direct` from then
    on, whatever its request asked for.
    """
    opts = job.effective_options
    return (
        opts.execution == "process"
        and (opts.ttmc_strategy or "per-mode") == "per-mode"
    )


def _classify(job: Job, exc: BaseException) -> Outcome:
    if isinstance(exc, JobCancelledError):
        return (job, "cancelled", exc)
    if isinstance(exc, JobTimeoutError):
        return (job, "timeout", exc)
    if isinstance(exc, WorkerCrashError):
        return (job, "crash", exc)
    return (job, "error", exc)


def _job_resume(job: Job) -> Optional[CheckpointState]:
    """The checkpoint state a retried/degraded attempt resumes from.

    A first attempt never resumes (there is nothing to resume *from*, and a
    stale rolling file would be rejected by the integrity/compat checks
    anyway — the service keys each job's checkpoint file by its cache-key
    fingerprints).  Later attempts load the rolling file when it exists;
    one that died before its first sweep completed simply starts fresh.
    """
    if job.checkpointer is None or job.attempts <= 1:
        return None
    return job.checkpointer.load()


def _warm_options(job: Job, opts):
    """Substitute a delta job's warm-start factors as the initializer.

    A checkpoint resume outranks the warm seed — the checkpoint holds this
    very job's partial sweeps, strictly newer than the base result's
    factors — so the substitution only applies on a fresh first attempt.
    """
    if job.warm_factors is not None and _job_resume(job) is None:
        return dataclasses.replace(opts, init=list(job.warm_factors))
    return opts


def run_direct(job: Job, *, workspace: Optional[WorkspacePool] = None) -> Outcome:
    """Run one job through the ordinary driver on the calling thread."""
    request = job.request
    try:
        maybe_fail("serving.run_direct")
        result = hooi(
            request.tensor,
            list(request.ranks),
            _warm_options(job, job.effective_options),
            callback=job.progress_callback,
            workspace=workspace,
            cancel_check=job.make_cancel_check(),
            checkpoint=job.checkpointer,
            resume=_job_resume(job),
        )
    except BaseException as exc:
        return _classify(job, exc)
    return (job, "ok", result)


class PooledProcessBackend(SequentialBackend):
    """Engine backend executing TTMc on an already-attached pool generation.

    Unlike :class:`~repro.engine.backend.ProcessBackend` — which builds its
    own pool in ``prepare`` and kills it in ``finalize`` — this backend is
    handed a generation that was built *before* the engine started (the
    batch arena needs every member's operands at construction time) and
    whose teardown belongs to the batch runner, not to any single member.
    The pre-computed tensor/symbolic/factors are replayed into the engine's
    hooks so the engine state matches what the arena holds; ``finalize`` is
    deliberately a no-op.
    """

    name = "pooled-process"

    def __init__(
        self,
        pool: HOOIProcessPool,
        job_key: str,
        tensor: SparseTensor,
        symbolic: Dict,
        factors: Sequence[np.ndarray],
    ) -> None:
        self._pool = pool
        self._job = job_key
        self._tensor = tensor
        self._symbolic = symbolic
        self._factors = list(factors)

    def prepare_tensor(self, eng) -> None:
        # The dtype policy was applied when the arena was packed; hand the
        # engine the exact tensor the workers attached.
        eng.tensor = self._tensor

    def initial_factors(self, eng) -> List[np.ndarray]:
        return self._factors

    def prepare(self, eng) -> None:
        self.symbolic = self._symbolic

    def compute_ttmc(self, eng, mode: int) -> np.ndarray:
        return self._pool.ttmc(mode, job=self._job)

    def update_factor(self, eng, mode: int, y_mat: np.ndarray):
        new_factor, stats = super().update_factor(eng, mode, y_mat)
        self._pool.write_factor(mode, new_factor, job=self._job)
        return new_factor, stats

    def finalize(self, eng) -> None:
        # The generation outlives this member; run_process_batch closes it.
        pass


def _prepare_member(
    job: Job,
) -> Tuple[
    SparseTensor, Dict, object, List[np.ndarray], Optional[CheckpointState]
]:
    """Apply the dtype policy and build symbolic/tree data + initial factors.

    Mirrors the engine's own setup order (``prepare_tensor`` →
    ``initial_factors`` → ``prepare``) so a pooled run is bit-for-bit the
    computation a direct ``execution="process"`` run performs.  A COO
    member builds per-mode symbolic data; a CSF member builds the per-mode
    rooted :class:`~repro.sparse.csf.CSFTensorSet` the arena serializes
    (its TTMc needs no symbolic records — the trees carry the structure).
    A resumed attempt substitutes the checkpoint's factors here — the batch
    arena packs every member's factors at construction time, so the workers
    must see the checkpointed state, not the initializer's.
    """
    request = job.request
    opts = job.effective_options
    dtype = resolve_dtype(opts.dtype)
    tensor = request.tensor
    if isinstance(tensor, SparseTensor):
        tensor = tensor.astype(dtype)
    resume = _job_resume(job)
    if resume is not None:
        factors = [
            np.ascontiguousarray(f, dtype=dtype) for f in resume.factors
        ]
    elif job.warm_factors is not None:
        factors = [
            np.ascontiguousarray(f, dtype=dtype) for f in job.warm_factors
        ]
    else:
        factors = [
            np.asarray(f, dtype=dtype)
            for f in initialize_factors(
                tensor, list(request.ranks), init=opts.init, seed=opts.seed
            )
        ]
    if (opts.tensor_format or "coo") == "csf":
        from repro.sparse import CSFTensorSet

        trees = CSFTensorSet.per_mode(tensor)
        symbolic: Dict = {}
    else:
        trees = None
        symbolic = {
            mode: symbolic_ttmc(tensor, mode) for mode in range(tensor.order)
        }
    return tensor, symbolic, trees, factors, resume


def run_process_batch(
    crew: PersistentWorkerCrew, jobs: Sequence[Job]
) -> List[Outcome]:
    """Run a batch of pooled jobs on one crew generation.

    Members run one at a time (the pool is single-consumer) but share a
    single arena build + worker attach/detach cycle.  A worker crash fails
    the in-flight member with a ``"crash"`` outcome and — because the pool
    is broken from that point — every remaining member reports ``"crash"``
    too, so the service's retry path requeues the whole tail onto a fresh
    crew.  A member's cancellation or timeout aborts only that member; the
    generation stays consistent because the engine's ``cancel_check`` fires
    strictly between dispatches.
    """
    members = []
    try:
        maybe_fail("serving.run_batch")
        for job in jobs:
            tensor, symbolic, trees, factors, resume = _prepare_member(job)
            opts = job.effective_options
            members.append(
                (
                    job,
                    tensor,
                    symbolic,
                    factors,
                    resume,
                    BatchJobSpec(
                        job=job.id,
                        tensor=tensor,
                        symbolic=symbolic,
                        factors=factors,
                        ranks=list(job.request.ranks),
                        block_nnz=opts.block_nnz,
                        kernel=opts.kernel or "numpy",
                        tensor_format=opts.tensor_format or "coo",
                        trees=trees,
                    ),
                )
            )
    except BaseException as exc:
        # Admission already validated the requests, so a preparation failure
        # is unexpected — fail the whole batch with the real error.
        return [_classify(job, exc) for job in jobs]

    try:
        pool = HOOIProcessPool.for_per_mode_batch(
            [m[5] for m in members],
            np.float64,
            config=ProcessConfig(num_workers=crew.num_workers),
            crew=crew,
        )
    except BaseException as exc:
        return [_classify(job, exc) for job in jobs]

    outcomes: List[Outcome] = []
    try:
        for job, tensor, symbolic, factors, resume, _spec in members:
            try:
                backend = PooledProcessBackend(
                    pool, job.id, tensor, symbolic, factors
                )
                engine = HOOIEngine(
                    tensor,
                    list(job.request.ranks),
                    job.effective_options,
                    backend=backend,
                )
                result = engine.run(
                    callback=job.progress_callback,
                    cancel_check=job.make_cancel_check(),
                    checkpoint=job.checkpointer,
                    resume=resume,
                )
            except BaseException as exc:
                outcomes.append(_classify(job, exc))
            else:
                outcomes.append((job, "ok", result))
    finally:
        try:
            pool.close()
        except Exception:
            # A failed detach already marked the crew broken; the arena was
            # still unlinked, which is all teardown must guarantee here.
            pass
    return outcomes
