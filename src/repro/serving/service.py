"""Decomposition-as-a-service: the async job engine over the persistent pool.

:class:`DecompositionService` turns the library's one-shot drivers into a
long-lived endpoint: callers ``await service.submit(tensor, ranks, ...)``
and get a :class:`~repro.serving.jobs.JobHandle` whose result they await
whenever convenient.  Inside, the service is a small, single-consumer
pipeline:

* **Admission** — ``submit`` normalizes the request
  (:meth:`JobRequest.build` validates ranks and options exactly like the
  drivers would), consults the LRU result cache (an identical resubmission
  is served instantly, born ``DONE`` with ``cached=True``), and enforces
  the pending-queue bound (:class:`~repro.serving.jobs.AdmissionError`).

* **Dispatch** — one asyncio task drains the FIFO queue.  Consecutive
  *small* process-execution jobs are packed into one batched pool
  generation (:func:`~repro.serving.executor.run_process_batch`) on the
  persistent worker crew, so a stream of small tensors pays one worker
  attach/detach per batch and zero process spawns; everything else runs
  through the ordinary drivers (:func:`~repro.serving.executor.run_direct`).
  All numeric work happens on ONE worker thread — the event loop stays
  responsive while decompositions grind.

* **Outcomes** — applied back on the loop thread: results land in the
  cache and resolve futures; cancellations and timeouts raise their typed
  errors; a worker crash retires the crew
  (:meth:`~repro.serving.pool_manager.HOOIPoolManager.reset`) and requeues
  the affected jobs up to ``max_retries`` times.

* **Metrics** — :meth:`DecompositionService.metrics` snapshots queue depth,
  per-state counts, cache accounting, pool generations/resets, throughput
  and p50/p95 end-to-end latency.

The service assumes a single asyncio loop (``start`` captures it); handles
may be cancelled from any thread, but ``submit``/``result`` belong to the
loop.  See README "Serving decompositions" for the end-to-end example.
"""

from __future__ import annotations

import asyncio
import functools
import itertools
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.hooi import HOOIOptions
from repro.engine.workspace import WorkspacePool
from repro.serving.cache import ResultCache
from repro.serving.executor import (
    Outcome,
    pooled_eligible,
    run_direct,
    run_process_batch,
)
from repro.serving.jobs import (
    AdmissionError,
    Job,
    JobCancelledError,
    JobHandle,
    JobState,
)
from repro.serving.pool_manager import HOOIPoolManager

__all__ = ["DecompositionService"]

_UNSET = object()


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 for empty)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


class DecompositionService:
    """An async decomposition endpoint over one persistent worker crew.

    Use as an async context manager::

        async with DecompositionService(num_workers=2) as service:
            handle = await service.submit(tensor, 4, execution="process")
            result = await handle.result()

    Parameters
    ----------
    num_workers:
        Worker-process count of the persistent crew (pooled jobs).
    max_pending:
        Admission bound on queued jobs; beyond it ``submit`` raises
        :class:`AdmissionError` (cache hits are exempt — they never queue).
    cache_capacity:
        LRU result-cache entries (0 disables caching).
    batch_max / batch_nnz_limit:
        Admission batching: up to ``batch_max`` consecutive queued
        process-execution jobs whose tensors have at most
        ``batch_nnz_limit`` nonzeros share one pool generation.  Larger
        pooled jobs still run on the crew, one generation each.
    default_timeout:
        Per-job timeout in seconds applied when ``submit`` passes none
        (None = unlimited).  Timeouts abort cooperatively at the next mode
        boundary and surface as :class:`JobTimeoutError`.
    max_retries:
        How many times a job is requeued after a worker crash before it
        fails with the :class:`~repro.parallel.process_pool.WorkerCrashError`.
    warmup:
        Spawn the crew and pre-compile available kernel tiers at
        :meth:`start` instead of on the first request.
    """

    def __init__(
        self,
        *,
        num_workers: int = 1,
        max_pending: int = 64,
        cache_capacity: int = 64,
        batch_max: int = 4,
        batch_nnz_limit: int = 50_000,
        default_timeout: Optional[float] = None,
        max_retries: int = 1,
        warmup: bool = True,
        start_method: Optional[str] = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.max_pending = max_pending
        self.batch_max = batch_max
        self.batch_nnz_limit = batch_nnz_limit
        self.default_timeout = default_timeout
        self.max_retries = max_retries
        self._warmup = warmup
        self._pool = HOOIPoolManager(num_workers, start_method=start_method)
        self._cache = ResultCache(cache_capacity)
        self._queue: Deque[Job] = deque()
        self._jobs: Dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._workspace = WorkspacePool()
        self._started = False
        self._closing = False
        self._inflight = 0
        self._counts = {state: 0 for state in JobState}
        self._submitted = 0
        self._retries = 0
        self._latencies: List[float] = []
        self._started_at: Optional[float] = None

    # -- lifecycle -------------------------------------------------------- #
    async def start(self) -> "DecompositionService":
        """Capture the loop, start the worker thread and the dispatcher."""
        if self._started:
            return self
        self._loop = asyncio.get_running_loop()
        self._wakeup = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serving"
        )
        if self._warmup:
            await self._loop.run_in_executor(self._executor, self._pool.warmup)
        self._dispatcher = self._loop.create_task(
            self._dispatch_loop(), name="repro-serving-dispatcher"
        )
        self._started = True
        self._started_at = time.monotonic()
        return self

    async def aclose(self, *, drain: bool = True) -> None:
        """Stop the service; ``drain=True`` finishes queued work first.

        With ``drain=False`` every still-queued job is finalized as
        cancelled (the in-flight batch always completes — cancellation is
        cooperative).  Either way the worker thread is joined and the crew
        reaped, so no worker process or shared-memory segment outlives the
        service.
        """
        if not self._started:
            self._pool.close()
            return
        if not drain:
            for job in self._queue:
                job.request_cancel()
        self._closing = True
        self._wakeup.set()
        await self._dispatcher
        self._executor.shutdown(wait=True)
        self._pool.close()

    async def __aenter__(self) -> "DecompositionService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # -- submission ------------------------------------------------------- #
    async def submit(
        self,
        tensor,
        ranks,
        *,
        options: Optional[Union[HOOIOptions, dict]] = None,
        timeout=_UNSET,
        **option_kwargs,
    ) -> JobHandle:
        """Admit a decomposition request and return its handle.

        ``options`` / ``option_kwargs`` follow :func:`repro.decompose`:
        any :class:`HOOIOptions` field, e.g. ``execution="process"``,
        ``trsvd_method="gram"``.  Invalid requests are rejected here with
        the drivers' own error messages; a full queue raises
        :class:`AdmissionError`.  An identical previously-computed request
        (same tensor content, same normalized options) resolves immediately
        from the cache without queueing or recomputation.
        """
        if not self._started or self._closing:
            raise AdmissionError(
                "the service is not accepting submissions "
                "(not started or closing)"
            )
        from repro.serving.jobs import JobRequest

        request = JobRequest.build(tensor, ranks, options, **option_kwargs)
        job_timeout = self.default_timeout if timeout is _UNSET else timeout
        job_id = f"job-{next(self._ids)}"
        future = self._loop.create_future()
        job = Job(
            job_id, request, future,
            timeout=job_timeout, on_cancel=self._kick,
        )
        self._jobs[job_id] = job
        self._submitted += 1

        cached = self._cache.get(request.cache_key)
        if cached is not None:
            job.cached = True
            job.state = JobState.DONE
            job.finished_at = job.submitted_at
            self._counts[JobState.DONE] += 1
            future.set_result(cached)
            return JobHandle(job)

        if len(self._queue) >= self.max_pending:
            del self._jobs[job_id]
            future.cancel()
            raise AdmissionError(
                f"the service's pending queue is full "
                f"({self.max_pending} jobs); retry after some drain"
            )
        self._queue.append(job)
        self._wakeup.set()
        return JobHandle(job)

    def get_job(self, job_id: str) -> Optional[JobHandle]:
        """The handle for a previously submitted job id, if still known."""
        job = self._jobs.get(job_id)
        return JobHandle(job) if job is not None else None

    # -- dispatch --------------------------------------------------------- #
    def _kick(self) -> None:
        """Thread-safe dispatcher nudge (used by handle.cancel)."""
        try:
            self._loop.call_soon_threadsafe(self._wakeup.set)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    async def _dispatch_loop(self) -> None:
        while True:
            if not self._queue:
                if self._closing:
                    return
                await self._wakeup.wait()
                self._wakeup.clear()
                continue
            kind, batch = self._next_batch()
            if not batch:
                continue
            now = time.monotonic()
            for job in batch:
                job.state = JobState.RUNNING
                job.started_at = now
                job.attempts += 1
            self._inflight = len(batch)
            try:
                if kind == "pooled":
                    outcomes = await self._loop.run_in_executor(
                        self._executor, self._run_pooled, batch
                    )
                else:
                    # Direct runs share one workspace pool: the single
                    # worker thread is the only consumer, so same-shape
                    # requests stop allocating after the first.
                    outcomes = await self._loop.run_in_executor(
                        self._executor,
                        functools.partial(
                            run_direct, batch[0], workspace=self._workspace
                        ),
                    )
                    outcomes = [outcomes]
            finally:
                self._inflight = 0
            await self._apply_outcomes(outcomes)

    def _run_pooled(self, jobs: Sequence[Job]) -> List[Outcome]:
        """Worker-thread entry: acquire a healthy crew, run the batch."""
        crew = self._pool.acquire()
        return run_process_batch(crew, jobs)

    def _next_batch(self) -> Tuple[str, List[Job]]:
        """Pop the next unit of work, folding in admission batching.

        Queued jobs whose cancellation was requested are finalized here
        without running.  Small pooled jobs are taken as a *consecutive
        prefix* (FIFO order is preserved — the batch never reaches past a
        non-batchable job).
        """
        head: Optional[Job] = None
        while self._queue:
            candidate = self._queue.popleft()
            if candidate.cancel_requested:
                self._finalize(
                    candidate, "cancelled",
                    JobCancelledError(
                        f"job {candidate.id} was cancelled while queued"
                    ),
                )
                continue
            head = candidate
            break
        if head is None:
            return ("direct", [])
        if not pooled_eligible(head):
            return ("direct", [head])
        batch = [head]
        if head.request.tensor.nnz <= self.batch_nnz_limit:
            while self._queue and len(batch) < self.batch_max:
                nxt = self._queue[0]
                if nxt.cancel_requested:
                    self._queue.popleft()
                    self._finalize(
                        nxt, "cancelled",
                        JobCancelledError(
                            f"job {nxt.id} was cancelled while queued"
                        ),
                    )
                    continue
                if not (
                    pooled_eligible(nxt)
                    and nxt.request.tensor.nnz <= self.batch_nnz_limit
                ):
                    break
                batch.append(self._queue.popleft())
        return ("pooled", batch)

    # -- outcome application (loop thread) -------------------------------- #
    async def _apply_outcomes(self, outcomes: List[Outcome]) -> None:
        retry: List[Job] = []
        crashed = False
        for job, kind, payload in outcomes:
            if kind == "crash":
                crashed = True
                if job.attempts <= self.max_retries and not job.cancel_requested:
                    retry.append(job)
                    continue
            self._finalize(job, kind, payload)
        if crashed:
            # Retire the crew whether or not anything retries: its workers
            # may still map an arena that is gone.  reset() is cheap when
            # the crash already killed everyone, and the worker thread is
            # the right place to join processes from.
            await self._loop.run_in_executor(self._executor, self._pool.reset)
        for job in reversed(retry):
            job.state = JobState.QUEUED
            self._queue.appendleft(job)
            self._retries += 1
        if retry:
            self._wakeup.set()

    def _finalize(self, job: Job, kind: str, payload) -> None:
        job.finished_at = time.monotonic()
        future = job.future
        if kind == "ok":
            job.state = JobState.DONE
            self._cache.put(job.request.cache_key, payload)
            self._latencies.append(job.finished_at - job.submitted_at)
            if not future.done():
                future.set_result(payload)
        elif kind == "cancelled":
            job.state = JobState.CANCELLED
            if not future.done():
                future.set_exception(payload)
        else:  # timeout, crash (retries exhausted), error
            job.state = JobState.FAILED
            if not future.done():
                future.set_exception(payload)
        self._counts[job.state] += 1

    # -- observability ---------------------------------------------------- #
    def metrics(self) -> dict:
        """A point-in-time snapshot of the service's counters.

        ``jobs``: submitted / per-terminal-state counts / retries, plus the
        live queue depth and in-flight batch size.  ``cache``: the
        :meth:`ResultCache.snapshot` accounting.  ``pool``: crew size,
        generations served (across crew rebuilds) and crash resets.
        ``latency_seconds``: end-to-end (submit → done) p50/p95/mean over
        completed jobs.  ``jobs_per_second``: completed jobs over the
        service's uptime.
        """
        done = self._counts[JobState.DONE]
        latencies = sorted(self._latencies)
        elapsed = (
            time.monotonic() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        return {
            "jobs": {
                "submitted": self._submitted,
                "queued": len(self._queue),
                "running": self._inflight,
                "done": done,
                "failed": self._counts[JobState.FAILED],
                "cancelled": self._counts[JobState.CANCELLED],
                "retries": self._retries,
            },
            "cache": self._cache.snapshot(),
            "pool": {
                "workers": self._pool.num_workers,
                "generations": self._pool.generations,
                "resets": self._pool.resets,
            },
            "latency_seconds": {
                "count": len(latencies),
                "p50": _percentile(latencies, 0.50),
                "p95": _percentile(latencies, 0.95),
                "mean": (
                    sum(latencies) / len(latencies) if latencies else 0.0
                ),
            },
            "jobs_per_second": (done / elapsed) if elapsed > 0 else 0.0,
        }
