"""Decomposition-as-a-service: the async job engine over the persistent pool.

:class:`DecompositionService` turns the library's one-shot drivers into a
long-lived endpoint: callers ``await service.submit(tensor, ranks, ...)``
and get a :class:`~repro.serving.jobs.JobHandle` whose result they await
whenever convenient.  Inside, the service is a small, single-consumer
pipeline:

* **Admission** — ``submit`` normalizes the request
  (:meth:`JobRequest.build` validates ranks and options exactly like the
  drivers would), consults the LRU result cache (an identical resubmission
  is served instantly, born ``DONE`` with ``cached=True``), and enforces
  the pending-queue bound (:class:`~repro.serving.jobs.AdmissionError`).

* **Dispatch** — one asyncio task drains the FIFO queue.  Consecutive
  *small* process-execution jobs are packed into one batched pool
  generation (:func:`~repro.serving.executor.run_process_batch`) on the
  persistent worker crew, so a stream of small tensors pays one worker
  attach/detach per batch and zero process spawns; everything else runs
  through the ordinary drivers (:func:`~repro.serving.executor.run_direct`).
  All numeric work happens on ONE worker thread — the event loop stays
  responsive while decompositions grind.

* **Outcomes** — applied back on the loop thread: results land in the
  cache and resolve futures; cancellations and timeouts raise their typed
  errors; a worker crash retires the crew
  (:meth:`~repro.serving.pool_manager.HOOIPoolManager.reset`) and requeues
  the affected jobs up to ``max_retries`` times.

* **Metrics** — :meth:`DecompositionService.metrics` snapshots queue depth,
  per-state counts, cache accounting, pool generations/resets, throughput
  and p50/p95 end-to-end latency.

The service assumes a single asyncio loop (``start`` captures it); handles
may be cancelled from any thread, but ``submit``/``result`` belong to the
loop.  See README "Serving decompositions" for the end-to-end example.
"""

from __future__ import annotations

import asyncio
import functools
import hashlib
import itertools
import time
import warnings
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.hooi import HOOIOptions
from repro.engine.workspace import WorkspacePool
from repro.resilience.checkpoint import Checkpointer
from repro.resilience.degrade import (
    CircuitBreaker,
    CircuitOpenError,
    DegradationLadder,
)
from repro.resilience.retry import RetryPolicy
from repro.serving.cache import ResultCache
from repro.serving.executor import (
    Outcome,
    pooled_eligible,
    run_direct,
    run_process_batch,
)
from repro.serving.jobs import (
    AdmissionError,
    Job,
    JobCancelledError,
    JobHandle,
    JobState,
)
from repro.serving.pool_manager import HOOIPoolManager

__all__ = ["DecompositionService"]

_UNSET = object()


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 for empty)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


class DecompositionService:
    """An async decomposition endpoint over one persistent worker crew.

    Use as an async context manager::

        async with DecompositionService(num_workers=2) as service:
            handle = await service.submit(tensor, 4, execution="process")
            result = await handle.result()

    Parameters
    ----------
    num_workers:
        Worker-process count of the persistent crew (pooled jobs).
    max_pending:
        Admission bound on queued jobs; beyond it ``submit`` raises
        :class:`AdmissionError` (cache hits are exempt — they never queue).
    cache_capacity:
        LRU result-cache entries (0 disables caching).
    batch_max / batch_nnz_limit:
        Admission batching: up to ``batch_max`` consecutive queued
        process-execution jobs whose tensors have at most
        ``batch_nnz_limit`` nonzeros share one pool generation.  Larger
        pooled jobs still run on the crew, one generation each.
    default_timeout:
        Per-job timeout in seconds applied when ``submit`` passes none
        (None = unlimited).  Timeouts abort cooperatively at the next mode
        boundary and surface as :class:`JobTimeoutError`.
    max_retries:
        How many times a job is requeued after a worker crash before the
        fallback ladder (or, under ``fallback="none"``, the
        :class:`~repro.parallel.process_pool.WorkerCrashError`) takes over.
        Shorthand for ``retry_policy=RetryPolicy(max_retries=...)``.
    retry_policy:
        Full :class:`~repro.resilience.retry.RetryPolicy` (attempt bound +
        deterministic backoff schedule); overrides ``max_retries``.
    warmup:
        Spawn the crew and pre-compile available kernel tiers at
        :meth:`start` instead of on the first request.
    checkpoint_dir / checkpoint_interval:
        When set, every running job checkpoints its HOOI state at sweep
        boundaries into per-job files under ``checkpoint_dir`` (named by
        the job's cache-key fingerprints), and the crash-retry path resumes
        from the last good sweep instead of recomputing from sweep 0.  The
        file is removed when its job completes.
    breaker_threshold / breaker_cooldown:
        The process-pool circuit breaker: ``breaker_threshold`` consecutive
        pooled-batch failures open the circuit for ``breaker_cooldown``
        seconds, during which pooled jobs degrade immediately (no retries
        against a broken tier) and a half-open probe re-tests the pool.
        ``breaker_threshold=0`` disables the breaker.
    cleanup_orphans:
        Run an age-gated sweep of stale repro-owned ``/dev/shm`` segments
        (left by previously SIGKILL'd owners) at construction.
    """

    def __init__(
        self,
        *,
        num_workers: int = 1,
        max_pending: int = 64,
        cache_capacity: int = 64,
        batch_max: int = 4,
        batch_nnz_limit: int = 50_000,
        default_timeout: Optional[float] = None,
        max_retries: int = 1,
        retry_policy: Optional[RetryPolicy] = None,
        warmup: bool = True,
        start_method: Optional[str] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_interval: int = 1,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        cleanup_orphans: bool = False,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1, got {checkpoint_interval}"
            )
        if breaker_threshold < 0:
            raise ValueError(
                f"breaker_threshold must be >= 0, got {breaker_threshold}"
            )
        self.max_pending = max_pending
        self.batch_max = batch_max
        self.batch_nnz_limit = batch_nnz_limit
        self.default_timeout = default_timeout
        self._retry_policy = retry_policy or RetryPolicy(max_retries=max_retries)
        self.max_retries = self._retry_policy.max_retries
        self._warmup = warmup
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.checkpoint_interval = int(checkpoint_interval)
        breaker = (
            CircuitBreaker(
                failure_threshold=breaker_threshold, cooldown=breaker_cooldown
            )
            if breaker_threshold > 0
            else None
        )
        self._pool = HOOIPoolManager(
            num_workers,
            start_method=start_method,
            breaker=breaker,
            cleanup_orphans=cleanup_orphans,
        )
        self._ladder = DegradationLadder()
        self._cache = ResultCache(cache_capacity)
        self._queue: Deque[Job] = deque()
        self._jobs: Dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._workspace = WorkspacePool()
        self._started = False
        self._closing = False
        self._inflight = 0
        self._counts = {state: 0 for state in JobState}
        self._submitted = 0
        self._retries = 0
        self._resumed_sweeps = 0
        self._warm_started = 0
        self._fallbacks: Dict[str, int] = {}
        self._latencies: List[float] = []
        self._started_at: Optional[float] = None

    # -- lifecycle -------------------------------------------------------- #
    async def start(self) -> "DecompositionService":
        """Capture the loop, start the worker thread and the dispatcher."""
        if self._started:
            return self
        self._loop = asyncio.get_running_loop()
        self._wakeup = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serving"
        )
        if self._warmup:
            await self._loop.run_in_executor(self._executor, self._pool.warmup)
        self._dispatcher = self._loop.create_task(
            self._dispatch_loop(), name="repro-serving-dispatcher"
        )
        self._started = True
        self._started_at = time.monotonic()
        return self

    async def aclose(self, *, drain: bool = True) -> None:
        """Stop the service; ``drain=True`` finishes queued work first.

        With ``drain=False`` every still-queued job is finalized as
        cancelled (the in-flight batch always completes — cancellation is
        cooperative).  Either way the worker thread is joined and the crew
        reaped, so no worker process or shared-memory segment outlives the
        service.
        """
        if not self._started:
            self._pool.close()
            return
        if not drain:
            for job in self._queue:
                job.request_cancel()
        self._closing = True
        self._wakeup.set()
        await self._dispatcher
        self._executor.shutdown(wait=True)
        self._pool.close()

    async def __aenter__(self) -> "DecompositionService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # -- submission ------------------------------------------------------- #
    async def submit(
        self,
        tensor,
        ranks,
        *,
        options: Optional[Union[HOOIOptions, dict]] = None,
        timeout=_UNSET,
        **option_kwargs,
    ) -> JobHandle:
        """Admit a decomposition request and return its handle.

        ``options`` / ``option_kwargs`` follow :func:`repro.decompose`:
        any :class:`HOOIOptions` field, e.g. ``execution="process"``,
        ``trsvd_method="gram"``.  Invalid requests are rejected here with
        the drivers' own error messages; a full queue raises
        :class:`AdmissionError`.  An identical previously-computed request
        (same tensor content, same normalized options) resolves immediately
        from the cache without queueing or recomputation.
        """
        if not self._started or self._closing:
            raise AdmissionError(
                "the service is not accepting submissions "
                "(not started or closing)"
            )
        from repro.serving.jobs import JobRequest

        request = JobRequest.build(tensor, ranks, options, **option_kwargs)
        return self._admit(request, timeout=timeout)

    async def submit_delta(
        self,
        base: Union[JobHandle, str],
        batch,
        *,
        ranks=None,
        options: Optional[Union[HOOIOptions, dict]] = None,
        timeout=_UNSET,
        **option_kwargs,
    ) -> JobHandle:
        """Admit a decomposition of a previous job's tensor plus a delta.

        ``base`` is the :class:`JobHandle` (or job id) of an earlier
        submission; ``batch`` anything
        :meth:`repro.streaming.DeltaBatch.coerce` accepts.  The delta is
        applied eagerly (:func:`repro.streaming.apply_delta`) and the
        result admitted like any job, with two streaming twists.  The cache
        identity is derived, not re-hashed: the tensor fingerprint is a
        digest of ``(base fingerprint, batch fingerprint)``, so resubmitting
        the same delta on the same base hits the cache without touching the
        merged nonzeros.  And when the base job's result is available (its
        future, or the result cache), its factor matrices — conformed to the
        grown shape and the requested ranks — seed the new run as a warm
        start, counted in ``metrics()['jobs']['warm_started']``.

        ``ranks`` / ``options`` default to the base request's; overrides
        follow :meth:`submit`.
        """
        if not self._started or self._closing:
            raise AdmissionError(
                "the service is not accepting submissions "
                "(not started or closing)"
            )
        from repro.serving.jobs import JobRequest
        from repro.streaming.delta import DeltaBatch, apply_delta
        from repro.streaming.warmstart import conform_factors

        base_handle = self.get_job(base) if isinstance(base, str) else base
        if base_handle is None:
            raise ValueError(
                f"unknown base job {base!r}: submit_delta needs the handle "
                "(or id) of a job this service admitted"
            )
        base_request = base_handle.request
        batch = DeltaBatch.coerce(batch)
        tensor = apply_delta(base_request.tensor, batch)
        digest = hashlib.sha256(
            "repro-delta/1|{}|{}".format(
                base_request.tensor_fingerprint, batch.fingerprint()
            ).encode("ascii")
        ).hexdigest()
        request = JobRequest.build(
            tensor,
            base_request.ranks if ranks is None else ranks,
            base_request.options if options is None else options,
            tensor_fingerprint=digest,
            **option_kwargs,
        )

        warm_factors = None
        base_result = self._finished_result(base_handle)
        if base_result is not None:
            warm_factors = conform_factors(
                base_result.decomposition.factors, tensor.shape, request.ranks
            )
        return self._admit(request, timeout=timeout, warm_factors=warm_factors)

    def _finished_result(self, handle: JobHandle):
        """A base job's completed result, from its future or the cache."""
        future = handle._job.future
        if future.done() and not future.cancelled():
            if future.exception() is None:
                return future.result()
            return None
        return self._cache.get(handle.request.cache_key)

    def _admit(
        self, request, *, timeout=_UNSET, warm_factors=None
    ) -> JobHandle:
        """Register, cache-check and enqueue a built request."""
        job_timeout = self.default_timeout if timeout is _UNSET else timeout
        job_id = f"job-{next(self._ids)}"
        future = self._loop.create_future()
        job = Job(
            job_id, request, future,
            timeout=job_timeout, on_cancel=self._kick,
        )
        self._jobs[job_id] = job
        self._submitted += 1

        cached = self._cache.get(request.cache_key)
        if cached is not None:
            job.cached = True
            job.state = JobState.DONE
            job.finished_at = job.submitted_at
            self._counts[JobState.DONE] += 1
            future.set_result(cached)
            return JobHandle(job)

        if len(self._queue) >= self.max_pending:
            del self._jobs[job_id]
            future.cancel()
            raise AdmissionError(
                f"the service's pending queue is full "
                f"({self.max_pending} jobs); retry after some drain"
            )
        if warm_factors is not None:
            job.warm_factors = list(warm_factors)
            self._warm_started += 1
        if self.checkpoint_dir is not None:
            # One rolling checkpoint file per logical request, keyed by the
            # cache-key fingerprints: a crash-retried attempt of the same
            # submission finds its own sweeps and nothing else's.
            job.checkpointer = Checkpointer(
                self.checkpoint_dir,
                interval=self.checkpoint_interval,
                filename=(
                    f"{request.tensor_fingerprint[:16]}-"
                    f"{request.request_fingerprint[:16]}.ckpt.npz"
                ),
            )
        self._queue.append(job)
        self._wakeup.set()
        return JobHandle(job)

    def get_job(self, job_id: str) -> Optional[JobHandle]:
        """The handle for a previously submitted job id, if still known."""
        job = self._jobs.get(job_id)
        return JobHandle(job) if job is not None else None

    # -- dispatch --------------------------------------------------------- #
    def _kick(self) -> None:
        """Thread-safe dispatcher nudge (used by handle.cancel)."""
        try:
            self._loop.call_soon_threadsafe(self._wakeup.set)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    async def _dispatch_loop(self) -> None:
        while True:
            if not self._queue:
                if self._closing:
                    return
                await self._wakeup.wait()
                self._wakeup.clear()
                continue
            kind, batch = self._next_batch()
            if not batch:
                continue
            now = time.monotonic()
            for job in batch:
                job.state = JobState.RUNNING
                job.started_at = now
                job.attempts += 1
            self._inflight = len(batch)
            try:
                if kind == "pooled":
                    outcomes = await self._loop.run_in_executor(
                        self._executor, self._run_pooled, batch
                    )
                else:
                    # Direct runs share one workspace pool: the single
                    # worker thread is the only consumer, so same-shape
                    # requests stop allocating after the first.
                    outcomes = await self._loop.run_in_executor(
                        self._executor,
                        functools.partial(
                            run_direct, batch[0], workspace=self._workspace
                        ),
                    )
                    outcomes = [outcomes]
            finally:
                self._inflight = 0
            await self._apply_outcomes(outcomes)

    def _run_pooled(self, jobs: Sequence[Job]) -> List[Outcome]:
        """Worker-thread entry: acquire a healthy crew, run the batch.

        An open circuit breaker surfaces as ``"breaker"`` outcomes — the
        dispatcher degrades those jobs down the ladder without burning
        retries against a tier that is known broken.  Batch results feed
        the breaker: any crash counts as a pool failure, a crash-free batch
        as a success.
        """
        try:
            crew = self._pool.acquire()
        except CircuitOpenError as exc:
            return [(job, "breaker", exc) for job in jobs]
        outcomes = run_process_batch(crew, jobs)
        if any(kind == "crash" for _job, kind, _payload in outcomes):
            self._pool.record_failure()
        else:
            self._pool.record_success()
        return outcomes

    def _next_batch(self) -> Tuple[str, List[Job]]:
        """Pop the next unit of work, folding in admission batching.

        Queued jobs whose cancellation was requested are finalized here
        without running.  Small pooled jobs are taken as a *consecutive
        prefix* (FIFO order is preserved — the batch never reaches past a
        non-batchable job).
        """
        head: Optional[Job] = None
        while self._queue:
            candidate = self._queue.popleft()
            if candidate.cancel_requested:
                self._finalize(
                    candidate, "cancelled",
                    JobCancelledError(
                        f"job {candidate.id} was cancelled while queued"
                    ),
                )
                continue
            head = candidate
            break
        if head is None:
            return ("direct", [])
        if not pooled_eligible(head):
            return ("direct", [head])
        batch = [head]
        if head.request.tensor.nnz <= self.batch_nnz_limit:
            while self._queue and len(batch) < self.batch_max:
                nxt = self._queue[0]
                if nxt.cancel_requested:
                    self._queue.popleft()
                    self._finalize(
                        nxt, "cancelled",
                        JobCancelledError(
                            f"job {nxt.id} was cancelled while queued"
                        ),
                    )
                    continue
                if not (
                    pooled_eligible(nxt)
                    and nxt.request.tensor.nnz <= self.batch_nnz_limit
                ):
                    break
                batch.append(self._queue.popleft())
        return ("pooled", batch)

    # -- outcome application (loop thread) -------------------------------- #
    async def _apply_outcomes(self, outcomes: List[Outcome]) -> None:
        retry: List[Job] = []
        degraded: List[Job] = []
        crashed = False
        backoff = 0.0
        for job, kind, payload in outcomes:
            if kind == "crash":
                crashed = True
                if (
                    self._retry_policy.should_retry(job.attempts)
                    and not job.cancel_requested
                ):
                    retry.append(job)
                    backoff = max(
                        backoff, self._retry_policy.delay(job.attempts + 1)
                    )
                    continue
                if not job.cancel_requested and self._degrade(job, payload):
                    degraded.append(job)
                    continue
            elif kind == "breaker":
                # The pool is known broken: skip retries entirely and step
                # the job down the ladder now (or fail it if it cannot).
                if not job.cancel_requested and self._degrade(job, payload):
                    degraded.append(job)
                    continue
            self._finalize(job, kind, payload)
        if crashed:
            # Retire the crew whether or not anything retries: its workers
            # may still map an arena that is gone.  reset() is cheap when
            # the crash already killed everyone, and the worker thread is
            # the right place to join processes from.
            await self._loop.run_in_executor(self._executor, self._pool.reset)
        if backoff > 0.0:
            # Deterministic bounded backoff before the crashed jobs run
            # again (RetryPolicy; 0 under the defaults).
            await asyncio.sleep(backoff)
        for job in reversed(degraded + retry):
            job.state = JobState.QUEUED
            self._queue.appendleft(job)
        self._retries += len(retry)
        if retry or degraded:
            self._wakeup.set()

    def _degrade(self, job: Job, cause: BaseException) -> bool:
        """Move a job one ladder rung down; False when it must fail instead.

        Consulted when the pool tier failed it *terminally* — retries
        exhausted or circuit open.  Honors the request's ``fallback``
        policy; the descent is recorded on the job (``fallback_steps``, so
        ``effective_options`` and the dispatcher's routing change) and in
        the per-tier ``fallbacks`` metrics, and announced as a warning —
        silent substitution of a slower tier would make "the service got
        slow" undebuggable.
        """
        if (job.request.options.fallback or "ladder") != "ladder":
            return False
        opts = job.effective_options
        step = self._ladder.next_step(
            execution=opts.execution or "sequential",
            kernel=opts.kernel or "numpy",
            tensor_format=opts.tensor_format or "coo",
        )
        if step is None:
            return False
        job.fallback_steps.append(step)
        self._fallbacks[step.tier] = self._fallbacks.get(step.tier, 0) + 1
        warnings.warn(
            f"job {job.id}: {type(cause).__name__} on the "
            f"{step.from_value!r} tier after {job.attempts} attempt(s); "
            f"degrading {step.describe()} (same numerics, lower "
            "parallelism — see README 'Fault tolerance & graceful "
            "degradation')",
            RuntimeWarning,
            stacklevel=2,
        )
        return True

    def _finalize(self, job: Job, kind: str, payload) -> None:
        job.finished_at = time.monotonic()
        future = job.future
        if kind == "ok":
            job.state = JobState.DONE
            resumed = int(getattr(payload, "resumed_sweeps", 0))
            if resumed:
                job.resumed_sweeps = resumed
                self._resumed_sweeps += resumed
            if job.checkpointer is not None:
                # The rolling checkpoint served its purpose; a stale file
                # must not shadow a future identical submission.
                job.checkpointer.discard()
            self._cache.put(job.request.cache_key, payload)
            self._latencies.append(job.finished_at - job.submitted_at)
            if not future.done():
                future.set_result(payload)
        elif kind == "cancelled":
            job.state = JobState.CANCELLED
            if not future.done():
                future.set_exception(payload)
        else:  # timeout, crash (retries exhausted), error
            job.state = JobState.FAILED
            if not future.done():
                future.set_exception(payload)
        self._counts[job.state] += 1

    # -- observability ---------------------------------------------------- #
    def metrics(self) -> dict:
        """A point-in-time snapshot of the service's counters.

        ``jobs``: submitted / per-terminal-state counts / retries /
        checkpoint-resumed sweeps, plus the live queue depth and in-flight
        batch size.  ``cache``: the :meth:`ResultCache.snapshot`
        accounting.  ``pool``: crew size, generations served (across crew
        rebuilds), crash resets and the circuit breaker's state.
        ``fallbacks``: per-destination-tier degradation counts (e.g.
        ``{"thread": 1}`` after one process→thread descent; empty while
        nothing degraded).  ``latency_seconds``: end-to-end (submit → done)
        p50/p95/mean over completed jobs.  ``jobs_per_second``: completed
        jobs over the service's uptime.
        """
        done = self._counts[JobState.DONE]
        latencies = sorted(self._latencies)
        elapsed = (
            time.monotonic() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        return {
            "jobs": {
                "submitted": self._submitted,
                "queued": len(self._queue),
                "running": self._inflight,
                "done": done,
                "failed": self._counts[JobState.FAILED],
                "cancelled": self._counts[JobState.CANCELLED],
                "retries": self._retries,
                "resumed_sweeps": self._resumed_sweeps,
                "warm_started": self._warm_started,
            },
            "cache": self._cache.snapshot(),
            "pool": {
                "workers": self._pool.num_workers,
                "generations": self._pool.generations,
                "resets": self._pool.resets,
                "breaker_state": self._pool.breaker_state,
            },
            "fallbacks": dict(self._fallbacks),
            "latency_seconds": {
                "count": len(latencies),
                "p50": _percentile(latencies, 0.50),
                "p95": _percentile(latencies, 0.95),
                "mean": (
                    sum(latencies) / len(latencies) if latencies else 0.0
                ),
            },
            "jobs_per_second": (done / elapsed) if elapsed > 0 else 0.0,
        }
