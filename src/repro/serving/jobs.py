"""Job objects of the decomposition service: requests, states, handles.

A submission travels the service as three cooperating objects.
:class:`JobRequest` is the *serializable description* — the tensor plus the
rank vector and a fully-materialized :class:`~repro.core.hooi.HOOIOptions`,
identified by two sha256 digests: the tensor's content fingerprint
(:meth:`~repro.core.sparse_tensor.SparseTensor.fingerprint`) and a request
fingerprint over ``(ranks, options)`` built from the canonical options codec
(:meth:`~repro.core.hooi.HOOIOptions.to_dict`).  The pair is the result-cache
key, so two submissions that *mean* the same decomposition — whatever keyword
order or defaulted fields they were spelled with — hit the same cache line.

:class:`Job` is the service-internal record (state machine, attempt counter,
progress, the cancellation flag shared with the worker thread), and
:class:`JobHandle` is the caller-facing view: await :meth:`JobHandle.result`,
poll :attr:`JobHandle.state` / :attr:`JobHandle.progress`, or
:meth:`JobHandle.cancel`.

States move ``QUEUED → RUNNING → DONE | FAILED | CANCELLED`` (cache hits are
born ``DONE`` with :attr:`JobHandle.cached` set; crash-retried jobs move
``RUNNING → QUEUED`` again).  See CONTRIBUTING for how to extend the state
set without breaking the metrics accounting.
"""

from __future__ import annotations

import asyncio
import enum
import hashlib
import json
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple, Union

from repro.core.hooi import HOOIOptions
from repro.util.validation import check_rank_vector

__all__ = [
    "JobState",
    "JobRequest",
    "Job",
    "JobHandle",
    "ServingError",
    "AdmissionError",
    "JobCancelledError",
    "JobTimeoutError",
]


class ServingError(RuntimeError):
    """Base class of the decomposition service's errors."""


class AdmissionError(ServingError):
    """The service refused to enqueue a submission (full queue or closed)."""


class JobCancelledError(ServingError):
    """The job was cancelled (before or during its run)."""


class JobTimeoutError(ServingError):
    """The job exceeded its per-job timeout and was aborted mid-run."""


class JobState(str, enum.Enum):
    """Lifecycle states of a service job.

    ``QUEUED`` (admitted, awaiting dispatch) → ``RUNNING`` (on the worker
    thread) → one of the terminal states ``DONE`` / ``FAILED`` /
    ``CANCELLED``.  A crash-retried job transitions ``RUNNING → QUEUED``.
    """

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job never leaves once entered.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)


@dataclass(frozen=True)
class JobRequest:
    """A serializable decomposition request with content-addressed identity.

    Build one with :meth:`build`; the constructor fields are the normalized
    outcome (ranks broadcast/clipped to the tensor's shape, options fully
    materialized and validated).  ``cache_key`` is what the service's result
    cache is keyed by.
    """

    tensor: object
    ranks: Tuple[int, ...]
    options: HOOIOptions
    tensor_fingerprint: str
    request_fingerprint: str

    @classmethod
    def build(
        cls,
        tensor,
        ranks: Union[int, Sequence[int]],
        options: Optional[Union[HOOIOptions, dict]] = None,
        *,
        tensor_fingerprint: Optional[str] = None,
        **option_kwargs,
    ) -> "JobRequest":
        """Normalize and fingerprint a submission.

        ``options`` may be an :class:`HOOIOptions`, a plain dict (the wire
        form), or ``None``; ``option_kwargs`` override individual fields on
        top.  Unknown option keys and invalid compositions are rejected here
        — at admission time — with the same actionable errors the drivers
        raise, so a bad request never occupies a queue slot.

        ``tensor_fingerprint`` overrides the content hash when the caller
        already knows the tensor's identity cheaper than a full re-hash —
        the delta path keys on ``(base fingerprint, batch fingerprint)``
        instead of re-fingerprinting the merged tensor.
        """
        if isinstance(options, HOOIOptions):
            base = options.to_dict()
        elif options is None:
            base = {}
        elif isinstance(options, dict):
            base = dict(options)
        else:
            raise TypeError(
                f"options must be an HOOIOptions or a dict, got "
                f"{type(options).__name__}"
            )
        base.update(option_kwargs)
        opts = HOOIOptions.from_dict(base)
        opts.validate()
        rank_vec = check_rank_vector(ranks, tensor.shape)
        payload = json.dumps(
            {
                "schema": "hooi-request/1",
                "ranks": [int(r) for r in rank_vec],
                "options": opts.to_dict(),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return cls(
            tensor=tensor,
            ranks=tuple(int(r) for r in rank_vec),
            options=opts,
            tensor_fingerprint=(
                tensor_fingerprint
                if tensor_fingerprint is not None
                else tensor.fingerprint()
            ),
            request_fingerprint=hashlib.sha256(
                payload.encode("utf-8")
            ).hexdigest(),
        )

    @property
    def cache_key(self) -> Tuple[str, str]:
        """The result-cache key: content identity × request identity."""
        return (self.tensor_fingerprint, self.request_fingerprint)

    def to_dict(self) -> dict:
        """The request as a JSON-ready dict (fingerprints, not payloads)."""
        return {
            "tensor_fingerprint": self.tensor_fingerprint,
            "request_fingerprint": self.request_fingerprint,
            "ranks": list(self.ranks),
            "options": self.options.to_dict(),
        }


class Job:
    """The service-internal job record.

    Lives on both sides of the thread boundary: the event loop mutates
    ``state`` / applies outcomes, the worker thread reads the cancellation
    flag (a :class:`threading.Event`) and writes ``progress``.  The only
    cross-thread signals are the event and the plain-tuple progress write,
    both safe under the GIL.
    """

    def __init__(
        self,
        job_id: str,
        request: JobRequest,
        future: "asyncio.Future",
        *,
        timeout: Optional[float] = None,
        on_cancel: Optional[Callable[[], None]] = None,
    ) -> None:
        self.id = job_id
        self.request = request
        self.future = future
        self.timeout = timeout
        self.state = JobState.QUEUED
        self.cached = False
        self.attempts = 0
        self.submitted_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.progress: Optional[Tuple[int, float]] = None
        self._cancel_flag = threading.Event()
        self._on_cancel = on_cancel
        # Resilience state (PR 8).  ``checkpointer`` is attached by the
        # service when it runs with a checkpoint directory; retried attempts
        # resume from its rolling file instead of sweep 0.  ``fallback_step``
        # records the ladder rung a degraded job was moved to (None while on
        # its requested tier); ``resumed_sweeps`` accumulates the sweeps
        # recovered from checkpoints across this job's attempts.
        self.checkpointer = None
        self.fallback_steps: list = []
        self.resumed_sweeps = 0
        # Warm-start factors (PR 10): conformed matrices a delta submission
        # seeds its run with instead of the options' initializer.  A
        # checkpoint resume (this job's own prior sweeps) takes precedence.
        self.warm_factors: Optional[list] = None

    @property
    def effective_options(self) -> HOOIOptions:
        """The options this job actually runs with.

        Identical to the request's options until the degradation ladder
        moves the job to lower tiers (``fallback_steps`` applied in order);
        the *request* options (and therefore the cache key and
        fingerprints) never change — degradation is an execution detail,
        not a different request.
        """
        if not self.fallback_steps:
            return self.request.options
        data = self.request.options.to_dict()
        for step in self.fallback_steps:
            data[step.field] = step.to_value
        return HOOIOptions.from_dict(data)

    # -- cancellation (callable from any thread) -------------------------- #
    def request_cancel(self) -> None:
        """Flag the job for cancellation and nudge the dispatcher."""
        self._cancel_flag.set()
        if self._on_cancel is not None:
            self._on_cancel()

    @property
    def cancel_requested(self) -> bool:
        return self._cancel_flag.is_set()

    # -- worker-thread seams ---------------------------------------------- #
    def progress_callback(self, iteration: int, fit: float) -> None:
        """The engine's ``callback(iteration, fit)`` hook."""
        self.progress = (int(iteration), float(fit))

    def make_cancel_check(self) -> Callable[[], None]:
        """The engine's cooperative ``cancel_check`` for one run attempt.

        Checked at every mode boundary of every sweep: a requested
        cancellation raises :class:`JobCancelledError`; an expired per-job
        timeout (measured from this attempt's start) raises
        :class:`JobTimeoutError`.  Raising at the mode boundary — never
        mid-dispatch — is what keeps a pooled run's worker generation
        consistent on abort.
        """
        deadline = (
            time.monotonic() + self.timeout
            if self.timeout is not None
            else None
        )

        def check() -> None:
            if self._cancel_flag.is_set():
                raise JobCancelledError(f"job {self.id} was cancelled")
            if deadline is not None and time.monotonic() > deadline:
                raise JobTimeoutError(
                    f"job {self.id} exceeded its {self.timeout:g}s timeout"
                )

        return check


class JobHandle:
    """The caller-facing view of a submitted job."""

    def __init__(self, job: Job) -> None:
        self._job = job

    @property
    def job_id(self) -> str:
        return self._job.id

    @property
    def state(self) -> JobState:
        return self._job.state

    @property
    def cached(self) -> bool:
        """Whether the result was served from the cache (no computation)."""
        return self._job.cached

    @property
    def progress(self) -> Optional[Tuple[int, float]]:
        """Latest ``(iteration, fit)`` reported by the running job."""
        return self._job.progress

    @property
    def request(self) -> JobRequest:
        return self._job.request

    def done(self) -> bool:
        return self._job.future.done()

    def cancel(self) -> bool:
        """Request cancellation; returns False if the job already finished.

        A queued job is finalized as ``CANCELLED`` without running; a
        running job aborts at its next mode boundary (cooperatively — the
        in-flight parallel dispatch always completes first).
        """
        if self._job.state in TERMINAL_STATES:
            return False
        self._job.request_cancel()
        return True

    async def result(self):
        """Await the :class:`~repro.core.hooi.HOOIResult` (or the failure).

        Raises :class:`JobCancelledError` / :class:`JobTimeoutError` /
        whatever the run raised.  Shielded: cancelling the *awaiting task*
        does not cancel the job — use :meth:`cancel` for that.
        """
        return await asyncio.shield(self._job.future)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JobHandle({self._job.id}, {self._job.state.value}"
            f"{', cached' if self._job.cached else ''})"
        )
