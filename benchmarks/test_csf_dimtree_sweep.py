"""Benchmark: dimension trees over CSF subtrees vs the per-mode CSF sweep.

``tensor_format="csf" × ttmc_strategy="dimtree"`` builds the dimension
tree's nodes over the shared CSF tree's fiber subtrees: the root is the
lexsorted compressed layout, so every tree edge refines an already-sorted
parent and the subset-fiber kron-insertion updates run on contiguous
payload segments (``FiberGrouping.contiguous`` — no gather permutation).
Against the per-mode rooted-tree CSF sweep the tree additionally memoizes
partial chains *across* modes, so one HOOI-iteration-worth of TTMc does
O(N log N) multiplies instead of N full chains.

The acceptance gate asserts the CSF-sourced dimension tree beats the
per-mode CSF sweep on the 4-mode power-law tensor — the combination must
pay for its node payloads.  Numeric parity with the COO-sourced tree is
asserted by the conformance matrix; here a cheap sanity check keeps the
benchmark honest about computing the same thing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import power_law_sparse_tensor
from repro.engine import DimensionTree, WorkspacePool
from repro.sparse import CSFTensorSet
from sweep_utils import csf_sweep, dimtree_sweep, interleaved_median_times

RANK = 8


@pytest.fixture(scope="module")
def tensor():
    return power_law_sparse_tensor(
        (120, 100, 90, 80), 120_000, exponents=0.7, seed=0
    )


@pytest.fixture(scope="module")
def factors(tensor):
    from repro.util.linalg import random_orthonormal

    return [
        random_orthonormal(s, RANK, seed=i) for i, s in enumerate(tensor.shape)
    ]


@pytest.fixture(scope="module")
def csf_trees(tensor):
    return CSFTensorSet.per_mode(tensor)


@pytest.fixture(scope="module")
def csf_dimtree(tensor):
    # Built outside the timed region, like every other fixture here: tree
    # construction amortizes over all sweeps of a HOOI run.
    return DimensionTree(tensor, source="csf")


def test_ttmc_sweep_csf_dimtree(benchmark, tensor, factors, csf_dimtree):
    pool = WorkspacePool()
    benchmark.pedantic(
        dimtree_sweep,
        args=(tensor, factors, csf_dimtree, pool, RANK),
        rounds=3,
        warmup_rounds=1,
    )


def test_csf_dimtree_construction(benchmark, tensor):
    """Build cost of a CSF-sourced tree (CSF compression + node groupings)."""
    benchmark.pedantic(
        lambda: DimensionTree(tensor, source="csf"),
        rounds=3,
        warmup_rounds=1,
    )


def test_csf_dimtree_matches_coo_dimtree(tensor, factors, csf_dimtree):
    """Sanity: both tree sources serve identical matricizations."""
    coo_tree = DimensionTree(tensor, source="coo")
    for mode in range(tensor.order):
        np.testing.assert_allclose(
            csf_dimtree.leaf_matricized(mode, factors),
            coo_tree.leaf_matricized(mode, factors),
            atol=1e-12,
        )


def test_csf_dimtree_beats_csf_per_mode(tensor, factors, csf_trees, csf_dimtree):
    """Acceptance gate: memoized chains over CSF must beat per-mode pullups.

    The margin is structural (O(N log N) multiplies vs N full chains), not
    huge on 4 modes, so the rounds are interleaved: both configurations
    sample the same machine noise and drift cannot masquerade as a win.
    """
    pool_a, pool_b = WorkspacePool(), WorkspacePool()
    csf_sweep(tensor, factors, csf_trees, pool_a, RANK)            # warm-up
    dimtree_sweep(tensor, factors, csf_dimtree, pool_b, RANK)

    per_mode, tree = interleaved_median_times(
        [
            (csf_sweep, (tensor, factors, csf_trees, pool_a, RANK)),
            (dimtree_sweep, (tensor, factors, csf_dimtree, pool_b, RANK)),
        ],
        rounds=5,
    )
    assert tree < per_mode, (
        f"CSF-sourced dimtree sweep ({tree * 1e3:.1f} ms) should beat the "
        f"per-mode CSF sweep ({per_mode * 1e3:.1f} ms)"
    )
