"""Shared fixtures for the benchmark harness.

Benchmarks are intentionally run at a reduced dataset scale (controlled by the
``REPRO_BENCH_SCALE`` environment variable, default ``2e-4`` of the paper's
nonzero counts) so the whole suite completes in minutes on a laptop.  The
hypergraph partitions — the expensive, offline preprocessing, exactly as with
PaToH in the paper — are computed once per session and cached.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentContext

#: Dataset scale used by the benchmark suite (fraction of the paper's nnz).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "2e-4"))

#: Largest simulated rank count exercised by the strong-scaling benchmark.
BENCH_MAX_NODES = int(os.environ.get("REPRO_BENCH_MAX_NODES", "64"))


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """Session-wide experiment context (datasets + cached partitions)."""
    return ExperimentContext(scale=BENCH_SCALE, seed=0)


@pytest.fixture(scope="session")
def node_counts() -> tuple:
    return tuple(p for p in (4, 16, 64, 256) if p <= BENCH_MAX_NODES)
