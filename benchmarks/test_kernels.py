"""Micro-benchmarks of the individual kernels (ablation-style).

These are not tied to a specific paper table; they time the building blocks
whose design DESIGN.md calls out — the symbolic preprocessing, the numeric
TTMc with and without reusing the symbolic data, the TRSVD solvers and the
hypergraph partitioner — so regressions in any of them are visible.
"""

from __future__ import annotations

import pytest

from repro.core import (
    SymbolicTTMc,
    lanczos_svd,
    randomized_svd,
    symbolic_ttmc,
    ttmc_matricized,
)
from repro.baselines import cp_als
from repro.data import power_law_sparse_tensor
from repro.parallel import ParallelConfig, parallel_ttmc_matricized
from repro.partition import (
    PartitionerOptions,
    build_fine_hypergraph,
    partition_hypergraph,
)
from repro.util.linalg import random_orthonormal


@pytest.fixture(scope="module")
def tensor():
    return power_law_sparse_tensor((2000, 1500, 2500), 60_000, exponents=0.8, seed=0)


@pytest.fixture(scope="module")
def factors(tensor):
    return [random_orthonormal(s, 10, seed=i) for i, s in enumerate(tensor.shape)]


@pytest.fixture(scope="module")
def symbolic(tensor):
    return SymbolicTTMc(tensor)


def test_symbolic_ttmc_construction(benchmark, tensor):
    """Cost of the one-off symbolic TTMc preprocessing (one mode)."""
    sym = benchmark(symbolic_ttmc, tensor, 0)
    assert sym.nnz == tensor.nnz


def test_numeric_ttmc_with_symbolic_reuse(benchmark, tensor, factors, symbolic):
    """Numeric TTMc when the symbolic structure is reused (the hot path)."""
    out = benchmark(ttmc_matricized, tensor, factors, 0, symbolic=symbolic[0])
    assert out.shape == (tensor.shape[0], 100)


def test_numeric_ttmc_without_symbolic(benchmark, tensor, factors):
    """Numeric TTMc re-doing the symbolic work every call (ablation)."""
    out = benchmark(ttmc_matricized, tensor, factors, 0)
    assert out.shape == (tensor.shape[0], 100)


@pytest.mark.parametrize("threads", [1, 2, 4])
def test_parallel_ttmc_threads(benchmark, tensor, factors, symbolic, threads):
    """Thread-parallel numeric TTMc (Algorithm 3 inner loop)."""
    config = ParallelConfig(num_threads=threads, schedule="dynamic")
    out = benchmark(
        parallel_ttmc_matricized, tensor, factors, 1,
        symbolic=symbolic[1], config=config,
    )
    assert out.shape[0] == tensor.shape[1]


def test_trsvd_lanczos(benchmark, tensor, factors, symbolic):
    """Matrix-free Lanczos TRSVD of a matricized TTMc result."""
    y = ttmc_matricized(tensor, factors, 0, symbolic=symbolic[0])
    result = benchmark(lanczos_svd, y, 10, seed=0)
    assert result.left.shape == (tensor.shape[0], 10)


def test_trsvd_randomized(benchmark, tensor, factors, symbolic):
    """Randomized TRSVD on the same matrix (solver ablation)."""
    y = ttmc_matricized(tensor, factors, 0, symbolic=symbolic[0])
    result = benchmark(randomized_svd, y, 10, power_iterations=2, seed=0)
    assert result.left.shape == (tensor.shape[0], 10)


def test_fine_hypergraph_build(benchmark, tensor):
    """Constructing the fine-grain hypergraph model."""
    hg, _ = benchmark(build_fine_hypergraph, tensor)
    assert hg.num_vertices == tensor.nnz


def test_multilevel_partitioner(benchmark, tensor):
    """Multilevel K-way partitioning of the fine-grain model (PaToH stand-in)."""
    hg, _ = build_fine_hypergraph(tensor)
    options = PartitionerOptions(seed=0)
    parts = benchmark.pedantic(
        partition_hypergraph, args=(hg, 8), kwargs=dict(options=options),
        rounds=1, iterations=1,
    )
    assert parts.shape == (tensor.nnz,)


def test_cp_als_baseline(benchmark, tensor):
    """CP-ALS baseline on the same workload (context for the Tucker numbers)."""
    result = benchmark.pedantic(
        cp_als, args=(tensor, 10), kwargs=dict(max_iterations=3, seed=0),
        rounds=1, iterations=1,
    )
    assert result.rank == 10
