"""Benchmark / regeneration of Table III: per-mode work and communication statistics.

The paper's Table III analyses the Flickr tensor partitioned 256 ways; the
benchmark regenerates the same per-mode max/avg statistics for the Flickr
analog at the benchmark rank count and asserts the paper's qualitative
findings:

* fine-grain partitions balance the TTMc work perfectly (max == avg);
* coarse-grain partitions show large TTMc imbalance in at least one mode;
* the hypergraph fine-grain partition (fine-hp) communicates far less than
  the random one (fine-rd);
* fine-rd inflates the TRSVD work (redundant rows == cut size).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import STRATEGIES, render_table3, run_table3

NUM_PARTS = 16


def test_table3_statistics(context, benchmark):
    result = benchmark.pedantic(
        run_table3,
        kwargs=dict(context=context, dataset="flickr", num_parts=NUM_PARTS,
                    strategies=STRATEGIES),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table3(result, dataset="flickr", num_parts=NUM_PARTS))

    tensor = context.tensor("flickr")
    order = tensor.order

    fine_hp, fine_rd = result["fine-hp"], result["fine-rd"]
    coarse_hp, coarse_bl = result["coarse-hp"], result["coarse-bl"]

    # (1) fine-grain TTMc work is identical in every mode and balanced.
    for rows in (fine_hp, fine_rd):
        for row in rows:
            assert row["wttmc_max"] <= row["wttmc_avg"] * 1.25

    # (2) at least one mode of each coarse partition shows >= 1.5x imbalance.
    for rows in (coarse_hp, coarse_bl):
        imbalances = [row["wttmc_max"] / max(row["wttmc_avg"], 1.0) for row in rows]
        assert max(imbalances) >= 1.5

    # (3) the hypergraph partition cuts communication vs the random one.
    hp_comm = sum(row["comm_avg"] for row in fine_hp)
    rd_comm = sum(row["comm_avg"] for row in fine_rd)
    assert hp_comm < 0.6 * rd_comm

    # (4) fine-rd's redundant TRSVD rows exceed fine-hp's in the large modes.
    large_mode = int(np.argmax(tensor.shape))
    assert fine_rd[large_mode]["wtrsvd_avg"] >= fine_hp[large_mode]["wtrsvd_avg"]

    # (5) coarse partitions never do redundant TRSVD work: their average per
    # mode equals the number of non-empty rows divided by the rank count.
    for rows in (coarse_hp, coarse_bl):
        for mode, row in enumerate(rows):
            nonempty = len(tensor.nonempty_rows(mode))
            assert np.isclose(row["wtrsvd_avg"] * NUM_PARTS, nonempty, rtol=1e-6)
