"""Benchmark: compiled (numba) vs vectorized (numpy) kernel tier.

The same unit of work as the format sweep — one HOOI-iteration-worth of
TTMc, every mode's ``Y_(n)`` — on the 4-mode power-law tensor, with the
``kernel`` axis flipped.  The compiled tier fuses each COO row / CSF level
into one pass (gather + multiply + accumulate, no Kronecker temporaries and
no ``reduceat`` read-back), so it should win on both formats; the acceptance
gate asserts it does.

Everything here **requires a real numba JIT** and is skipped otherwise: the
registry's interpreted fallback (``REPRO_KERNEL_FORCE_PYTHON``) proves the
numerics in the test suite but is orders of magnitude slower, so timing it
would gate on noise.  The compilation itself is hoisted out of the measured
region with :func:`repro.kernels.warmup_kernels` plus one untimed sweep —
exactly what a latency-sensitive caller is told to do.

On CI the compare step (scripts/compare_bench.py) treats kernels present on
only one side as informational, so runs without numba never trip the gate.
"""

from __future__ import annotations

import pytest

from repro.core import SymbolicTTMc
from repro.data import power_law_sparse_tensor
from repro.engine import WorkspacePool
from repro.kernels import numba_available, warmup_kernels
from repro.sparse import CSFTensorSet
from sweep_utils import csf_sweep, median_time, per_mode_sweep

RANK = 8

requires_numba = pytest.mark.skipif(
    not numba_available(),
    reason="the compiled tier needs a real numba JIT; the interpreted "
    "fallback is not a performance configuration",
)


@pytest.fixture(scope="module")
def tensor():
    return power_law_sparse_tensor(
        (120, 100, 90, 80), 120_000, exponents=0.7, seed=0
    )


@pytest.fixture(scope="module")
def factors(tensor):
    from repro.util.linalg import random_orthonormal

    return [
        random_orthonormal(s, RANK, seed=i) for i, s in enumerate(tensor.shape)
    ]


@pytest.fixture(scope="module")
def symbolic(tensor):
    return SymbolicTTMc(tensor)


@pytest.fixture(scope="module")
def csf_trees(tensor):
    return CSFTensorSet.per_mode(tensor)


@pytest.fixture(scope="module")
def warm_table():
    """JIT-compile every dispatcher once, off the measured path."""
    return warmup_kernels("numba")


@requires_numba
def test_ttmc_sweep_coo_numba(benchmark, tensor, factors, symbolic, warm_table):
    pool = WorkspacePool()
    benchmark.pedantic(
        per_mode_sweep,
        args=(tensor, factors, symbolic, pool, RANK, "numba"),
        rounds=3,
        warmup_rounds=1,
    )


@requires_numba
def test_ttmc_sweep_csf_numba(benchmark, tensor, factors, csf_trees, warm_table):
    pool = WorkspacePool()
    benchmark.pedantic(
        csf_sweep,
        args=(tensor, factors, csf_trees, pool, RANK, "numba"),
        rounds=3,
        warmup_rounds=1,
    )


@requires_numba
def test_numba_beats_numpy_coo(tensor, factors, symbolic, warm_table):
    """Acceptance gate: the fused COO row kernel must beat the vectorized
    gather/kron/reduceat pipeline on the 4-mode power-law sweep."""
    pool_a, pool_b = WorkspacePool(), WorkspacePool()
    per_mode_sweep(tensor, factors, symbolic, pool_a, RANK)          # warm-up
    per_mode_sweep(tensor, factors, symbolic, pool_b, RANK, "numba")

    numpy_t = median_time(per_mode_sweep, tensor, factors, symbolic, pool_a, RANK)
    numba_t = median_time(
        per_mode_sweep, tensor, factors, symbolic, pool_b, RANK, "numba"
    )
    assert numba_t < numpy_t, (
        f"compiled COO sweep ({numba_t * 1e3:.1f} ms) should beat the numpy "
        f"tier ({numpy_t * 1e3:.1f} ms)"
    )


@requires_numba
def test_numba_beats_numpy_csf(tensor, factors, csf_trees, warm_table):
    """Acceptance gate: the fused fiber-extent walk must beat the
    per-level kron + reduceat passes on the same trees."""
    pool_a, pool_b = WorkspacePool(), WorkspacePool()
    csf_sweep(tensor, factors, csf_trees, pool_a, RANK)              # warm-up
    csf_sweep(tensor, factors, csf_trees, pool_b, RANK, "numba")

    numpy_t = median_time(csf_sweep, tensor, factors, csf_trees, pool_a, RANK)
    numba_t = median_time(
        csf_sweep, tensor, factors, csf_trees, pool_b, RANK, "numba"
    )
    assert numba_t < numpy_t, (
        f"compiled CSF sweep ({numba_t * 1e3:.1f} ms) should beat the numpy "
        f"tier ({numpy_t * 1e3:.1f} ms)"
    )


@requires_numba
def test_warmup_hoists_compilation(benchmark):
    """Warmup cost after the first compile: effectively free (cache hits)."""
    warmup_kernels("numba")
    benchmark.pedantic(warmup_kernels, args=("numba",), rounds=3, warmup_rounds=1)
