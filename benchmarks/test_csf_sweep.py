"""Benchmark: CSF vs per-mode COO vs dimension-tree TTMc sweep.

One HOOI-iteration-worth of TTMc — serve every mode's ``Y_(n)`` — evaluated
on the three tensor-format / strategy configurations the engine offers:

* ``per-mode`` COO (the paper's Algorithm 2: each mode recomputed from the
  flat coordinate list),
* ``dimtree`` (memoized partial chains over COO),
* ``csf`` with one rooted tree per mode (fiber-segment sweeps — factor rows
  gathered once per merged fiber, partial products reduced over fiber
  extents).

The 4-mode power-law tensor merges many nonzeros per index prefix, which is
exactly the structure CSF stores once; the acceptance gate asserts the CSF
sweep beats the per-mode COO baseline.  The module also prints the COO vs
CSF memory footprint (``repro.sparse.memory_report``) so the runtime numbers
carry their storage cost: per-mode rooted trees pay ``order``× the index
memory, the shared tree compresses *below* COO.
"""

from __future__ import annotations

import pytest

from repro.core import SymbolicTTMc
from repro.data import power_law_sparse_tensor
from repro.engine import DimensionTree, WorkspacePool
from repro.sparse import CSFTensorSet, memory_report
from sweep_utils import csf_sweep, dimtree_sweep, median_time, per_mode_sweep

RANK = 8


@pytest.fixture(scope="module")
def tensor():
    return power_law_sparse_tensor(
        (120, 100, 90, 80), 120_000, exponents=0.7, seed=0
    )


@pytest.fixture(scope="module")
def factors(tensor):
    from repro.util.linalg import random_orthonormal

    return [
        random_orthonormal(s, RANK, seed=i) for i, s in enumerate(tensor.shape)
    ]


@pytest.fixture(scope="module")
def symbolic(tensor):
    return SymbolicTTMc(tensor)


@pytest.fixture(scope="module")
def csf_trees(tensor):
    return CSFTensorSet.per_mode(tensor)


def test_ttmc_sweep_coo_per_mode(benchmark, tensor, factors, symbolic):
    pool = WorkspacePool()
    benchmark.pedantic(
        per_mode_sweep,
        args=(tensor, factors, symbolic, pool, RANK),
        rounds=3,
        warmup_rounds=1,
    )


def test_ttmc_sweep_csf(benchmark, tensor, factors, csf_trees):
    pool = WorkspacePool()
    benchmark.pedantic(
        csf_sweep,
        args=(tensor, factors, csf_trees, pool, RANK),
        rounds=3,
        warmup_rounds=1,
    )


def test_csf_construction(benchmark, tensor):
    """Compression cost: amortized over every sweep of a HOOI run."""
    benchmark.pedantic(
        CSFTensorSet.per_mode, args=(tensor,), rounds=3, warmup_rounds=1
    )


def test_csf_memory_footprint(tensor, csf_trees, capsys):
    """Print the COO-vs-CSF footprint next to the runtime numbers."""
    per_mode = memory_report(tensor, csf_trees)
    shared = memory_report(tensor, CSFTensorSet.shared_tree(tensor))
    with capsys.disabled():
        print(
            f"\n[csf-memory] nnz={per_mode['nnz']} "
            f"coo={per_mode['coo_bytes'] / 1e6:.2f} MB | "
            f"csf per-mode trees={per_mode['csf_bytes'] / 1e6:.2f} MB "
            f"(ratio {per_mode['ratio']:.2f}) | "
            f"csf shared tree={shared['csf_bytes'] / 1e6:.2f} MB "
            f"(ratio {shared['ratio']:.2f})"
        )
    assert shared["ratio"] < 1.0  # the shared tree must compress
    assert per_mode["ratio"] < tensor.order  # n rooted trees beat n COO copies


def test_csf_beats_coo_per_mode(tensor, factors, symbolic, csf_trees):
    """Acceptance gate: the fiber-vectorized sweep must win on 4 modes."""
    pool_a, pool_b = WorkspacePool(), WorkspacePool()
    per_mode_sweep(tensor, factors, symbolic, pool_a, RANK)   # warm-up
    csf_sweep(tensor, factors, csf_trees, pool_b, RANK)

    per_mode = median_time(per_mode_sweep, tensor, factors, symbolic, pool_a, RANK)
    csf = median_time(csf_sweep, tensor, factors, csf_trees, pool_b, RANK)
    assert csf < per_mode, (
        f"CSF sweep ({csf * 1e3:.1f} ms) should beat per-mode COO "
        f"({per_mode * 1e3:.1f} ms)"
    )


def test_csf_competitive_with_dimtree(tensor, factors, csf_trees):
    """Context (not a gate): CSF lands in the dimension tree's ballpark.

    Both replace the per-mode recomputation with shared partial products —
    the dimension tree by memoizing across modes, CSF by merging fibers
    within each sweep.  Report the ratio; only sanity-bound it loosely so
    noisy CI machines never flake.
    """
    pool_a, pool_b = WorkspacePool(), WorkspacePool()
    tree = DimensionTree(tensor)
    dimtree_sweep(tensor, factors, tree, pool_a, RANK)        # warm-up
    csf_sweep(tensor, factors, csf_trees, pool_b, RANK)

    dimtree = median_time(dimtree_sweep, tensor, factors, tree, pool_a, RANK)
    csf = median_time(csf_sweep, tensor, factors, csf_trees, pool_b, RANK)
    assert csf < 5.0 * dimtree, (
        f"CSF sweep ({csf * 1e3:.1f} ms) is far off the dimtree sweep "
        f"({dimtree * 1e3:.1f} ms)"
    )
