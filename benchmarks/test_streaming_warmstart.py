"""Benchmark: warm-started incremental HOOI vs cold re-decomposition.

The streaming acceptance gate (ISSUE 10): over a 10-batch drifting
low-rank stream — one bulk load followed by small appended deltas whose
planted subspaces random-walk between batches
(:func:`~repro.data.lowrank.drifting_lowrank_stream`) — a
:class:`~repro.streaming.StreamingSession` that re-enters HOOI from the
previous factors must reach the cold path's final fit with at least
``REPRO_STREAMING_SWEEP_FACTOR``× (default 2×) fewer total sweeps than
solving every snapshot from a fresh random initialization.

Sweeps, not seconds, are the gated quantity: per-sweep cost is identical on
both paths (same engine, same tensor snapshot), so the sweep ratio is the
machine-independent measure of what the warm start buys.  Both paths are
also registered as pytest-benchmark kernels so the committed
``BENCH_baseline.json`` tracks their wall-clock and
``scripts/compare_bench.py`` gates regressions (the "Streaming warm-start
acceptance" CI step runs the gate by name before the aggregate comparison).
"""

from __future__ import annotations

import os

import pytest

from repro.core.hooi import HOOIOptions, hooi
from repro.data.lowrank import drifting_lowrank_stream
from repro.streaming import DeltaBatch, StreamingSession, StreamingTensor

SHAPE = (40, 35, 30)
RANKS = (4, 4, 4)
#: The bulk first batch; later deltas are cut down to DELTA_NNZ entries.
INITIAL_NNZ = 3000
DELTA_NNZ = 200
NUM_BATCHES = 10

#: Required cold-over-warm total-sweep factor.
EXPECTED_SWEEP_FACTOR = float(
    os.environ.get("REPRO_STREAMING_SWEEP_FACTOR", "2.0")
)

#: Warm and cold runs share one solver configuration; ``tolerance`` is the
#: convergence criterion, so "sweeps" means sweeps-to-tolerance on both
#: sides, capped by the same budget.
SOLVER = dict(
    init="random",
    seed=0,
    max_iterations=25,
    tolerance=1e-6,
    trsvd_method="gram",
)


@pytest.fixture(scope="module")
def batches():
    """The drifting stream: one bulk load, then nine small drifted deltas."""
    raw = list(
        drifting_lowrank_stream(
            SHAPE,
            RANKS,
            INITIAL_NNZ,
            NUM_BATCHES,
            drift=0.02,
            noise=0.01,
            seed=42,
        )
    )
    return [raw[0]] + [
        DeltaBatch(
            b.indices[:DELTA_NNZ],
            b.values[:DELTA_NNZ],
            merge_duplicates=False,
        )
        for b in raw[1:]
    ]


def run_cold(batches):
    """Re-decompose every snapshot from scratch; return (sweeps, fits)."""
    stream = StreamingTensor(shape=SHAPE)
    total_sweeps, fits = 0, []
    for batch in batches:
        stream.append(batch)
        result = hooi(stream.tensor, list(RANKS), HOOIOptions(**SOLVER))
        total_sweeps += result.iterations
        fits.append(result.fit)
    return total_sweeps, fits


def run_warm(batches):
    """Track the stream with a warm-started session; return (sweeps, fits)."""
    stream = StreamingTensor(shape=SHAPE)
    session = StreamingSession(
        stream, RANKS, adaptive=True, min_sweeps=1, **SOLVER
    )
    fits = [session.update(batch).fit for batch in batches]
    return session.total_sweeps, fits


def test_warmstart_halves_total_sweeps(batches):
    """The acceptance gate: >= 2x fewer sweeps at no worse final fit."""
    cold_sweeps, cold_fits = run_cold(batches)
    warm_sweeps, warm_fits = run_warm(batches)
    assert warm_fits[-1] >= cold_fits[-1] - 1e-3, (
        f"warm-started stream ended at fit {warm_fits[-1]:.6f}, below the "
        f"cold path's {cold_fits[-1]:.6f}"
    )
    factor = cold_sweeps / warm_sweeps
    assert factor >= EXPECTED_SWEEP_FACTOR, (
        f"warm-started stream used {warm_sweeps} total sweeps vs "
        f"{cold_sweeps} cold — {factor:.2f}x, below the required "
        f"{EXPECTED_SWEEP_FACTOR:.2f}x"
    )


def test_stream_warmstart(benchmark, batches):
    benchmark.pedantic(run_warm, args=(batches,), rounds=3, warmup_rounds=1)


def test_stream_cold_resolve(benchmark, batches):
    benchmark.pedantic(run_cold, args=(batches,), rounds=3, warmup_rounds=1)
