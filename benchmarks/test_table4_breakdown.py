"""Benchmark / regeneration of Table IV: relative time per HOOI step.

Runs the full simulated distributed HOOI (fine-hp partition) on every dataset
analog and reports the share of simulated time spent in the TTMc, the TRSVD
(including its communication) and the core-tensor formation.  The paper's
qualitative finding asserted here: the TTMc dominates and the core-tensor step
is negligible for the large skewed tensors.
"""

from __future__ import annotations

import pytest

from repro.core import HOOIOptions
from repro.distributed import distributed_hooi
from repro.experiments import render_table4
from repro.experiments.calibration import scaled_machine
from benchmarks.conftest import BENCH_SCALE

NUM_PARTS = 8
DATASETS = ("delicious", "flickr", "nell", "netflix")


@pytest.mark.parametrize("dataset", DATASETS)
def test_table4_phase_breakdown(context, benchmark, dataset):
    tensor = context.tensor(dataset)
    ranks = context.ranks(dataset)
    partition = context.partition(dataset, "fine-hp", NUM_PARTS)
    machine = scaled_machine(BENCH_SCALE)
    options = HOOIOptions(max_iterations=2, init="random", seed=0)

    run = benchmark.pedantic(
        distributed_hooi,
        args=(tensor, ranks, partition, options),
        kwargs=dict(machine=machine),
        rounds=1,
        iterations=1,
    )
    fractions = run.phase_fractions()
    shares = {
        "ttmc": 100.0 * fractions.get("ttmc", 0.0),
        "trsvd+comm": 100.0 * fractions.get("trsvd", 0.0),
        "core+comm": 100.0 * fractions.get("core", 0.0),
    }
    print()
    print(render_table4({dataset: shares}))

    assert abs(sum(shares.values()) - 100.0) < 1e-6
    # Core-tensor formation is negligible (paper: 0.7% - 5.2%).
    assert shares["core+comm"] < 15.0
    # The TTMc is the dominant step for the large skewed tensors (paper:
    # 56% - 76%); Netflix is the paper's exception where TRSVD+comm can
    # dominate at scale, so it is only required to be non-trivial there.
    if dataset != "netflix":
        assert shares["ttmc"] > shares["trsvd+comm"]
    assert shares["ttmc"] > 10.0
