"""Benchmark / regeneration of Table I: dataset properties.

Regenerates the analog of each of the paper's four tensors and reports their
mode sizes and nonzero counts next to the paper's values.
"""

from __future__ import annotations

import pytest

from repro.data import PAPER_DATASETS, make_dataset
from repro.experiments import render_table1, run_table1
from benchmarks.conftest import BENCH_SCALE


@pytest.mark.parametrize("dataset", ["netflix", "nell", "delicious", "flickr"])
def test_generate_dataset_analog(benchmark, dataset):
    """Time the generation of one dataset analog (Table I row)."""
    tensor = benchmark(make_dataset, dataset, scale=BENCH_SCALE, seed=0)
    spec = PAPER_DATASETS[dataset]
    assert tensor.order == spec.order
    assert tensor.nnz > 0
    # The analog preserves the relative ordering of the paper's mode sizes
    # (ties are allowed: very small modes all clamp to the minimum size).
    for i in range(spec.order):
        for j in range(spec.order):
            if spec.shape[i] > spec.shape[j]:
                assert tensor.shape[i] >= tensor.shape[j]


def test_table1_rows(context, benchmark):
    """Regenerate the full Table I and print it."""
    rows = benchmark.pedantic(run_table1, args=(context,), rounds=1, iterations=1)
    assert len(rows) == 4
    print()
    print(render_table1(rows))
