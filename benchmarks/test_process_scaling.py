"""Benchmark: sequential vs thread vs process TTMc sweep (true multicore).

One HOOI-sweep-worth of TTMc — every mode's ``Y_(n)`` on a 4-mode power-law
tensor — executed three ways: the sequential kernel, the GIL-bound thread
pool, and the zero-copy multiprocess pool at 1/2/4 workers.  The thread
variant decomposes the work exactly like the paper's Algorithm 3 but cannot
beat sequential wall-clock in CPython (the hot gather/Kronecker/segment-sum
work holds the GIL); the process variant runs the same row-parallel
lock-free decomposition on worker processes against shared memory, so with
real cores it shows real speedup.

Pool startup (symbolic construction + segment setup + worker attach) is
excluded from the timed region — it is a once-per-run cost the persistent
pool exists to amortize.  The speedup acceptance test is gated on the CPUs
actually available to this container (``REPRO_PROCESS_SPEEDUP`` overrides
the expected factor): on a single-CPU box the assertion is skipped because
no amount of software can make four workers faster than one core.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import SymbolicTTMc, ttmc_matricized
from repro.core.kron import kron_row_length
from repro.data import power_law_sparse_tensor
from repro.engine import WorkspacePool
from repro.parallel import (
    HOOIProcessPool,
    ParallelConfig,
    ProcessConfig,
    parallel_ttmc_matricized,
)
from repro.util.linalg import random_orthonormal

RANK = 8
SHAPE = (70, 60, 50, 45)
NNZ = 30_000
WORKER_COUNTS = (1, 2, 4)


def available_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


@pytest.fixture(scope="module")
def tensor():
    return power_law_sparse_tensor(SHAPE, NNZ, exponents=0.7, seed=0)


@pytest.fixture(scope="module")
def factors(tensor):
    return [
        random_orthonormal(s, RANK, seed=i) for i, s in enumerate(tensor.shape)
    ]


@pytest.fixture(scope="module")
def symbolic(tensor):
    return SymbolicTTMc(tensor)


def _sequential_sweep(tensor, factors, symbolic, pool):
    width = kron_row_length([RANK] * (tensor.order - 1))
    for mode in range(tensor.order):
        out = pool.take((tensor.shape[mode], width), tensor.dtype,
                        tag=f"out-{mode}")
        ttmc_matricized(
            tensor, factors, mode,
            symbolic=symbolic[mode], out=out, workspace=pool,
        )


def _threaded_sweep(tensor, factors, symbolic, pool, config):
    width = kron_row_length([RANK] * (tensor.order - 1))
    for mode in range(tensor.order):
        out = pool.take((tensor.shape[mode], width), tensor.dtype,
                        tag=f"out-{mode}")
        parallel_ttmc_matricized(
            tensor, factors, mode,
            symbolic=symbolic[mode], config=config, out=out,
        )


def _process_sweep(pool, order):
    for mode in range(order):
        pool.ttmc(mode)


def _make_process_pool(tensor, factors, symbolic, workers):
    return HOOIProcessPool.for_per_mode(
        tensor,
        {mode: symbolic[mode] for mode in range(tensor.order)},
        factors,
        [RANK] * tensor.order,
        np.float64,
        config=ProcessConfig(num_workers=workers),
    )


def test_sweep_sequential(benchmark, tensor, factors, symbolic):
    pool = WorkspacePool()
    benchmark.pedantic(
        _sequential_sweep,
        args=(tensor, factors, symbolic, pool),
        rounds=3,
        warmup_rounds=1,
    )


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_sweep_thread(benchmark, tensor, factors, symbolic, workers):
    pool = WorkspacePool()
    config = ParallelConfig(num_threads=workers)
    benchmark.pedantic(
        _threaded_sweep,
        args=(tensor, factors, symbolic, pool, config),
        rounds=3,
        warmup_rounds=1,
    )


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_sweep_process(benchmark, tensor, factors, symbolic, workers):
    with _make_process_pool(tensor, factors, symbolic, workers) as pool:
        benchmark.pedantic(
            _process_sweep,
            args=(pool, tensor.order),
            rounds=3,
            warmup_rounds=1,
        )


def test_process_sweep_matches_sequential(tensor, factors, symbolic):
    """The shared-memory results must match the kernel to 1e-10 exactly."""
    with _make_process_pool(tensor, factors, symbolic, 2) as pool:
        for mode in range(tensor.order):
            expected = ttmc_matricized(
                tensor, factors, mode, symbolic=symbolic[mode]
            )
            assert np.allclose(pool.ttmc(mode), expected, atol=1e-10)
        names = pool.segment_names
    leftovers = [
        name for name in names if os.path.exists(os.path.join("/dev/shm", name))
    ]
    assert leftovers == [], f"leaked shared-memory segments: {leftovers}"


@pytest.mark.skipif(
    available_cpus() < 2,
    reason="wall-clock multicore speedup needs >= 2 CPUs "
    f"(this container exposes {available_cpus()})",
)
def test_process_beats_sequential(tensor, factors, symbolic):
    """Acceptance gate: 4 process workers beat sequential on real cores.

    The expected factor is >= 2x on >= 4 CPUs (the row-parallel TTMc is
    embarrassingly parallel and the chunk descriptors are tiny); with only
    2-3 CPUs any speedup at all is required.  Override with
    ``REPRO_PROCESS_SPEEDUP`` when gating on unusual hardware.
    """
    cpus = available_cpus()
    default_target = 2.0 if cpus >= 4 else 1.05
    target = float(os.environ.get("REPRO_PROCESS_SPEEDUP", default_target))

    seq_pool = WorkspacePool()
    _sequential_sweep(tensor, factors, symbolic, seq_pool)  # warm-up

    def median_time(fn, *args):
        times = []
        for _ in range(3):
            start = time.perf_counter()
            fn(*args)
            times.append(time.perf_counter() - start)
        return float(np.median(times))

    sequential = median_time(
        _sequential_sweep, tensor, factors, symbolic, seq_pool
    )
    with _make_process_pool(tensor, factors, symbolic, 4) as pool:
        _process_sweep(pool, tensor.order)  # warm-up
        process = median_time(_process_sweep, pool, tensor.order)

    speedup = sequential / process
    assert speedup >= target, (
        f"process pool (4 workers) achieved {speedup:.2f}x vs sequential "
        f"({process * 1e3:.1f} ms vs {sequential * 1e3:.1f} ms) on {cpus} "
        f"CPUs; expected >= {target:.2f}x"
    )
