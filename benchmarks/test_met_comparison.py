"""Benchmark of the single-core MET comparison (Section V, in-text result).

The paper: five HOOI iterations on a random 10K^3 tensor with 1M nonzeros take
87.2 s with MET and 11.3 s with HyperTensor on one core.  The benchmark runs
both codes on a scaled version of the same workload and asserts that the
nonzero-based + symbolic formulation wins (the factor is hardware- and
runtime-dependent; the paper's is 7.7x, pure-NumPy typically lands at 1.2-3x).
"""

from __future__ import annotations

import pytest

from repro.baselines import met_hooi
from repro.core import HOOIOptions, hooi
from repro.data import random_sparse_tensor
from repro.experiments import render_met_comparison, run_met_comparison

SHAPE = (1000, 1000, 1000)
NNZ = 100_000
RANKS = 10
ITERATIONS = 5


@pytest.fixture(scope="module")
def workload():
    return random_sparse_tensor(SHAPE, NNZ, seed=0)


@pytest.fixture(scope="module")
def options():
    return HOOIOptions(max_iterations=ITERATIONS, init="random", seed=0, tolerance=0.0)


def test_hypertensor_hooi(benchmark, workload, options):
    """Time the nonzero-based, symbolically-preprocessed HOOI (ours)."""
    result = benchmark.pedantic(hooi, args=(workload, RANKS, options),
                                rounds=1, iterations=1)
    assert len(result.fit_history) == ITERATIONS


def test_met_baseline_hooi(benchmark, workload, options):
    """Time the MET-style TTM-chain HOOI baseline."""
    result = benchmark.pedantic(met_hooi, args=(workload, RANKS, options),
                                rounds=1, iterations=1)
    assert len(result.fit_history) == ITERATIONS


def test_met_comparison_summary(benchmark):
    """Run the packaged comparison and assert the paper's winner."""
    result = benchmark.pedantic(
        run_met_comparison,
        kwargs=dict(shape=SHAPE, nnz=NNZ, ranks=RANKS, iterations=ITERATIONS, seed=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_met_comparison(result))
    assert result.fits_match
    assert result.hypertensor_seconds < result.met_seconds
