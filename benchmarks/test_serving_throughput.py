"""Benchmark: the persistent-pool service vs per-request pool spin-up.

The serving acceptance gate (ISSUE 7): a stream of ≥20 small decomposition
jobs through :class:`~repro.serving.DecompositionService` — one persistent
worker crew, jobs batched onto shared pool generations — must complete at
least ``REPRO_SERVING_SPEEDUP``× (default 1.5×) faster than the same jobs
run as back-to-back ``hooi(execution="process")`` calls, each of which pays
worker spawn, shared-arena attach and teardown on its own.

The service's crew spawn and kernel warmup happen at ``start()`` and are
deliberately *excluded* from the timed region — amortizing that one-time
cost across requests is the subsystem's entire reason to exist — while the
per-request baseline's spawns are *included*, because that is exactly what
each stand-alone call pays.

Both paths are also registered as pytest-benchmark kernels so the committed
``BENCH_baseline.json`` tracks them and ``scripts/compare_bench.py`` gates
regressions (the "Serving throughput" CI step runs the acceptance test by
name before the aggregate comparison).
"""

from __future__ import annotations

import asyncio
import os
import time

import pytest

from repro.core import HOOIOptions, hooi
from repro.data import random_sparse_tensor
from repro.serving import DecompositionService

#: Number of jobs in the stream (the acceptance gate requires >= 20).
NUM_JOBS = 20
SHAPE = (25, 20, 15)
NNZ = 300
RANK = 4

#: Worker-process count on BOTH sides of the comparison.  It must be >= 2:
#: at 1 the drivers' process backend short-circuits to sequential execution
#: and the baseline would measure no pool spin-up at all.
NUM_WORKERS = 2

#: Required service-over-spin-up throughput factor.
EXPECTED_SPEEDUP = float(os.environ.get("REPRO_SERVING_SPEEDUP", "1.5"))

JOB_OPTIONS = dict(
    trsvd_method="gram", max_iterations=3, tolerance=0.0, seed=0
)


@pytest.fixture(scope="module")
def tensors():
    """Twenty distinct small tensors — distinct so the cache never hits."""
    return [
        random_sparse_tensor(SHAPE, NNZ, seed=100 + i)
        for i in range(NUM_JOBS)
    ]


def run_per_request(tensors) -> None:
    """The baseline: every job spawns (and reaps) its own worker pool."""
    options = HOOIOptions(
        execution="process", num_workers=NUM_WORKERS, **JOB_OPTIONS
    )
    for tensor in tensors:
        hooi(tensor, RANK, options)


def run_service(service, tensors) -> None:
    """The service path: submit the whole stream, await every result."""

    async def main():
        handles = [
            await service.submit(
                tensor, RANK, execution="process", **JOB_OPTIONS
            )
            for tensor in tensors
        ]
        await asyncio.gather(*[h.result() for h in handles])

    service._loop.run_until_complete(main())


class _ServiceRunner:
    """A started service bound to a private event loop for sync callers."""

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        self.service = DecompositionService(
            num_workers=NUM_WORKERS, batch_max=8, cache_capacity=0,
            warmup=True,
        )
        self.loop.run_until_complete(self.service.start())
        # Expose the loop the way run_service expects it.
        self.service._loop = self.loop

    def run(self, tensors) -> None:
        run_service(self.service, tensors)

    def close(self) -> None:
        self.loop.run_until_complete(self.service.aclose())
        self.loop.close()


def test_serving_beats_per_request_spinup(tensors):
    """The acceptance gate: ≥1.5× throughput on a 20-job stream."""
    runner = _ServiceRunner()
    try:
        runner.run(tensors)  # warm the path once (JIT-free, but fair)
        start = time.perf_counter()
        runner.run(tensors)
        service_seconds = time.perf_counter() - start
    finally:
        runner.close()

    run_per_request(tensors)  # warm equally
    start = time.perf_counter()
    run_per_request(tensors)
    baseline_seconds = time.perf_counter() - start

    speedup = baseline_seconds / service_seconds
    assert speedup >= EXPECTED_SPEEDUP, (
        f"persistent-pool service ran {NUM_JOBS} jobs in "
        f"{service_seconds:.3f}s vs {baseline_seconds:.3f}s per-request "
        f"spin-up — {speedup:.2f}x, below the required "
        f"{EXPECTED_SPEEDUP:.2f}x"
    )


def test_stream_via_service(benchmark, tensors):
    runner = _ServiceRunner()
    try:
        benchmark.pedantic(
            runner.run, args=(tensors,), rounds=3, warmup_rounds=1
        )
    finally:
        runner.close()


def test_stream_per_request_pools(benchmark, tensors):
    benchmark.pedantic(
        run_per_request, args=(tensors,), rounds=3, warmup_rounds=1
    )
