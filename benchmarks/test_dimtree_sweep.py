"""Benchmark: dimension-tree vs per-mode TTMc sweep on a 4-mode tensor.

One HOOI-iteration-worth of TTMc — serve every mode's ``Y_(n)`` and refresh
that mode's factor (which invalidates the memoized chains exactly as the
engine does) — evaluated with the two ``ttmc_strategy`` settings.  The
power-law tensor merges many nonzeros per mode-pair fiber, which is where
the dimension tree's semi-sparse intermediates pay off: the expensive
full-width leaf updates run over merged fibers instead of raw nonzeros.
The sweep bodies and timing helper are shared with the CSF format benchmark
(``sweep_utils``).
"""

from __future__ import annotations

import pytest

from repro.core import SymbolicTTMc
from repro.data import power_law_sparse_tensor
from repro.engine import DimensionTree, WorkspacePool
from repro.util.linalg import random_orthonormal
from sweep_utils import dimtree_sweep, median_time, per_mode_sweep

RANK = 8


@pytest.fixture(scope="module")
def tensor():
    return power_law_sparse_tensor(
        (120, 100, 90, 80), 120_000, exponents=0.7, seed=0
    )


@pytest.fixture(scope="module")
def factors(tensor):
    return [
        random_orthonormal(s, RANK, seed=i) for i, s in enumerate(tensor.shape)
    ]


@pytest.fixture(scope="module")
def symbolic(tensor):
    return SymbolicTTMc(tensor)


def test_ttmc_sweep_per_mode(benchmark, tensor, factors, symbolic):
    pool = WorkspacePool()
    benchmark.pedantic(
        per_mode_sweep,
        args=(tensor, factors, symbolic, pool, RANK),
        rounds=3,
        warmup_rounds=1,
    )


def test_ttmc_sweep_dimtree(benchmark, tensor, factors):
    tree = DimensionTree(tensor)
    pool = WorkspacePool()
    benchmark.pedantic(
        dimtree_sweep,
        args=(tensor, factors, tree, pool, RANK),
        rounds=3,
        warmup_rounds=1,
    )


def test_dimtree_beats_per_mode(tensor, factors, symbolic):
    """Acceptance gate: the memoized sweep must win on a 4-mode tensor."""
    tree = DimensionTree(tensor)
    pool_a, pool_b = WorkspacePool(), WorkspacePool()
    per_mode_sweep(tensor, factors, symbolic, pool_a, RANK)   # warm-up
    dimtree_sweep(tensor, factors, tree, pool_b, RANK)

    per_mode = median_time(per_mode_sweep, tensor, factors, symbolic, pool_a, RANK)
    dimtree = median_time(dimtree_sweep, tensor, factors, tree, pool_b, RANK)
    assert dimtree < per_mode, (
        f"dimtree sweep ({dimtree * 1e3:.1f} ms) should beat per-mode "
        f"({per_mode * 1e3:.1f} ms)"
    )
