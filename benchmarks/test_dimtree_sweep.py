"""Benchmark: dimension-tree vs per-mode TTMc sweep on a 4-mode tensor.

One HOOI-iteration-worth of TTMc — serve every mode's ``Y_(n)`` and refresh
that mode's factor (which invalidates the memoized chains exactly as the
engine does) — evaluated with the two ``ttmc_strategy`` settings.  The
power-law tensor merges many nonzeros per mode-pair fiber, which is where
the dimension tree's semi-sparse intermediates pay off: the expensive
full-width leaf updates run over merged fibers instead of raw nonzeros.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import SymbolicTTMc, ttmc_matricized
from repro.core.kron import kron_row_length
from repro.data import power_law_sparse_tensor
from repro.engine import DimensionTree, WorkspacePool
from repro.util.linalg import random_orthonormal

RANK = 8


@pytest.fixture(scope="module")
def tensor():
    return power_law_sparse_tensor(
        (120, 100, 90, 80), 120_000, exponents=0.7, seed=0
    )


@pytest.fixture(scope="module")
def factors(tensor):
    return [
        random_orthonormal(s, RANK, seed=i) for i, s in enumerate(tensor.shape)
    ]


@pytest.fixture(scope="module")
def symbolic(tensor):
    return SymbolicTTMc(tensor)


def _per_mode_sweep(tensor, factors, symbolic, pool):
    width = kron_row_length([RANK] * (tensor.order - 1))
    for mode in range(tensor.order):
        out = pool.take((tensor.shape[mode], width), tensor.dtype,
                        tag=f"out-{mode}")
        ttmc_matricized(
            tensor, factors, mode,
            symbolic=symbolic[mode], out=out, workspace=pool,
        )


def _dimtree_sweep(tensor, factors, tree, pool):
    width = kron_row_length([RANK] * (tensor.order - 1))
    for mode in range(tensor.order):
        out = pool.take((tensor.shape[mode], width), tensor.dtype,
                        tag=f"out-{mode}")
        tree.leaf_matricized(mode, factors, out=out, workspace=pool)
        tree.invalidate_factor(mode)


def test_ttmc_sweep_per_mode(benchmark, tensor, factors, symbolic):
    pool = WorkspacePool()
    benchmark.pedantic(
        _per_mode_sweep,
        args=(tensor, factors, symbolic, pool),
        rounds=3,
        warmup_rounds=1,
    )


def test_ttmc_sweep_dimtree(benchmark, tensor, factors):
    tree = DimensionTree(tensor)
    pool = WorkspacePool()
    benchmark.pedantic(
        _dimtree_sweep,
        args=(tensor, factors, tree, pool),
        rounds=3,
        warmup_rounds=1,
    )


def test_dimtree_beats_per_mode(tensor, factors, symbolic):
    """Acceptance gate: the memoized sweep must win on a 4-mode tensor."""
    tree = DimensionTree(tensor)
    pool_a, pool_b = WorkspacePool(), WorkspacePool()
    _per_mode_sweep(tensor, factors, symbolic, pool_a)   # warm-up
    _dimtree_sweep(tensor, factors, tree, pool_b)

    def median_time(fn, *args):
        times = []
        for _ in range(3):
            start = time.perf_counter()
            fn(*args)
            times.append(time.perf_counter() - start)
        return float(np.median(times))

    per_mode = median_time(_per_mode_sweep, tensor, factors, symbolic, pool_a)
    dimtree = median_time(_dimtree_sweep, tensor, factors, tree, pool_b)
    assert dimtree < per_mode, (
        f"dimtree sweep ({dimtree * 1e3:.1f} ms) should beat per-mode "
        f"({per_mode * 1e3:.1f} ms)"
    )
