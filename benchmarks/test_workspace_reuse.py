"""Micro-benchmark: pooled vs per-call TTMc buffer allocation.

The engine's :class:`~repro.engine.workspace.WorkspacePool` preallocates and
reuses the ``(I_n × ∏R_t)`` TTMc output and the per-block Kronecker scratch
across modes and iterations.  This benchmark isolates exactly that effect: a
full per-mode TTMc sweep, identical numeric work, with fresh allocations per
call versus pooled buffers — and asserts that the pooled variant performs
zero allocations after warm-up.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HOOIOptions, SymbolicTTMc, hooi, ttmc_matricized
from repro.core.kron import kron_row_length
from repro.data import power_law_sparse_tensor
from repro.engine import WorkspacePool
from repro.util.linalg import random_orthonormal

RANK = 10


@pytest.fixture(scope="module")
def tensor():
    return power_law_sparse_tensor((3000, 2000, 2500), 120_000, exponents=0.8, seed=0)


@pytest.fixture(scope="module")
def factors(tensor):
    return [random_orthonormal(s, RANK, seed=i) for i, s in enumerate(tensor.shape)]


@pytest.fixture(scope="module")
def symbolic(tensor):
    return SymbolicTTMc(tensor)


def _sweep(tensor, factors, symbolic, workspace):
    """One HOOI-iteration-worth of TTMc: all modes, optionally pooled."""
    results = []
    for mode in range(tensor.order):
        width = kron_row_length(
            [factors[t].shape[1] for t in range(tensor.order) if t != mode]
        )
        # Per-mode tag: unlike the engine (which consumes each Y_(n) before
        # the next take), this sweep keeps all modes' outputs live at once,
        # so coinciding (I_n, width) shapes must not share a buffer.
        out = (
            workspace.take((tensor.shape[mode], width), tensor.dtype,
                           tag=f"out-{mode}")
            if workspace is not None
            else None
        )
        results.append(
            ttmc_matricized(
                tensor, factors, mode,
                symbolic=symbolic[mode], out=out, workspace=workspace,
            )
        )
    return results


def test_ttmc_sweep_per_call_allocation(benchmark, tensor, factors, symbolic):
    """Baseline: every mode of every sweep allocates Y_(n) and scratch fresh."""
    results = benchmark(_sweep, tensor, factors, symbolic, None)
    assert len(results) == tensor.order


def test_ttmc_sweep_pooled_allocation(benchmark, tensor, factors, symbolic):
    """Pooled: the same sweep reuses the per-mode buffers on every iteration."""
    pool = WorkspacePool()
    _sweep(tensor, factors, symbolic, pool)          # warm-up fills the pool
    allocations_warm = pool.allocations

    results = benchmark(_sweep, tensor, factors, symbolic, pool)

    assert len(results) == tensor.order
    # Steady state performs zero allocations: every buffer request is a reuse.
    assert pool.allocations == allocations_warm
    assert pool.reuses > 0
    # The pooled sweep is numerically identical to the allocating one.
    reference = _sweep(tensor, factors, symbolic, None)
    assert np.allclose(results[0], reference[0])


def test_hooi_end_to_end_pooled(benchmark, tensor):
    """Full HOOI with a shared pool (what the engine does by default)."""
    pool = WorkspacePool()
    options = HOOIOptions(max_iterations=2, init="random", seed=0)

    result = benchmark(hooi, tensor, RANK, options, workspace=pool)

    assert np.isfinite(result.fit)
    # One Y_(n) buffer per distinct (I_n, width) plus the Kronecker scratch.
    assert pool.num_buffers > 0
    assert pool.reuses > 0
