"""Benchmark / regeneration of Table V: shared-memory thread scaling.

Two complementary reproductions are run per dataset analog:

* the node roofline model evaluated for 1-32 threads (this is the curve whose
  *shape* mirrors the paper's BlueGene/Q measurements: everything speeds up,
  the latency-bound tensors more than the TRSVD-bandwidth-bound ones);
* a measured run of the actual thread-parallel HOOI (Algorithm 3) at 1-4
  Python threads, which is also what the ``benchmark`` fixture times.
"""

from __future__ import annotations

import pytest

from repro.core import HOOIOptions
from repro.experiments import (
    DEFAULT_THREAD_COUNTS,
    render_table5,
    render_table5_hybrid,
    run_table5,
    run_table5_hybrid,
)
from repro.experiments.calibration import scaled_node
from repro.parallel import ParallelConfig, shared_hooi
from benchmarks.conftest import BENCH_SCALE

DATASETS = ("delicious", "flickr", "nell", "netflix")

HYBRID_RANKS = (2, 4)
HYBRID_THREADS = (1, 4, 16)


def test_table5_modelled_scaling(context, benchmark):
    """Regenerate the modelled thread-scaling table for all four analogs."""
    result = benchmark.pedantic(
        run_table5,
        kwargs=dict(context=context, datasets=DATASETS,
                    thread_counts=DEFAULT_THREAD_COUNTS,
                    node_model=scaled_node(BENCH_SCALE), measure=False),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table5(result))

    for dataset in DATASETS:
        modelled = result[dataset]["modelled"]
        times = [modelled[t] for t in DEFAULT_THREAD_COUNTS]
        # Monotone non-increasing with threads, and a real speedup at 32.
        assert all(b <= a * 1.001 for a, b in zip(times, times[1:]))
        assert modelled[1] / modelled[32] > 3.0

    # The paper's ordering: the tensors with enormous modes (Delicious,
    # Flickr — TRSVD bandwidth-bound) scale no better than NELL / Netflix
    # (latency-bound TTMc, which threads hide well).
    speedup = {d: result[d]["modelled"][1] / result[d]["modelled"][32] for d in DATASETS}
    assert speedup["netflix"] >= speedup["flickr"] - 1e-9
    assert speedup["nell"] >= speedup["delicious"] - 1e-9


def test_table5_hybrid_rank_thread_sweep(context, benchmark):
    """The paper's headline hybrid: MPI ranks × threads per rank, run for real.

    The simulated seconds per iteration must improve monotonically with the
    per-rank thread count at every rank count (the TTMc is latency-bound, so
    threads keep helping through the SMT budget), and the fit must be
    identical across every point — execution only changes local compute.
    """
    result = benchmark.pedantic(
        run_table5_hybrid,
        kwargs=dict(context=context, datasets=("netflix",),
                    rank_counts=HYBRID_RANKS, thread_counts=HYBRID_THREADS,
                    iterations=1),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table5_hybrid(result))

    points = result["netflix"]
    for num_ranks in HYBRID_RANKS:
        times = [points[(num_ranks, t)]["simulated"] for t in HYBRID_THREADS]
        assert all(b <= a * 1.001 for a, b in zip(times, times[1:]))
        # Real thread-level speedup at the largest team.
        assert times[0] / times[-1] > 2.0
        # Execution strategy only changes local compute: at a fixed
        # partition the fit is identical across thread counts.  (Across
        # rank counts the partitions — and hence summation orders — differ,
        # so only reassociation-level agreement is guaranteed there.)
        fits = [points[(num_ranks, t)]["fit"] for t in HYBRID_THREADS]
        assert max(fits) - min(fits) < 1e-10


@pytest.mark.parametrize("threads", [1, 2, 4])
@pytest.mark.parametrize("dataset", ["netflix", "nell"])
def test_table5_measured_threads(context, benchmark, dataset, threads):
    """Measured wall-clock of the thread-parallel HOOI (one iteration)."""
    tensor = context.tensor(dataset)
    ranks = context.ranks(dataset)
    options = HOOIOptions(max_iterations=1, init="random", seed=0)

    def run_once():
        return shared_hooi(tensor, ranks, options,
                           config=ParallelConfig(num_threads=threads))

    report = benchmark.pedantic(run_once, rounds=1, iterations=1)
    assert report.result.fit_history
    assert report.measured_seconds_per_iteration > 0
