"""Benchmark / regeneration of Table II: distributed strong scaling.

For every dataset analog and partitioning strategy, the modelled time per HOOI
iteration is produced for increasing simulated rank counts (the paper's 1-256
BlueGene/Q nodes; the benchmark default stops at 64 — set
``REPRO_BENCH_MAX_NODES=256`` for the full sweep).

The assertions encode the paper's qualitative findings:

* every configuration gets faster as ranks are added (strong scaling);
* the fine-grain hypergraph partition (fine-hp) is the fastest (or ties within
  10%) at the largest rank count on the 4-mode tensors;
* fine-hp is never slower than fine-rd at the largest rank count.
"""

from __future__ import annotations

import pytest

from repro.distributed import collect_partition_statistics, estimate_iteration_time
from repro.experiments import STRATEGIES, render_table2
from repro.experiments.calibration import scaled_machine
from benchmarks.conftest import BENCH_SCALE

DATASETS = ("delicious", "flickr", "nell", "netflix")


@pytest.mark.parametrize("dataset", DATASETS)
def test_table2_strong_scaling(context, node_counts, benchmark, dataset):
    machine = scaled_machine(BENCH_SCALE)
    tensor = context.tensor(dataset)
    ranks = context.ranks(dataset)

    # Partition construction (the offline PaToH-equivalent step) happens once
    # outside the timed region; the benchmark times the per-configuration
    # model evaluation, mirroring "time per HOOI iteration" bookkeeping.
    partitions = {
        (strategy, p): context.partition(dataset, strategy, p)
        for strategy in STRATEGIES
        for p in node_counts
    }

    def regenerate():
        table = {}
        for strategy in STRATEGIES:
            table[strategy] = {}
            for p in node_counts:
                partition = partitions[(strategy, p)]
                stats = collect_partition_statistics(tensor, partition, ranks)
                table[strategy][p] = estimate_iteration_time(
                    tensor, partition, ranks, machine=machine, statistics=stats
                )
        return table

    table = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    print()
    print(render_table2({dataset: table}))

    largest = node_counts[-1]
    smallest = node_counts[0]
    for strategy in STRATEGIES:
        times = table[strategy]
        assert times[largest] < times[smallest], (
            f"{dataset}/{strategy} does not scale: {times}"
        )
    # The paper itself reports NELL as the one tensor where the random
    # fine-grain partition beats the hypergraph one (communication imbalance),
    # so the fine-hp <= fine-rd check is not asserted there.
    if dataset != "nell":
        assert table["fine-hp"][largest] <= table["fine-rd"][largest] * 1.05
    if tensor.order == 4:
        best_coarse = min(table[s][largest] for s in ("coarse-hp", "coarse-bl"))
        assert table["fine-hp"][largest] <= best_coarse * 1.10
