"""Shared scaffolding for the TTMc sweep benchmarks.

The dimtree and CSF sweep benchmarks compare the same unit of work — one
HOOI-iteration-worth of TTMc (serve every mode's ``Y_(n)``) — across TTMc
strategies and tensor formats.  The sweep bodies and the acceptance-gate
timing helper live here so the gates cannot drift apart methodologically.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import ttmc_matricized
from repro.core.kron import kron_row_length
from repro.sparse import csf_ttmc_matricized


def median_time(fn, *args, rounds: int = 3) -> float:
    """Median wall-clock seconds of ``fn(*args)`` over ``rounds`` calls."""
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn(*args)
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def sweep_width(tensor, rank: int) -> int:
    return kron_row_length([rank] * (tensor.order - 1))


def per_mode_sweep(
    tensor, factors, symbolic, pool, rank: int, kernel: str = "numpy"
) -> None:
    """Per-mode COO TTMc of every mode (the paper's Algorithm 2 baseline)."""
    width = sweep_width(tensor, rank)
    for mode in range(tensor.order):
        out = pool.take((tensor.shape[mode], width), tensor.dtype,
                        tag=f"out-{mode}")
        ttmc_matricized(
            tensor, factors, mode,
            symbolic=symbolic[mode], out=out, workspace=pool, kernel=kernel,
        )


def dimtree_sweep(tensor, factors, tree, pool, rank: int) -> None:
    """Dimension-tree sweep with the engine's per-mode invalidation."""
    width = sweep_width(tensor, rank)
    for mode in range(tensor.order):
        out = pool.take((tensor.shape[mode], width), tensor.dtype,
                        tag=f"out-{mode}")
        tree.leaf_matricized(mode, factors, out=out, workspace=pool)
        tree.invalidate_factor(mode)


def csf_sweep(
    tensor, factors, trees, pool, rank: int, kernel: str = "numpy"
) -> None:
    """Fiber-vectorized sweep over a :class:`~repro.sparse.CSFTensorSet`."""
    width = sweep_width(tensor, rank)
    for mode in range(tensor.order):
        out = pool.take((tensor.shape[mode], width), tensor.dtype,
                        tag=f"out-{mode}")
        csf_ttmc_matricized(
            trees.tree_for(mode), factors, mode, out=out, workspace=pool,
            kernel=kernel,
        )
