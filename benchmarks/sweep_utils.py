"""Shared scaffolding for the TTMc sweep benchmarks.

The dimtree and CSF sweep benchmarks compare the same unit of work — one
HOOI-iteration-worth of TTMc (serve every mode's ``Y_(n)``) — across TTMc
strategies and tensor formats.  The sweep bodies and the acceptance-gate
timing helper live here so the gates cannot drift apart methodologically.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import ttmc_matricized
from repro.core.kron import kron_row_length
from repro.sparse import csf_ttmc_matricized


def median_time(fn, *args, rounds: int = 3) -> float:
    """Median wall-clock seconds of ``fn(*args)`` over ``rounds`` calls."""
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn(*args)
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def interleaved_median_times(candidates, rounds: int = 5):
    """Median seconds of several ``(fn, args)`` candidates, rounds interleaved.

    Running candidate A's rounds back-to-back and *then* candidate B's lets
    machine drift (thermal throttling, a background process spinning up)
    masquerade as a performance difference.  Interleaving — one round of
    each per pass — makes both sample the same noise, which is what a gate
    comparing two close configurations needs.  Returns one median per
    candidate, in order.
    """
    times = [[] for _ in candidates]
    for _ in range(rounds):
        for slot, (fn, args) in enumerate(candidates):
            start = time.perf_counter()
            fn(*args)
            times[slot].append(time.perf_counter() - start)
    return [float(np.median(t)) for t in times]


def sweep_width(tensor, rank: int) -> int:
    return kron_row_length([rank] * (tensor.order - 1))


def per_mode_sweep(
    tensor, factors, symbolic, pool, rank: int, kernel: str = "numpy"
) -> None:
    """Per-mode COO TTMc of every mode (the paper's Algorithm 2 baseline)."""
    width = sweep_width(tensor, rank)
    for mode in range(tensor.order):
        out = pool.take((tensor.shape[mode], width), tensor.dtype,
                        tag=f"out-{mode}")
        ttmc_matricized(
            tensor, factors, mode,
            symbolic=symbolic[mode], out=out, workspace=pool, kernel=kernel,
        )


def dimtree_sweep(tensor, factors, tree, pool, rank: int) -> None:
    """Dimension-tree sweep with the engine's per-mode invalidation."""
    width = sweep_width(tensor, rank)
    for mode in range(tensor.order):
        out = pool.take((tensor.shape[mode], width), tensor.dtype,
                        tag=f"out-{mode}")
        tree.leaf_matricized(mode, factors, out=out, workspace=pool)
        tree.invalidate_factor(mode)


def csf_sweep(
    tensor, factors, trees, pool, rank: int, kernel: str = "numpy"
) -> None:
    """Fiber-vectorized sweep over a :class:`~repro.sparse.CSFTensorSet`."""
    width = sweep_width(tensor, rank)
    for mode in range(tensor.order):
        out = pool.take((tensor.shape[mode], width), tensor.dtype,
                        tag=f"out-{mode}")
        csf_ttmc_matricized(
            trees.tree_for(mode), factors, mode, out=out, workspace=pool,
            kernel=kernel,
        )
