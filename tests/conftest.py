"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SparseTensor
from repro.util.linalg import random_orthonormal


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def _random_tensor(shape, nnz, seed) -> SparseTensor:
    gen = np.random.default_rng(seed)
    indices = np.column_stack(
        [gen.integers(0, s, size=nnz, dtype=np.int64) for s in shape]
    )
    values = gen.standard_normal(nnz)
    return SparseTensor(indices, values, shape, sum_duplicates=True)


@pytest.fixture
def small_tensor_3d() -> SparseTensor:
    """A 3-mode sparse tensor small enough to densify in every test."""
    return _random_tensor((20, 15, 12), 300, seed=7)


@pytest.fixture
def small_tensor_4d() -> SparseTensor:
    """A 4-mode sparse tensor small enough to densify in every test."""
    return _random_tensor((10, 9, 8, 7), 250, seed=11)


@pytest.fixture
def medium_tensor_3d() -> SparseTensor:
    """A 3-mode tensor used by the parallel / distributed integration tests."""
    return _random_tensor((60, 50, 40), 4000, seed=23)


@pytest.fixture
def factors_3d(small_tensor_3d) -> list:
    """Orthonormal factor matrices matching ``small_tensor_3d`` (ranks 5,4,3)."""
    ranks = (5, 4, 3)
    return [
        random_orthonormal(size, rank, seed=100 + i)
        for i, (size, rank) in enumerate(zip(small_tensor_3d.shape, ranks))
    ]


@pytest.fixture
def factors_4d(small_tensor_4d) -> list:
    ranks = (3, 3, 2, 2)
    return [
        random_orthonormal(size, rank, seed=200 + i)
        for i, (size, rank) in enumerate(zip(small_tensor_4d.shape, ranks))
    ]
