"""Tests for the simulated MPI substrate (communicator, collectives, clocks, machine)."""

import numpy as np
import pytest

from repro.parallel.model import PhaseWork
from repro.simmpi import (
    BGQ_MACHINE,
    CommStats,
    CommWorld,
    LogicalClock,
    MachineModel,
    SPMDError,
    payload_nbytes,
    run_spmd,
)


class TestPayloadSize:
    def test_ndarray(self):
        assert payload_nbytes(np.zeros(10)) == 80

    def test_scalar_and_none(self):
        assert payload_nbytes(3.0) == 8
        assert payload_nbytes(None) == 0

    def test_containers(self):
        assert payload_nbytes([np.zeros(2), np.zeros(3)]) == 40
        assert payload_nbytes({"a": np.zeros(4)}) > 32


class TestPointToPoint:
    def test_ring_exchange(self):
        def program(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(np.array([comm.rank], dtype=float), dest=right, tag=1)
            received = comm.recv(source=left, tag=1)
            return float(received[0])

        result = run_spmd(program, 5)
        assert result.values == [4.0, 0.0, 1.0, 2.0, 3.0]

    def test_tag_matching(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("a", dest=1, tag=10)
                comm.send("b", dest=1, tag=20)
                return None
            if comm.rank == 1:
                second = comm.recv(source=0, tag=20)
                first = comm.recv(source=0, tag=10)
                return (first, second)
            return None

        result = run_spmd(program, 2)
        assert result.values[1] == ("a", "b")

    def test_fifo_per_source_and_tag(self):
        def program(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, dest=1, tag=3)
                return None
            return [comm.recv(source=0, tag=3) for _ in range(5)]

        result = run_spmd(program, 2)
        assert result.values[1] == [0, 1, 2, 3, 4]

    def test_stats_recorded(self):
        def program(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100), dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)
            comm.barrier()
            return comm.stats.snapshot()

        result = run_spmd(program, 2)
        assert result.values[0]["bytes_sent"] == 800
        assert result.values[1]["bytes_received"] == 800
        assert result.values[1]["messages_received"] == 1

    def test_invalid_destination(self):
        def program(comm):
            comm.send(1, dest=99)

        with pytest.raises(SPMDError):
            run_spmd(program, 2)


class TestCollectives:
    def test_allreduce_sum(self):
        def program(comm):
            return comm.allreduce(np.full(3, float(comm.rank)))

        result = run_spmd(program, 4)
        for value in result.values:
            assert np.allclose(value, 6.0)

    def test_allreduce_max_min(self):
        def program(comm):
            mx = comm.allreduce(np.array([float(comm.rank)]), op="max")
            mn = comm.allreduce(np.array([float(comm.rank)]), op="min")
            return (float(mx[0]), float(mn[0]))

        result = run_spmd(program, 3)
        assert all(v == (2.0, 0.0) for v in result.values)

    def test_allgather(self):
        def program(comm):
            return comm.allgather(comm.rank * 10)

        result = run_spmd(program, 4)
        assert all(v == [0, 10, 20, 30] for v in result.values)

    def test_bcast(self):
        def program(comm):
            payload = {"data": np.arange(4)} if comm.rank == 2 else None
            out = comm.bcast(payload, root=2)
            return int(out["data"].sum())

        result = run_spmd(program, 4)
        assert result.values == [6, 6, 6, 6]

    def test_alltoall(self):
        def program(comm):
            sendbuf = [f"{comm.rank}->{d}" for d in range(comm.size)]
            return comm.alltoall(sendbuf)

        result = run_spmd(program, 3)
        assert result.values[1] == ["0->1", "1->1", "2->1"]

    def test_gather(self):
        def program(comm):
            out = comm.gather(comm.rank + 1, root=0)
            return out

        result = run_spmd(program, 3)
        assert result.values[0] == [1, 2, 3]
        assert result.values[1] is None

    def test_reduce(self):
        def program(comm):
            return comm.reduce(np.array([1.0]), root=1)

        result = run_spmd(program, 4)
        assert result.values[0] is None
        assert np.allclose(result.values[1], 4.0)

    def test_repeated_collectives_no_crosstalk(self):
        def program(comm):
            totals = []
            for i in range(5):
                totals.append(float(comm.allreduce(np.array([float(i)]))[0]))
            return totals

        result = run_spmd(program, 3)
        assert result.values[0] == [0.0, 3.0, 6.0, 9.0, 12.0]

    def test_single_rank_world(self):
        def program(comm):
            assert comm.size == 1
            return float(comm.allreduce(np.array([5.0]))[0])

        assert run_spmd(program, 1).values == [5.0]

    def test_alltoall_wrong_length(self):
        def program(comm):
            comm.alltoall([1])

        with pytest.raises(SPMDError):
            run_spmd(program, 2)


class TestClocksAndErrors:
    def test_compute_advances_only_local_clock(self):
        def program(comm):
            if comm.rank == 0:
                comm.advance_compute(1.0)
            comm.barrier()
            return comm.clock.now

        result = run_spmd(program, 2)
        # After the barrier both clocks synchronize to the slowest rank.
        assert result.values[0] >= 1.0
        assert result.values[1] >= 1.0

    def test_clock_breakdown_categories(self):
        clock = LogicalClock(rank=0)
        clock.advance(1.0, "ttmc")
        clock.advance(0.5, "trsvd")
        clock.synchronize(2.0)
        assert clock.now == 2.0
        assert clock.breakdown()["ttmc"] == 1.0
        assert clock.breakdown()["wait"] == 0.5

    def test_exception_in_one_rank_raises_spmderror(self):
        def program(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 exploded")
            comm.barrier()

        with pytest.raises(SPMDError, match="rank 1"):
            run_spmd(program, 3)

    def test_commstats_reset(self):
        stats = CommStats(rank=0)
        stats.record_send(1, 100)
        stats.record_collective(50)
        stats.reset()
        assert stats.total_bytes == 0
        assert stats.messages_sent == 0


class TestMachineModel:
    def test_message_time_monotonic(self):
        assert BGQ_MACHINE.message_time(10_000) > BGQ_MACHINE.message_time(100)

    def test_collective_time_grows_with_ranks(self):
        small = BGQ_MACHINE.collective_time("allreduce", 800, 4)
        large = BGQ_MACHINE.collective_time("allreduce", 800, 64)
        assert large > small

    def test_single_rank_collective_free(self):
        assert BGQ_MACHINE.collective_time("allreduce", 800, 1) == 0.0
        assert BGQ_MACHINE.collective_volume("allgather", 800, 1) == 0

    def test_unknown_collective(self):
        with pytest.raises(ValueError):
            BGQ_MACHINE.collective_time("gossip", 10, 4)
        with pytest.raises(ValueError):
            BGQ_MACHINE.collective_volume("gossip", 10, 4)

    def test_compute_time_uses_node_model(self):
        work = PhaseWork(flops=1e9)
        t32 = BGQ_MACHINE.compute_time(work)
        t1 = BGQ_MACHINE.compute_time(work, threads=1)
        assert t32 < t1

    def test_with_overrides(self):
        faster = BGQ_MACHINE.with_overrides(network_bandwidth=1e12)
        assert faster.message_time(10**6) < BGQ_MACHINE.message_time(10**6)

    def test_world_reset_helpers(self):
        world = CommWorld(2, machine=MachineModel())
        world.stats[0].record_send(1, 10)
        world.clocks[0].advance(1.0)
        world.reset_stats()
        world.reset_clocks()
        assert world.stats[0].total_bytes == 0
        assert world.max_clock() == 0.0
