"""Tests for the MET, CP-ALS and dense Tucker baselines."""

import numpy as np
import pytest

from repro.baselines import (
    cp_als,
    dense_hooi,
    dense_hosvd,
    dense_st_hosvd,
    met_hooi,
    mttkrp,
)
from repro.core import HOOIOptions, SparseTensor, hooi
from repro.data import random_tucker_tensor


class TestMET:
    def test_met_matches_nonzero_based_hooi(self, medium_tensor_3d):
        options = HOOIOptions(max_iterations=3, init="random", seed=0)
        ours = hooi(medium_tensor_3d, 5, options)
        met = met_hooi(medium_tensor_3d, 5, options)
        assert np.allclose(ours.fit_history, met.fit_history, atol=1e-9)

    def test_met_4d(self, small_tensor_4d):
        options = HOOIOptions(max_iterations=2, init="random", seed=1)
        ours = hooi(small_tensor_4d, 3, options)
        met = met_hooi(small_tensor_4d, 3, options)
        assert np.allclose(ours.fit_history, met.fit_history, atol=1e-9)

    def test_met_factors_orthonormal(self, small_tensor_3d):
        result = met_hooi(small_tensor_3d, (4, 3, 3), HOOIOptions(max_iterations=2))
        for f in result.decomposition.factors:
            assert np.allclose(f.T @ f, np.eye(f.shape[1]), atol=1e-8)

    def test_met_reports_timings(self, small_tensor_3d):
        result = met_hooi(small_tensor_3d, 3, HOOIOptions(max_iterations=2))
        assert result.timings["ttmc"] > 0


class TestMTTKRP:
    def test_matches_dense_reference(self, small_tensor_3d, rng):
        rank = 4
        factors = [rng.standard_normal((s, rank)) for s in small_tensor_3d.shape]
        dense = small_tensor_3d.to_dense()
        for mode in range(3):
            ours = mttkrp(small_tensor_3d, factors, mode)
            # Dense reference: unfold(X, n) @ khatri_rao(other factors reversed)
            others = [factors[m] for m in range(3) if m != mode]
            kr = np.zeros((others[0].shape[0] * others[1].shape[0], rank))
            for r in range(rank):
                kr[:, r] = np.kron(others[1][:, r], others[0][:, r])
            from repro.core import unfold

            reference = unfold(dense, mode) @ kr
            assert np.allclose(ours, reference, atol=1e-9)

    def test_empty_tensor(self, rng):
        t = SparseTensor.empty((5, 6, 7))
        factors = [rng.standard_normal((s, 3)) for s in t.shape]
        assert np.allclose(mttkrp(t, factors, 0), 0.0)


class TestCPALS:
    def test_fit_non_decreasing(self, medium_tensor_3d):
        result = cp_als(medium_tensor_3d, 4, max_iterations=8, seed=0)
        fits = np.array(result.fit_history)
        assert np.all(np.diff(fits) >= -1e-6)

    def test_recovers_rank_one_tensor(self):
        rng = np.random.default_rng(4)
        a, b, c = rng.random(12) + 0.5, rng.random(10) + 0.5, rng.random(8) + 0.5
        dense = np.einsum("i,j,k->ijk", a, b, c)
        tensor = SparseTensor.from_dense(dense)
        result = cp_als(tensor, 1, max_iterations=20, seed=0)
        assert result.fit > 0.999

    def test_reconstruct_entries_shape(self, small_tensor_3d):
        result = cp_als(small_tensor_3d, 3, max_iterations=3)
        values = result.reconstruct_entries(small_tensor_3d.indices)
        assert values.shape == (small_tensor_3d.nnz,)

    def test_norm_positive(self, small_tensor_3d):
        result = cp_als(small_tensor_3d, 3, max_iterations=3)
        assert result.norm() > 0

    def test_invalid_rank(self, small_tensor_3d):
        with pytest.raises((TypeError, ValueError)):
            cp_als(small_tensor_3d, 0)

    def test_converged_flag_on_easy_problem(self):
        truth = random_tucker_tensor((10, 9, 8), 1, seed=2)
        tensor = SparseTensor.from_dense(truth.to_dense())
        result = cp_als(tensor, 1, max_iterations=50, tolerance=1e-7, seed=0)
        assert result.converged


class TestDenseBaselines:
    def test_hosvd_exact_on_lowrank(self):
        truth = random_tucker_tensor((12, 10, 8), (3, 2, 2), seed=0)
        dense = truth.to_dense()
        model = dense_hosvd(dense, (3, 2, 2))
        assert np.allclose(model.to_dense(), dense, atol=1e-8)

    def test_st_hosvd_exact_on_lowrank(self):
        truth = random_tucker_tensor((12, 10, 8), (3, 2, 2), seed=1)
        dense = truth.to_dense()
        model = dense_st_hosvd(dense, (3, 2, 2))
        assert np.allclose(model.to_dense(), dense, atol=1e-8)

    def test_dense_hooi_improves_on_hosvd(self, rng):
        dense = rng.standard_normal((10, 9, 8))
        ranks = (3, 3, 3)
        hosvd_model = dense_hosvd(dense, ranks)
        hooi_model = dense_hooi(dense, ranks, max_iterations=10)
        err_hosvd = np.linalg.norm(dense - hosvd_model.to_dense())
        err_hooi = np.linalg.norm(dense - hooi_model.to_dense())
        assert err_hooi <= err_hosvd + 1e-9

    def test_dense_hooi_matches_sparse_hooi(self, small_tensor_3d):
        dense = small_tensor_3d.to_dense()
        ranks = (4, 3, 3)
        dense_model = dense_hooi(dense, ranks, max_iterations=6)
        sparse_result = hooi(
            small_tensor_3d, ranks, HOOIOptions(max_iterations=6, init="hosvd")
        )
        err_dense = np.linalg.norm(dense - dense_model.to_dense())
        err_sparse = np.linalg.norm(dense - sparse_result.decomposition.to_dense())
        assert np.isclose(err_dense, err_sparse, rtol=1e-2)

    def test_dense_hooi_invalid_init(self, rng):
        with pytest.raises(ValueError):
            dense_hooi(rng.standard_normal((4, 4, 4)), 2, init="bogus")

    def test_hooi_factors_orthonormal(self, rng):
        model = dense_hooi(rng.standard_normal((8, 7, 6)), (2, 2, 2))
        for f in model.factors:
            assert np.allclose(f.T @ f, np.eye(f.shape[1]), atol=1e-8)
