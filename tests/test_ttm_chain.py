"""Unit tests for sparse TTM, TTM chains and TTV (the MET-style building blocks)."""

import numpy as np
import pytest

from repro.core import (
    SparseTensor,
    dense_ttm,
    dense_ttm_chain,
    dense_ttv,
    sparse_ttm,
    sparse_ttm_chain,
    sparse_ttv,
    unfold,
)


class TestSparseTTM:
    def test_single_ttm_matches_dense(self, small_tensor_3d, factors_3d):
        dense = small_tensor_3d.to_dense()
        semi = sparse_ttm(small_tensor_3d, factors_3d[1], 1)
        expected = dense_ttm(dense, factors_3d[1], 1, transpose=True)
        # Rebuild a dense array from the semi-sparse result.
        rebuilt = np.zeros((dense.shape[0], factors_3d[1].shape[1], dense.shape[2]))
        for (i, k), block in zip(semi.indices, semi.blocks):
            rebuilt[i, :, k] += block
        assert np.allclose(rebuilt, expected)

    def test_merge_reduces_duplicates(self, small_tensor_3d, factors_3d):
        merged = sparse_ttm(small_tensor_3d, factors_3d[0], 0, merge=True)
        unmerged = sparse_ttm(small_tensor_3d, factors_3d[0], 0, merge=False)
        assert merged.nnz <= unmerged.nnz
        assert unmerged.nnz == small_tensor_3d.nnz

    def test_wrong_matrix_shape_raises(self, small_tensor_3d):
        with pytest.raises(ValueError):
            sparse_ttm(small_tensor_3d, np.ones((3, 2)), 0)

    def test_chain_matches_ttmc(self, small_tensor_3d, factors_3d):
        dense = small_tensor_3d.to_dense()
        for mode in range(3):
            semi = sparse_ttm_chain(small_tensor_3d, factors_3d, skip=mode)
            expected = unfold(
                dense_ttm_chain(dense, factors_3d, skip=mode, transpose=True), mode
            )
            assert np.allclose(semi.matricize_remaining(mode), expected)

    def test_chain_matches_ttmc_4d(self, small_tensor_4d, factors_4d):
        dense = small_tensor_4d.to_dense()
        for mode in range(4):
            semi = sparse_ttm_chain(small_tensor_4d, factors_4d, skip=mode)
            expected = unfold(
                dense_ttm_chain(dense, factors_4d, skip=mode, transpose=True), mode
            )
            assert np.allclose(semi.matricize_remaining(mode), expected)

    def test_chain_all_modes(self, small_tensor_3d, factors_3d):
        semi = sparse_ttm_chain(small_tensor_3d, factors_3d)
        # Multiplying every mode leaves a single dense block equal to vec(core).
        dense_core = dense_ttm_chain(
            small_tensor_3d.to_dense(), factors_3d, transpose=True
        )
        assert semi.blocks.shape[1] == dense_core.size
        assert np.allclose(semi.blocks.sum(axis=0), unfold(dense_core[None], 0)[0])

    def test_chain_missing_factor_raises(self, small_tensor_3d, factors_3d):
        with pytest.raises(ValueError):
            sparse_ttm_chain(small_tensor_3d, [factors_3d[0], None, factors_3d[2]], skip=0)

    def test_matricize_remaining_requires_single_mode(self, small_tensor_3d, factors_3d):
        semi = sparse_ttm(small_tensor_3d, factors_3d[2], 2)
        with pytest.raises(ValueError):
            semi.matricize_remaining(0)


class TestSparseTTV:
    def test_ttv_matches_dense(self, small_tensor_3d, rng):
        v = rng.standard_normal(small_tensor_3d.shape[1])
        result = sparse_ttv(small_tensor_3d, v, 1)
        expected = dense_ttv(small_tensor_3d.to_dense(), v, 1)
        assert np.allclose(result.to_dense(), expected)

    def test_ttv_wrong_length(self, small_tensor_3d):
        with pytest.raises(ValueError):
            sparse_ttv(small_tensor_3d, np.ones(3), 1)

    def test_ttv_reduces_order(self, small_tensor_4d, rng):
        v = rng.standard_normal(small_tensor_4d.shape[0])
        out = sparse_ttv(small_tensor_4d, v, 0)
        assert out.order == 3

    def test_ttv_order_one_raises(self):
        t = SparseTensor(np.array([[0]]), np.array([1.0]), (3,))
        with pytest.raises(ValueError):
            sparse_ttv(t, np.ones(3), 0)
