"""Tests for the hypergraph data structure, metrics and the multilevel partitioner."""

import numpy as np
import pytest

from repro.partition import (
    Hypergraph,
    PartitionerOptions,
    connectivity_cutsize,
    cut_nets,
    evaluate_partition,
    load_imbalance,
    max_avg,
    multilevel_bisect,
    part_weights,
    partition_hypergraph,
)


def simple_hypergraph():
    """Two well-separated clusters {0,1,2} and {3,4,5} joined by one net."""
    nets = [
        [0, 1], [1, 2], [0, 2],      # cluster A
        [3, 4], [4, 5], [3, 5],      # cluster B
        [2, 3],                      # bridge
    ]
    return Hypergraph(6, nets)


class TestHypergraph:
    def test_basic_counts(self):
        hg = simple_hypergraph()
        assert hg.num_vertices == 6
        assert hg.num_nets == 7
        assert hg.num_pins == 14

    def test_net_access(self):
        hg = simple_hypergraph()
        assert set(hg.net(6)) == {2, 3}
        assert np.array_equal(hg.net_sizes(), np.full(7, 2))

    def test_vertex_adjacency(self):
        hg = simple_hypergraph()
        assert set(hg.nets_of_vertex(2)) == {1, 2, 6}
        assert hg.vertex_degrees()[2] == 3

    def test_default_weights_and_costs(self):
        hg = simple_hypergraph()
        assert hg.total_vertex_weight == 6
        assert np.all(hg.net_costs == 1)

    def test_custom_weights(self):
        hg = Hypergraph(3, [[0, 1], [1, 2]], vertex_weights=np.array([5, 1, 1]),
                        net_costs=np.array([2, 7]))
        assert hg.total_vertex_weight == 7
        assert hg.net_costs[1] == 7

    def test_csr_constructor(self):
        ptr = np.array([0, 2, 4])
        pins = np.array([0, 1, 1, 2])
        hg = Hypergraph(3, (ptr, pins))
        assert hg.num_nets == 2
        assert set(hg.net(1)) == {1, 2}

    def test_invalid_pin_raises(self):
        with pytest.raises(ValueError):
            Hypergraph(2, [[0, 5]])

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            Hypergraph(3, [[0, 1]], vertex_weights=np.ones(2, dtype=int))

    def test_restrict_to_vertices(self):
        hg = simple_hypergraph()
        sub, ids = hg.restrict_to_vertices(np.array([0, 1, 2]))
        assert sub.num_vertices == 3
        # The bridge net and cluster-B nets disappear (fewer than 2 pins).
        assert sub.num_nets == 3

    def test_contract_merges_and_drops(self):
        hg = simple_hypergraph()
        clusters = np.array([0, 0, 0, 1, 1, 1])
        coarse = hg.contract(clusters)
        assert coarse.num_vertices == 2
        # Intra-cluster nets collapse to single pins and disappear; only the
        # bridge net remains connecting the two coarse vertices.
        assert coarse.num_nets == 1
        assert coarse.total_vertex_weight == 6

    def test_contract_merges_identical_nets_costs(self):
        hg = Hypergraph(4, [[0, 1], [2, 3], [0, 1]], net_costs=np.array([1, 1, 3]))
        coarse = hg.contract(np.array([0, 1, 2, 3]))  # identity contraction
        # The two identical nets {0,1} merge with cost 4.
        assert coarse.num_nets == 2
        assert sorted(coarse.net_costs.tolist()) == [1, 4]


class TestMetrics:
    def test_part_weights(self):
        hg = simple_hypergraph()
        parts = np.array([0, 0, 0, 1, 1, 1])
        assert np.array_equal(part_weights(hg, parts, 2), [3, 3])

    def test_cutsize_of_clean_split(self):
        hg = simple_hypergraph()
        parts = np.array([0, 0, 0, 1, 1, 1])
        assert connectivity_cutsize(hg, parts, 2) == 1   # only the bridge net
        assert cut_nets(hg, parts, 2) == 1

    def test_cutsize_all_in_one_part(self):
        hg = simple_hypergraph()
        assert connectivity_cutsize(hg, np.zeros(6, dtype=int), 2) == 0

    def test_connectivity_minus_one_counts_extra_parts(self):
        hg = Hypergraph(3, [[0, 1, 2]])
        assert connectivity_cutsize(hg, np.array([0, 1, 2]), 3) == 2

    def test_net_costs_scale_cut(self):
        hg = Hypergraph(2, [[0, 1]], net_costs=np.array([5]))
        assert connectivity_cutsize(hg, np.array([0, 1]), 2) == 5

    def test_load_imbalance(self):
        assert load_imbalance(np.array([2, 2, 2])) == 0.0
        assert np.isclose(load_imbalance(np.array([4, 2, 0])), 1.0)

    def test_max_avg(self):
        mx, avg = max_avg(np.array([1.0, 3.0]))
        assert mx == 3.0 and avg == 2.0

    def test_evaluate_partition_validation(self):
        hg = simple_hypergraph()
        with pytest.raises(ValueError):
            evaluate_partition(hg, np.zeros(4, dtype=int), 2)
        with pytest.raises(ValueError):
            evaluate_partition(hg, np.full(6, 9), 2)


class TestMultilevel:
    def test_bisect_finds_natural_split(self):
        hg = simple_hypergraph()
        parts = multilevel_bisect(hg, options=PartitionerOptions(seed=1))
        assert connectivity_cutsize(hg, parts, 2) == 1
        assert len(set(parts[:3])) == 1 and len(set(parts[3:])) == 1

    def test_kway_partition_valid(self, rng):
        nets = [rng.choice(200, size=rng.integers(2, 6), replace=False)
                for _ in range(300)]
        hg = Hypergraph(200, nets)
        parts = partition_hypergraph(hg, 8, options=PartitionerOptions(seed=0))
        assert parts.shape == (200,)
        assert set(np.unique(parts)) <= set(range(8))
        quality = evaluate_partition(hg, parts, 8)
        assert quality.imbalance < 0.25

    def test_kway_beats_random_cut(self, rng):
        # Planted block structure: 8 groups of 40 vertices with dense
        # intra-group nets and sparse inter-group nets.
        groups = 8
        per = 40
        nets = []
        for g in range(groups):
            base = g * per
            for _ in range(120):
                nets.append(base + rng.choice(per, size=3, replace=False))
        for _ in range(40):
            nets.append(rng.choice(groups * per, size=3, replace=False))
        hg = Hypergraph(groups * per, nets)
        parts = partition_hypergraph(hg, groups, options=PartitionerOptions(seed=0))
        random_parts = rng.integers(0, groups, groups * per)
        ours = connectivity_cutsize(hg, parts, groups)
        theirs = connectivity_cutsize(hg, random_parts, groups)
        assert ours < theirs / 3

    def test_non_power_of_two_parts(self, rng):
        nets = [rng.choice(60, size=3, replace=False) for _ in range(100)]
        hg = Hypergraph(60, nets)
        parts = partition_hypergraph(hg, 5, options=PartitionerOptions(seed=0))
        assert set(np.unique(parts)) == set(range(5))
        assert evaluate_partition(hg, parts, 5).imbalance < 0.35

    def test_single_part(self):
        hg = simple_hypergraph()
        assert np.all(partition_hypergraph(hg, 1) == 0)

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            partition_hypergraph(simple_hypergraph(), 0)

    def test_deterministic_with_seed(self, rng):
        nets = [rng.choice(80, size=3, replace=False) for _ in range(150)]
        hg = Hypergraph(80, nets)
        a = partition_hypergraph(hg, 4, options=PartitionerOptions(seed=7))
        b = partition_hypergraph(hg, 4, options=PartitionerOptions(seed=7))
        assert np.array_equal(a, b)

    def test_weighted_vertices_balance(self, rng):
        weights = rng.integers(1, 20, size=100).astype(np.int64)
        nets = [rng.choice(100, size=3, replace=False) for _ in range(200)]
        hg = Hypergraph(100, nets, vertex_weights=weights)
        parts = partition_hypergraph(hg, 4, options=PartitionerOptions(seed=0))
        w = part_weights(hg, parts, 4)
        assert load_imbalance(w) < 0.4
