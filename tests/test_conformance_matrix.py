"""The cross-backend conformance matrix — the spec of what composes.

One parametrized suite sweeps every point of

    grain ∈ {single-node, coarse, fine}
  × execution ∈ {sequential, thread}
  × ttmc_strategy ∈ {per-mode, dimtree}
  × trsvd_method ∈ {lanczos, gram, randomized}
  × dtype ∈ {float32, float64}
  × tensor_format ∈ {coo, csf}
  × kernel ∈ {numpy, numba}

on one small planted low-rank tensor (well-separated spectrum, so factor
parity is meaningful — on a near-degenerate spectrum individual singular
vectors rotate freely even though the fit agrees).

*Supported* combinations assert 1e-10 fit **and** factor parity against the
sequential float64 per-mode oracle of the same ``trsvd_method`` (float32
within 1e-3); the execution / grain / strategy / format / kernel axes must
never change the numbers.  *Unsupported* combinations assert
:class:`ValueError` with an actionable message.  Three composition rules
carve the matrix: the distributed grains support only the Lanczos TRSVD,
``tensor_format="csf"`` replaces the TTMc evaluation strategy, so it
excludes ``ttmc_strategy="dimtree"`` (and ``execution="process"``, asserted
separately alongside the other process rejections), and ``kernel="numba"``
serves only the per-mode COO/CSF sweeps — the dimension tree's subset-fiber
kernels have no compiled implementation.
:meth:`repro.core.hooi.HOOIOptions.validate` is the single implementation of
these rules; this file is their executable spec — extend both together when
adding an option value (see CONTRIBUTING.md).

Without numba installed, the numba column runs through the registry's
interpreted-fallback hook (``REPRO_KERNEL_FORCE_PYTHON``) — the exact loop
bodies numba would compile, so the parity contract is still exercised.
"""

import os
from itertools import product

import numpy as np
import pytest

from repro.core import HOOIOptions, hooi
from repro.data import planted_lowrank_tensor
from repro.distributed import distributed_hooi
from repro.kernels import numba_available
from repro.partition import make_partition

SHAPE = (16, 12, 10)
RANKS = (3, 3, 2)
NNZ = 600
ITERATIONS = 2

GRAINS = ("single-node", "coarse", "fine")
EXECUTIONS = ("sequential", "thread")
STRATEGIES = ("per-mode", "dimtree")
TRSVD_METHODS = ("lanczos", "gram", "randomized")
DTYPES = ("float64", "float32")
FORMATS = ("coo", "csf")
KERNELS = ("numpy", "numba")

#: Partitioning strategy realizing each distributed grain.
GRAIN_PARTITION = {"coarse": "coarse-bl", "fine": "fine-rd"}


def combo_supported(
    grain: str, strategy: str, trsvd_method: str, fmt: str, kernel: str
) -> bool:
    """The composition rule of the matrix (mirrors HOOIOptions.validate)."""
    if fmt == "csf" and strategy == "dimtree":
        return False  # two competing TTMc strategies — pick one
    if kernel == "numba" and strategy == "dimtree":
        return False  # no compiled subset-fiber kernels
    if grain == "single-node":
        return True
    return trsvd_method == "lanczos"  # only TRSVD with a distributed impl


def unsupported_match(
    grain: str, strategy: str, trsvd_method: str, fmt: str, kernel: str
) -> str:
    """Substring the rejection message must contain (csf×dimtree fires first)."""
    if fmt == "csf" and strategy == "dimtree":
        return "dimtree"
    if kernel == "numba" and strategy == "dimtree":
        return "numba"
    return "lanczos"


ALL_COMBOS = list(
    product(GRAINS, EXECUTIONS, STRATEGIES, TRSVD_METHODS, DTYPES, FORMATS, KERNELS)
)
SUPPORTED = [c for c in ALL_COMBOS if combo_supported(c[0], c[2], c[3], c[5], c[6])]
UNSUPPORTED = [
    c for c in ALL_COMBOS if not combo_supported(c[0], c[2], c[3], c[5], c[6])
]


def combo_id(combo) -> str:
    return "-".join(combo)


@pytest.fixture(scope="module", autouse=True)
def _kernel_tier_fallback():
    """Serve the numba column interpreted when numba is not installed.

    The registry's ``REPRO_KERNEL_FORCE_PYTHON`` hook swaps the compiled
    dispatchers for the identical interpreted loop bodies, so the kernel
    axis of the matrix is exercised on every CI leg; with numba present the
    hook stays off and the column really compiles.
    """
    if numba_available() or os.environ.get("REPRO_KERNEL_FORCE_PYTHON"):
        yield
        return
    os.environ["REPRO_KERNEL_FORCE_PYTHON"] = "1"
    try:
        yield
    finally:
        os.environ.pop("REPRO_KERNEL_FORCE_PYTHON", None)


@pytest.fixture(scope="module")
def tensor():
    tensor, _ = planted_lowrank_tensor(SHAPE, RANKS, NNZ, seed=3)
    return tensor


@pytest.fixture(scope="module")
def partitions(tensor):
    return {
        grain: make_partition(tensor, 3, strategy, seed=0)
        for grain, strategy in GRAIN_PARTITION.items()
    }


@pytest.fixture(scope="module")
def oracles(tensor):
    """Sequential float64 per-mode COO runs, one per trsvd_method.

    The trsvd_method axis legitimately changes the numerics (different
    solvers), so each method is its own oracle; every *other* axis must
    reproduce that oracle exactly.
    """
    return {
        method: hooi(
            tensor,
            RANKS,
            HOOIOptions(
                max_iterations=ITERATIONS, init="random", seed=0,
                trsvd_method=method,
            ),
        )
        for method in TRSVD_METHODS
    }


def build_options(
    execution, strategy, trsvd_method, dtype, fmt, kernel="numpy"
) -> HOOIOptions:
    return HOOIOptions(
        max_iterations=ITERATIONS,
        init="random",
        seed=0,
        execution=execution,
        num_workers=2 if execution != "sequential" else 1,
        ttmc_strategy=strategy,
        trsvd_method=trsvd_method,
        dtype=dtype,
        tensor_format=fmt,
        kernel=kernel,
    )


def run_combo(tensor, partitions, grain, options):
    if grain == "single-node":
        result = hooi(tensor, RANKS, options)
        return result.fit_history, result.decomposition.factors
    result = distributed_hooi(tensor, RANKS, partitions[grain], options)
    return result.fit_history, result.decomposition.factors


class TestSupportedCombinations:
    @pytest.mark.parametrize(
        "grain,execution,strategy,trsvd_method,dtype,fmt,kernel",
        SUPPORTED,
        ids=[combo_id(c) for c in SUPPORTED],
    )
    def test_parity_with_sequential_oracle(
        self, tensor, partitions, oracles, grain, execution, strategy,
        trsvd_method, dtype, fmt, kernel,
    ):
        options = build_options(
            execution, strategy, trsvd_method, dtype, fmt, kernel
        )
        fits, factors = run_combo(tensor, partitions, grain, options)
        oracle = oracles[trsvd_method]
        tol = 1e-10 if dtype == "float64" else 1e-3
        assert np.allclose(fits, oracle.fit_history, atol=tol)
        for ours, ref in zip(factors, oracle.decomposition.factors):
            assert np.allclose(
                np.asarray(ours, dtype=np.float64), ref, atol=tol
            )


class TestUnsupportedCombinations:
    @pytest.mark.parametrize(
        "grain,execution,strategy,trsvd_method,dtype,fmt,kernel",
        UNSUPPORTED,
        ids=[combo_id(c) for c in UNSUPPORTED],
    )
    def test_fails_fast_with_actionable_message(
        self, tensor, partitions, grain, execution, strategy, trsvd_method,
        dtype, fmt, kernel,
    ):
        options = build_options(
            execution, strategy, trsvd_method, dtype, fmt, kernel
        )
        match = unsupported_match(grain, strategy, trsvd_method, fmt, kernel)
        with pytest.raises(ValueError, match=match):
            run_combo(tensor, partitions, grain, options)

    def test_numba_without_numba_is_actionable(self, monkeypatch):
        """kernel='numba' on a numba-less interpreter names the fix."""
        monkeypatch.delenv("REPRO_KERNEL_FORCE_PYTHON", raising=False)
        if numba_available():
            pytest.skip("numba is installed; the availability error cannot fire")
        with pytest.raises(ValueError, match="pip install numba"):
            HOOIOptions(kernel="numba").validate()

    @pytest.mark.parametrize("grain", ("coarse", "fine"))
    def test_distributed_rejects_process_execution(
        self, tensor, partitions, grain
    ):
        """One process pool per simulated rank would oversubscribe the node."""
        options = HOOIOptions(
            max_iterations=1, execution="process", num_workers=2
        )
        with pytest.raises(ValueError, match="oversubscribe"):
            distributed_hooi(tensor, RANKS, partitions[grain], options)

    def test_distributed_rejects_dense_trsvd(self, tensor, partitions):
        options = HOOIOptions(max_iterations=1, trsvd_method="dense")
        with pytest.raises(ValueError, match="lanczos"):
            distributed_hooi(tensor, RANKS, partitions["fine"], options)

    @pytest.mark.parametrize("grain", GRAINS)
    def test_csf_rejects_process_execution(self, tensor, partitions, grain):
        """The CSF level arrays are not in the shared-memory pool yet."""
        options = HOOIOptions(
            max_iterations=1, tensor_format="csf", execution="process",
            num_workers=2,
        )
        with pytest.raises(ValueError, match="process"):
            run_combo(tensor, partitions, grain, options)


class TestUnknownOptionValues:
    """Unknown axis values fail in every context, via the one validator."""

    @pytest.mark.parametrize(
        "field,value,match",
        [
            ("trsvd_method", "qr", "trsvd_method"),
            ("ttmc_strategy", "kd-tree", "ttmc_strategy"),
            ("execution", "gpu", "execution"),
            ("dtype", "float16", "dtype"),
            ("tensor_format", "parquet", "tensor_format"),
            ("kernel", "fortran", "kernel"),
            ("num_workers", 0, "num_workers"),
            ("max_iterations", 0, "max_iterations"),
        ],
    )
    def test_rejected_single_node(self, tensor, field, value, match):
        options = HOOIOptions(**{field: value})
        with pytest.raises(ValueError, match=match):
            hooi(tensor, RANKS, options)

    @pytest.mark.parametrize(
        "field,value,match",
        [
            ("trsvd_method", "qr", "trsvd_method"),
            ("ttmc_strategy", "kd-tree", "ttmc_strategy"),
            ("execution", "gpu", "execution"),
            ("dtype", "float16", "dtype"),
            ("tensor_format", "parquet", "tensor_format"),
        ],
    )
    def test_rejected_distributed(self, tensor, partitions, field, value, match):
        options = HOOIOptions(**{field: value})
        with pytest.raises(ValueError, match=match):
            distributed_hooi(tensor, RANKS, partitions["coarse"], options)

    def test_unknown_context_rejected(self):
        with pytest.raises(ValueError, match="context"):
            HOOIOptions().validate(context="multiverse")

    def test_validate_returns_options(self):
        options = HOOIOptions(execution="thread", num_workers=2)
        assert options.validate() is options
        assert options.validate(context="distributed") is options
