"""The cross-backend conformance matrix — the spec of what composes.

One parametrized suite sweeps every point of

    grain ∈ {single-node, coarse, fine}
  × execution ∈ {sequential, thread}
  × ttmc_strategy ∈ {per-mode, dimtree}
  × trsvd_method ∈ {lanczos, gram, randomized}
  × dtype ∈ {float32, float64}
  × tensor_format ∈ {coo, csf}
  × kernel ∈ {numpy, numba}

on one small planted low-rank tensor (well-separated spectrum, so factor
parity is meaningful — on a near-degenerate spectrum individual singular
vectors rotate freely even though the fit agrees).

*Supported* combinations assert 1e-10 fit **and** factor parity against the
sequential float64 per-mode oracle of the same ``trsvd_method`` (float32
within 1e-3); the execution / grain / strategy / format / kernel axes must
never change the numbers.  *Unsupported* combinations assert
:class:`ValueError` with an actionable message.  Two composition rules
carve the matrix: the distributed grains support only the Lanczos TRSVD,
and ``kernel="numba"`` serves only the per-mode COO/CSF sweeps — the
dimension tree's subset-fiber kernels have no compiled implementation
(the rejection names the missing entry points and why
``REPRO_KERNEL_FORCE_PYTHON`` cannot bridge them).  The former csf holes
are closed: ``tensor_format="csf"`` composes with
``ttmc_strategy="dimtree"`` (the tree's nodes are built over the shared
CSF tree's fiber subtrees) and with ``execution="process"`` (the CSF level
arrays ride the shared-memory arena; parity asserted in
:class:`TestCSFProcessParity` alongside the other real-worker-pool
checks).
:meth:`repro.core.hooi.HOOIOptions.validate` is the single implementation of
these rules; this file is their executable spec — extend both together when
adding an option value (see CONTRIBUTING.md).

Without numba installed, the numba column runs through the registry's
interpreted-fallback hook (``REPRO_KERNEL_FORCE_PYTHON``) — the exact loop
bodies numba would compile, so the parity contract is still exercised.
"""

import os
from itertools import product

import numpy as np
import pytest

from repro.core import HOOIOptions, hooi
from repro.data import planted_lowrank_tensor
from repro.distributed import distributed_hooi
from repro.kernels import numba_available
from repro.partition import make_partition

SHAPE = (16, 12, 10)
RANKS = (3, 3, 2)
NNZ = 600
ITERATIONS = 2

GRAINS = ("single-node", "coarse", "fine")
EXECUTIONS = ("sequential", "thread")
STRATEGIES = ("per-mode", "dimtree")
TRSVD_METHODS = ("lanczos", "gram", "randomized")
DTYPES = ("float64", "float32")
FORMATS = ("coo", "csf")
KERNELS = ("numpy", "numba")

#: Partitioning strategy realizing each distributed grain.
GRAIN_PARTITION = {"coarse": "coarse-bl", "fine": "fine-rd"}


def combo_supported(
    grain: str, strategy: str, trsvd_method: str, fmt: str, kernel: str
) -> bool:
    """The composition rule of the matrix (mirrors HOOIOptions.validate)."""
    if kernel == "numba" and strategy == "dimtree":
        return False  # no compiled subset-fiber kernels
    if grain == "single-node":
        return True
    return trsvd_method == "lanczos"  # only TRSVD with a distributed impl


def unsupported_match(
    grain: str, strategy: str, trsvd_method: str, fmt: str, kernel: str
) -> str:
    """Substring the rejection message must contain."""
    if kernel == "numba" and strategy == "dimtree":
        # The fail-fast must name the missing entry points and say why the
        # interpreted-fallback hook cannot serve them.
        return "REPRO_KERNEL_FORCE_PYTHON"
    return "lanczos"


ALL_COMBOS = list(
    product(GRAINS, EXECUTIONS, STRATEGIES, TRSVD_METHODS, DTYPES, FORMATS, KERNELS)
)
SUPPORTED = [c for c in ALL_COMBOS if combo_supported(c[0], c[2], c[3], c[5], c[6])]
UNSUPPORTED = [
    c for c in ALL_COMBOS if not combo_supported(c[0], c[2], c[3], c[5], c[6])
]


def combo_id(combo) -> str:
    return "-".join(combo)


@pytest.fixture(scope="module", autouse=True)
def _kernel_tier_fallback():
    """Serve the numba column interpreted when numba is not installed.

    The registry's ``REPRO_KERNEL_FORCE_PYTHON`` hook swaps the compiled
    dispatchers for the identical interpreted loop bodies, so the kernel
    axis of the matrix is exercised on every CI leg; with numba present the
    hook stays off and the column really compiles.
    """
    if numba_available() or os.environ.get("REPRO_KERNEL_FORCE_PYTHON"):
        yield
        return
    os.environ["REPRO_KERNEL_FORCE_PYTHON"] = "1"
    try:
        yield
    finally:
        os.environ.pop("REPRO_KERNEL_FORCE_PYTHON", None)


@pytest.fixture(scope="module")
def tensor():
    tensor, _ = planted_lowrank_tensor(SHAPE, RANKS, NNZ, seed=3)
    return tensor


@pytest.fixture(scope="module")
def partitions(tensor):
    return {
        grain: make_partition(tensor, 3, strategy, seed=0)
        for grain, strategy in GRAIN_PARTITION.items()
    }


@pytest.fixture(scope="module")
def oracles(tensor):
    """Sequential float64 per-mode COO runs, one per trsvd_method.

    The trsvd_method axis legitimately changes the numerics (different
    solvers), so each method is its own oracle; every *other* axis must
    reproduce that oracle exactly.
    """
    return {
        method: hooi(
            tensor,
            RANKS,
            HOOIOptions(
                max_iterations=ITERATIONS, init="random", seed=0,
                trsvd_method=method,
            ),
        )
        for method in TRSVD_METHODS
    }


def build_options(
    execution, strategy, trsvd_method, dtype, fmt, kernel="numpy"
) -> HOOIOptions:
    return HOOIOptions(
        max_iterations=ITERATIONS,
        init="random",
        seed=0,
        execution=execution,
        num_workers=2 if execution != "sequential" else 1,
        ttmc_strategy=strategy,
        trsvd_method=trsvd_method,
        dtype=dtype,
        tensor_format=fmt,
        kernel=kernel,
    )


def run_combo(tensor, partitions, grain, options):
    if grain == "single-node":
        result = hooi(tensor, RANKS, options)
        return result.fit_history, result.decomposition.factors
    result = distributed_hooi(tensor, RANKS, partitions[grain], options)
    return result.fit_history, result.decomposition.factors


class TestSupportedCombinations:
    @pytest.mark.parametrize(
        "grain,execution,strategy,trsvd_method,dtype,fmt,kernel",
        SUPPORTED,
        ids=[combo_id(c) for c in SUPPORTED],
    )
    def test_parity_with_sequential_oracle(
        self, tensor, partitions, oracles, grain, execution, strategy,
        trsvd_method, dtype, fmt, kernel,
    ):
        options = build_options(
            execution, strategy, trsvd_method, dtype, fmt, kernel
        )
        fits, factors = run_combo(tensor, partitions, grain, options)
        oracle = oracles[trsvd_method]
        tol = 1e-10 if dtype == "float64" else 1e-3
        assert np.allclose(fits, oracle.fit_history, atol=tol)
        for ours, ref in zip(factors, oracle.decomposition.factors):
            assert np.allclose(
                np.asarray(ours, dtype=np.float64), ref, atol=tol
            )


class TestUnsupportedCombinations:
    @pytest.mark.parametrize(
        "grain,execution,strategy,trsvd_method,dtype,fmt,kernel",
        UNSUPPORTED,
        ids=[combo_id(c) for c in UNSUPPORTED],
    )
    def test_fails_fast_with_actionable_message(
        self, tensor, partitions, grain, execution, strategy, trsvd_method,
        dtype, fmt, kernel,
    ):
        options = build_options(
            execution, strategy, trsvd_method, dtype, fmt, kernel
        )
        match = unsupported_match(grain, strategy, trsvd_method, fmt, kernel)
        with pytest.raises(ValueError, match=match):
            run_combo(tensor, partitions, grain, options)

    def test_numba_without_numba_is_actionable(self, monkeypatch):
        """kernel='numba' on a numba-less interpreter names the fix."""
        monkeypatch.delenv("REPRO_KERNEL_FORCE_PYTHON", raising=False)
        if numba_available():
            pytest.skip("numba is installed; the availability error cannot fire")
        with pytest.raises(ValueError, match="pip install numba"):
            HOOIOptions(kernel="numba").validate()

    @pytest.mark.parametrize("grain", ("coarse", "fine"))
    def test_distributed_rejects_process_execution(
        self, tensor, partitions, grain
    ):
        """One process pool per simulated rank would oversubscribe the node."""
        options = HOOIOptions(
            max_iterations=1, execution="process", num_workers=2
        )
        with pytest.raises(ValueError, match="oversubscribe"):
            distributed_hooi(tensor, RANKS, partitions[grain], options)

    def test_distributed_rejects_dense_trsvd(self, tensor, partitions):
        options = HOOIOptions(max_iterations=1, trsvd_method="dense")
        with pytest.raises(ValueError, match="lanczos"):
            distributed_hooi(tensor, RANKS, partitions["fine"], options)

    def test_numba_dimtree_rejection_names_missing_kernels(self):
        """The fail-fast names the unimplemented entry points by name."""
        from repro.kernels import MISSING_DIMTREE_KERNELS

        options = HOOIOptions(kernel="numba", ttmc_strategy="dimtree")
        with pytest.raises(ValueError) as excinfo:
            options.validate()
        message = str(excinfo.value)
        for name in MISSING_DIMTREE_KERNELS:
            assert name in message
        assert "REPRO_KERNEL_FORCE_PYTHON" in message
        assert "MISSING_DIMTREE_KERNELS" in message


class TestCSFProcessParity:
    """csf × process through the real worker pool, both TTMc strategies.

    The former hole: ``HOOIOptions.validate`` used to reject
    ``tensor_format='csf'`` with ``execution='process'``.  Now the CSF
    level arrays ride the shared-memory arena (per-mode rooted trees →
    root-fiber slabs; dimension trees → CSF-sourced node payloads) and the
    numbers must match the sequential COO oracle like every other
    execution tier.
    """

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_parity_with_sequential_oracle(
        self, tensor, oracles, strategy, dtype
    ):
        options = build_options("process", strategy, "lanczos", dtype, "csf")
        result = hooi(tensor, RANKS, options)
        oracle = oracles["lanczos"]
        tol = 1e-10 if dtype == "float64" else 1e-3
        assert np.allclose(result.fit_history, oracle.fit_history, atol=tol)
        for ours, ref in zip(
            result.decomposition.factors, oracle.decomposition.factors
        ):
            assert np.allclose(
                np.asarray(ours, dtype=np.float64), ref, atol=tol
            )


class TestDegradationRungs:
    """Every rung of the full (process, numba, csf) descent is sound.

    The ladder degrades one axis at a time (execution → kernel → format),
    so with csf × process legal every intermediate configuration —
    ``thread×numba×csf``, ``sequential×numba×csf``, ``sequential×numpy×csf``
    — must itself validate and reproduce the oracle at 1e-10.  A CSF job
    leaving a broken process pool keeps its compressed layout.
    """

    def test_descent_order(self):
        from repro.resilience import DegradationLadder

        steps = DegradationLadder().steps_from(
            execution="process", kernel="numba", tensor_format="csf"
        )
        assert [(s.field, s.to_value) for s in steps] == [
            ("execution", "thread"),
            ("execution", "sequential"),
            ("kernel", "numpy"),
            ("tensor_format", "coo"),
        ]

    def test_every_rung_valid_and_interchangeable(self, tensor, oracles):
        from repro.resilience import DegradationLadder

        current = {
            "execution": "process", "kernel": "numba", "tensor_format": "csf",
        }
        rungs = [dict(current)]
        for step in DegradationLadder().steps_from(**current):
            current[step.field] = step.to_value
            rungs.append(dict(current))
        oracle = oracles["lanczos"]
        for rung in rungs:
            options = HOOIOptions(
                max_iterations=ITERATIONS, init="random", seed=0,
                trsvd_method="lanczos",
                num_workers=2 if rung["execution"] != "sequential" else 1,
                **rung,
            ).validate()
            result = hooi(tensor, RANKS, options)
            assert np.allclose(
                result.fit_history, oracle.fit_history, atol=1e-10
            ), rung
            for ours, ref in zip(
                result.decomposition.factors, oracle.decomposition.factors
            ):
                assert np.allclose(ours, ref, atol=1e-10), rung


class TestUnknownOptionValues:
    """Unknown axis values fail in every context, via the one validator."""

    @pytest.mark.parametrize(
        "field,value,match",
        [
            ("trsvd_method", "qr", "trsvd_method"),
            ("ttmc_strategy", "kd-tree", "ttmc_strategy"),
            ("execution", "gpu", "execution"),
            ("dtype", "float16", "dtype"),
            ("tensor_format", "parquet", "tensor_format"),
            ("kernel", "fortran", "kernel"),
            ("num_workers", 0, "num_workers"),
            ("max_iterations", 0, "max_iterations"),
        ],
    )
    def test_rejected_single_node(self, tensor, field, value, match):
        options = HOOIOptions(**{field: value})
        with pytest.raises(ValueError, match=match):
            hooi(tensor, RANKS, options)

    @pytest.mark.parametrize(
        "field,value,match",
        [
            ("trsvd_method", "qr", "trsvd_method"),
            ("ttmc_strategy", "kd-tree", "ttmc_strategy"),
            ("execution", "gpu", "execution"),
            ("dtype", "float16", "dtype"),
            ("tensor_format", "parquet", "tensor_format"),
        ],
    )
    def test_rejected_distributed(self, tensor, partitions, field, value, match):
        options = HOOIOptions(**{field: value})
        with pytest.raises(ValueError, match=match):
            distributed_hooi(tensor, RANKS, partitions["coarse"], options)

    def test_unknown_context_rejected(self):
        with pytest.raises(ValueError, match="context"):
            HOOIOptions().validate(context="multiverse")

    def test_validate_returns_options(self):
        options = HOOIOptions(execution="thread", num_workers=2)
        assert options.validate() is options
        assert options.validate(context="distributed") is options


class TestCSFDimtreeInvalidationProperty:
    """CSF-sourced trees obey the same cache semantics as COO-sourced ones.

    Property (hypothesis): build one COO-sourced and one CSF-sourced
    dimension tree over the same random tensor, refresh every mode, then
    replace factor ``n`` and invalidate it — the set of still-fresh nodes
    (by mode range) and every refreshed matricization must match the
    COO tree's exactly.  The tree's version-counter logic is shared, so
    this pins the *source* abstraction: swapping the leaf/edge walks from
    COO subset grouping to CSF pullups may not change what the cache
    considers stale nor what it recomputes.
    """

    @staticmethod
    def _random_tensor(rng, order):
        from repro.core.sparse_tensor import SparseTensor

        shape = tuple(int(rng.integers(3, 7)) for _ in range(order))
        raw = np.stack(
            [rng.integers(0, s, 60) for s in shape], axis=1
        )
        idx = np.unique(raw, axis=0)
        values = rng.standard_normal(len(idx))
        return SparseTensor(idx, values, shape)

    def test_invalidation_parity(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import HealthCheck, given, settings
        from hypothesis import strategies as st

        from repro.engine.dimtree import DimensionTree

        @settings(
            max_examples=25,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        @given(
            seed=st.integers(0, 2**31 - 1),
            order=st.integers(3, 4),
            data=st.data(),
        )
        def property_case(seed, order, data):
            rng = np.random.default_rng(seed)
            tensor = self._random_tensor(rng, order)
            mode_n = data.draw(
                st.integers(0, order - 1), label="invalidated mode"
            )
            ranks = [int(rng.integers(1, 4)) for _ in range(order)]
            factors = [
                rng.standard_normal((s, r))
                for s, r in zip(tensor.shape, ranks)
            ]
            coo_tree = DimensionTree(tensor, source="coo")
            csf_tree = DimensionTree(tensor, source="csf")
            trees = (coo_tree, csf_tree)
            for tree in trees:
                for mode in range(order):
                    tree.leaf_matricized(mode, factors)
            # Replace factor n; both trees must agree on what went stale.
            factors[mode_n] = rng.standard_normal(factors[mode_n].shape)
            for tree in trees:
                tree.invalidate_factor(mode_n)
            fresh_coo = {(n.lo, n.hi) for n in coo_tree.fresh_nodes()}
            fresh_csf = {(n.lo, n.hi) for n in csf_tree.fresh_nodes()}
            assert fresh_csf == fresh_coo
            # A freshly built tree is the oracle for post-refresh numerics:
            # the stale-path refresh must equal a from-scratch evaluation.
            fresh_tree = DimensionTree(tensor, source="coo")
            for mode in range(order):
                expected = fresh_tree.leaf_matricized(mode, factors)
                got_coo = coo_tree.leaf_matricized(mode, factors)
                got_csf = csf_tree.leaf_matricized(mode, factors)
                np.testing.assert_allclose(got_coo, expected, atol=1e-12)
                np.testing.assert_allclose(got_csf, expected, atol=1e-12)
            assert {(n.lo, n.hi) for n in coo_tree.fresh_nodes()} == {
                (n.lo, n.hi) for n in csf_tree.fresh_nodes()
            }

        property_case()
