"""The cross-backend conformance matrix — the spec of what composes.

One parametrized suite sweeps every point of

    grain ∈ {single-node, coarse, fine}
  × execution ∈ {sequential, thread}
  × ttmc_strategy ∈ {per-mode, dimtree}
  × trsvd_method ∈ {lanczos, gram, randomized}
  × dtype ∈ {float32, float64}
  × tensor_format ∈ {coo, csf}

on one small planted low-rank tensor (well-separated spectrum, so factor
parity is meaningful — on a near-degenerate spectrum individual singular
vectors rotate freely even though the fit agrees).

*Supported* combinations assert 1e-10 fit **and** factor parity against the
sequential float64 per-mode oracle of the same ``trsvd_method`` (float32
within 1e-3); the execution / grain / strategy / format axes must never
change the numbers.  *Unsupported* combinations assert :class:`ValueError`
with an actionable message.  Two composition rules carve the matrix: the
distributed grains support only the Lanczos TRSVD, and ``tensor_format=
"csf"`` replaces the TTMc evaluation strategy, so it excludes
``ttmc_strategy="dimtree"`` (and ``execution="process"``, asserted
separately alongside the other process rejections).
:meth:`repro.core.hooi.HOOIOptions.validate` is the single implementation of
these rules; this file is their executable spec — extend both together when
adding an option value (see CONTRIBUTING.md).
"""

from itertools import product

import numpy as np
import pytest

from repro.core import HOOIOptions, hooi
from repro.data import planted_lowrank_tensor
from repro.distributed import distributed_hooi
from repro.partition import make_partition

SHAPE = (16, 12, 10)
RANKS = (3, 3, 2)
NNZ = 600
ITERATIONS = 2

GRAINS = ("single-node", "coarse", "fine")
EXECUTIONS = ("sequential", "thread")
STRATEGIES = ("per-mode", "dimtree")
TRSVD_METHODS = ("lanczos", "gram", "randomized")
DTYPES = ("float64", "float32")
FORMATS = ("coo", "csf")

#: Partitioning strategy realizing each distributed grain.
GRAIN_PARTITION = {"coarse": "coarse-bl", "fine": "fine-rd"}


def combo_supported(grain: str, strategy: str, trsvd_method: str, fmt: str) -> bool:
    """The composition rule of the matrix (mirrors HOOIOptions.validate)."""
    if fmt == "csf" and strategy == "dimtree":
        return False  # two competing TTMc strategies — pick one
    if grain == "single-node":
        return True
    return trsvd_method == "lanczos"  # only TRSVD with a distributed impl


def unsupported_match(grain: str, strategy: str, trsvd_method: str, fmt: str) -> str:
    """Substring the rejection message must contain (csf×dimtree fires first)."""
    if fmt == "csf" and strategy == "dimtree":
        return "dimtree"
    return "lanczos"


ALL_COMBOS = list(
    product(GRAINS, EXECUTIONS, STRATEGIES, TRSVD_METHODS, DTYPES, FORMATS)
)
SUPPORTED = [c for c in ALL_COMBOS if combo_supported(c[0], c[2], c[3], c[5])]
UNSUPPORTED = [c for c in ALL_COMBOS if not combo_supported(c[0], c[2], c[3], c[5])]


def combo_id(combo) -> str:
    return "-".join(combo)


@pytest.fixture(scope="module")
def tensor():
    tensor, _ = planted_lowrank_tensor(SHAPE, RANKS, NNZ, seed=3)
    return tensor


@pytest.fixture(scope="module")
def partitions(tensor):
    return {
        grain: make_partition(tensor, 3, strategy, seed=0)
        for grain, strategy in GRAIN_PARTITION.items()
    }


@pytest.fixture(scope="module")
def oracles(tensor):
    """Sequential float64 per-mode COO runs, one per trsvd_method.

    The trsvd_method axis legitimately changes the numerics (different
    solvers), so each method is its own oracle; every *other* axis must
    reproduce that oracle exactly.
    """
    return {
        method: hooi(
            tensor,
            RANKS,
            HOOIOptions(
                max_iterations=ITERATIONS, init="random", seed=0,
                trsvd_method=method,
            ),
        )
        for method in TRSVD_METHODS
    }


def build_options(execution, strategy, trsvd_method, dtype, fmt) -> HOOIOptions:
    return HOOIOptions(
        max_iterations=ITERATIONS,
        init="random",
        seed=0,
        execution=execution,
        num_workers=2 if execution != "sequential" else 1,
        ttmc_strategy=strategy,
        trsvd_method=trsvd_method,
        dtype=dtype,
        tensor_format=fmt,
    )


def run_combo(tensor, partitions, grain, options):
    if grain == "single-node":
        result = hooi(tensor, RANKS, options)
        return result.fit_history, result.decomposition.factors
    result = distributed_hooi(tensor, RANKS, partitions[grain], options)
    return result.fit_history, result.decomposition.factors


class TestSupportedCombinations:
    @pytest.mark.parametrize(
        "grain,execution,strategy,trsvd_method,dtype,fmt",
        SUPPORTED,
        ids=[combo_id(c) for c in SUPPORTED],
    )
    def test_parity_with_sequential_oracle(
        self, tensor, partitions, oracles, grain, execution, strategy,
        trsvd_method, dtype, fmt,
    ):
        options = build_options(execution, strategy, trsvd_method, dtype, fmt)
        fits, factors = run_combo(tensor, partitions, grain, options)
        oracle = oracles[trsvd_method]
        tol = 1e-10 if dtype == "float64" else 1e-3
        assert np.allclose(fits, oracle.fit_history, atol=tol)
        for ours, ref in zip(factors, oracle.decomposition.factors):
            assert np.allclose(
                np.asarray(ours, dtype=np.float64), ref, atol=tol
            )


class TestUnsupportedCombinations:
    @pytest.mark.parametrize(
        "grain,execution,strategy,trsvd_method,dtype,fmt",
        UNSUPPORTED,
        ids=[combo_id(c) for c in UNSUPPORTED],
    )
    def test_fails_fast_with_actionable_message(
        self, tensor, partitions, grain, execution, strategy, trsvd_method,
        dtype, fmt,
    ):
        options = build_options(execution, strategy, trsvd_method, dtype, fmt)
        match = unsupported_match(grain, strategy, trsvd_method, fmt)
        with pytest.raises(ValueError, match=match):
            run_combo(tensor, partitions, grain, options)

    @pytest.mark.parametrize("grain", ("coarse", "fine"))
    def test_distributed_rejects_process_execution(
        self, tensor, partitions, grain
    ):
        """One process pool per simulated rank would oversubscribe the node."""
        options = HOOIOptions(
            max_iterations=1, execution="process", num_workers=2
        )
        with pytest.raises(ValueError, match="oversubscribe"):
            distributed_hooi(tensor, RANKS, partitions[grain], options)

    def test_distributed_rejects_dense_trsvd(self, tensor, partitions):
        options = HOOIOptions(max_iterations=1, trsvd_method="dense")
        with pytest.raises(ValueError, match="lanczos"):
            distributed_hooi(tensor, RANKS, partitions["fine"], options)

    @pytest.mark.parametrize("grain", GRAINS)
    def test_csf_rejects_process_execution(self, tensor, partitions, grain):
        """The CSF level arrays are not in the shared-memory pool yet."""
        options = HOOIOptions(
            max_iterations=1, tensor_format="csf", execution="process",
            num_workers=2,
        )
        with pytest.raises(ValueError, match="process"):
            run_combo(tensor, partitions, grain, options)


class TestUnknownOptionValues:
    """Unknown axis values fail in every context, via the one validator."""

    @pytest.mark.parametrize(
        "field,value,match",
        [
            ("trsvd_method", "qr", "trsvd_method"),
            ("ttmc_strategy", "kd-tree", "ttmc_strategy"),
            ("execution", "gpu", "execution"),
            ("dtype", "float16", "dtype"),
            ("tensor_format", "parquet", "tensor_format"),
            ("num_workers", 0, "num_workers"),
            ("max_iterations", 0, "max_iterations"),
        ],
    )
    def test_rejected_single_node(self, tensor, field, value, match):
        options = HOOIOptions(**{field: value})
        with pytest.raises(ValueError, match=match):
            hooi(tensor, RANKS, options)

    @pytest.mark.parametrize(
        "field,value,match",
        [
            ("trsvd_method", "qr", "trsvd_method"),
            ("ttmc_strategy", "kd-tree", "ttmc_strategy"),
            ("execution", "gpu", "execution"),
            ("dtype", "float16", "dtype"),
            ("tensor_format", "parquet", "tensor_format"),
        ],
    )
    def test_rejected_distributed(self, tensor, partitions, field, value, match):
        options = HOOIOptions(**{field: value})
        with pytest.raises(ValueError, match=match):
            distributed_hooi(tensor, RANKS, partitions["coarse"], options)

    def test_unknown_context_rejected(self):
        with pytest.raises(ValueError, match="context"):
            HOOIOptions().validate(context="multiverse")

    def test_validate_returns_options(self):
        options = HOOIOptions(execution="thread", num_workers=2)
        assert options.validate() is options
        assert options.validate(context="distributed") is options
