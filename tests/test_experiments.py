"""Tests for the experiment harness (Tables I-V and the MET comparison).

These run the table generators at a very small scale / rank count so the whole
suite stays fast; the benchmarks regenerate the tables at the full default
scale.
"""

import numpy as np
import pytest

from repro.experiments import (
    STRATEGIES,
    ExperimentContext,
    format_float,
    format_table,
    paper_ranks,
    render_met_comparison,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    run_met_comparison,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.experiments.calibration import scaled_machine, scaled_node


@pytest.fixture(scope="module")
def context():
    # A deliberately tiny scale so every test finishes quickly.
    return ExperimentContext(scale=5e-5, seed=0)


class TestHarness:
    def test_context_caches_tensors_and_partitions(self, context):
        a = context.tensor("nell")
        b = context.tensor("nell")
        assert a is b
        p1 = context.partition("nell", "fine-rd", 2)
        p2 = context.partition("nell", "fine-rd", 2)
        assert p1 is p2

    def test_paper_ranks(self):
        assert paper_ranks(3) == (10, 10, 10)
        assert paper_ranks(4) == (5, 5, 5, 5)

    def test_format_float(self):
        assert format_float(0) == "0"
        assert format_float(2_500_000).endswith("M")
        assert format_float(25_000).endswith("K")
        assert format_float(0.1234) == "0.1234"

    def test_format_table_alignment(self):
        text = format_table(["a", "b"], [["x", 1.0], ["yy", 22.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1

    def test_scaled_models(self):
        node = scaled_node(1e-3)
        assert node.flops_per_core < 1e7
        machine = scaled_machine(1e-3)
        assert machine.network_bandwidth < 1e7


class TestTable1:
    def test_rows_and_rendering(self, context):
        rows = run_table1(context)
        assert [r["dataset"] for r in rows] == ["Delicious", "Flickr", "NELL", "Netflix"]
        for row in rows:
            assert row["analog_nnz"] > 0
            assert len(row["analog_shape"]) == len(row["paper_shape"])
        text = render_table1(rows)
        assert "Netflix" in text and "Analog" in text


class TestTable2:
    def test_structure_and_monotonicity(self, context):
        result = run_table2(
            context, datasets=("nell",), strategies=("fine-hp", "fine-rd"),
            node_counts=(2, 8),
        )
        assert set(result) == {"nell"}
        assert set(result["nell"]) == {"fine-hp", "fine-rd"}
        for strategy in ("fine-hp", "fine-rd"):
            times = result["nell"][strategy]
            assert times[8] < times[2]        # strong scaling at small P
            assert all(t > 0 for t in times.values())
        text = render_table2(result)
        assert "nell" in text

    def test_single_rank_equal_across_strategies(self, context):
        result = run_table2(
            context, datasets=("netflix",), strategies=STRATEGIES, node_counts=(1,),
        )
        values = [result["netflix"][s][1] for s in STRATEGIES]
        assert np.allclose(values, values[0])


class TestTable3:
    def test_statistics_shape_and_invariants(self, context):
        result = run_table3(context, dataset="nell", num_parts=4,
                            strategies=("fine-hp", "fine-rd", "coarse-bl"))
        tensor = context.tensor("nell")
        for strategy, rows in result.items():
            assert len(rows) == tensor.order
            for row in rows:
                assert row["wttmc_max"] >= row["wttmc_avg"] > 0
                assert row["wtrsvd_max"] >= row["wtrsvd_avg"]
                assert row["comm_max"] >= row["comm_avg"] >= 0
        # Fine-grain TTMc work is the same in every mode (one task per nonzero).
        fine = result["fine-hp"]
        assert len({row["wttmc_avg"] for row in fine}) == 1
        text = render_table3(result, dataset="nell", num_parts=4)
        assert "fine-rd" in text

    def test_fine_hp_comm_not_worse_than_fine_rd(self, context):
        result = run_table3(context, dataset="flickr", num_parts=4,
                            strategies=("fine-hp", "fine-rd"))
        hp_total = sum(row["comm_avg"] for row in result["fine-hp"])
        rd_total = sum(row["comm_avg"] for row in result["fine-rd"])
        assert hp_total <= rd_total


class TestTable4:
    def test_percentages_sum_to_100(self, context):
        result = run_table4(context, datasets=("nell",), num_parts=2, iterations=1)
        shares = result["nell"]
        assert abs(sum(shares.values()) - 100.0) < 1e-6
        assert shares["core+comm"] < 50.0
        text = render_table4(result)
        assert "TTMC" in text


class TestTable5:
    def test_modelled_speedup_monotonic(self, context):
        result = run_table5(context, datasets=("nell",), thread_counts=(1, 2, 8, 32),
                            measure=False)
        modelled = result["nell"]["modelled"]
        assert modelled[32] <= modelled[8] <= modelled[2] <= modelled[1]
        text = render_table5(result)
        assert "speedup" in text.lower()

    def test_measured_path_runs(self, context):
        result = run_table5(context, datasets=("netflix",), thread_counts=(1, 2),
                            measure=True, measured_thread_counts=(1,), iterations=1)
        assert 1 in result["netflix"]["measured"]
        assert result["netflix"]["measured"][1] > 0

    def test_hybrid_runs_the_real_spmd_program(self, context):
        from repro.experiments import render_table5_hybrid, run_table5_hybrid

        result = run_table5_hybrid(
            context, datasets=("netflix",), rank_counts=(2,),
            thread_counts=(1, 8), iterations=1,
        )
        points = result["netflix"]
        # More threads per rank → faster simulated iteration; identical fit
        # (execution strategy only changes local compute).
        assert points[(2, 8)]["simulated"] < points[(2, 1)]["simulated"]
        assert points[(2, 8)]["fit"] == pytest.approx(points[(2, 1)]["fit"],
                                                      abs=1e-12)
        assert "ranks x threads" in render_table5_hybrid(result)


class TestMetComparison:
    def test_runs_and_is_consistent(self):
        result = run_met_comparison(shape=(120, 120, 120), nnz=4000, ranks=5,
                                    iterations=2, seed=0)
        assert result.fits_match
        assert result.hypertensor_seconds > 0
        assert result.met_seconds > 0
        text = render_met_comparison(result)
        assert "MET" in text and "Speedup" in text
