"""Tests for the unified HOOI engine: backends, dtype policy, workspaces.

The engine refactor's contract: one iteration loop drives every HOOI
variant, sequential and shared results stay numerically identical, the
``float32`` dtype policy runs end-to-end on all three drivers within 1e-3 of
the ``float64`` fit, and the workspace pool eliminates per-mode ``Y_(n)``
reallocation.
"""

import numpy as np
import pytest

from repro.core import HOOIOptions, SparseTensor, hooi
from repro.data import planted_lowrank_tensor
from repro.distributed import distributed_hooi
from repro.engine import (
    HOOIEngine,
    SequentialBackend,
    ThreadedBackend,
    WorkspacePool,
)
from repro.parallel import ParallelConfig, shared_hooi
from repro.partition import make_partition


@pytest.fixture(scope="module")
def lowrank():
    """A planted low-rank observation tensor all dtype tests share."""
    tensor, _ = planted_lowrank_tensor((30, 24, 18), (3, 3, 2), 3000, seed=4)
    return tensor


class TestEngineDirect:
    def test_engine_matches_hooi_wrapper(self, small_tensor_3d):
        options = HOOIOptions(max_iterations=3, init="random", seed=0)
        via_wrapper = hooi(small_tensor_3d, (5, 4, 3), options)
        via_engine = HOOIEngine(
            small_tensor_3d, (5, 4, 3), options, backend=SequentialBackend()
        ).run()
        assert via_engine.fit_history == via_wrapper.fit_history
        for a, b in zip(
            via_engine.decomposition.factors, via_wrapper.decomposition.factors
        ):
            assert np.array_equal(a, b)

    def test_threaded_backend_matches_sequential(self, medium_tensor_3d):
        options = HOOIOptions(max_iterations=3, init="hosvd", seed=0)
        seq = HOOIEngine(medium_tensor_3d, 5, options).run()
        par = HOOIEngine(
            medium_tensor_3d, 5, options,
            backend=ThreadedBackend(ParallelConfig(num_threads=3)),
        ).run()
        assert np.allclose(seq.fit_history, par.fit_history, atol=1e-9)

    def test_iteration_seconds_recorded(self, small_tensor_3d):
        engine = HOOIEngine(small_tensor_3d, 3, HOOIOptions(max_iterations=2))
        engine.run()
        assert len(engine.iteration_seconds) == 2
        assert all(t > 0 for t in engine.iteration_seconds)


class TestSharedCallback:
    def test_shared_hooi_invokes_callback(self, medium_tensor_3d):
        """Parity with the sequential driver: callback(iteration, fit)."""
        calls = []
        shared_hooi(
            medium_tensor_3d, 5,
            HOOIOptions(max_iterations=3, init="hosvd", seed=0),
            config=ParallelConfig(num_threads=2),
            callback=lambda it, fit: calls.append((it, fit)),
        )
        assert [it for it, _ in calls] == [0, 1, 2]
        seq_calls = []
        hooi(
            medium_tensor_3d, 5,
            HOOIOptions(max_iterations=3, init="hosvd", seed=0),
            callback=lambda it, fit: seq_calls.append((it, fit)),
        )
        assert np.allclose([f for _, f in calls], [f for _, f in seq_calls],
                           atol=1e-9)


class TestTrackFitAlwaysPopulated:
    def test_sequential(self, small_tensor_3d):
        result = hooi(small_tensor_3d, 3,
                      HOOIOptions(max_iterations=2, track_fit=False))
        assert len(result.fit_history) == 1
        assert np.isfinite(result.fit)

    def test_shared(self, small_tensor_3d):
        report = shared_hooi(small_tensor_3d, 3,
                             HOOIOptions(max_iterations=2, track_fit=False),
                             config=ParallelConfig(num_threads=2))
        assert np.isfinite(report.result.fit)

    def test_distributed(self, small_tensor_3d):
        partition = make_partition(small_tensor_3d, 2, "coarse-bl")
        result = distributed_hooi(
            small_tensor_3d, 3, partition,
            HOOIOptions(max_iterations=2, init="random", seed=0, track_fit=False),
        )
        assert np.isfinite(result.fit)
        assert not result.converged
        assert result.iterations == 2


class TestRandomizedTRSVD:
    def test_seeded_and_deterministic(self, small_tensor_3d):
        opts = HOOIOptions(max_iterations=3, trsvd_method="randomized", seed=3)
        a = hooi(small_tensor_3d, 3, opts)
        b = hooi(small_tensor_3d, 3, opts)
        assert a.fit_history == b.fit_history

    def test_distributed_rejects_non_lanczos(self, lowrank):
        """Only the Lanczos TRSVD is distributed; anything else fails fast."""
        partition = make_partition(lowrank, 2, "coarse-bl")
        with pytest.raises(ValueError, match="lanczos"):
            distributed_hooi(
                lowrank, (3, 3, 2), partition,
                HOOIOptions(max_iterations=1, trsvd_method="randomized"),
            )

    def test_close_to_lanczos_on_all_engine_drivers(self, lowrank):
        for make_result in (
            lambda m: hooi(lowrank, (3, 3, 2),
                           HOOIOptions(max_iterations=4, trsvd_method=m, seed=0)),
            lambda m: shared_hooi(
                lowrank, (3, 3, 2),
                HOOIOptions(max_iterations=4, trsvd_method=m, seed=0),
                config=ParallelConfig(num_threads=2),
            ).result,
        ):
            lanczos = make_result("lanczos")
            randomized = make_result("randomized")
            assert abs(lanczos.fit - randomized.fit) < 1e-3


class TestDtypePolicy:
    """float32 HOOI must reach a fit within 1e-3 of float64 on all drivers."""

    RANKS = (3, 3, 2)

    def _options(self, dtype):
        return HOOIOptions(max_iterations=4, init="random", seed=0, dtype=dtype)

    def test_sequential_float32_close_to_float64(self, lowrank):
        f64 = hooi(lowrank, self.RANKS, self._options("float64"))
        f32 = hooi(lowrank, self.RANKS, self._options("float32"))
        assert f32.decomposition.core.dtype == np.float32
        assert f32.decomposition.factors[0].dtype == np.float32
        assert abs(f32.fit - f64.fit) < 1e-3

    def test_shared_float32_close_to_float64(self, lowrank):
        f64 = shared_hooi(lowrank, self.RANKS, self._options("float64"),
                          config=ParallelConfig(num_threads=3))
        f32 = shared_hooi(lowrank, self.RANKS, self._options("float32"),
                          config=ParallelConfig(num_threads=3))
        assert f32.result.decomposition.core.dtype == np.float32
        assert abs(f32.result.fit - f64.result.fit) < 1e-3

    def test_distributed_float32_close_to_float64(self, lowrank):
        partition = make_partition(lowrank, 3, "fine-hp", seed=0)
        f64 = distributed_hooi(lowrank, self.RANKS, partition,
                               self._options("float64"))
        f32 = distributed_hooi(lowrank, self.RANKS, partition,
                               self._options("float32"))
        assert f32.decomposition.core.dtype == np.float32
        assert abs(f32.fit - f64.fit) < 1e-3

    def test_float32_ttmc_buffers_are_float32(self, lowrank):
        pool = WorkspacePool()
        hooi(lowrank, self.RANKS, self._options("float32"), workspace=pool)
        assert pool.num_buffers > 0
        assert all(key[2] == np.float32 for key in pool._buffers)

    def test_met_baseline_respects_dtype_policy(self, lowrank):
        """Regression: the TTM-chain baseline must not mix core/factor dtypes."""
        from repro.baselines.met import met_hooi

        result = met_hooi(lowrank, self.RANKS, self._options("float32"))
        assert result.decomposition.core.dtype == np.float32
        assert all(f.dtype == np.float32 for f in result.decomposition.factors)

    def test_invalid_dtype_rejected(self, small_tensor_3d):
        with pytest.raises(ValueError):
            hooi(small_tensor_3d, 2, HOOIOptions(dtype="int32"))

    def test_sparse_tensor_astype_roundtrip(self, small_tensor_3d):
        f32 = small_tensor_3d.astype("float32")
        assert f32.dtype == np.float32
        assert f32.astype("float32") is f32
        back = f32.astype(np.float64)
        assert back.dtype == np.float64
        assert np.allclose(back.values, small_tensor_3d.values, atol=1e-6)


class TestWorkspacePool:
    def test_take_reuses_buffer(self):
        pool = WorkspacePool()
        a = pool.take((4, 5), np.float64)
        b = pool.take((4, 5), np.float64)
        assert a is b
        assert pool.allocations == 1 and pool.reuses == 1
        c = pool.take((4, 5), np.float32)
        assert c is not a
        assert pool.allocations == 2

    def test_zeros_clears_content(self):
        pool = WorkspacePool()
        buf = pool.take((3, 3))
        buf[:] = 7.0
        again = pool.zeros((3, 3))
        assert again is buf
        assert np.all(again == 0.0)

    def test_engine_allocations_stop_after_first_iteration(self, medium_tensor_3d):
        """Steady-state HOOI iterations perform zero pool allocations."""
        pool = WorkspacePool()
        hooi(medium_tensor_3d, 5,
             HOOIOptions(max_iterations=1, init="random", seed=0),
             workspace=pool)
        allocations_after_first = pool.allocations
        hooi(medium_tensor_3d, 5,
             HOOIOptions(max_iterations=4, init="random", seed=0),
             workspace=pool)
        assert pool.allocations == allocations_after_first
        assert pool.reuses > 0

    def test_pooled_run_matches_unpooled(self, medium_tensor_3d):
        options = HOOIOptions(max_iterations=3, init="random", seed=0)
        pooled = hooi(medium_tensor_3d, 5, options, workspace=WorkspacePool())
        plain = hooi(medium_tensor_3d, 5, options)
        assert pooled.fit_history == plain.fit_history

    @pytest.mark.parametrize("strategy", ["per-mode", "dimtree"])
    def test_shared_pool_across_different_sparsity_patterns(self, strategy):
        """Regression for the touched-rows zeroing optimization.

        Two tensors with the same shape but different non-empty rows reuse
        the same pooled ``Y_(n)`` buffers; rows outside the second tensor's
        ``J_n`` must read as zero, not as the first run's leftovers.
        """
        def tensor_with_rows(seed, row_lo, row_hi):
            gen = np.random.default_rng(seed)
            nnz = 600
            idx = np.column_stack([
                gen.integers(row_lo, row_hi, size=nnz),
                gen.integers(0, 30, size=nnz),
                gen.integers(0, 30, size=nnz),
            ])
            return SparseTensor(idx, gen.standard_normal(nnz), (40, 30, 30),
                                sum_duplicates=True)

        # First tensor touches mode-0 rows [0, 40); the second only [20, 40).
        first = tensor_with_rows(1, 0, 40)
        second = tensor_with_rows(2, 20, 40)
        options = HOOIOptions(max_iterations=2, init="hosvd", seed=0,
                              ttmc_strategy=strategy)
        pool = WorkspacePool()
        hooi(first, 4, options, workspace=pool)
        shared = hooi(second, 4, options, workspace=pool)
        fresh = hooi(second, 4, options)
        assert shared.fit_history == fresh.fit_history
        for a, b in zip(shared.decomposition.factors,
                        fresh.decomposition.factors):
            assert np.array_equal(a, b)

    def test_tags_separate_equal_shapes(self):
        pool = WorkspacePool()
        a = pool.take((4, 4), np.float64, tag="ttmc-out")
        b = pool.take((4, 4), np.float64, tag="kron-scratch")
        assert a is not b

    def test_scratch_never_aliases_output(self):
        """Regression: a chunk with nnz == I_n must not reuse Y_(n) as scratch.

        One nonzero per mode-0 row makes the Kronecker scratch shape equal
        the output shape; with a shape-only pool key the accumulator was
        handed out as scratch and overwritten mid-accumulation.
        """
        from repro.core import ttmc_matricized
        from repro.util.linalg import random_orthonormal

        n = 6
        idx = np.column_stack(
            [np.arange(n), np.arange(n) % n, (np.arange(n) * 2) % n]
        )
        tensor = SparseTensor(idx, np.arange(1.0, n + 1), (n, n, n))
        factors = [random_orthonormal(n, 2, seed=i) for i in range(3)]
        reference = ttmc_matricized(tensor, factors, 0)
        pool = WorkspacePool()
        out = pool.take((n, 4), np.float64, tag="ttmc-out")
        pooled = ttmc_matricized(tensor, factors, 0, out=out, workspace=pool)
        assert np.allclose(pooled, reference)

    def test_integer_factors_still_promote_to_float64(self, small_tensor_3d):
        """Regression: bool/int8 kron operands compute in float64, not float32."""
        from repro.core.kron import batch_kron_rows, kron_dtype

        assert kron_dtype(np.zeros(2, dtype=bool), np.zeros(2, dtype=np.int8)) \
            == np.float64
        out = batch_kron_rows(
            [np.ones((3, 2), dtype=np.int8), np.ones((3, 2), dtype=bool)]
        )
        assert out.dtype == np.float64

    def test_out_dtype_mismatch_rejected(self, small_tensor_3d, factors_3d):
        """A wrong-dtype out buffer raises instead of silently downcasting."""
        from repro.core import ttmc_matricized
        from repro.parallel import parallel_ttmc_matricized

        width = factors_3d[1].shape[1] * factors_3d[2].shape[1]
        bad = np.zeros((small_tensor_3d.shape[0], width), dtype=np.float32)
        with pytest.raises(ValueError, match="dtype"):
            ttmc_matricized(small_tensor_3d, factors_3d, 0, out=bad)
        with pytest.raises(ValueError, match="dtype"):
            parallel_ttmc_matricized(small_tensor_3d, factors_3d, 0, out=bad)

    def test_non_policy_float_dtypes_promote_to_float64(self):
        """float16 / extended precision are outside the policy -> float64."""
        from repro.core.kron import kron_dtype, kron_rows

        assert kron_dtype(np.zeros(2, dtype=np.float16)) == np.float64
        assert kron_dtype(np.zeros(2, dtype=np.longdouble)) == np.float64
        assert kron_rows([np.ones(2, dtype=np.float16)]).dtype == np.float64
        assert kron_dtype(np.zeros(2, dtype=np.float32)) == np.float32


class TestNoDuplicatedLoop:
    """Every HOOI driver must route its sweep through repro.engine."""

    def test_baseline_backends_share_engine(self, small_tensor_3d):
        from repro.baselines.met import TTMChainBackend, met_hooi
        from repro.engine.backend import ExecutionBackend

        assert issubclass(TTMChainBackend, ExecutionBackend)
        options = HOOIOptions(max_iterations=2, init="random", seed=0)
        assert np.allclose(
            met_hooi(small_tensor_3d, 3, options).fit_history,
            hooi(small_tensor_3d, 3, options).fit_history,
            atol=1e-8,
        )

    def test_dense_backend_shares_engine(self):
        from repro.baselines.dense_hooi import DenseGramBackend
        from repro.engine.backend import ExecutionBackend

        assert issubclass(DenseGramBackend, ExecutionBackend)

    def test_distributed_backend_shares_engine(self):
        from repro.distributed.dist_hooi import DistributedBackend
        from repro.engine.backend import ExecutionBackend

        assert issubclass(DistributedBackend, ExecutionBackend)

    def test_drivers_have_no_private_mode_sweep(self):
        """The ``for mode in range(...)`` sweep lives only in the engine."""
        import inspect

        import repro.core.hooi as seq_mod
        import repro.parallel.shared_hooi as shared_mod
        import repro.distributed.dist_hooi as dist_mod

        for module in (seq_mod, shared_mod, dist_mod):
            source = inspect.getsource(module)
            assert "for iteration in range" not in source, module.__name__
