"""Tests for the synthetic data generators, dataset analogs and .tns IO."""

import numpy as np
import pytest

from repro.data import (
    PAPER_DATASETS,
    dataset_table,
    make_dataset,
    planted_lowrank_tensor,
    power_law_sparse_tensor,
    random_sparse_tensor,
    random_tucker_tensor,
    read_tns,
    write_tns,
    zipf_indices,
)


class TestRandomSparse:
    def test_shape_and_nnz(self):
        t = random_sparse_tensor((50, 40, 30), 1000, seed=0)
        assert t.shape == (50, 40, 30)
        assert 0 < t.nnz <= 1000     # duplicates merged

    def test_deterministic(self):
        a = random_sparse_tensor((20, 20), 200, seed=3)
        b = random_sparse_tensor((20, 20), 200, seed=3)
        assert a.allclose(b)

    def test_value_distributions(self):
        # Values of duplicate coordinates are summed, so "ones" yields
        # positive integers and "uniform" yields non-negative values.
        ones = random_sparse_tensor((30, 30), 100, seed=0, value_distribution="ones")
        assert np.all(ones.values >= 1.0)
        assert np.allclose(ones.values, np.round(ones.values))
        uniform = random_sparse_tensor((30, 30), 100, seed=0, value_distribution="uniform")
        assert np.all(uniform.values >= 0)
        with pytest.raises(ValueError):
            random_sparse_tensor((30, 30), 100, value_distribution="cauchy")


class TestPowerLaw:
    def test_zipf_indices_range_and_skew(self, rng):
        idx = zipf_indices(1000, 20000, 1.1, rng)
        assert idx.min() >= 0 and idx.max() < 1000
        counts = np.bincount(idx, minlength=1000)
        top_share = np.sort(counts)[::-1][:10].sum() / counts.sum()
        assert top_share > 0.2     # heavily skewed head

    def test_zipf_zero_exponent_uniform(self, rng):
        idx = zipf_indices(100, 50000, 0.0, rng)
        counts = np.bincount(idx, minlength=100)
        assert counts.max() / counts.mean() < 1.5

    def test_zipf_invalid_size(self, rng):
        with pytest.raises(ValueError):
            zipf_indices(0, 10, 1.0, rng)

    def test_power_law_tensor_skewed_slices(self):
        t = power_law_sparse_tensor((500, 400, 300), 20000, exponents=1.0, seed=0)
        counts = t.mode_counts(0)
        assert counts.max() > 5 * max(counts.mean(), 1)

    def test_exponent_broadcast_and_mismatch(self):
        power_law_sparse_tensor((30, 30), 500, exponents=0.5, seed=0)
        with pytest.raises(ValueError):
            power_law_sparse_tensor((30, 30), 500, exponents=[0.5, 0.5, 0.5])


class TestDatasets:
    def test_all_specs_present(self):
        assert set(PAPER_DATASETS) == {"netflix", "nell", "delicious", "flickr"}

    def test_paper_orders(self):
        assert PAPER_DATASETS["netflix"].order == 3
        assert PAPER_DATASETS["delicious"].order == 4

    def test_make_dataset_scales(self):
        t = make_dataset("nell", scale=2e-4, seed=0)
        spec = PAPER_DATASETS["nell"]
        assert t.order == spec.order
        assert t.nnz <= spec.scaled_nnz(2e-4)
        for size, full in zip(t.shape, spec.shape):
            assert size <= max(int(full * 2e-4) + 1, 8)

    def test_make_dataset_deterministic(self):
        a = make_dataset("netflix", scale=2e-4, seed=1)
        b = make_dataset("netflix", scale=2e-4, seed=1)
        assert a.allclose(b)

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            make_dataset("movielens")

    def test_dataset_table_contents(self):
        rows = dataset_table(scale=1e-3)
        assert set(rows) == {"Netflix", "NELL", "Delicious", "Flickr"}
        assert rows["Flickr"]["paper_nnz"] == 112_000_000


class TestLowRank:
    def test_random_tucker_orthonormal_factors(self):
        t = random_tucker_tensor((10, 9, 8), (3, 2, 2), seed=0)
        for f in t.factors:
            assert np.allclose(f.T @ f, np.eye(f.shape[1]), atol=1e-10)

    def test_planted_values_match_truth(self):
        observed, truth = planted_lowrank_tensor((20, 15, 10), 3, 500, seed=0)
        expected = truth.reconstruct_entries(observed.indices)
        assert np.allclose(observed.values, expected)

    def test_planted_with_noise_differs(self):
        observed, truth = planted_lowrank_tensor((20, 15, 10), 3, 500, noise=0.5, seed=0)
        expected = truth.reconstruct_entries(observed.indices)
        assert not np.allclose(observed.values, expected)

    def test_planted_coordinates_unique(self):
        observed, _ = planted_lowrank_tensor((15, 15, 15), 2, 2000, seed=1)
        assert len(np.unique(observed.linear_indices())) == observed.nnz


class TestIO:
    def test_roundtrip(self, tmp_path, small_tensor_3d):
        path = tmp_path / "tensor.tns"
        write_tns(small_tensor_3d, path)
        back = read_tns(path)
        assert back.shape == small_tensor_3d.shape
        assert back.allclose(small_tensor_3d)

    def test_roundtrip_without_header(self, tmp_path, small_tensor_3d):
        path = tmp_path / "tensor.tns"
        write_tns(small_tensor_3d, path, header=False)
        back = read_tns(path, shape=small_tensor_3d.shape)
        assert back.allclose(small_tensor_3d)

    def test_shape_inference_from_indices(self, tmp_path):
        path = tmp_path / "small.tns"
        path.write_text("1 1 2 3.5\n2 3 1 -1.0\n")
        t = read_tns(path)
        assert t.shape == (2, 3, 2)
        assert t.nnz == 2
        assert np.isclose(t.to_dense()[0, 0, 1], 3.5)

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "c.tns"
        path.write_text("# a comment\n\n1 1 1.0\n")
        assert read_tns(path).nnz == 1

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.tns"
        path.write_text("42\n")
        with pytest.raises(ValueError):
            read_tns(path)

    def test_empty_file_needs_shape(self, tmp_path):
        path = tmp_path / "empty.tns"
        path.write_text("")
        with pytest.raises(ValueError):
            read_tns(path)
        t = read_tns(path, shape=(3, 3))
        assert t.nnz == 0


class TestDuplicateCoordinates:
    """Real-world files repeat coordinates; loaders must merge them.

    A loaded tensor with duplicated coordinates silently corrupts anything
    norm-based downstream: the TTMc accumulates duplicates correctly (it
    sums them anyway), but ``norm()`` — and therefore every fit the HOOI
    drivers report — treats the stored values as distinct entries.  The
    readers therefore merge duplicates by default; these are the regression
    tests pinning that behaviour.
    """

    @pytest.fixture
    def duplicated_file(self, tmp_path):
        path = tmp_path / "dup.tns"
        path.write_text(
            "# shape: 4 3 5\n"
            "1 2 3 1.5\n"
            "4 1 5 -2.0\n"
            "1 2 3 0.5\n"   # duplicate of line 1
            "1 2 3 1.0\n"   # triplicate of line 1
            "4 1 5 1.0\n"   # duplicate of line 2
        )
        return path

    def test_read_tns_merges_duplicates_by_default(self, duplicated_file):
        tensor = read_tns(duplicated_file)
        assert tensor.nnz == 2
        dense = tensor.to_dense()
        assert np.isclose(dense[0, 1, 2], 3.0)
        assert np.isclose(dense[3, 0, 4], -1.0)

    def test_read_tns_norm_not_corrupted(self, duplicated_file):
        """The fit every driver reports divides by this norm."""
        tensor = read_tns(duplicated_file)
        assert np.isclose(tensor.norm(), np.sqrt(3.0**2 + 1.0**2))

    def test_read_tns_escape_hatch_keeps_duplicates(self, duplicated_file):
        raw = read_tns(duplicated_file, sum_duplicates=False)
        assert raw.nnz == 5
        assert raw.deduplicate().nnz == 2
        # The dedup'd escape hatch agrees with the default path.
        assert raw.deduplicate().allclose(read_tns(duplicated_file))

    def test_loaded_duplicates_ttmc_matches_deduplicated(self, duplicated_file):
        from repro.core import ttmc_matricized
        from repro.util.linalg import random_orthonormal

        tensor = read_tns(duplicated_file)
        raw = read_tns(duplicated_file, sum_duplicates=False)
        factors = [
            random_orthonormal(s, 2, seed=n)
            for n, s in enumerate(tensor.shape)
        ]
        for mode in range(tensor.order):
            np.testing.assert_allclose(
                ttmc_matricized(tensor, factors, mode),
                ttmc_matricized(raw.deduplicate(), factors, mode),
                atol=1e-12,
            )

    def test_synthetic_generators_emit_unique_coordinates(self):
        for tensor in (
            random_sparse_tensor((6, 5, 4), 300, seed=1),
            power_law_sparse_tensor((6, 5, 4), 300, exponents=0.8, seed=1),
            make_dataset("netflix", scale=2e-4, seed=1),
        ):
            keys = tensor.linear_indices()
            assert len(np.unique(keys)) == tensor.nnz
